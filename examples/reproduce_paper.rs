//! Regenerate every table and figure of the paper in one run.
//!
//! This is the example-sized entry point; the `repro` binary in the
//! `experiments` crate does the same with CLI selection and CSV output.
//!
//! ```sh
//! cargo run --release --example reproduce_paper
//! ```

use experiments::runner::RunOptions;
use experiments::{
    fig1_remote_ratio, fig3_bounds, fig4_spec, fig5_npb, fig6_memcached, fig7_redis, fig8_period,
    table3_overhead,
};
use sim_core::SimDuration;

fn main() {
    // Shorter windows than the `repro` binary so the example finishes in
    // about a minute; shapes are already stable at this scale.
    let opts = RunOptions {
        duration: SimDuration::from_secs(15),
        warmup: SimDuration::from_secs(5),
        ..RunOptions::default()
    };

    println!("{}", fig1_remote_ratio::render(&fig1_remote_ratio::run(&opts).unwrap()).to_text());
    println!("{}", fig3_bounds::render(&fig3_bounds::run(&opts).unwrap()).to_text());
    println!("{}", fig4_spec::render(&fig4_spec::run(&opts).unwrap(), "Fig. 4").to_text());
    println!("{}", fig5_npb::render(&fig5_npb::run(&opts).unwrap()).to_text());
    println!(
        "{}",
        fig6_memcached::render(&fig6_memcached::run_levels(&[16, 64, 112], &opts).unwrap())
            .to_text()
    );
    println!(
        "{}",
        fig7_redis::render(&fig7_redis::run_levels(&[2_000, 6_000, 10_000], &opts).unwrap())
            .to_text()
    );
    println!("{}", table3_overhead::render(&table3_overhead::run(&opts).unwrap()).to_text());
    println!(
        "{}",
        fig8_period::render(&fig8_period::run_periods(&[0.1, 0.5, 1.0, 2.0, 10.0], &opts).unwrap())
            .to_text()
    );
}
