//! Quickstart: build the paper's machine, run vProbe against Credit on a
//! memory-intensive workload, and print the comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mem_model::AllocPolicy;
use numa_topo::presets;
use sim_core::SimDuration;
use vprobe::{variants, Bounds};
use workloads::{hungry, npb};
use xen_sim::{CreditPolicy, Machine, MachineBuilder, SchedPolicy, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

fn build(policy: Box<dyn SchedPolicy>) -> Machine {
    // The paper's testbed: two quad-core Xeon E5620 sockets (Table I).
    let topo = presets::xeon_e5620();
    MachineBuilder::new(topo)
        .policy(policy)
        // VM1: the measured VM — 8 VCPUs, memory split across both nodes,
        // running the 4-threaded NPB `sp` solver (the paper's best case).
        .add_vm(VmConfig::new(
            "vm1",
            8,
            15 * GB,
            AllocPolicy::SplitEven,
            vec![npb::sp()],
        ))
        // VM2: same workload as interference.
        .add_vm(VmConfig::new(
            "vm2",
            8,
            5 * GB,
            AllocPolicy::MostFree,
            vec![npb::sp()],
        ))
        // VM3: eight hungry loops keeping every PCPU busy.
        .add_vm(VmConfig::new(
            "vm3",
            8,
            GB,
            AllocPolicy::MostFree,
            vec![hungry::hungry_loop(); 8],
        ))
        .build()
        .expect("valid configuration")
}

fn measure(name: &str, policy: Box<dyn SchedPolicy>) -> f64 {
    let mut machine = build(policy);
    machine.run(SimDuration::from_secs(30));
    let m = machine.metrics();
    let vm1 = &m.per_vm[0];
    let rate = vm1.instr_per_second(m.elapsed);
    println!(
        "{name:8}  {:.2e} instr/s   remote accesses {:5.1}%   {} cross-node migrations",
        rate,
        vm1.remote_ratio() * 100.0,
        m.cross_node_migrations,
    );
    rate
}

fn main() {
    println!("vProbe quickstart — NPB `sp` under interference on the Table I machine\n");
    let credit = measure("Credit", Box::new(CreditPolicy::new()));
    let vprobe = measure("vProbe", Box::new(variants::vprobe(2, Bounds::default())));
    println!(
        "\nvProbe speedup over Credit: {:.1}%",
        (vprobe / credit - 1.0) * 100.0
    );
}
