//! Beyond the paper's testbed: vProbe on a four-socket machine, plus the
//! §VI future-work extensions (dynamic bounds).
//!
//! The paper evaluates on two sockets; the algorithms generalize to any
//! node count. This example builds a 4-socket/32-core machine, loads it
//! with a mixed tenant population, and compares Credit, vProbe with the
//! paper's static bounds, and vProbe with the dynamic-bounds extension.
//!
//! ```sh
//! cargo run --release --example custom_topology
//! ```

use mem_model::AllocPolicy;
use numa_topo::{presets, NodeConfig, TopologyBuilder};
use sim_core::SimDuration;
use vprobe::{Bounds, VProbePolicy};
use workloads::{npb, speccpu};
use xen_sim::{CreditPolicy, MachineBuilder, SchedPolicy, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

fn run(label: &str, policy: Box<dyn SchedPolicy>) {
    // Either take the ready-made preset ...
    let _preset = presets::four_socket_32core();
    // ... or describe the machine explicitly:
    let topo = TopologyBuilder::new(2_600)
        .add_nodes(
            NodeConfig {
                mem_bytes: 16 * GB,
                imc_bandwidth_bytes_per_s: 40_000_000_000,
                llc: numa_topo::CacheConfig {
                    level: 3,
                    size_bytes: 20 * 1024 * 1024,
                    line_bytes: 64,
                    shared_by: 8,
                },
                local_latency_ns: 70.0,
            },
            8,
            4,
        )
        .fully_connected_qpi()
        .build()
        .expect("valid topology");

    let mut machine = MachineBuilder::new(topo)
        .policy(policy)
        .add_vm(VmConfig::new(
            "tenant-a",
            16,
            24 * GB,
            AllocPolicy::SplitEven,
            vec![npb::sp(), npb::lu()],
        ))
        .add_vm(VmConfig::new(
            "tenant-b",
            8,
            12 * GB,
            AllocPolicy::MostFree,
            vec![speccpu::milc(); 6],
        ))
        .add_vm(VmConfig::new(
            "tenant-c",
            8,
            8 * GB,
            AllocPolicy::Striped {
                chunk_bytes: 256 * 1024 * 1024,
            },
            vec![speccpu::soplex(); 8],
        ))
        .build()
        .expect("valid configuration");
    machine.run(SimDuration::from_secs(25));
    let m = machine.metrics();
    let total_instr: u64 = m.per_vm.iter().map(|v| v.instructions).sum();
    let remote: u64 = m.per_vm.iter().map(|v| v.remote_accesses).sum();
    let total_acc: u64 = m.per_vm.iter().map(|v| v.total_accesses()).sum();
    println!(
        "{label:22}  {:.3e} instr   remote {:4.1}%   {} partition moves",
        total_instr as f64,
        remote as f64 / total_acc.max(1) as f64 * 100.0,
        m.partition_moves,
    );
}

fn main() {
    println!("Four-socket, 32-core machine, three tenants\n");
    run("Credit", Box::new(CreditPolicy::new()));
    run(
        "vProbe (static 3/20)",
        Box::new(VProbePolicy::new(4, Bounds::default())),
    );
    run(
        "vProbe (dynamic)",
        Box::new(VProbePolicy::new(4, Bounds::default()).with_dynamic_bounds()),
    );
    println!("\n(Algorithm 1 and 2 generalize beyond the paper's two sockets.)");
}
