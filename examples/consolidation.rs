//! Server-consolidation scenario: heterogeneous VMs sharing one NUMA box.
//!
//! A common cloud pattern the paper's introduction motivates: a database
//! VM (redis), a web-cache VM (memcached), a batch-analytics VM (SPEC-like
//! soplex instances), and a background-compute VM share one two-socket
//! host. The example sweeps all five schedulers and reports each VM's
//! throughput so you can see who pays for NUMA-oblivious scheduling.
//!
//! ```sh
//! cargo run --release --example consolidation
//! ```

use mem_model::AllocPolicy;
use numa_topo::presets;
use sim_core::SimDuration;
use vprobe::{variants, Bounds, BrmPolicy};
use workloads::{kv, speccpu};
use xen_sim::{CreditPolicy, MachineBuilder, SchedPolicy, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

fn policy(name: &str) -> Box<dyn SchedPolicy> {
    match name {
        "Credit" => Box::new(CreditPolicy::new()),
        "vProbe" => Box::new(variants::vprobe(2, Bounds::default())),
        "VCPU-P" => Box::new(variants::vcpu_p(2, Bounds::default())),
        "LB" => Box::new(variants::lb_only(2, Bounds::default())),
        "BRM" => Box::new(BrmPolicy::new(7)),
        _ => unreachable!(),
    }
}

fn main() {
    println!("Consolidated host: redis + memcached + batch analytics + background compute\n");
    println!(
        "{:8}  {:>12}  {:>12}  {:>12}  {:>10}",
        "sched", "redis req/s", "mc ops/s", "batch Gi/s", "remote %"
    );

    for name in ["Credit", "vProbe", "VCPU-P", "LB", "BRM"] {
        let mut machine = MachineBuilder::new(presets::xeon_e5620())
            .policy(policy(name))
            .add_vm(VmConfig::new(
                "redis-db",
                4,
                6 * GB,
                AllocPolicy::MostFree,
                vec![kv::redis(4_000)],
            ))
            .add_vm(VmConfig::new(
                "web-cache",
                8,
                4 * GB,
                AllocPolicy::MostFree,
                vec![kv::memcached(64)],
            ))
            .add_vm(VmConfig::new(
                "analytics",
                4,
                4 * GB,
                AllocPolicy::MostFree,
                vec![speccpu::soplex(); 4],
            ))
            .add_vm(VmConfig::new(
                "background",
                2,
                GB,
                AllocPolicy::MostFree,
                vec![workloads::hungry::hungry_loop(); 2],
            ))
            .build()
            .expect("valid configuration");
        machine.run(SimDuration::from_secs(30));
        let m = machine.metrics();
        let elapsed = m.elapsed;

        let redis_rate = m.per_vm[0].instr_per_second(elapsed);
        let mc_rate = m.per_vm[1].instr_per_second(elapsed);
        let batch_rate = m.per_vm[2].instr_per_second(elapsed);
        let remote: u64 = m.per_vm.iter().map(|v| v.remote_accesses).sum();
        let total: u64 = m.per_vm.iter().map(|v| v.total_accesses()).sum();

        println!(
            "{:8}  {:>12.0}  {:>12.0}  {:>12.2}  {:>9.1}%",
            name,
            kv::ops_per_second(&kv::redis(4_000), redis_rate),
            kv::ops_per_second(&kv::memcached(64), mc_rate),
            batch_rate / 1e9,
            remote as f64 / total.max(1) as f64 * 100.0,
        );
    }
    println!("\n(30 simulated seconds per scheduler; all VMs share the Table I machine)");
}
