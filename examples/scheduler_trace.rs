//! Watch vProbe make its decisions: run a short interval with event
//! tracing enabled and print an xentrace-style log plus a decision
//! summary.
//!
//! ```sh
//! cargo run --release --example scheduler_trace
//! ```

use mem_model::AllocPolicy;
use numa_topo::presets;
use sim_core::SimDuration;
use vprobe::{variants, Bounds};
use workloads::{hungry, speccpu};
use xen_sim::{Event, MachineBuilder, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

fn main() {
    let mut machine = MachineBuilder::new(presets::xeon_e5620())
        .policy(Box::new(variants::vprobe(2, Bounds::default())))
        .add_vm(VmConfig::new(
            "heavy",
            8,
            10 * GB,
            AllocPolicy::SplitEven,
            speccpu::mix(),
        ))
        .add_vm(VmConfig::new(
            "noise",
            8,
            GB,
            AllocPolicy::MostFree,
            vec![hungry::hungry_loop(); 8],
        ))
        .build()
        .expect("valid configuration");
    machine.enable_trace(50_000);
    machine.run(SimDuration::from_secs(5));

    let trace = machine.trace();
    println!("last 20 scheduling events:");
    let lines = trace.to_lines();
    for line in lines.iter().rev().take(20).rev() {
        println!("  {line}");
    }

    let steals = trace.count(|e| matches!(e, Event::Steal { .. }));
    let cross = trace.count(|e| matches!(e, Event::Steal { cross_node: true, .. }));
    let moves = trace.count(|e| matches!(e, Event::PartitionMove { .. }));
    let switches = trace.count(|e| matches!(e, Event::SwitchIn { .. }));
    println!("\n5 simulated seconds under vProbe:");
    println!("  context switches : {switches}");
    println!("  steals           : {steals} ({cross} cross-node)");
    println!("  partition moves  : {moves}");
    println!("  events dropped   : {}", trace.dropped());
}
