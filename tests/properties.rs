//! Workspace-level property tests: invariants that must hold across the
//! whole stack for arbitrary configurations.

use experiments::runner::{run_workload, RunOptions, Scheduler, SetupKind, ALL_SCHEDULERS};
use mem_model::{AllocPolicy, EngineSelect};
use numa_topo::{presets, NodeConfig, TopologyBuilder};
use proptest::prelude::*;
use sim_core::{FaultConfig, SimDuration};
use vprobe::{variants, Bounds};
use workloads::{npb, speccpu, WorkloadSpec};
use xen_sim::{CreditPolicy, Machine, MachineBuilder, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

/// Every scheduler the macro-stepper must be invisible to: the paper's
/// five plus the gracefully-degrading vProbe variant.
const MACRO_EQUIV_SCHEDULERS: [Scheduler; 6] = [
    ALL_SCHEDULERS[0],
    ALL_SCHEDULERS[1],
    ALL_SCHEDULERS[2],
    ALL_SCHEDULERS[3],
    ALL_SCHEDULERS[4],
    Scheduler::VProbeGd,
];

/// Run one (scheduler, seed, fault) configuration with macro-stepping on
/// and off and demand byte-identical metrics and series.
fn assert_macro_invisible(scheduler: Scheduler, seed: u64, fault_rate: f64) {
    assert_macro_invisible_on(scheduler, seed, fault_rate, npb::lu(), npb::lu());
}

fn assert_macro_invisible_on(
    scheduler: Scheduler,
    seed: u64,
    fault_rate: f64,
    w1: WorkloadSpec,
    w2: WorkloadSpec,
) {
    let mut opts = RunOptions {
        duration: SimDuration::from_secs(2),
        warmup: SimDuration::from_secs(1),
        seed,
        shuffle: Some(SimDuration::from_millis(500)),
        ..RunOptions::default()
    };
    if fault_rate > 0.0 {
        opts.faults = FaultConfig::uniform(fault_rate, seed + 1);
    }
    let run = |macro_step: bool| {
        let mut o = opts.clone();
        o.macro_step = macro_step;
        run_workload(
            scheduler,
            SetupKind::PaperEval,
            vec![w1.clone()],
            vec![w2.clone()],
            &o,
        )
        .unwrap()
        .metrics
    };
    let fast = run(true);
    let slow = run(false);
    let label = (scheduler.name(), seed, fault_rate);
    assert_eq!(fast.to_json(), slow.to_json(), "metrics diverged: {label:?}");
    assert_eq!(
        fast.series_csv(),
        slow.series_csv(),
        "series diverged: {label:?}"
    );
}

/// Golden equivalence of event-horizon macro-stepping: for every
/// scheduler, across seeds and fault rates, macro-stepped runs are
/// bit-identical to forced per-quantum stepping.
#[test]
fn macro_stepping_is_invisible_across_schedulers_seeds_and_faults() {
    for scheduler in MACRO_EQUIV_SCHEDULERS {
        for seed in [1, 2, 3] {
            for fault_rate in [0.0, 0.15] {
                assert_macro_invisible(scheduler, seed, fault_rate);
            }
        }
    }
}

/// Run one (scheduler, seed, fault, macro) configuration under the exact
/// incremental engine and the frozen reference engine and demand
/// byte-identical metrics and series.
fn assert_engine_invisible(scheduler: Scheduler, seed: u64, fault_rate: f64, macro_step: bool) {
    let mut opts = RunOptions {
        duration: SimDuration::from_secs(2),
        warmup: SimDuration::from_secs(1),
        seed,
        shuffle: Some(SimDuration::from_millis(500)),
        macro_step,
        ..RunOptions::default()
    };
    if fault_rate > 0.0 {
        opts.faults = FaultConfig::uniform(fault_rate, seed + 1);
    }
    let run = |engine: EngineSelect| {
        let mut o = opts.clone();
        o.engine = engine;
        run_workload(
            scheduler,
            SetupKind::PaperEval,
            vec![npb::lu()],
            vec![npb::lu()],
            &o,
        )
        .unwrap()
        .metrics
    };
    let soa = run(EngineSelect::Exact);
    let reference = run(EngineSelect::Reference);
    let label = (scheduler.name(), seed, fault_rate, macro_step);
    assert_eq!(
        soa.to_json(),
        reference.to_json(),
        "metrics diverged: {label:?}"
    );
    assert_eq!(
        soa.series_csv(),
        reference.series_csv(),
        "series diverged: {label:?}"
    );
}

/// Golden equivalence of the incremental SoA engine: for every scheduler,
/// across seeds, fault rates, and both stepping modes, exact-mode runs are
/// bit-identical to the frozen pre-rewrite engine.
#[test]
fn soa_engine_is_byte_identical_across_schedulers_seeds_faults_and_stepping() {
    for scheduler in MACRO_EQUIV_SCHEDULERS {
        for seed in [1, 2, 3] {
            for fault_rate in [0.0, 0.15] {
                for macro_step in [true, false] {
                    assert_engine_invisible(scheduler, seed, fault_rate, macro_step);
                }
            }
        }
    }
}

/// The approx engine is a model-error trade, not a correctness bug: its
/// headline throughput prediction must track the exact engine within the
/// documented tolerance (quantization grid 0.05 → ≤ ~2.5% per lookup,
/// loosened here for accumulation across a full run).
#[test]
fn approx_engine_tracks_exact_within_documented_tolerance() {
    let run = |engine: EngineSelect| {
        let opts = RunOptions {
            duration: SimDuration::from_secs(2),
            warmup: SimDuration::from_secs(1),
            seed: 7,
            engine,
            ..RunOptions::default()
        };
        run_workload(
            Scheduler::VProbe,
            SetupKind::PaperEval,
            vec![npb::lu()],
            vec![npb::lu()],
            &opts,
        )
        .unwrap()
    };
    let exact = run(EngineSelect::Exact);
    let approx = run(EngineSelect::Approx);
    let rel = (approx.instr_rate - exact.instr_rate).abs() / exact.instr_rate;
    assert!(
        rel < 0.05,
        "approx instr_rate diverged {rel:.4} (exact {}, approx {})",
        exact.instr_rate,
        approx.instr_rate
    );
    let rel_remote = (approx.remote_ratio - exact.remote_ratio).abs();
    assert!(
        rel_remote < 0.05,
        "approx remote ratio diverged {rel_remote:.4}"
    );
}

/// The machine used by the fault-determinism properties: vProbe-GD so
/// every degradation path (skips, fallback, retries) is exercised.
fn faulty_machine(faults: FaultConfig, seed: u64) -> Machine {
    MachineBuilder::new(presets::xeon_e5620())
        .policy(Box::new(variants::vprobe_gd(2, Bounds::default())))
        .seed(seed)
        .faults(faults)
        .add_vm(VmConfig::new(
            "a",
            8,
            6 * GB,
            AllocPolicy::SplitEven,
            vec![speccpu::soplex(); 4],
        ))
        .add_vm(VmConfig::new(
            "b",
            4,
            2 * GB,
            AllocPolicy::MostFree,
            vec![speccpu::milc(); 2],
        ))
        .build()
        .unwrap()
}

fn arb_workload() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        Just(speccpu::soplex()),
        Just(speccpu::libquantum()),
        Just(speccpu::milc()),
        Just(npb::lu()),
        Just(npb::sp()),
        Just(npb::ep()),
        Just(workloads::hungry::hungry_loop()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Macro-stepping equivalence must also hold for arbitrary workload
    /// mixes, not just the enumerated golden matrix above.
    #[test]
    fn macro_stepping_is_invisible_for_arbitrary_mixes(
        sched_idx in 0usize..MACRO_EQUIV_SCHEDULERS.len(),
        w1 in arb_workload(),
        w2 in arb_workload(),
        seed in 0u64..1000,
        faulty in any::<bool>(),
    ) {
        let rate = if faulty { 0.1 } else { 0.0 };
        assert_macro_invisible_on(MACRO_EQUIV_SCHEDULERS[sched_idx], seed, rate, w1, w2);
    }

    /// Conservation: every memory access a VM makes is either local or
    /// remote, and per-node counts sum to the total, for any workload mix
    /// and either scheduler family.
    #[test]
    fn access_accounting_is_conserved(
        w1 in arb_workload(),
        w2 in arb_workload(),
        use_vprobe in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let topo = presets::xeon_e5620();
        let policy: Box<dyn xen_sim::SchedPolicy> = if use_vprobe {
            Box::new(variants::vprobe(2, Bounds::default()))
        } else {
            Box::new(CreditPolicy::new())
        };
        let mut machine = MachineBuilder::new(topo)
            .policy(policy)
            .seed(seed)
            .add_vm(VmConfig::new("a", 8, 6 * GB, AllocPolicy::SplitEven, vec![w1]))
            .add_vm(VmConfig::new("b", 8, 4 * GB, AllocPolicy::MostFree, vec![w2]))
            .build()
            .unwrap();
        machine.run(SimDuration::from_secs(3));
        for vm in &machine.metrics().per_vm {
            prop_assert_eq!(
                vm.local_accesses + vm.remote_accesses,
                vm.total_accesses()
            );
            prop_assert!(vm.llc_misses <= vm.llc_refs);
            prop_assert!(vm.total_accesses() == vm.llc_misses);
        }
    }

    /// Machine capacity: total busy time can never exceed
    /// PCPUs × elapsed, on any machine shape.
    #[test]
    fn busy_time_bounded_by_capacity(
        nodes in 1usize..4,
        cores in 2u16..6,
        seed in 0u64..1000,
    ) {
        let topo = TopologyBuilder::new(2_400)
            .add_nodes(NodeConfig::e5620_node(), cores, nodes)
            .fully_connected_qpi()
            .build()
            .unwrap();
        let pcpus = topo.num_pcpus() as u64;
        let vcpus = (pcpus as usize).min(8);
        let mut machine = MachineBuilder::new(topo)
            .policy(Box::new(variants::vprobe(nodes, Bounds::default())))
            .seed(seed)
            .add_vm(VmConfig::new(
                "vm",
                vcpus,
                2 * GB,
                AllocPolicy::MostFree,
                vec![speccpu::soplex(); vcpus],
            ))
            .build()
            .unwrap();
        let secs = 2u64;
        machine.run(SimDuration::from_secs(secs));
        let busy: u64 = machine.metrics().per_vm.iter().map(|v| v.busy_us).sum();
        prop_assert!(busy <= pcpus * secs * 1_000_000);
    }

    /// Fault injection is a pure function of (simulation seed, fault
    /// seed, fault rate): two identically configured machines produce
    /// byte-identical RunMetrics, fault counters included.
    #[test]
    fn fault_injection_is_deterministic(
        rate in 0.0f64..0.5,
        fault_seed in 1u64..100,
        seed in 0u64..1000,
    ) {
        let faults = FaultConfig::uniform(rate, fault_seed);
        let mut a = faulty_machine(faults.clone(), seed);
        let mut b = faulty_machine(faults, seed);
        a.run(SimDuration::from_secs(3));
        b.run(SimDuration::from_secs(3));
        prop_assert_eq!(a.metrics().to_json(), b.metrics().to_json());
    }

    /// Rate zero must be byte-identical to no fault machinery at all —
    /// whatever the fault seed — so clean golden outputs stay valid.
    #[test]
    fn zero_fault_rate_is_invisible(
        fault_seed in 1u64..100,
        seed in 0u64..1000,
    ) {
        let mut zeroed = faulty_machine(FaultConfig::uniform(0.0, fault_seed), seed);
        let mut clean = faulty_machine(FaultConfig::none(), seed);
        zeroed.run(SimDuration::from_secs(3));
        clean.run(SimDuration::from_secs(3));
        prop_assert_eq!(zeroed.metrics().to_json(), clean.metrics().to_json());
    }

    /// NUMA-degenerate control: on a single-node (UMA) machine the
    /// NUMA-aware scheduler must produce zero remote accesses and zero
    /// cross-node migrations — and must not crash.
    #[test]
    fn uma_machine_has_no_remote_traffic(w in arb_workload(), seed in 0u64..1000) {
        let topo = presets::uma_quad();
        let mut machine = MachineBuilder::new(topo)
            .policy(Box::new(variants::vprobe(1, Bounds::default())))
            .seed(seed)
            .add_vm(VmConfig::new("vm", 4, 2 * GB, AllocPolicy::MostFree, vec![w]))
            .build()
            .unwrap();
        machine.run(SimDuration::from_secs(3));
        let m = machine.metrics();
        prop_assert_eq!(m.cross_node_migrations, 0);
        for vm in &m.per_vm {
            prop_assert_eq!(vm.remote_accesses, 0);
        }
    }
}
