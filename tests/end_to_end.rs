//! Cross-crate integration tests: full-machine simulations asserting the
//! paper's qualitative results end to end.

use experiments::runner::{
    run_all_schedulers, run_workload, RunOptions, Scheduler, SetupKind, ALL_SCHEDULERS,
};
use sim_core::SimDuration;
use workloads::{npb, speccpu};

fn opts(secs: u64) -> RunOptions {
    RunOptions {
        duration: SimDuration::from_secs(secs),
        warmup: SimDuration::from_secs(5),
        ..RunOptions::default()
    }
}

#[test]
fn all_five_schedulers_run_to_completion() {
    let runs = run_all_schedulers(
        SetupKind::PaperEval,
        vec![npb::lu()],
        vec![npb::lu()],
        &opts(6),
    )
    .unwrap();
    assert_eq!(runs.len(), ALL_SCHEDULERS.len());
    for r in &runs {
        assert!(r.instr_rate > 0.0, "{} made no progress", r.scheduler.name());
        assert!(r.total_accesses > 0, "{} accessed no memory", r.scheduler.name());
    }
}

#[test]
fn headline_vprobe_beats_credit_on_sp() {
    // The paper's best case (Fig. 5, sp): vProbe must clearly win.
    let o = opts(20);
    let credit = run_workload(
        Scheduler::Credit,
        SetupKind::PaperEval,
        vec![npb::sp()],
        vec![npb::sp()],
        &o,
    )
    .unwrap();
    let vp = run_workload(
        Scheduler::VProbe,
        SetupKind::PaperEval,
        vec![npb::sp()],
        vec![npb::sp()],
        &o,
    )
    .unwrap();
    let speedup = vp.instr_rate / credit.instr_rate;
    assert!(speedup > 1.08, "vProbe speedup on sp too small: {speedup}");
    assert!(
        vp.remote_ratio < credit.remote_ratio * 0.6,
        "vProbe must slash remote accesses: {} vs {}",
        vp.remote_ratio,
        credit.remote_ratio
    );
}

#[test]
fn vprobe_beats_both_single_mechanism_ablations_on_mix() {
    // §V-B5: both VCPU-P and LB lag the full system.
    let o = opts(20);
    let run = |s| {
        run_workload(s, SetupKind::PaperEval, speccpu::mix(), speccpu::mix(), &o)
            .unwrap()
            .instr_rate
    };
    let vp = run(Scheduler::VProbe);
    let vcpu_p = run(Scheduler::VcpuP);
    let lb = run(Scheduler::Lb);
    assert!(vp > vcpu_p, "vProbe {vp} must beat VCPU-P {vcpu_p}");
    assert!(vp > lb, "vProbe {vp} must beat LB {lb}");
}

#[test]
fn brm_is_not_better_than_vprobe() {
    // §V-B5: BRM's global lock keeps it at or below Credit, far from vProbe.
    let o = opts(15);
    let run = |s| {
        run_workload(
            s,
            SetupKind::PaperEval,
            vec![speccpu::milc(); 4],
            vec![speccpu::milc(); 4],
            &o,
        )
        .unwrap()
        .instr_rate
    };
    assert!(run(Scheduler::VProbe) > run(Scheduler::Brm));
}

#[test]
fn runs_are_deterministic_for_a_fixed_seed() {
    let o = opts(6);
    let a = run_workload(
        Scheduler::VProbe,
        SetupKind::PaperEval,
        vec![npb::cg()],
        vec![npb::cg()],
        &o,
    )
    .unwrap();
    let b = run_workload(
        Scheduler::VProbe,
        SetupKind::PaperEval,
        vec![npb::cg()],
        vec![npb::cg()],
        &o,
    )
    .unwrap();
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.total_accesses, b.total_accesses);
    assert_eq!(a.migrations, b.migrations);
}

#[test]
fn different_seeds_vary_but_preserve_the_winner() {
    let mut vp_wins = 0;
    for seed in [1, 2, 3] {
        let mut o = opts(12);
        o.seed = seed;
        let credit = run_workload(
            Scheduler::Credit,
            SetupKind::PaperEval,
            vec![npb::sp()],
            vec![npb::sp()],
            &o,
        )
        .unwrap();
        let vp = run_workload(
            Scheduler::VProbe,
            SetupKind::PaperEval,
            vec![npb::sp()],
            vec![npb::sp()],
            &o,
        )
        .unwrap();
        if vp.instr_rate > credit.instr_rate {
            vp_wins += 1;
        }
    }
    assert!(vp_wins >= 2, "vProbe should win on most seeds: {vp_wins}/3");
}

#[test]
fn overhead_budget_is_negligible_for_vprobe() {
    let o = opts(10);
    let vp = run_workload(
        Scheduler::VProbe,
        SetupKind::PaperEval,
        vec![npb::lu()],
        vec![npb::lu()],
        &o,
    )
    .unwrap();
    assert!(
        vp.overhead_percent < 0.1,
        "Table III bound violated: {}",
        vp.overhead_percent
    );
    let credit = run_workload(
        Scheduler::Credit,
        SetupKind::PaperEval,
        vec![npb::lu()],
        vec![npb::lu()],
        &o,
    )
    .unwrap();
    assert_eq!(credit.overhead_percent, 0.0, "Credit reads no counters");
}
