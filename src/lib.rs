//! Umbrella crate for the vProbe reproduction workspace.
//!
//! Re-exports every layer so examples and integration tests can reach the
//! full stack through one dependency:
//!
//! * [`vprobe`] — the paper's contribution (analyzer, Algorithm 1,
//!   Algorithm 2, and the VCPU-P / LB / BRM baselines);
//! * [`xen_sim`] — the Credit-scheduler hypervisor substrate;
//! * [`fleet`] — N hosts, failure domains, and self-healing placement
//!   layered above single machines;
//! * [`mem_model`], [`numa_topo`], [`pmu`], [`workloads`] — the machine
//!   model underneath;
//! * [`experiments`] — the per-figure/table regeneration harness.

pub use experiments;
pub use fleet;
pub use mem_model;
pub use numa_topo;
pub use pmu;
pub use sim_core;
pub use vprobe;
pub use workloads;
pub use xen_sim;
