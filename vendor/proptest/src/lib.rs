//! Vendored, dependency-free subset of the `proptest` crate.
//!
//! The workspace builds in offline environments, so instead of the
//! crates-io `proptest` this small harness provides the API surface the
//! test suite actually uses: `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! numeric range strategies, tuples, `Just`, `prop_map`/`prop_flat_map`,
//! `prop_oneof!`, `any::<bool>()`, `prop::collection::vec`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, deliberate for simplicity:
//!
//! * cases are generated from a fixed per-test seed (derived from the test
//!   path), so runs are deterministic and reproducible without persistence
//!   files — `proptest-regressions/` is not read;
//! * there is no shrinking: a failing case panics with the assertion
//!   message directly;
//! * `prop_assert*` panics instead of returning `Err`, which inside the
//!   `proptest!` loop has the same observable effect.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator for test inputs (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed a generator from a test's module path, so every test gets an
    /// independent but stable stream.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` via widening multiply.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[0, 1]`.
    pub fn unit_inclusive(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) multiplied by second-long simulations makes
        // test walls too long; 32 keeps good coverage per commit.
        ProptestConfig { cases: 32 }
    }
}

pub mod strategy {
    use super::*;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between heterogeneous strategies with a common value
    /// type (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Helper used by `prop_oneof!` so each arm coerces to the same boxed
    /// trait object without naming the value type.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! impl_int_range {
        ($($ty:ty),*) => {
            $(
                impl Strategy for Range<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        self.start.wrapping_add(rng.below(span) as $ty)
                    }
                }
            )*
        };
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.unit();
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + (hi - lo) * rng.unit_inclusive()
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A);
    impl_tuple!(A, B);
    impl_tuple!(A, B, C);
    impl_tuple!(A, B, C, D);
    impl_tuple!(A, B, C, D, E);
    impl_tuple!(A, B, C, D, E, F);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact count or a half-open
    /// range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate a `Vec` whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate as prop;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($option) ),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

pub use strategy::Strategy;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..7), &mut rng);
            assert!((3..7).contains(&v));
            let f = Strategy::generate(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = crate::TestRng::new(2);
        let strat = prop::collection::vec((0u8..3, 0u32..10).prop_map(|(a, b)| a as u32 + b), 1..5);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(!v.is_empty() && v.len() < 5);
            assert!(v.iter().all(|&x| x < 13));
        }
    }

    #[test]
    fn oneof_draws_every_option() {
        let mut rng = crate::TestRng::new(3);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_end_to_end(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            if flip {
                prop_assert_eq!(x + 1, 1 + x, "commutativity for {}", x);
            }
        }
    }
}
