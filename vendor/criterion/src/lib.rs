//! Vendored, dependency-free subset of the `criterion` crate.
//!
//! Provides the API surface the workspace's bench targets use —
//! `Criterion` with `sample_size`/`measurement_time`/`warm_up_time`,
//! `bench_function`, `benchmark_group`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock sampler: per benchmark it calibrates an iteration count to
//! fill `measurement_time / sample_size`, takes `sample_size` timed
//! samples, and prints min/mean/max per-iteration times.
//!
//! Command-line behaviour: any arguments are treated as substring filters
//! on benchmark names (the `--bench`/`--quiet` flags cargo passes are
//! ignored), matching how the real harness is typically used.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(2),
            filters,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (the real crate requires
    /// ≥ 10; we accept anything ≥ 1).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total wall-clock budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget spent running the benchmark before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(id) {
            return self;
        }
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: repeat single iterations until the budget is spent,
        // remembering the latest per-iteration cost for calibration.
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        loop {
            b.iters = 1;
            f(&mut b);
            if b.elapsed > Duration::ZERO {
                per_iter = b.elapsed;
            }
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }

        // Calibrate so `sample_size` samples fill `measurement_time`.
        let per_sample = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let iters = (per_sample / per_iter.as_nanos().max(1)).clamp(1, u128::from(u32::MAX)) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, x| a.total_cmp(x));
        let min = samples_ns.first().copied().unwrap_or(0.0);
        let max = samples_ns.last().copied().unwrap_or(0.0);
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len().max(1) as f64;
        println!(
            "{id:<44} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            self.sample_size,
            iters,
        );
        self
    }

    /// Start a named group; benchmark ids inside it are prefixed with
    /// `name/`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} us", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Handle passed to the measured closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `f`; the harness reads back the total.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.c.bench_function(&full, f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.filters.clear();
        let mut runs = 0u64;
        c.bench_function("selftest/add", |b| {
            runs += 1;
            b.iter(|| black_box(2u64) + black_box(3u64))
        });
        // warm-up calls + 3 samples.
        assert!(runs >= 4);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default()
            .sample_size(1)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.filters.clear();
        let mut g = c.benchmark_group("grp");
        let mut ran = false;
        g.bench_function("x", |b| {
            ran = true;
            b.iter(|| 1u32)
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn filters_skip_unmatched() {
        let mut c = Criterion::default()
            .sample_size(1)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.filters = vec!["only-this".into()];
        let mut ran = false;
        c.bench_function("something/else", |b| {
            ran = true;
            b.iter(|| 1u32)
        });
        assert!(!ran);
    }
}
