//! Per-PCPU run queue.
//!
//! Queue order is FIFO; priority classes (BOOST > UNDER > OVER) are
//! evaluated *at selection time* against the scheduler's current credit
//! state, not frozen at insertion: credits — and therefore priorities —
//! change while a VCPU waits (accounting promotes waiting VCPUs back to
//! UNDER), and both the local pick and the steal logic must see the fresh
//! class or re-promoted VCPUs become invisible to balancing.

use crate::vcpu::Priority;
use numa_topo::VcpuId;
use std::collections::VecDeque;

/// FIFO of runnable VCPUs; priorities are resolved through a lookup at
/// query time.
#[derive(Debug, Clone, Default)]
pub struct RunQueue {
    q: VecDeque<VcpuId>,
}

impl RunQueue {
    pub fn new() -> Self {
        RunQueue::default()
    }

    pub fn len(&self) -> usize {
        self.q.len()
    }

    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Enqueue at the tail.
    pub fn push(&mut self, vcpu: VcpuId) {
        self.q.push_back(vcpu);
    }

    /// Dequeue the first VCPU of the best priority class currently present
    /// (FIFO within a class).
    pub fn pop_best(&mut self, prio: impl Fn(VcpuId) -> Priority) -> Option<(VcpuId, Priority)> {
        let best = self.head_priority(&prio)?;
        let pos = self
            .q
            .iter()
            .position(|&v| prio(v) == best)
            .expect("head_priority implies a member of that class");
        let v = self.q.remove(pos).expect("position is in range");
        Some((v, best))
    }

    /// Best priority class currently present.
    pub fn head_priority(&self, prio: impl Fn(VcpuId) -> Priority) -> Option<Priority> {
        self.q.iter().map(|&v| prio(v)).min()
    }

    /// Remove a specific VCPU wherever it sits. Returns true if present.
    pub fn remove(&mut self, vcpu: VcpuId) -> bool {
        if let Some(pos) = self.q.iter().position(|&v| v == vcpu) {
            self.q.remove(pos);
            true
        } else {
            false
        }
    }

    /// All queued VCPUs in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = VcpuId> + '_ {
        self.q.iter().copied()
    }

    /// Queued VCPUs whose current priority is at least `min` (i.e. `<=
    /// min` in the `Boost < Under < Over` ordering), in FIFO order — the
    /// candidates a stealing PCPU may take when `min` is the best it could
    /// otherwise run.
    pub fn iter_at_least<'a>(
        &'a self,
        min: Priority,
        prio: impl Fn(VcpuId) -> Priority + 'a,
    ) -> impl Iterator<Item = VcpuId> + 'a {
        self.q.iter().copied().filter(move |&v| prio(v) <= min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn v(i: u32) -> VcpuId {
        VcpuId::new(i)
    }

    fn table(entries: &[(u32, Priority)]) -> HashMap<VcpuId, Priority> {
        entries.iter().map(|&(i, p)| (v(i), p)).collect()
    }

    #[test]
    fn fifo_within_class() {
        let mut q = RunQueue::new();
        q.push(v(1));
        q.push(v(2));
        let t = table(&[(1, Priority::Under), (2, Priority::Under)]);
        let prio = |x: VcpuId| t[&x];
        assert_eq!(q.pop_best(prio), Some((v(1), Priority::Under)));
        assert_eq!(q.pop_best(prio), Some((v(2), Priority::Under)));
        assert_eq!(q.pop_best(prio), None);
    }

    #[test]
    fn better_class_pops_first_regardless_of_insert_order() {
        let mut q = RunQueue::new();
        q.push(v(1)); // over
        q.push(v(2)); // under
        q.push(v(3)); // boost
        let t = table(&[
            (1, Priority::Over),
            (2, Priority::Under),
            (3, Priority::Boost),
        ]);
        let prio = |x: VcpuId| t[&x];
        assert_eq!(q.head_priority(prio), Some(Priority::Boost));
        assert_eq!(q.pop_best(prio), Some((v(3), Priority::Boost)));
        assert_eq!(q.pop_best(prio), Some((v(2), Priority::Under)));
        assert_eq!(q.pop_best(prio), Some((v(1), Priority::Over)));
    }

    #[test]
    fn priority_change_while_queued_is_visible() {
        // The regression this design exists for: a VCPU enqueued OVER gets
        // promoted to UNDER by accounting while waiting and must become
        // visible to the picker and to thieves immediately.
        let mut q = RunQueue::new();
        q.push(v(1));
        let over = table(&[(1, Priority::Over)]);
        assert_eq!(q.head_priority(|x| over[&x]), Some(Priority::Over));
        let under = table(&[(1, Priority::Under)]);
        assert_eq!(q.head_priority(|x| under[&x]), Some(Priority::Under));
        let stealable: Vec<_> = q.iter_at_least(Priority::Under, |x| under[&x]).collect();
        assert_eq!(stealable, vec![v(1)]);
    }

    #[test]
    fn remove_and_len() {
        let mut q = RunQueue::new();
        q.push(v(1));
        q.push(v(2));
        assert!(q.remove(v(1)));
        assert!(!q.remove(v(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert!(q.remove(v(2)));
        assert!(q.is_empty());
    }

    #[test]
    fn iter_at_least_filters_by_current_priority() {
        let mut q = RunQueue::new();
        q.push(v(1));
        q.push(v(2));
        q.push(v(3));
        let t = table(&[
            (1, Priority::Under),
            (2, Priority::Over),
            (3, Priority::Boost),
        ]);
        let prio = |x: VcpuId| t[&x];
        let boost_only: Vec<_> = q.iter_at_least(Priority::Boost, prio).collect();
        assert_eq!(boost_only, vec![v(3)]);
        let upgrades: Vec<_> = q.iter_at_least(Priority::Under, prio).collect();
        assert_eq!(upgrades, vec![v(1), v(3)]);
        let all: Vec<_> = q.iter_at_least(Priority::Over, prio).collect();
        assert_eq!(all, vec![v(1), v(2), v(3)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn arb_queue() -> impl Strategy<Value = (Vec<u32>, HashMap<u32, Priority>)> {
        prop::collection::vec((0u32..32, 0u8..3), 0..16).prop_map(|entries| {
            let mut seen = std::collections::HashSet::new();
            let mut ids = Vec::new();
            let mut prios = HashMap::new();
            for (id, p) in entries {
                if seen.insert(id) {
                    ids.push(id);
                    prios.insert(
                        id,
                        match p {
                            0 => Priority::Boost,
                            1 => Priority::Under,
                            _ => Priority::Over,
                        },
                    );
                }
            }
            (ids, prios)
        })
    }

    proptest! {
        #[test]
        fn pop_best_returns_best_class_in_fifo_order((ids, prios) in arb_queue()) {
            let mut q = RunQueue::new();
            for &id in &ids {
                q.push(VcpuId::new(id));
            }
            let prio = |v: VcpuId| prios[&v.raw()];
            let mut last: Option<Priority> = None;
            let mut popped = Vec::new();
            while let Some((v, p)) = q.pop_best(prio) {
                // The popped priority is the minimum among what remained.
                if let Some(best_left) = q.head_priority(prio) {
                    prop_assert!(p <= best_left);
                }
                let _ = last.replace(p);
                popped.push(v.raw());
            }
            prop_assert_eq!(popped.len(), ids.len(), "everything pops exactly once");
            // FIFO within a class: filter the original order per class and
            // compare against the pops of that class.
            for class in [Priority::Boost, Priority::Under, Priority::Over] {
                let expect: Vec<u32> =
                    ids.iter().copied().filter(|i| prios[i] == class).collect();
                let got: Vec<u32> = popped
                    .iter()
                    .copied()
                    .filter(|i| prios[i] == class)
                    .collect();
                prop_assert_eq!(expect, got, "FIFO broken in {:?}", class);
            }
        }

        #[test]
        fn iter_at_least_is_a_filter_of_iter((ids, prios) in arb_queue()) {
            let mut q = RunQueue::new();
            for &id in &ids {
                q.push(VcpuId::new(id));
            }
            let prio = |v: VcpuId| prios[&v.raw()];
            for min in [Priority::Boost, Priority::Under, Priority::Over] {
                let filtered: Vec<VcpuId> = q.iter().filter(|&v| prio(v) <= min).collect();
                let direct: Vec<VcpuId> = q.iter_at_least(min, &prio).collect();
                prop_assert_eq!(filtered, direct);
            }
        }
    }
}
