//! Per-PCPU scheduler state.

use crate::runqueue::RunQueue;
use numa_topo::{NodeId, PcpuId, VcpuId};

/// Dynamic state of one physical CPU.
#[derive(Debug, Clone)]
pub struct PcpuState {
    pub id: PcpuId,
    pub node: NodeId,
    pub queue: RunQueue,
    /// VCPU currently executing, if any.
    pub current: Option<VcpuId>,
    /// Monitoring/scheduling time to charge against whatever runs next on
    /// this PCPU, in microseconds.
    pub pending_overhead_us: f64,
    /// Remaining quanta of an injected transient stall; 0 = running
    /// normally. A stalled PCPU schedules and executes nothing.
    pub stall_left: u32,
}

impl PcpuState {
    pub fn new(id: PcpuId, node: NodeId) -> Self {
        PcpuState {
            id,
            node,
            queue: RunQueue::new(),
            current: None,
            pending_overhead_us: 0.0,
            stall_left: 0,
        }
    }

    /// The paper's per-PCPU `workload` counter: the number of VCPUs in the
    /// run queue (the running VCPU counts too — it returns to this queue).
    pub fn workload(&self) -> usize {
        self.queue.len() + usize::from(self.current.is_some())
    }

    pub fn is_idle(&self) -> bool {
        self.current.is_none() && self.queue.is_empty()
    }

    /// Quiescent for macro-stepping: the PCPU is running exactly one VCPU
    /// with nothing queued behind it, is not stalled, and carries no
    /// pending overhead that would perturb the next quantum's usable time.
    /// Under these conditions (and with the running VCPU's timeslice,
    /// priority, and affinity stable — checked by the machine) the PCPU's
    /// schedule decision is a fixed point: each further quantum reproduces
    /// the same assignment.
    pub fn is_quiescent(&self) -> bool {
        self.stall_left == 0
            && self.current.is_some()
            && self.queue.is_empty()
            && self.pending_overhead_us == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_counts_queue_and_current() {
        let mut p = PcpuState::new(PcpuId::new(0), NodeId::new(0));
        assert_eq!(p.workload(), 0);
        assert!(p.is_idle());
        p.queue.push(VcpuId::new(1));
        p.current = Some(VcpuId::new(2));
        assert_eq!(p.workload(), 2);
        assert!(!p.is_idle());
    }
}
