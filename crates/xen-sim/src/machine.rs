//! The simulated machine: topology + memory model + PMU + VMs + scheduler.
//!
//! [`Machine::run`] advances simulated time in fixed quanta. Each quantum:
//!
//! 1. credit ticks (10 ms) debit the running VCPUs and, for PMU-using
//!    policies, charge counter-collection overhead ("updated … every
//!    10 ms" in the paper's §IV-B);
//! 2. credit accounting (30 ms) redistributes credits and refreshes
//!    UNDER/OVER priorities;
//! 3. guest-OS thread shuffles fire on their per-VM period;
//! 4. every PCPU schedules: keep the current VCPU if its timeslice
//!    remains and nothing higher-priority waits, otherwise requeue it and
//!    pick again — stealing through the policy when the queue offers
//!    nothing better than OVER work (Xen's `csched_load_balance` trigger);
//! 5. the memory engine resolves execution and the virtual PMU records it;
//! 6. at sampling-period boundaries the policy's analyzer runs and its
//!    partitioning plan is applied.

use crate::metrics::RunMetrics;
use crate::pcpu::PcpuState;
use crate::policy::{AnalyzerView, PeriodFeedback, SchedPolicy, StealContext, VcpuView};
use crate::vcpu::{Priority, VcpuKind, VcpuState};
use crate::vm::{VmConfig, VmRuntime};
use mem_model::{AnyEngine, EngineSelect, NodeFree, QuantumUsage};
use numa_topo::{NodeId, PcpuId, Topology, VcpuId, VmId};
use pmu::{OverheadModel, OverheadTracker, PeriodSampler, PmuSample};
use sim_core::{
    Clock, FaultConfig, FaultInjector, MigrationFault, SimDuration, SimError, SimRng, SimTime,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use telemetry::{CounterId, GaugeId, HistogramId, Registry};

/// RPTI classification thresholds (the paper's Table 2 boundaries, matching
/// `vprobe::Bounds::default`), duplicated here because the simulator cannot
/// depend on the policy crate. Used only for telemetry classification
/// counters, never for scheduling decisions.
const RPTI_FRIENDLY_MAX: f64 = 3.0;
const RPTI_FITTING_MAX: f64 = 20.0;

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// Timing and cost parameters of the hypervisor simulation.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Stationary relative standard deviation of each worker's
    /// memory-intensity fluctuation (0 disables burstiness).
    pub intensity_noise_sd: f64,
    /// Correlation time of the fluctuation.
    pub intensity_noise_corr: SimDuration,
    /// Per-VCPU counter attribution error at a 1-quantum sampling window,
    /// as a relative sd; the error of a window of `n` quanta is
    /// `attribution_noise / sqrt(n)`. Perfctr-style counter save/restore
    /// around context switches leaks a little of each neighbour's counts
    /// into every VCPU's window, so short windows are noisy and long ones
    /// average out (0 disables).
    pub attribution_noise: f64,
    /// Simulation step (default 1 ms).
    pub quantum: SimDuration,
    /// Credit-scheduler timeslice (30 ms in Xen).
    pub timeslice: SimDuration,
    /// Credit debit tick (10 ms in Xen).
    pub credit_tick: SimDuration,
    /// Credit accounting period (30 ms in Xen).
    pub accounting: SimDuration,
    /// PMU sampling period (the paper settles on 1 s, Fig. 8).
    pub sample_period: SimDuration,
    /// Base quanta of elevated miss rate after a cross-node migration;
    /// scaled by the migrating workload's working-set size (refilling a
    /// W-megabyte LLC working set takes on the order of W milliseconds).
    pub cold_quanta: u32,
    /// Upper bound on the scaled cold window, quanta.
    pub cold_quanta_max: u32,
    /// Miss-rate multiplier while cold.
    pub cold_miss_boost: f64,
    /// Cost of any context switch-in, microseconds.
    pub context_switch_us: f64,
    /// Extra cost when the switch-in is a cross-PCPU migration.
    pub migration_extra_us: f64,
    /// Overhead model for PMU collection / partitioning (Table III).
    pub overhead: OverheadModel,
    /// Root seed for all randomness.
    pub seed: u64,
    /// Fault-injection configuration (default: no faults). Drawn from its
    /// own seeded streams, so the all-zero default leaves the simulation
    /// bit-identical to a build without fault injection.
    pub faults: FaultConfig,
    /// Event-horizon macro-stepping: batch runs of event-free quanta
    /// through one memory-engine solve. Pure execution strategy — every
    /// metric and series is byte-identical either way; turn it off to
    /// bisect a suspected batching bug against the reference per-quantum
    /// stepper.
    pub macro_step: bool,
    /// Which memory-engine implementation resolves execution (default the
    /// exact incremental engine; `Reference` pins the frozen pre-rewrite
    /// solver for byte-diffs, `Approx` trades bounded model error for
    /// speed on noisy per-quantum runs).
    pub engine: EngineSelect,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            intensity_noise_sd: 0.18,
            intensity_noise_corr: SimDuration::from_millis(250),
            attribution_noise: 1.5,
            quantum: SimDuration::from_millis(1),
            timeslice: SimDuration::from_millis(30),
            credit_tick: SimDuration::from_millis(10),
            accounting: SimDuration::from_millis(30),
            sample_period: SimDuration::from_secs(1),
            cold_quanta: 4,
            cold_quanta_max: 40,
            cold_miss_boost: 3.0,
            context_switch_us: 2.0,
            migration_extra_us: 6.0,
            overhead: OverheadModel::default(),
            seed: 42,
            faults: FaultConfig::none(),
            macro_step: true,
            engine: EngineSelect::Exact,
        }
    }
}

/// Builder for [`Machine`].
pub struct MachineBuilder {
    topo: Topology,
    cfg: MachineConfig,
    policy: Option<Box<dyn SchedPolicy>>,
    vm_configs: Vec<VmConfig>,
}

impl MachineBuilder {
    pub fn new(topo: Topology) -> Self {
        MachineBuilder {
            topo,
            cfg: MachineConfig::default(),
            policy: None,
            vm_configs: Vec::new(),
        }
    }

    pub fn config(mut self, cfg: MachineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Override just the sampling period (common across experiments).
    pub fn sample_period(mut self, p: SimDuration) -> Self {
        self.cfg.sample_period = p;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Enable fault injection (validated at [`MachineBuilder::build`]).
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Enable or disable event-horizon macro-stepping (default on).
    pub fn macro_step(mut self, on: bool) -> Self {
        self.cfg.macro_step = on;
        self
    }

    /// Select the memory-engine implementation (default exact).
    pub fn engine(mut self, select: EngineSelect) -> Self {
        self.cfg.engine = select;
        self
    }

    pub fn policy(mut self, policy: Box<dyn SchedPolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// VMs are created in call order, which determines memory placement
    /// (earlier VMs grab the freest nodes) and initial VCPU placement.
    pub fn add_vm(mut self, cfg: VmConfig) -> Self {
        self.vm_configs.push(cfg);
        self
    }

    pub fn build(self) -> Result<Machine, SimError> {
        let policy = self
            .policy
            .ok_or_else(|| SimError::InvalidConfig("no scheduling policy set".into()))?;
        if self.vm_configs.is_empty() {
            return Err(SimError::InvalidConfig("no VMs configured".into()));
        }
        if self.cfg.quantum.is_zero() {
            return Err(SimError::InvalidConfig("zero quantum".into()));
        }
        if self.cfg.sample_period.is_zero() {
            return Err(SimError::InvalidConfig("zero sampling period".into()));
        }
        if self.topo.num_nodes() == 0 {
            return Err(SimError::InvalidConfig("topology has no nodes".into()));
        }
        // Wake placement and node-targeted enqueue both rely on every
        // node owning at least one PCPU.
        for n in 0..self.topo.num_nodes() {
            if self.topo.pcpus_of_node(NodeId::from_index(n)).is_empty() {
                return Err(SimError::InvalidConfig(format!(
                    "node {n} has no PCPUs"
                )));
            }
        }
        self.cfg.faults.validate()?;
        Machine::create(self.topo, self.cfg, policy, &self.vm_configs)
    }
}

/// The simulated machine.
pub struct Machine {
    topo: Topology,
    cfg: MachineConfig,
    policy: Box<dyn SchedPolicy>,
    engine: AnyEngine,
    sampler: PeriodSampler,
    overhead: OverheadTracker,
    clock: Clock,
    rng: SimRng,
    vms: Vec<VmRuntime>,
    vcpus: Vec<VcpuState>,
    pcpus: Vec<PcpuState>,
    /// Last sampled LLC access pressure per VCPU (Eq. 2 with α = 1000).
    pressure: Vec<f64>,
    metrics: RunMetrics,
    trace: crate::trace::TraceLog,
    timeslice_quanta: u32,
    /// Summed VM weight of all non-blocked VCPUs, maintained at the three
    /// blocked-flag transition sites so credit accounting need not rescan
    /// every VCPU each quantum.
    active_weight: u64,
    /// Pending guest-timer firings, keyed `(next_wake, vcpu)`: every
    /// blocked idler has exactly one entry, so each quantum's wake check
    /// is a heap peek instead of a full VCPU scan.
    idler_wakes: BinaryHeap<Reverse<(SimTime, u32)>>,
    /// The one profile every timer-idler burst executes.
    idler_profile: mem_model::AccessProfile,
    /// Reusable per-quantum intensity-noise buffer (one factor per VCPU).
    noise_scratch: Vec<f64>,
    /// Fault schedule source (draws nothing when faults are disabled).
    injector: FaultInjector,
    /// Cached `cfg.faults.enabled()`: gates every per-quantum fault hook so
    /// the fault-free hot path stays branch-cheap and draw-free.
    faults_enabled: bool,
    /// Cached "macro-stepping could ever batch here" check: macro-step on,
    /// no faults, no intensity noise. When false (every noisy or faulty
    /// run), `step_quanta` skips `macro_horizon` entirely, so enabling
    /// macro-stepping costs the noisy path nothing.
    macro_candidate: bool,
    /// Per-VCPU validity of the latest period's samples (1 clean, 0 lost),
    /// reported to the policy through [`PeriodFeedback`].
    sample_validity: Vec<f64>,
    /// Migrations that failed this period, reported at the next feedback.
    failed_migrations: Vec<(VcpuId, NodeId)>,
    /// Injected-delay migrations waiting for their due time.
    delayed_moves: Vec<(SimTime, VcpuId, NodeId)>,
    /// Reused buffer for landing due delayed migrations in arrival order.
    delayed_scratch: Vec<(SimTime, VcpuId, NodeId)>,
    /// Per-VM `(next_fire_us, stride_us)` shuffle schedule; stride 0 means
    /// the VM never shuffles. The per-quantum modulo test fires exactly at
    /// grid points that are multiples of the period, i.e. every
    /// lcm(period, quantum), so a compare-and-advance replaces it.
    shuffle_next: Vec<(u64, u64)>,
    /// Per-node throttle flags for the current sampling period.
    node_throttled: Vec<bool>,
    /// Deterministic metric registry, snapshotted at every sampling period
    /// and exported into [`RunMetrics::telemetry`] when enabled.
    telemetry: Registry,
    /// Ids of the metrics registered in [`Machine::register_telemetry`].
    tids: TelemetryIds,
    /// Whether the policy reported fallback mode active at the previous
    /// period, for edge-detecting degrade/recover transitions.
    was_fallback: bool,
    /// Decision-provenance log: candidate sets, score components, and the
    /// rule behind every placement/steal/partition/degrade decision.
    /// Disabled by default (one branch per site).
    provenance: crate::provenance::ProvenanceLog,
    /// Macro-stepping perf statistics (batch histogram, horizon-close
    /// reasons). `None` (the default) costs one null-check per quantum
    /// and leaves every output byte unchanged; see [`crate::perf`].
    perf: Option<Box<crate::perf::MachinePerf>>,
}

/// Handles to the machine's registered telemetry metrics. The macro-batch
/// count lives here as a *diagnostic* gauge: always maintained, excluded
/// from the export, so macro and reference runs stay byte-identical.
struct TelemetryIds {
    c_steals_local: CounterId,
    c_steals_remote: CounterId,
    c_partition_moves: CounterId,
    c_credit_boosts: CounterId,
    c_idler_wakes: CounterId,
    c_faults: CounterId,
    c_degrade_enter: CounterId,
    c_degrade_recover: CounterId,
    c_rpti_friendly: CounterId,
    c_rpti_fitting: CounterId,
    c_rpti_thrashing: CounterId,
    g_active_vcpus: GaugeId,
    g_macro_batches: GaugeId,
    h_steal_latency: HistogramId,
    h_migration_distance: HistogramId,
    h_runq_depth: HistogramId,
    h_rpti: HistogramId,
}

impl Machine {
    fn create(
        topo: Topology,
        cfg: MachineConfig,
        policy: Box<dyn SchedPolicy>,
        vm_configs: &[VmConfig],
    ) -> Result<Self, SimError> {
        topo.validate()?;
        let mut free = NodeFree::new(
            topo.nodes()
                .map(|n| topo.node_config(n).mem_bytes)
                .collect(),
        );
        let mut vms = Vec::with_capacity(vm_configs.len());
        let mut vcpus: Vec<VcpuState> = Vec::new();
        let mut pcpus: Vec<PcpuState> = topo
            .pcpus()
            .map(|p| PcpuState::new(p, topo.node_of_pcpu(p)))
            .collect();

        for (i, vm_cfg) in vm_configs.iter().enumerate() {
            let vm_id = VmId::new(i as u16);
            let vm = VmRuntime::create(vm_id, vm_cfg, &mut free, vcpus.len() as u32)?;
            let workers = vm.num_workers();
            for (vm_idx, &vid) in vm.vcpu_ids.iter().enumerate() {
                let kind = if vm_idx < workers {
                    VcpuKind::Worker
                } else {
                    VcpuKind::TimerIdler
                };
                let mut vcpu = VcpuState::new(vid, vm_id, vm_idx, kind);
                if let Some(node) = vm_cfg.pin_node {
                    vcpu.admin_pinned = true;
                    vcpu.assigned_node = Some(node);
                }
                match kind {
                    VcpuKind::Worker => {
                        // Initial placement: least-loaded allowed PCPU,
                        // ties to the lowest id — Xen's pick for a fresh
                        // VCPU, restricted by an administrative pin.
                        let target = pcpus
                            .iter()
                            .filter(|p| vcpu.allowed_on(topo.node_of_pcpu(p.id)))
                            .min_by_key(|p| (p.workload(), p.id.index()))
                            .ok_or_else(|| {
                                SimError::InvalidConfig(format!(
                                    "VM '{}' pins to a node with no PCPUs",
                                    vm_cfg.name
                                ))
                            })?
                            .id;
                        vcpu.queued_on = Some(target);
                        pcpus[target.index()].queue.push(vid);
                    }
                    VcpuKind::TimerIdler => {
                        // Idlers start blocked; stagger their guest timers
                        // so wakeups do not arrive in lockstep.
                        let period = vm.idler_period.expect("idlers imply a period");
                        vcpu.blocked = true;
                        vcpu.next_wake = SimTime::ZERO
                            + cfg.quantum * (vid.raw() as u64 % (period / cfg.quantum).max(1))
                            + cfg.quantum;
                        vcpus.push(vcpu);
                        continue;
                    }
                }
                vcpus.push(vcpu);
            }
            vms.push(vm);
        }

        let timeslice_quanta = (cfg.timeslice / cfg.quantum).max(1) as u32;
        let num_vcpus = vcpus.len();
        let num_nodes = topo.num_nodes();
        let metrics = RunMetrics::new(vms.len());
        let active_weight = vcpus
            .iter()
            .filter(|v| !v.blocked)
            .map(|v| vms[v.vm.index()].weight as u64)
            .sum();
        let idler_wakes = vcpus
            .iter()
            .filter(|v| v.blocked)
            .map(|v| Reverse((v.next_wake, v.id.raw())))
            .collect();
        let mut telemetry = Registry::new();
        let tids = Machine::register_telemetry(&mut telemetry);
        let q_us = cfg.quantum.as_micros();
        let shuffle_next = vms
            .iter()
            .map(|vm| match vm.shuffle_period {
                Some(p) => {
                    let stride = lcm(p.as_micros(), q_us);
                    (stride, stride)
                }
                None => (u64::MAX, 0),
            })
            .collect();
        Ok(Machine {
            shuffle_next,
            active_weight,
            idler_wakes,
            idler_profile: mem_model::AccessProfile::cpu_only(1.0, num_nodes),
            noise_scratch: Vec::with_capacity(num_vcpus),
            injector: FaultInjector::new(cfg.faults.clone())?,
            faults_enabled: cfg.faults.enabled(),
            macro_candidate: cfg.macro_step
                && !cfg.faults.enabled()
                && cfg.intensity_noise_sd == 0.0,
            sample_validity: vec![1.0; num_vcpus],
            failed_migrations: Vec::new(),
            delayed_moves: Vec::new(),
            delayed_scratch: Vec::new(),
            node_throttled: vec![false; num_nodes],
            telemetry,
            tids,
            was_fallback: false,
            provenance: crate::provenance::ProvenanceLog::disabled(),
            perf: None,
            engine: AnyEngine::new(&topo, cfg.engine),
            sampler: PeriodSampler::new(num_vcpus, num_nodes, cfg.sample_period),
            overhead: OverheadTracker::new(cfg.overhead),
            clock: Clock::new(cfg.quantum),
            rng: SimRng::seed_from(cfg.seed),
            pressure: vec![0.0; num_vcpus],
            metrics,
            trace: crate::trace::TraceLog::disabled(),
            timeslice_quanta,
            topo,
            cfg,
            policy,
            vms,
            vcpus,
            pcpus,
        })
    }

    /// Register the machine's metric set. Registration order is the export
    /// order, so changing it changes the `telemetry` JSON block.
    fn register_telemetry(reg: &mut Registry) -> TelemetryIds {
        TelemetryIds {
            c_steals_local: reg.counter("steals_local"),
            c_steals_remote: reg.counter("steals_remote"),
            c_partition_moves: reg.counter("partition_moves"),
            c_credit_boosts: reg.counter("credit_boosts"),
            c_idler_wakes: reg.counter("idler_wakes"),
            c_faults: reg.counter("faults_injected"),
            c_degrade_enter: reg.counter("degrade_enter"),
            c_degrade_recover: reg.counter("degrade_recover"),
            c_rpti_friendly: reg.counter("rpti_friendly"),
            c_rpti_fitting: reg.counter("rpti_fitting"),
            c_rpti_thrashing: reg.counter("rpti_thrashing"),
            g_active_vcpus: reg.gauge("active_vcpus"),
            g_macro_batches: reg.diagnostic_gauge("macro_batches"),
            h_steal_latency: reg.histogram("steal_latency", 0.0, 50.0, 10),
            h_migration_distance: reg.histogram("migration_distance", 0.0, 50.0, 10),
            h_runq_depth: reg.histogram("runqueue_depth", 0.0, 16.0, 16),
            h_rpti: reg.histogram("rpti", 0.0, 40.0, 20),
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    pub fn num_vcpus(&self) -> usize {
        self.vcpus.len()
    }

    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// How many multi-quantum batches the macro-stepper has taken so far
    /// (0 when disabled, or when the machine never went quiescent). Backed
    /// by the diagnostic `macro_batches` telemetry gauge, which is always
    /// maintained but never exported.
    pub fn macro_batches(&self) -> u64 {
        self.telemetry.gauge_value(self.tids.g_macro_batches) as u64
    }

    /// Enable xentrace-style event tracing, keeping the most recent
    /// `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = crate::trace::TraceLog::with_capacity(capacity);
    }

    /// The trace log (empty unless [`Machine::enable_trace`] was called).
    pub fn trace(&self) -> &crate::trace::TraceLog {
        &self.trace
    }

    /// Enable the metric registry: counters/histograms start recording,
    /// period snapshots accumulate, and [`RunMetrics`] gains a `telemetry`
    /// JSON block at the next [`Machine::run`].
    pub fn enable_telemetry(&mut self) {
        self.telemetry.set_enabled(true);
    }

    /// The metric registry (inert unless [`Machine::enable_telemetry`] was
    /// called).
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Human label for each VCPU (`"vm0/v2"` for workers, `"vm0/idler3"`
    /// for timer idlers), indexed by VCPU index; used by the trace
    /// exporters.
    pub fn vcpu_labels(&self) -> Vec<String> {
        self.vcpus
            .iter()
            .map(|v| {
                let vm = &self.vms[v.vm.index()];
                match v.kind {
                    VcpuKind::Worker => format!("{}/v{}", vm.name, v.vm_idx),
                    VcpuKind::TimerIdler => format!("{}/idler{}", vm.name, v.vm_idx),
                }
            })
            .collect()
    }

    /// Serialize the trace as JSON Lines (one event object per line).
    pub fn trace_jsonl(&self) -> String {
        crate::export::to_jsonl(&self.trace)
    }

    /// Serialize the trace as a Chrome Trace Event file with per-PCPU
    /// tracks, openable in Perfetto or `chrome://tracing`.
    pub fn trace_chrome(&self) -> String {
        let labels = self.vcpu_labels();
        crate::export::to_chrome(
            &self.trace,
            &crate::export::ChromeContext {
                num_pcpus: self.pcpus.len(),
                vcpu_labels: &labels,
                end_us: self.clock.now().as_micros(),
            },
        )
    }

    /// Enable decision-provenance recording, keeping the most recent
    /// `capacity` records, and switch the policy into explain mode so it
    /// decomposes its choices (rule names, partition notes). Neither side
    /// changes any decision: runs with provenance on are byte-identical in
    /// every metric, CSV, and trace output to runs with it off.
    pub fn enable_provenance(&mut self, capacity: usize) {
        self.provenance = crate::provenance::ProvenanceLog::with_capacity(capacity);
        self.policy.set_explain(true);
    }

    /// The provenance log (empty unless [`Machine::enable_provenance`] was
    /// called).
    pub fn provenance(&self) -> &crate::provenance::ProvenanceLog {
        &self.provenance
    }

    /// Serialize the provenance log as JSON Lines (one decision per line).
    pub fn provenance_jsonl(&self) -> String {
        crate::provenance::to_jsonl(&self.provenance)
    }

    /// Enable perf introspection: macro-step batch statistics plus the
    /// engine's work-avoidance counters, exported into
    /// [`RunMetrics::perf`] at the end of [`Machine::run`]. Collection is
    /// observational only — enabling it changes no scheduling decision
    /// and no other output byte.
    pub fn enable_perf(&mut self) {
        if self.perf.is_none() {
            self.perf = Some(Box::default());
        }
    }

    /// Whether [`Machine::enable_perf`] was called.
    pub fn perf_enabled(&self) -> bool {
        self.perf.is_some()
    }

    /// Deterministic perf snapshot for this machine: the engine's
    /// work-avoidance counters (always maintained) plus the macro-step
    /// statistics gathered since [`Machine::enable_perf`] (zeroed stats
    /// if perf was never enabled).
    pub fn perf_snapshot(&self) -> crate::perf::PerfSnapshot {
        crate::perf::PerfSnapshot {
            hosts: 1,
            engine: self.engine.perf(),
            machine: self.perf.as_deref().cloned().unwrap_or_default(),
        }
    }

    /// Replace the scheduling policy at runtime (used by experiments that
    /// warm the system up under the stock Credit scheduler before
    /// switching to the policy under test, as one would on a live host).
    pub fn set_policy(&mut self, policy: Box<dyn SchedPolicy>) {
        self.policy = policy;
        if self.provenance.is_enabled() {
            self.policy.set_explain(true);
        }
    }

    /// Zero all measurement state (but not scheduler/memory state): starts
    /// a fresh measurement window on a warm system.
    pub fn reset_metrics(&mut self) {
        self.metrics = RunMetrics::new(self.vms.len());
        self.overhead = OverheadTracker::new(self.cfg.overhead);
        self.telemetry.reset();
        for v in &mut self.vcpus {
            v.run_quanta = 0;
        }
        for i in 0..self.vcpus.len() {
            // Close the PMU windows so whole-run totals restart cleanly.
            let _ = self.sampler.totals(i);
        }
        let num_vcpus = self.vcpus.len();
        let num_nodes = self.topo.num_nodes();
        self.sampler = PeriodSampler::new(num_vcpus, num_nodes, self.cfg.sample_period);
    }

    pub fn vm_id_by_name(&self, name: &str) -> Option<VmId> {
        self.vms.iter().find(|v| v.name == name).map(|v| v.id)
    }

    /// Whole-run PMU totals for one VCPU.
    pub fn vcpu_totals(&self, vcpu: VcpuId) -> PmuSample {
        self.sampler.totals(vcpu.index())
    }

    /// Current node of a VCPU (running or queued).
    pub fn vcpu_node(&self, vcpu: VcpuId) -> Option<NodeId> {
        let v = &self.vcpus[vcpu.index()];
        v.running_on
            .or(v.queued_on)
            .map(|p| self.topo.node_of_pcpu(p))
    }

    /// Run for `duration` of simulated time.
    pub fn run(&mut self, duration: SimDuration) -> &RunMetrics {
        let quanta = duration / self.cfg.quantum;
        let mut done = 0u64;
        while done < quanta {
            done += self.step_quanta(quanta - done);
        }
        self.metrics.elapsed += self.cfg.quantum * quanta;
        self.metrics.overhead_us = self.overhead.overhead_us();
        self.metrics.busy_us = self.overhead.busy_us();
        self.metrics.telemetry = self.telemetry.export();
        if self.perf.is_some() {
            self.metrics.perf = Some(self.perf_snapshot().to_json());
        }
        &self.metrics
    }

    /// Advance one quantum, then — when the machine is quiescent — extend
    /// the step across every following event-free quantum up to the event
    /// horizon (capped at `max_quanta`), applying one memory-engine solve
    /// in closed form. Returns the number of quanta consumed (≥ 1).
    fn step_quanta(&mut self, max_quanta: u64) -> u64 {
        self.clock.step();
        let now = self.clock.now();

        if self.faults_enabled {
            self.fault_tick(now);
        }

        // Credit ticks (staggered per PCPU, as Xen offsets per-CPU timers
        // to avoid thundering herd) and per-VCPU staggered accounting.
        self.credit_ticks(now);
        self.credit_accounting(now);
        self.shuffle_tick(now);
        self.wake_idlers(now);
        self.schedule_all();

        let batch = if self.macro_candidate && max_quanta > 1 {
            let (batch, why) = self.macro_horizon(now, max_quanta);
            if let Some(p) = self.perf.as_deref_mut() {
                p.consult(batch, why);
            }
            batch
        } else {
            if let Some(p) = self.perf.as_deref_mut() {
                p.plain_step();
            }
            1
        };
        self.execute_quanta(now, batch);
        self.debit_running(batch);
        if batch > 1 {
            self.telemetry.add_gauge(self.tids.g_macro_batches, 1.0);
            // The batch's later quanta each take the schedule keep path,
            // which burns one timeslice quantum; the horizon guarantees no
            // slice expires inside the batch.
            let extra = (batch - 1) as u32;
            for p in 0..self.pcpus.len() {
                if let Some(v) = self.pcpus[p].current {
                    self.vcpus[v.index()].timeslice_left -= extra;
                }
            }
            self.clock.step_n(batch - 1);
        }

        let now = self.clock.now();
        if let Some(samples) = self.sampler.maybe_sample(now) {
            self.handle_sample(now, samples);
        }
        batch
    }

    /// Guest thread shuffles, via the precomputed per-VM fire times: the
    /// common quantum compares one integer per VM instead of taking a
    /// modulo per VM.
    fn shuffle_tick(&mut self, now: SimTime) {
        let now_us = now.as_micros();
        for (vm, slot) in self.vms.iter_mut().zip(self.shuffle_next.iter_mut()) {
            if now_us == slot.0 {
                vm.shuffle();
                slot.0 += slot.1;
            }
        }
    }

    /// How many consecutive quanta, starting with the one just scheduled,
    /// can be executed as one batch without changing any observable result.
    ///
    /// Returns 1 (plain stepping) unless the machine is *quiescent*: no
    /// fault injection, no per-quantum intensity noise, and every PCPU
    /// running exactly one warm, correctly-placed worker over an empty
    /// queue with no pending overhead charge. In that state the schedule
    /// decision is a fixed point and each further quantum differs from the
    /// last only through timer events, so the batch may extend to the
    /// *event horizon*: the earliest of the next timeslice expiry, workload
    /// phase change, guest-timer wake, VM shuffle, effectful credit tick,
    /// credit-accounting grant, and sampling-period boundary. Events that
    /// fire *before* a quantum executes bound the batch to the quanta
    /// strictly before them; the sampler fires *after* its quantum, so a
    /// boundary landing exactly on the batch's last quantum is fine.
    ///
    /// Faults pin the horizon to 1 because `fault_tick` consumes seeded RNG
    /// draws every quantum (and transient stalls / delayed migrations can
    /// land anywhere); batching would desynchronize the fault streams that
    /// PR 2 pinned byte-identical.
    ///
    /// Also returns which event closed the horizon (bounds the batch);
    /// ties go to the earlier bound in scan order, so the attribution is
    /// deterministic. The reason feeds perf introspection only — the
    /// returned length is what it always was.
    fn macro_horizon(&self, now: SimTime, max_quanta: u64) -> (u64, crate::perf::HorizonEvent) {
        use crate::perf::HorizonEvent as Ev;
        if self.faults_enabled || self.cfg.intensity_noise_sd > 0.0 {
            return (1, Ev::NonQuiescent);
        }
        for p in &self.pcpus {
            if !p.is_quiescent() {
                return (1, Ev::NonQuiescent);
            }
            let v = &self.vcpus[p.current.expect("quiescent implies current").index()];
            if v.kind != VcpuKind::Worker || v.cold_quanta > 0 || !v.allowed_on(p.node) {
                return (1, Ev::NonQuiescent);
            }
        }

        let q = self.cfg.quantum.as_micros();
        let now_us = now.as_micros();
        let tick = self.cfg.credit_tick.as_micros();
        let window = self.cfg.accounting.as_micros();
        let ticks_per = tick / q;
        let slots = (window / q).max(1);
        // The residue arithmetic below mirrors the fast paths in
        // `credit_ticks` / `credit_accounting`; outside their preconditions
        // (quantum divides tick and window, first period passed) fall back
        // to per-quantum stepping.
        if ticks_per < 1
            || tick != ticks_per * q
            || now_us < tick
            || window != slots * q
            || now_us < window
        {
            return (1, Ev::NonQuiescent);
        }

        let mut n = max_quanta;
        let mut why = Ev::MaxQuanta;
        // Apply a candidate bound: the first event to reach a given
        // minimum keeps the attribution (strict `<`).
        fn bound(n: &mut u64, why: &mut Ev, k: u64, ev: Ev) {
            if k < *n {
                *n = k;
                *why = ev;
            }
        }
        // An event at absolute time `e` that is processed before its
        // quantum executes allows batching only the quanta strictly
        // before it.
        let pre_quanta = |event_us: u64| event_us.saturating_sub(now_us).div_ceil(q).max(1);

        for p in &self.pcpus {
            let v = &self.vcpus[p.current.expect("checked above").index()];
            // Quantum k of the batch keeps the PCPU only while the slice
            // lasts: k ≤ timeslice_left + 1.
            bound(&mut n, &mut why, v.timeslice_left as u64 + 1, Ev::Timeslice);
            let thread = self.vms[v.vm.index()].thread_for_slot(v.vm_idx);
            if let Some(change) = thread.workload.next_phase_change(now) {
                bound(&mut n, &mut why, pre_quanta(change.as_micros()), Ev::PhaseChange);
            }
        }

        if let Some(&Reverse((t, _))) = self.idler_wakes.peek() {
            bound(&mut n, &mut why, pre_quanta(t.as_micros()), Ev::IdlerWake);
        }

        for &(next, stride) in &self.shuffle_next {
            if stride != 0 {
                bound(&mut n, &mut why, pre_quanta(next), Ev::Shuffle);
            }
        }

        // Credit ticks only matter when they charge something: the stock
        // no-overhead tick adds exactly +0.0 and is a bitwise no-op. With
        // every PCPU busy, the next effectful tick is the next quantum
        // whose slot indexes an existing PCPU.
        let runnable: usize = self.pcpus.iter().map(|p| p.workload()).sum();
        if self.policy.uses_pmu() || self.policy.tick_overhead_us(runnable) != 0.0 {
            let base = now_us / q;
            for k in 1..=ticks_per {
                if ((base + k) % ticks_per) < self.pcpus.len() as u64 {
                    bound(&mut n, &mut why, k, Ev::CreditTick);
                    break;
                }
            }
        }

        // Credit accounting: VCPU i's grant lands at quanta ≡ i (mod
        // slots), and every grant is an event (it rewrites priority).
        {
            let base_slot = (now_us / q) % slots;
            for (i, v) in self.vcpus.iter().enumerate() {
                if v.blocked {
                    continue;
                }
                let r = i as u64 % slots;
                let k = (r + slots - base_slot) % slots;
                let k = if k == 0 { slots } else { k };
                bound(&mut n, &mut why, k, Ev::Accounting);
            }
        }

        // Sampling fires after its quantum executes, so a boundary on the
        // batch's final quantum is allowed.
        let d = self.sampler.next_boundary().as_micros().saturating_sub(now_us);
        bound(&mut n, &mut why, d.div_ceil(q) + 1, Ev::Sampler);

        (n.max(1), why)
    }

    /// Per-quantum fault bookkeeping (only called with faults enabled):
    /// advance transient PCPU stalls, draw new ones, and land injected-delay
    /// migrations whose due time has arrived.
    fn fault_tick(&mut self, now: SimTime) {
        for p in 0..self.pcpus.len() {
            if self.pcpus[p].stall_left > 0 {
                self.pcpus[p].stall_left -= 1;
                self.metrics.faults.stalled_quanta += 1;
            } else if let Some(quanta) = self.injector.pcpu_stall() {
                self.pcpus[p].stall_left = quanta;
                self.metrics.faults.pcpu_stalls += 1;
                self.telemetry.inc(self.tids.c_faults, 1);
                if self.trace.is_enabled() {
                    self.trace.record(
                        now,
                        crate::trace::Event::Fault(crate::trace::FaultEvent::PcpuStall {
                            pcpu: PcpuId::from_index(p),
                            quanta: u64::from(quanta),
                        }),
                    );
                }
            }
        }
        if !self.delayed_moves.is_empty() {
            // Split off the due entries in one linear pass (the index-based
            // `Vec::remove` scan this replaces was quadratic in the worst
            // case), landing them in arrival order exactly as the scan did
            // — the order matters because `apply_partition_move` draws from
            // the placement RNG.
            let mut due = std::mem::take(&mut self.delayed_scratch);
            due.clear();
            self.delayed_moves.retain(|&entry| {
                if entry.0 > now {
                    true
                } else {
                    due.push(entry);
                    false
                }
            });
            for &(_, vcpu, node) in &due {
                // The VCPU may have blocked or been pinned since the
                // request; a late migration of either would be wrong.
                let v = &self.vcpus[vcpu.index()];
                if !v.blocked && !v.admin_pinned {
                    self.apply_partition_move(vcpu, node, now);
                }
            }
            self.delayed_scratch = due;
        }
    }

    /// 10 ms credit ticks, offset per PCPU: PCPU `p`'s tick fires at
    /// `p * quantum` past each 10 ms boundary. For PMU-using policies each
    /// tick charges counter-collection cost (the paper updates a VCPU's
    /// runtime information every 10 ms); credit debiting itself is precise
    /// per-quantum (see `debit_running`).
    fn credit_ticks(&mut self, now: SimTime) {
        let tick = self.cfg.credit_tick.as_micros();
        let quantum = self.cfg.quantum.as_micros();
        let now_us = now.as_micros();
        let ticks_per = tick / quantum;
        // PCPU p's tick fires iff p ≡ now/quantum (mod tick/quantum), so
        // when the quantum divides the tick only every (tick/quantum)-th
        // PCPU needs visiting; the runnable count and per-tick lock cost
        // are needed only if one of those PCPUs is actually running
        // something. The scan below reproduces the wrapping-offset check
        // exactly for now ≥ tick; the first tick's worth of quanta keeps
        // the general form.
        if ticks_per >= 1
            && tick == ticks_per * quantum
            && now_us >= tick
            && now_us.is_multiple_of(quantum)
        {
            let slot = ((now_us / quantum) % ticks_per) as usize;
            let mut charge: Option<(bool, f64)> = None;
            let mut p = slot;
            while p < self.pcpus.len() {
                if self.pcpus[p].current.is_some() {
                    let (uses_pmu, lock_cost) = *charge.get_or_insert_with(|| {
                        let runnable: usize = self.pcpus.iter().map(|x| x.workload()).sum();
                        (self.policy.uses_pmu(), self.policy.tick_overhead_us(runnable))
                    });
                    if uses_pmu {
                        let cost = self.overhead.charge_sample();
                        self.pcpus[p].pending_overhead_us += cost;
                    }
                    // Policy-specific counter-update serialization (BRM's
                    // global lock). Not part of the Table III overhead
                    // budget: it is the comparison scheduler's own defect,
                    // not vProbe monitoring cost.
                    self.pcpus[p].pending_overhead_us += lock_cost;
                }
                p += ticks_per as usize;
            }
            return;
        }
        let uses_pmu = self.policy.uses_pmu();
        let runnable: usize = self.pcpus.iter().map(|p| p.workload()).sum();
        let lock_cost = self.policy.tick_overhead_us(runnable);
        for p in 0..self.pcpus.len() {
            let offset = (p as u64 * quantum) % tick;
            if !(now_us.wrapping_sub(offset)).is_multiple_of(tick) {
                continue;
            }
            if self.pcpus[p].current.is_some() {
                if uses_pmu {
                    let cost = self.overhead.charge_sample();
                    self.pcpus[p].pending_overhead_us += cost;
                }
                self.pcpus[p].pending_overhead_us += lock_cost;
            }
        }
    }

    /// Precise credit debiting: the running VCPU pays for every quantum it
    /// actually consumed (100 credits per 10 ms of runtime). Xen 4.0's
    /// tick-based debiting let VCPUs running short slices between ticks
    /// escape accounting entirely ("tick evasion"), which lets low-pressure
    /// VCPUs stay UNDER forever and distorts every steal policy that
    /// prefers them; Xen later fixed this the same way.
    fn debit_running(&mut self, quanta: u64) {
        let per_quantum =
            (100 * self.cfg.quantum.as_micros() / self.cfg.credit_tick.as_micros()).max(1) as i32;
        for p in 0..self.pcpus.len() {
            // A stalled PCPU executed nothing this quantum, so its pinned
            // VCPU owes nothing (stalls never overlap a macro batch).
            if self.pcpus[p].stall_left > 0 {
                continue;
            }
            if let Some(v) = self.pcpus[p].current {
                self.vcpus[v.index()].debit_n(per_quantum, quanta);
            }
        }
    }

    /// 30 ms accounting: split the machine's credit grant evenly across
    /// active (non-blocked) VCPUs (all VMs share equal weight in the
    /// paper's setups).
    ///
    /// Each VCPU's grant lands at its own offset inside the accounting
    /// window rather than on one global edge: a fully synchronous grant
    /// makes every waiting VCPU cross the UNDER/OVER boundary in phase, so
    /// balance attempts (which fire when a queue has gone all-OVER) would
    /// always observe every other queue all-OVER too and never find steal
    /// candidates. Real systems get this phase diversity for free from
    /// wakeups and I/O; the simulation makes it explicit.
    ///
    /// Credits clamp at Xen's bounds: a VCPU waiting too long forfeits
    /// further entitlement (as in Xen, where capped VCPUs are demoted to
    /// inactive accounting), and a VCPU cannot dig an unbounded deficit.
    fn credit_accounting(&mut self, now: SimTime) {
        // `active_weight` is maintained at every blocked-flag transition;
        // weights are validated nonzero, so zero weight means zero active
        // VCPUs — the scan-and-sum the original code did every quantum.
        if self.active_weight == 0 {
            return;
        }
        let total = 300 * self.pcpus.len() as i32;
        // Grants are proportional to each VM's weight (Xen's knob; the
        // paper's setups use the default 256 everywhere, making this the
        // equal split).
        let total_weight = self.active_weight;
        let window = self.cfg.accounting.as_micros();
        let quantum = self.cfg.quantum.as_micros();
        let slots = (window / quantum).max(1);
        let now_us = now.as_micros();
        // VCPU i's grant lands iff i ≡ now/quantum (mod slots), so when
        // the quantum divides the window only every slots-th VCPU needs
        // visiting. Exact for now ≥ window (no wrapping offset); the first
        // window keeps the general form.
        if window == slots * quantum && now_us >= window && now_us.is_multiple_of(quantum) {
            let slot = ((now_us / quantum) % slots) as usize;
            let mut i = slot;
            while i < self.vcpus.len() {
                if !self.vcpus[i].blocked {
                    let w = self.vms[self.vcpus[i].vm.index()].weight as u64;
                    let grant = (total as i64 * w as i64 / total_weight.max(1) as i64) as i32;
                    self.vcpus[i].adjust_credits(grant);
                }
                i += slots as usize;
            }
            return;
        }
        for i in 0..self.vcpus.len() {
            if self.vcpus[i].blocked {
                continue;
            }
            let offset = (i as u64 % slots) * quantum;
            if (now_us.wrapping_sub(offset)).is_multiple_of(window) {
                let w = self.vms[self.vcpus[i].vm.index()].weight as u64;
                let grant = (total as i64 * w as i64 / total_weight.max(1) as i64) as i32;
                self.vcpus[i].adjust_credits(grant);
            }
        }
    }

    /// Wake any timer idlers whose guest timer has fired. Wake placement is
    /// Xen's NUMA-oblivious `csched_cpu_pick`: the first idle PCPU in id
    /// order, else the least-loaded one — which concentrates wakeups (and
    /// the preemption they cause) on low-numbered PCPUs.
    fn wake_idlers(&mut self, now: SimTime) {
        // Every blocked idler has exactly one `idler_wakes` entry, so the
        // common no-wakeup quantum is a single heap peek.
        let mut fired: Vec<usize> = Vec::new();
        while let Some(&Reverse((t, i))) = self.idler_wakes.peek() {
            if t > now {
                break;
            }
            self.idler_wakes.pop();
            fired.push(i as usize);
        }
        // Wake placement sees the queues earlier wakeups already touched,
        // so process in VCPU-index order exactly as the full scan did.
        fired.sort_unstable();
        for i in fired {
            debug_assert!(self.vcpus[i].blocked && self.vcpus[i].next_wake <= now);
            let target = self
                .pcpus
                .iter()
                .filter(|p| self.vcpus[i].allowed_on(p.node))
                .min_by_key(|p| (!p.is_idle(), p.workload(), p.id.index()))
                .map(|p| p.id)
                .expect("machine has PCPUs");
            let v = &mut self.vcpus[i];
            v.blocked = false;
            v.burst_left = 1;
            v.priority = v.wake_priority();
            v.queued_on = Some(target);
            let vid = v.id;
            let boosted = v.priority == Priority::Boost;
            self.active_weight += self.vms[v.vm.index()].weight as u64;
            self.pcpus[target.index()].queue.push(vid);
            self.telemetry.inc(self.tids.c_idler_wakes, 1);
            if boosted {
                self.telemetry.inc(self.tids.c_credit_boosts, 1);
            }
            if self.trace.is_enabled() {
                self.trace
                    .record(now, crate::trace::Event::IdlerWake { vcpu: vid, pcpu: target });
                if boosted {
                    self.trace
                        .record(now, crate::trace::Event::CreditBoost { vcpu: vid, pcpu: target });
                }
            }
            if self.provenance.is_enabled() {
                let num_candidates = self
                    .pcpus
                    .iter()
                    .filter(|p| self.vcpus[i].allowed_on(p.node))
                    .count();
                self.provenance.record(
                    now,
                    "first-idle-least-loaded",
                    crate::provenance::Decision::WakePlacement {
                        vcpu: vid,
                        chosen: target,
                        num_candidates,
                    },
                );
            }
        }
    }

    fn schedule_all(&mut self) {
        for p in 0..self.pcpus.len() {
            self.schedule_pcpu(PcpuId::from_index(p));
        }
        // Idle-with-queued-work signal for load-balance quality.
        let any_idle = self.pcpus.iter().any(|p| p.current.is_none());
        let any_queued = self.pcpus.iter().any(|p| !p.queue.is_empty());
        if any_idle && any_queued {
            self.metrics.idle_with_work_quanta += 1;
        }
    }

    fn schedule_pcpu(&mut self, pid: PcpuId) {
        // A transiently stalled PCPU (injected fault) makes no scheduling
        // decisions: whatever it holds stays pinned until the stall ends.
        if self.pcpus[pid.index()].stall_left > 0 {
            return;
        }
        let node = self.pcpus[pid.index()].node;
        // Decide whether the current VCPU keeps the PCPU.
        if let Some(cur) = self.pcpus[pid.index()].current {
            // A timer idler whose burst is spent blocks until its next
            // guest-timer firing.
            if self.vcpus[cur.index()].kind == VcpuKind::TimerIdler
                && self.vcpus[cur.index()].burst_left == 0
            {
                self.pcpus[pid.index()].current = None;
                let vm = &self.vms[self.vcpus[cur.index()].vm.index()];
                let period = vm.idler_period.expect("idler implies period");
                let weight = vm.weight as u64;
                let v = &mut self.vcpus[cur.index()];
                v.running_on = None;
                v.blocked = true;
                v.next_wake = self.clock.now() + period;
                self.active_weight -= weight;
                self.idler_wakes.push(Reverse((v.next_wake, cur.raw())));
                if self.trace.is_enabled() {
                    self.trace
                        .record(self.clock.now(), crate::trace::Event::SwitchOut { vcpu: cur, pcpu: pid });
                }
            } else {
                let vcpus = &self.vcpus;
                let v = &vcpus[cur.index()];
                let preempted = self.pcpus[pid.index()]
                    .queue
                    .head_priority(|x| vcpus[x.index()].priority)
                    .is_some_and(|h| h < v.priority);
                let keep = v.timeslice_left > 0 && v.allowed_on(node) && !preempted;
                if keep {
                    self.vcpus[cur.index()].timeslice_left -= 1;
                    return;
                }
                // Deschedule.
                self.pcpus[pid.index()].current = None;
                if self.trace.is_enabled() {
                    self.trace
                        .record(self.clock.now(), crate::trace::Event::SwitchOut { vcpu: cur, pcpu: pid });
                }
                let vstate = &mut self.vcpus[cur.index()];
                vstate.running_on = None;
                if vstate.allowed_on(node) {
                    vstate.queued_on = Some(pid);
                    self.pcpus[pid.index()].queue.push(cur);
                } else {
                    let target = vstate.assigned_node.expect("not allowed implies assignment");
                    self.enqueue_on_node(cur, target);
                }
            }
        }

        // Pick next: prefer own BOOST/UNDER work; steal when the best the
        // queue offers is OVER work or nothing (Xen's balance trigger).
        let head = {
            let vcpus = &self.vcpus;
            self.pcpus[pid.index()]
                .queue
                .head_priority(|x| vcpus[x.index()].priority)
        };
        if head.is_none() || head == Some(Priority::Over) {
            let min_prio = if head.is_some() {
                Priority::Under // have OVER work; only better work is worth a steal
            } else {
                Priority::Over // idle; take anything
            };
            let would_idle = head.is_none();
            if let Some((victim, vcpu)) = self.try_steal(pid, min_prio, would_idle) {
                // Injected fault: the balance operation loses the race for
                // the victim's queue lock and gives up (Xen retries at the
                // next balance trigger, and so do we).
                if self.faults_enabled && self.injector.steal_failed() {
                    self.metrics.faults.steals_failed += 1;
                    self.telemetry.inc(self.tids.c_faults, 1);
                    if self.trace.is_enabled() {
                        self.trace.record(
                            self.clock.now(),
                            crate::trace::Event::Fault(crate::trace::FaultEvent::StealFailed {
                                thief: pid,
                            }),
                        );
                    }
                } else {
                    self.perform_steal(pid, victim, vcpu, head.is_none());
                    return;
                }
            }
        }
        let popped = {
            let vcpus = &self.vcpus;
            self.pcpus[pid.index()]
                .queue
                .pop_best(|x| vcpus[x.index()].priority)
        };
        if let Some((vcpu, _prio)) = popped {
            self.vcpus[vcpu.index()].queued_on = None;
            self.switch_in(pid, vcpu);
        }
    }

    fn perform_steal(&mut self, pid: PcpuId, victim: PcpuId, vcpu: VcpuId, was_idle: bool) {
        let removed = self.pcpus[victim.index()].queue.remove(vcpu);
        debug_assert!(removed, "stolen vcpu must be queued on victim");
        self.vcpus[vcpu.index()].queued_on = None;
        self.metrics.steals += 1;
        self.metrics.steals_per_vm[self.vcpus[vcpu.index()].vm.index()] += 1;
        if was_idle {
            self.metrics.idle_steals += 1;
        }
        let victim_node = self.pcpus[victim.index()].node;
        let thief_node = self.pcpus[pid.index()].node;
        let cross = victim_node != thief_node;
        self.telemetry.inc(
            if cross {
                self.tids.c_steals_remote
            } else {
                self.tids.c_steals_local
            },
            1,
        );
        // "Steal latency" as NUMA distance victim → thief: the cost proxy
        // for how far the stolen VCPU's cache state has to travel.
        self.telemetry.observe(
            self.tids.h_steal_latency,
            self.topo.distance().get(victim_node, thief_node) as f64,
        );
        if self.trace.is_enabled() {
            self.trace.record(
                self.clock.now(),
                crate::trace::Event::Steal {
                    thief: pid,
                    victim,
                    vcpu,
                    cross_node: cross,
                },
            );
        }
        self.switch_in(pid, vcpu);
    }

    fn try_steal(
        &mut self,
        thief: PcpuId,
        min_prio: Priority,
        would_idle: bool,
    ) -> Option<(PcpuId, VcpuId)> {
        let thief_node = self.pcpus[thief.index()].node;
        let mut victims: Vec<(PcpuId, usize, Vec<VcpuId>)> =
            Vec::with_capacity(self.pcpus.len() - 1);
        let mut total_runnable = 0usize;
        for p in &self.pcpus {
            total_runnable += p.workload();
            if p.id == thief {
                continue;
            }
            // BOOST VCPUs are excluded: a boosted wakeup is about to be
            // run by its own (tickled) PCPU within microseconds on real
            // Xen; it is only observably queued here because of the 1 ms
            // quantum. Stealing one would waste the balance operation on a
            // VCPU that blocks again almost immediately.
            let candidates: Vec<VcpuId> = p
                .queue
                .iter_at_least(min_prio, |x| self.vcpus[x.index()].priority)
                .filter(|v| {
                    let st = &self.vcpus[v.index()];
                    st.priority != Priority::Boost && st.allowed_on(thief_node)
                })
                .collect();
            victims.push((p.id, p.workload(), candidates));
        }
        self.metrics.steal_attempts += 1;
        if victims.iter().all(|(_, _, c)| c.is_empty()) {
            self.metrics.steal_attempts_empty += 1;
        }
        // Serialization cost of the balance decision (BRM's global lock).
        let cost = self.policy.decision_overhead_us(total_runnable);
        if cost > 0.0 {
            self.pcpus[thief.index()].pending_overhead_us += cost;
        }
        let ctx = StealContext {
            topo: &self.topo,
            idle_pcpu: thief,
            victims: &victims,
            pressure: &self.pressure,
            would_idle,
        };
        if !self.provenance.is_enabled() {
            return self.policy.steal(ctx);
        }
        // Provenance path: identical call (the context is a cheap by-ref
        // copy), then flatten the candidate set with its score components
        // and ask the policy which rule fired. Records only decisions that
        // had at least one candidate; the all-empty case is already
        // counted by `steal_attempts_empty`.
        let choice = self.policy.steal(ctx.clone());
        let thief_node_of = |p: PcpuId| self.topo.node_of_pcpu(p);
        let mut candidates: Vec<crate::provenance::StealCandidate> = Vec::new();
        for (pid, workload, cands) in &victims {
            let node = thief_node_of(*pid);
            let dist = self.topo.distance().get(node, thief_node);
            for &v in cands {
                candidates.push(crate::provenance::StealCandidate {
                    pcpu: *pid,
                    vcpu: v,
                    node,
                    dist,
                    workload: *workload,
                    pressure: self.pressure[v.index()],
                    prio: self.vcpus[v.index()].priority,
                });
            }
        }
        if !candidates.is_empty() {
            let rule = self.policy.explain_steal(&ctx, &choice);
            self.provenance.record(
                self.clock.now(),
                rule,
                crate::provenance::Decision::Steal {
                    thief,
                    thief_node,
                    would_idle,
                    chosen: choice,
                    candidates,
                },
            );
        }
        choice
    }

    fn switch_in(&mut self, pid: PcpuId, vcpu: VcpuId) {
        let node = self.pcpus[pid.index()].node;
        let migrated = self.vcpus[vcpu.index()].last_pcpu != Some(pid);
        let cross_node = self.vcpus[vcpu.index()]
            .last_pcpu
            .is_some_and(|lp| self.topo.node_of_pcpu(lp) != node);
        // Timer-idler wake placements are wakeups, not load-balance
        // migrations: they carry no cache/memory state worth tracking, so
        // only workers count toward the migration metrics.
        let is_worker = self.vcpus[vcpu.index()].kind == VcpuKind::Worker;
        if migrated && is_worker && self.vcpus[vcpu.index()].last_pcpu.is_some() {
            self.metrics.migrations += 1;
            let from = self
                .topo
                .node_of_pcpu(self.vcpus[vcpu.index()].last_pcpu.expect("checked above"));
            self.telemetry.observe(
                self.tids.h_migration_distance,
                self.topo.distance().get(from, node) as f64,
            );
            if cross_node {
                self.metrics.cross_node_migrations += 1;
                // The whole LLC working set must be refetched on the new
                // node: the cold window scales with its size (~1 ms/MB).
                let v = &self.vcpus[vcpu.index()];
                let ws_mb = (self.vms[v.vm.index()]
                    .thread_for_slot(v.vm_idx)
                    .profile_at(self.clock.now())
                    .miss_curve
                    .ws_bytes
                    / (1024 * 1024)) as u32;
                self.vcpus[vcpu.index()].cold_quanta =
                    (self.cfg.cold_quanta + ws_mb).min(self.cfg.cold_quanta_max);
            }
        }
        let mut cost = self.cfg.context_switch_us;
        if migrated {
            cost += self.cfg.migration_extra_us;
        }
        self.pcpus[pid.index()].pending_overhead_us += cost;
        let v = &mut self.vcpus[vcpu.index()];
        v.running_on = Some(pid);
        v.last_pcpu = Some(pid);
        v.timeslice_left = self.timeslice_quanta;
        self.pcpus[pid.index()].current = Some(vcpu);
        if self.trace.is_enabled() {
            self.trace
                .record(self.clock.now(), crate::trace::Event::SwitchIn { vcpu, pcpu: pid });
        }
    }

    /// Queue a VCPU on a uniformly random PCPU of `node`.
    ///
    /// Deliberately *not* least-loaded: a periodic pass that always lands
    /// migrated VCPUs on the emptiest queue would hand them a systematic
    /// queue-jump over VCPUs the pass never touches, distorting CPU shares
    /// in favour of whatever the policy migrates most often. Random
    /// placement is share-neutral; intra-node imbalance is the stealing
    /// path's job.
    fn enqueue_on_node(&mut self, vcpu: VcpuId, node: NodeId) {
        let pcpus = self.topo.pcpus_of_node(node);
        let target = pcpus[self.rng.index(pcpus.len()).expect("every node has PCPUs")];
        if self.provenance.is_enabled() {
            self.provenance.record(
                self.clock.now(),
                "uniform-random",
                crate::provenance::Decision::Placement {
                    vcpu,
                    node,
                    chosen: target,
                    num_candidates: pcpus.len(),
                },
            );
        }
        self.vcpus[vcpu.index()].queued_on = Some(target);
        self.pcpus[target.index()].queue.push(vcpu);
    }

    fn execute_quanta(&mut self, now: SimTime, quanta: u64) {
        self.update_intensity_noise();
        let noise = &self.noise_scratch;
        let mut usages: Vec<QuantumUsage> = Vec::with_capacity(self.pcpus.len());
        for p in &mut self.pcpus {
            // A stalled PCPU makes no forward progress this quantum.
            if p.stall_left > 0 {
                continue;
            }
            let Some(vid) = p.current else { continue };
            self.vcpus[vid.index()].run_quanta += quanta;
            let v = &self.vcpus[vid.index()];
            let vm = &self.vms[v.vm.index()];
            // Workers borrow their thread's phase-cached profile with the
            // burstiness factor applied engine-side; rebuilding the profile
            // here (as the code once did) costs two allocations per running
            // VCPU per quantum.
            let (profile, rpti_scale) = match v.kind {
                VcpuKind::Worker => (
                    vm.thread_for_slot(v.vm_idx).profile_at(now),
                    noise[vid.index()],
                ),
                // A timer-idler burst is kernel housekeeping: brief,
                // CPU-only, no LLC footprint worth modeling.
                VcpuKind::TimerIdler => (&self.idler_profile, 1.0),
            };
            usages.push(QuantumUsage {
                key: vid.raw() as u64,
                node: p.node,
                // An injected node-throttle period slows every VCPU on the
                // node (all-false without faults, leaving the share at 1).
                runtime_share: if self.node_throttled[p.node.index()] {
                    self.cfg.faults.node_throttle_factor
                } else {
                    1.0
                },
                profile,
                rpti_scale,
                cold_miss_boost: if v.cold_quanta > 0 {
                    self.cfg.cold_miss_boost
                } else {
                    1.0
                },
                overhead_us: std::mem::take(&mut p.pending_overhead_us),
            });
        }
        // One solve covers every quantum it leaves the contention fixed
        // point stationary for; otherwise it covers one and the loop
        // re-solves with the same inputs. Either way the engine replays
        // the reference per-quantum trajectory bit for bit, and the
        // per-quantum applications below collapse to exact closed forms
        // (u64 multiplies and integer-valued f64 sums).
        let mut done = 0u64;
        while done < quanta {
            let covered = self
                .engine
                .step_batch(self.cfg.quantum, &usages, quanta - done)
                .1;
            done += covered;
            let results = self.engine.take_results();
            for r in &results {
                let vid = VcpuId::new(r.key as u32);
                let v = &mut self.vcpus[vid.index()];
                if v.cold_quanta > 0 {
                    v.cold_quanta -= 1;
                }
                if v.kind == VcpuKind::TimerIdler {
                    // Idler bursts consume PCPU time but are guest-kernel
                    // housekeeping, not application work: they count toward
                    // machine busy time (Table III's denominator) only.
                    if v.burst_left > 0 {
                        v.burst_left -= 1;
                    }
                    self.overhead.add_busy_time(self.cfg.quantum * covered);
                    continue;
                }
                self.sampler.record_scaled(
                    vid.index(),
                    r.instructions,
                    r.llc_refs,
                    r.llc_misses,
                    r.local_accesses,
                    r.remote_accesses,
                    &r.node_accesses,
                    covered,
                );
                let m = &mut self.metrics.per_vm[v.vm.index()];
                m.instructions += r.instructions * covered;
                m.llc_refs += r.llc_refs * covered;
                m.llc_misses += r.llc_misses * covered;
                m.local_accesses += r.local_accesses * covered;
                m.remote_accesses += r.remote_accesses * covered;
                m.busy_us += self.cfg.quantum.as_micros() * covered;
                self.overhead.add_busy_time(self.cfg.quantum * covered);
            }
            self.engine.put_back_results(results);
        }
    }

    /// Advance each worker's burstiness process one quantum (discrete
    /// Ornstein-Uhlenbeck reverting to 1.0), leaving the current factors in
    /// `noise_scratch` (reused across quanta instead of reallocated).
    fn update_intensity_noise(&mut self) {
        self.noise_scratch.clear();
        let sd = self.cfg.intensity_noise_sd;
        if sd <= 0.0 {
            self.noise_scratch.resize(self.vcpus.len(), 1.0);
            return;
        }
        let theta = (self.cfg.quantum.as_micros() as f64
            / self.cfg.intensity_noise_corr.as_micros().max(1) as f64)
            .min(1.0);
        // Stationary sd of x' = x + theta (1 - x) + step*eps is
        // step / sqrt(theta (2 - theta)).
        let step = sd * (theta * (2.0 - theta)).sqrt();
        for v in &mut self.vcpus {
            if v.kind == VcpuKind::Worker {
                let eps = self.rng.normal_clamped(0.0, 1.0, -3.0, 3.0);
                v.intensity_noise =
                    (v.intensity_noise + theta * (1.0 - v.intensity_noise) + step * eps)
                        .clamp(0.4, 1.8);
            }
            self.noise_scratch.push(v.intensity_noise);
        }
    }

    fn handle_sample(&mut self, now: SimTime, mut samples: Vec<PmuSample>) {
        // Counter attribution error: relative sd shrinks with the square
        // root of the window length.
        if self.cfg.attribution_noise > 0.0 {
            let window_quanta =
                (self.cfg.sample_period.as_micros() / self.cfg.quantum.as_micros()).max(1);
            let sd = self.cfg.attribution_noise / (window_quanta as f64).sqrt();
            for s in &mut samples {
                let f = self.rng.normal_clamped(1.0, sd, 0.2, 3.0);
                s.llc_refs = (s.llc_refs as f64 * f).round() as u64;
            }
        }
        // Injected PMU faults corrupt what the analyzer (and the series
        // below) sees; ground-truth per-VM metrics accumulate in
        // `execute_quantum` from engine results and are untouched.
        if self.faults_enabled {
            self.inject_sample_faults(now, &mut samples);
        }
        if self.trace.is_enabled() {
            self.trace.record(
                now,
                crate::trace::Event::SamplePeriod {
                    periods: self.sampler.periods_completed(),
                },
            );
        }
        // Refresh the machine-cached per-VCPU pressures (Eq. 2).
        for (v, s) in samples.iter().enumerate() {
            self.pressure[v] = s.llc_access_pressure(1_000.0);
        }
        // Per-VM remote-ratio and throughput series for this period.
        let period_s = self.cfg.sample_period.as_secs_f64();
        for vm in &self.vms {
            let (mut local, mut remote, mut instr) = (0u64, 0u64, 0u64);
            for &vid in &vm.vcpu_ids {
                local += samples[vid.index()].local_accesses;
                remote += samples[vid.index()].remote_accesses;
                instr += samples[vid.index()].instructions;
            }
            let ratio = if local + remote == 0 {
                0.0
            } else {
                remote as f64 / (local + remote) as f64
            };
            self.metrics.remote_ratio_series[vm.id.index()].push(now, ratio);
            self.metrics.throughput_series[vm.id.index()]
                .push(now, instr as f64 / period_s);
        }

        if self.policy.uses_pmu() {
            let cost = self.overhead.charge_analysis();
            self.pcpus[0].pending_overhead_us += cost;
        }

        let views: Vec<VcpuView> = self
            .vcpus
            .iter()
            .map(|v| VcpuView {
                id: v.id,
                vm: v.vm,
                assigned_node: v.assigned_node,
            })
            .collect();
        // Deliver period-health signals before the analysis pass. With
        // faults disabled this reports all-valid samples and no failures,
        // and the default implementation ignores it.
        let failed_last_period = std::mem::take(&mut self.failed_migrations);
        self.policy.on_period_feedback(&PeriodFeedback {
            sample_validity: &self.sample_validity,
            failed_migrations: &failed_last_period,
        });
        let plan = self.policy.on_sample(AnalyzerView {
            topo: &self.topo,
            samples: &samples,
            vcpus: &views,
        });
        // Degradation bookkeeping (all-default for the paper's policies).
        let report = plan.report;
        self.metrics.faults.periods_skipped += u64::from(report.period_skipped);
        self.metrics.faults.fallback_periods += u64::from(report.fallback_active);
        self.metrics.faults.fallbacks_triggered += u64::from(report.fallback_entered);
        self.metrics.faults.migration_retries += u64::from(report.migration_retries);
        // Edge-detect degrade-mode transitions for the trace and counters.
        if report.fallback_entered {
            self.telemetry.inc(self.tids.c_degrade_enter, 1);
            if self.trace.is_enabled() {
                self.trace
                    .record(now, crate::trace::Event::Degrade { fallback: true });
            }
            if self.provenance.is_enabled() {
                self.provenance.record(
                    now,
                    "confidence-dark-streak",
                    crate::provenance::Decision::Degrade { fallback: true },
                );
            }
        }
        if self.was_fallback && !report.fallback_active {
            self.telemetry.inc(self.tids.c_degrade_recover, 1);
            if self.trace.is_enabled() {
                self.trace
                    .record(now, crate::trace::Event::Degrade { fallback: false });
            }
            if self.provenance.is_enabled() {
                self.provenance.record(
                    now,
                    "confidence-recovered",
                    crate::provenance::Decision::Degrade { fallback: false },
                );
            }
        }
        self.was_fallback = report.fallback_active;

        // Partition provenance: the policy's per-assignment notes (explain
        // mode only) become decision records at the period instant. Notes
        // never affect application below.
        if self.provenance.is_enabled() {
            for note in &plan.notes {
                self.provenance
                    .record(now, note.rule, crate::provenance::decision_from_note(note));
            }
        }

        for a in plan.assignments {
            let idx = a.vcpu.index();
            // Administrative pins outrank any policy decision.
            if self.vcpus[idx].admin_pinned {
                continue;
            }
            // A *hard* plan pins the VCPU to the node until the next
            // period; the paper's partitioning is a one-shot migration
            // (soft) whose persistence relies on the NUMA-aware load
            // balance not dragging heavy VCPUs back across nodes.
            self.vcpus[idx].assigned_node = if plan.hard { a.node } else { None };
            let Some(target) = a.node else { continue };
            // A VCPU already running on the right node is left alone; the
            // fault draw below therefore only covers real migrations.
            if self.vcpu_on_node(self.vcpus[idx].running_on, target) {
                continue;
            }
            if self.faults_enabled {
                match self.injector.migration_fault() {
                    MigrationFault::Failed => {
                        self.metrics.faults.migrations_failed += 1;
                        self.failed_migrations.push((a.vcpu, target));
                        self.telemetry.inc(self.tids.c_faults, 1);
                        if self.trace.is_enabled() {
                            self.trace.record(
                                now,
                                crate::trace::Event::Fault(
                                    crate::trace::FaultEvent::MigrationFailed {
                                        vcpu: a.vcpu,
                                        node: target,
                                    },
                                ),
                            );
                        }
                        continue;
                    }
                    MigrationFault::Delayed(quanta) => {
                        self.metrics.faults.migrations_delayed += 1;
                        let due = now + self.cfg.quantum * u64::from(quanta);
                        self.delayed_moves.push((due, a.vcpu, target));
                        self.telemetry.inc(self.tids.c_faults, 1);
                        if self.trace.is_enabled() {
                            self.trace.record(
                                now,
                                crate::trace::Event::Fault(
                                    crate::trace::FaultEvent::MigrationDelayed {
                                        vcpu: a.vcpu,
                                        node: target,
                                        quanta: u64::from(quanta),
                                    },
                                ),
                            );
                        }
                        continue;
                    }
                    MigrationFault::None => {}
                }
            }
            self.apply_partition_move(a.vcpu, target, now);
        }

        self.apply_page_migrations(now, plan.page_migrations);

        // Close the telemetry period: record the period-end distributions
        // (runqueue depth per PCPU, worker RPTI and its Table 2 class) and
        // snapshot every metric's window into its series.
        if self.telemetry.is_enabled() {
            for p in 0..self.pcpus.len() {
                let depth = self.pcpus[p].queue.len() as f64;
                self.telemetry.observe(self.tids.h_runq_depth, depth);
            }
            let mut active = 0u64;
            for i in 0..self.vcpus.len() {
                if !self.vcpus[i].blocked {
                    active += 1;
                }
                if self.vcpus[i].kind != VcpuKind::Worker {
                    continue;
                }
                let rpti = self.pressure[i];
                self.telemetry.observe(self.tids.h_rpti, rpti);
                let class = if rpti < RPTI_FRIENDLY_MAX {
                    self.tids.c_rpti_friendly
                } else if rpti < RPTI_FITTING_MAX {
                    self.tids.c_rpti_fitting
                } else {
                    self.tids.c_rpti_thrashing
                };
                self.telemetry.inc(class, 1);
            }
            self.telemetry.set_gauge(self.tids.g_active_vcpus, active as f64);
            self.telemetry.snapshot(now);
        }
    }

    fn vcpu_on_node(&self, pcpu: Option<PcpuId>, node: NodeId) -> bool {
        pcpu.is_some_and(|pid| self.topo.node_of_pcpu(pid) == node)
    }

    /// Migrate one VCPU to `target` per Algorithm 1: a VCPU already
    /// running there is left alone, but a queued one is re-placed on the
    /// node (losing its queue position) — this per-pass disruption is what
    /// makes very short sampling periods expensive (Fig. 8's left arm).
    /// Shared by the sampling-period pass and the injected-delay path.
    fn apply_partition_move(&mut self, vcpu: VcpuId, target: NodeId, now: SimTime) {
        let idx = vcpu.index();
        if self.vcpu_on_node(self.vcpus[idx].running_on, target) {
            return;
        }
        let was_cross = !self.vcpu_on_node(self.vcpus[idx].queued_on, target)
            || self.vcpus[idx].running_on.is_some();
        if let Some(pid) = self.vcpus[idx].running_on {
            self.pcpus[pid.index()].current = None;
            self.vcpus[idx].running_on = None;
            if self.trace.is_enabled() {
                self.trace
                    .record(now, crate::trace::Event::SwitchOut { vcpu, pcpu: pid });
            }
        } else if let Some(pid) = self.vcpus[idx].queued_on {
            self.pcpus[pid.index()].queue.remove(vcpu);
            self.vcpus[idx].queued_on = None;
        }
        self.enqueue_on_node(vcpu, target);
        if was_cross {
            self.metrics.partition_moves += 1;
            self.telemetry.inc(self.tids.c_partition_moves, 1);
            if self.trace.is_enabled() {
                self.trace
                    .record(now, crate::trace::Event::PartitionMove { vcpu, node: target });
            }
        }
        if self.policy.uses_pmu() {
            let cost = self.overhead.charge_migration();
            self.pcpus[0].pending_overhead_us += cost;
        }
    }

    /// Corrupt the period's samples per the fault schedule (only called
    /// with faults enabled) and draw the coming period's node throttles.
    fn inject_sample_faults(&mut self, now: SimTime, samples: &mut [PmuSample]) {
        let num_nodes = self.topo.num_nodes();
        for (i, s) in samples.iter_mut().enumerate() {
            let vcpu = VcpuId::new(i as u32);
            if self.injector.sample_lost() {
                *s = PmuSample::zeroed(num_nodes);
                self.sample_validity[i] = 0.0;
                self.metrics.faults.samples_lost += 1;
                self.telemetry.inc(self.tids.c_faults, 1);
                if self.trace.is_enabled() {
                    self.trace.record(
                        now,
                        crate::trace::Event::Fault(crate::trace::FaultEvent::SampleLost { vcpu }),
                    );
                }
                continue;
            }
            self.sample_validity[i] = 1.0;
            if let Some(f) = self.injector.multiplex_factor() {
                s.scale_llc(f);
                self.metrics.faults.counters_noised += 1;
                self.telemetry.inc(self.tids.c_faults, 1);
                if self.trace.is_enabled() {
                    self.trace.record(
                        now,
                        crate::trace::Event::Fault(crate::trace::FaultEvent::CounterNoise { vcpu }),
                    );
                }
            }
            if self.injector.affinity_corrupted() {
                let k = self.injector.affinity_rotation(num_nodes);
                s.rotate_node_accesses(k);
                self.metrics.faults.affinity_corruptions += 1;
                self.telemetry.inc(self.tids.c_faults, 1);
                if self.trace.is_enabled() {
                    self.trace.record(
                        now,
                        crate::trace::Event::Fault(
                            crate::trace::FaultEvent::AffinityCorrupted { vcpu },
                        ),
                    );
                }
            }
        }
        for n in 0..num_nodes {
            let throttled = self.injector.node_throttled();
            self.node_throttled[n] = throttled;
            self.metrics.faults.node_throttled_periods += u64::from(throttled);
            if throttled {
                self.telemetry.inc(self.tids.c_faults, 1);
                if self.trace.is_enabled() {
                    self.trace.record(
                        now,
                        crate::trace::Event::Fault(crate::trace::FaultEvent::NodeThrottled {
                            node: NodeId::from_index(n),
                        }),
                    );
                }
            }
        }
    }

    fn apply_page_migrations(&mut self, now: SimTime, page_migrations: Vec<crate::policy::PageMigration>) {
        // §VI extension: page migrations requested by the policy. The copy
        // engine moves ~2 bytes/ns; its time is charged as overhead on the
        // PCPU where the migrated VCPU would run (the VM stalls on the
        // moving pages).
        for pm in page_migrations {
            let v = &self.vcpus[pm.vcpu.index()];
            if v.kind != VcpuKind::Worker {
                continue;
            }
            let (vm, vm_idx) = (v.vm, v.vm_idx);
            let charged_pcpu = v.running_on.or(v.queued_on).unwrap_or(PcpuId::new(0));
            let moved = self.vms[vm.index()].migrate_thread_pages(vm_idx, pm.to_node, pm.max_bytes);
            if moved > 0 {
                self.metrics.page_migrations += 1;
                self.metrics.page_migration_bytes += moved;
                self.pcpus[charged_pcpu.index()].pending_overhead_us += moved as f64 / 2_000.0;
                if self.trace.is_enabled() {
                    self.trace.record(
                        now,
                        crate::trace::Event::PageMigration {
                            vcpu: pm.vcpu,
                            node: pm.to_node,
                            bytes: moved,
                        },
                    );
                }
                if self.provenance.is_enabled() {
                    self.provenance.record(
                        now,
                        "budget-grant",
                        crate::provenance::Decision::PageMigration {
                            vcpu: pm.vcpu,
                            node: pm.to_node,
                            bytes: moved,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod tests_helpers {
    use super::*;
    use crate::credit::CreditPolicy;
    use mem_model::AllocPolicy;
    use numa_topo::presets;
    use workloads::{hungry, npb};

    const GB: u64 = 1024 * 1024 * 1024;

    pub fn quad_topo() -> numa_topo::Topology {
        numa_topo::TopologyBuilder::new(2_400)
            .add_nodes(numa_topo::NodeConfig::e5620_node(), 2, 2)
            .fully_connected_qpi()
            .build()
            .unwrap()
    }

    pub fn basic_machine_pub() -> Machine {
        MachineBuilder::new(presets::xeon_e5620())
            .policy(Box::new(CreditPolicy::new()))
            .add_vm(VmConfig::new("vm1", 8, 8 * GB, AllocPolicy::MostFree, vec![npb::lu()]))
            .add_vm(VmConfig::new("vm2", 8, 5 * GB, AllocPolicy::MostFree, vec![npb::lu()]))
            .add_vm(VmConfig::new("vm3", 8, GB, AllocPolicy::MostFree, vec![hungry::hungry_loop(); 8]))
            .build()
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::credit::CreditPolicy;
    use mem_model::AllocPolicy;
    use numa_topo::presets;
    use workloads::{hungry, npb, speccpu};

    const GB: u64 = 1024 * 1024 * 1024;

    fn vm(name: &str, mem_gb: u64, workloads: Vec<workloads::WorkloadSpec>) -> VmConfig {
        VmConfig {
            name: name.into(),
            vcpus: 8,
            mem_bytes: mem_gb * GB,
            alloc: AllocPolicy::MostFree,
            workloads,
            shuffle_period: None,
            idler_period: Some(SimDuration::from_millis(30)),
            pin_node: None,
            phase_period: None,
            weight: 256,
        }
    }

    fn basic_machine() -> Machine {
        MachineBuilder::new(presets::xeon_e5620())
            .policy(Box::new(CreditPolicy::new()))
            .add_vm(vm("vm1", 8, vec![npb::lu()]))
            .add_vm(vm("vm2", 5, vec![npb::lu()]))
            .add_vm(VmConfig {
                name: "vm3".into(),
                vcpus: 8,
                mem_bytes: GB,
                alloc: AllocPolicy::MostFree,
                workloads: vec![hungry::hungry_loop(); 8],
                shuffle_period: None,
                idler_period: Some(SimDuration::from_millis(30)),
                pin_node: None,
                phase_period: None,
                weight: 256,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_policy_and_vms() {
        let err = MachineBuilder::new(presets::xeon_e5620())
            .add_vm(vm("v", 1, vec![npb::lu()]))
            .build()
            .err()
            .expect("missing policy must fail");
        assert!(err.to_string().contains("policy"));
        let err = MachineBuilder::new(presets::xeon_e5620())
            .policy(Box::new(CreditPolicy::new()))
            .build()
            .err()
            .expect("missing VMs must fail");
        assert!(err.to_string().contains("VMs"));
    }

    #[test]
    fn machine_creates_vcpus_including_idlers() {
        let m = basic_machine();
        // 4 + 4 + 8 worker threads plus 4 + 4 + 0 timer idlers.
        assert_eq!(m.num_vcpus(), 24);
    }

    #[test]
    fn run_advances_time_and_executes() {
        let mut m = basic_machine();
        m.run(SimDuration::from_secs(2));
        assert_eq!(m.now().as_micros(), 2_000_000);
        let metrics = m.metrics();
        assert_eq!(metrics.elapsed, SimDuration::from_secs(2));
        for vm in &metrics.per_vm {
            assert!(vm.instructions > 0, "every VM should make progress");
        }
        // 16 runnable workers on 8 PCPUs: every PCPU busy every quantum
        // (busy time includes idler bursts, hence exact machine capacity).
        assert_eq!(metrics.busy_us, 8.0 * 2_000_000.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = basic_machine();
        let mut b = basic_machine();
        a.run(SimDuration::from_secs(1));
        b.run(SimDuration::from_secs(1));
        assert_eq!(
            a.metrics().per_vm[0].instructions,
            b.metrics().per_vm[0].instructions
        );
        assert_eq!(a.metrics().migrations, b.metrics().migrations);
    }

    #[test]
    fn credit_fairness_across_identical_vms() {
        // VM1 and VM2 run the same program; with fair share their busy
        // time converges once the initial placement transient (VM1 on
        // node0, VM2 on node1, scan-order stealing favouring low PCPUs)
        // washes out.
        let mut m = basic_machine();
        m.run(SimDuration::from_secs(12));
        let b1 = m.metrics().per_vm[0].busy_us as f64;
        let b2 = m.metrics().per_vm[1].busy_us as f64;
        let ratio = b1 / b2;
        assert!((0.72..1.4).contains(&ratio), "busy ratio {ratio}");
    }

    #[test]
    fn oversubscription_causes_migrations_under_credit() {
        let mut m = basic_machine();
        m.run(SimDuration::from_secs(5));
        assert!(
            m.metrics().migrations > 10,
            "credit churn expected, got {}",
            m.metrics().migrations
        );
        assert!(m.metrics().cross_node_migrations > 0);
    }

    #[test]
    fn remote_accesses_happen_under_credit() {
        let mut m = basic_machine();
        m.run(SimDuration::from_secs(5));
        let vm1 = &m.metrics().per_vm[0];
        assert!(vm1.remote_accesses > 0, "NUMA-oblivious credit must go remote");
        assert!(vm1.remote_ratio() > 0.2, "ratio={}", vm1.remote_ratio());
    }

    #[test]
    fn undersubscribed_machine_leaves_pcpus_idle_but_progresses() {
        let mut m = MachineBuilder::new(presets::xeon_e5620())
            .policy(Box::new(CreditPolicy::new()))
            .add_vm(vm("solo", 4, vec![speccpu::soplex()]))
            .build()
            .unwrap();
        m.run(SimDuration::from_secs(1));
        let vm0 = &m.metrics().per_vm[0];
        assert!(vm0.instructions > 0);
        // One busy VCPU: at most 1 PCPU-second of busy time.
        assert!(vm0.busy_us <= 1_000_000);
    }

    #[test]
    fn vm_lookup_by_name() {
        let m = basic_machine();
        assert_eq!(m.vm_id_by_name("vm2"), Some(VmId::new(1)));
        assert_eq!(m.vm_id_by_name("nope"), None);
    }

    #[test]
    fn pmu_totals_match_vm_metrics() {
        let mut m = basic_machine();
        m.run(SimDuration::from_secs(1));
        let vm1 = m.vm_id_by_name("vm1").unwrap();
        let sum: u64 = (0..4).map(|i| m.vcpu_totals(VcpuId::new(i)).instructions).sum();
        assert_eq!(sum, m.metrics().vm(vm1).instructions);
    }

    #[test]
    fn credit_policy_charges_no_overhead() {
        let mut m = basic_machine();
        m.run(SimDuration::from_secs(2));
        assert_eq!(m.metrics().overhead_us, 0.0);
        assert_eq!(m.metrics().overhead_percent(), 0.0);
    }

    #[test]
    fn remote_ratio_series_recorded_per_period() {
        let mut m = basic_machine();
        m.run(SimDuration::from_secs(3));
        let vm1 = m.vm_id_by_name("vm1").unwrap();
        let series = &m.metrics().remote_ratio_series[vm1.index()];
        assert_eq!(series.len(), 3, "one point per 1 s sampling period");
    }

    #[test]
    fn timeslice_limits_continuous_run() {
        // With 16 VCPUs on 8 PCPUs nobody should hold a PCPU beyond the
        // 30 ms timeslice, so each VM's busy share stays near fair.
        let mut m = basic_machine();
        m.run(SimDuration::from_secs(4));
        let total: u64 = m.metrics().per_vm.iter().map(|v| v.busy_us).sum();
        // Worker busy time fills the machine minus the idler-burst tax.
        assert!(total <= 8 * 4_000_000, "cannot exceed machine capacity");
        assert!(
            total as f64 >= 0.85 * (8 * 4_000_000) as f64,
            "workers should dominate machine time: {total}"
        );
        let vm3 = &m.metrics().per_vm[2];
        let share = vm3.busy_us as f64 / total as f64;
        assert!(
            (0.35..0.65).contains(&share),
            "8 of 16 worker VCPUs should get about half the machine: {share}"
        );
    }
}

#[cfg(test)]
mod debug_tests {
    use super::tests_helpers::*;

    #[test]
    #[ignore]
    fn inspect_dynamics() {
        let mut m = basic_machine_pub();
        m.run(sim_core::SimDuration::from_secs(10));
        let met = m.metrics();
        eprintln!("migrations={} cross={} steals={} partition={}",
            met.migrations, met.cross_node_migrations, met.steals, met.partition_moves);
        for (i, vm) in met.per_vm.iter().enumerate() {
            eprintln!("vm{i}: instr={} busy={}us remote_ratio={:.3} total_acc={}",
                vm.instructions, vm.busy_us, vm.remote_ratio(), vm.total_accesses());
        }
    }
}

impl Machine {
    /// Per-VCPU service received, in quanta (diagnostic).
    pub fn vcpu_run_quanta(&self) -> Vec<u64> {
        self.vcpus.iter().map(|v| v.run_quanta).collect()
    }

    /// Per-VCPU credits (diagnostic).
    pub fn vcpu_credits(&self) -> Vec<i32> {
        self.vcpus.iter().map(|v| v.credits).collect()
    }

    /// Validate the scheduler state machine; returns a description of the
    /// first violation found. Used by tests (and cheap enough to call in
    /// debug builds after every step).
    pub fn check_invariants(&self) -> Result<(), String> {
        for v in &self.vcpus {
            // A VCPU is in exactly one of: running, queued, blocked-idle.
            let states =
                u8::from(v.running_on.is_some()) + u8::from(v.queued_on.is_some()) + u8::from(v.blocked);
            if states != 1 {
                return Err(format!("{} is in {} states at once", v.id, states));
            }
            if let Some(p) = v.running_on {
                if self.pcpus[p.index()].current != Some(v.id) {
                    return Err(format!("{} claims to run on {p} which runs {:?}", v.id, self.pcpus[p.index()].current));
                }
                if !v.allowed_on(self.topo.node_of_pcpu(p)) {
                    return Err(format!("{} runs on {p} outside its pinned node", v.id));
                }
            }
            if let Some(p) = v.queued_on {
                if !self.pcpus[p.index()].queue.iter().any(|q| q == v.id) {
                    return Err(format!("{} claims queue {p} but is not in it", v.id));
                }
            }
            if v.blocked && v.kind != VcpuKind::TimerIdler {
                return Err(format!("worker {} is blocked", v.id));
            }
            if !(-900..=900).contains(&v.credits) {
                return Err(format!("{} credits {} out of clamp", v.id, v.credits));
            }
        }
        for p in &self.pcpus {
            if let Some(cur) = p.current {
                if self.vcpus[cur.index()].running_on != Some(p.id) {
                    return Err(format!("{} runs {} which disagrees", p.id, cur));
                }
            }
            for q in p.queue.iter() {
                if self.vcpus[q.index()].queued_on != Some(p.id) {
                    return Err(format!("{} queues {} which disagrees", p.id, q));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod feature_tests {
    use super::tests_helpers::basic_machine_pub;
    use super::*;
    use crate::credit::CreditPolicy;
    use mem_model::AllocPolicy;
    use numa_topo::presets;
    use workloads::{npb, speccpu};

    const GB: u64 = 1024 * 1024 * 1024;

    #[test]
    fn invariants_hold_throughout_a_run() {
        let mut m = basic_machine_pub();
        for _ in 0..40 {
            m.run(SimDuration::from_millis(100));
            m.check_invariants().expect("invariants");
        }
    }

    #[test]
    fn pinned_vm_never_leaves_its_node() {
        let mut cfg = VmConfig::new(
            "pinned",
            2,
            2 * GB,
            AllocPolicy::OnNode(NodeId::new(1)),
            vec![speccpu::soplex(); 2],
        );
        cfg.pin_node = Some(NodeId::new(1));
        let mut m = MachineBuilder::new(presets::xeon_e5620())
            .policy(Box::new(CreditPolicy::new()))
            .add_vm(cfg)
            .add_vm(VmConfig::new(
                "other",
                8,
                4 * GB,
                AllocPolicy::MostFree,
                vec![npb::lu()],
            ))
            .build()
            .unwrap();
        m.run(SimDuration::from_secs(5));
        m.check_invariants().unwrap();
        // Both pinned VCPUs ran, entirely on node 1 ⇒ all accesses local.
        let vm0 = &m.metrics().per_vm[0];
        assert!(vm0.instructions > 0);
        assert_eq!(vm0.remote_accesses, 0, "pinned next to its memory");
    }

    #[test]
    fn weights_shift_cpu_shares() {
        let build = |w1: u32, w2: u32| {
            let mut a = VmConfig::new("a", 4, 2 * GB, AllocPolicy::MostFree, vec![
                speccpu::povray(); 4
            ]);
            a.weight = w1;
            let mut b = VmConfig::new("b", 4, 2 * GB, AllocPolicy::MostFree, vec![
                speccpu::povray(); 4
            ]);
            b.weight = w2;
            // 8 CPU-bound VCPUs on 4 PCPUs so weights can bite.
            let topo = crate::machine::tests_helpers::quad_topo();
            let mut m = MachineBuilder::new(topo)
                .policy(Box::new(CreditPolicy::new()))
                .add_vm(a)
                .add_vm(b)
                .build()
                .unwrap();
            m.run(SimDuration::from_secs(10));
            let met = m.metrics();
            met.per_vm[0].busy_us as f64 / met.per_vm[1].busy_us.max(1) as f64
        };
        let equal = build(256, 256);
        assert!((0.8..1.25).contains(&equal), "equal weights ~equal: {equal}");
        let skewed = build(512, 256);
        assert!(
            skewed > equal * 1.2,
            "double weight should buy more CPU: {skewed} vs {equal}"
        );
    }

    #[test]
    fn page_migration_reduces_remote_accesses() {
        use vprobe_test_policy::pm_policy;
        // VM with memory on node0 but pinned... rather: a VM whose threads
        // run wherever but whose memory is all on node0. The pm-enabled
        // policy migrates pages toward each VCPU's assigned node.
        let run = |pm: bool| {
            let mut m = MachineBuilder::new(presets::xeon_e5620())
                .policy(pm_policy(pm))
                .add_vm(VmConfig::new(
                    "vm1",
                    8,
                    6 * GB,
                    AllocPolicy::OnNode(NodeId::new(0)),
                    vec![npb::sp()],
                ))
                .add_vm(VmConfig::new(
                    "vm2",
                    8,
                    6 * GB,
                    AllocPolicy::OnNode(NodeId::new(0)),
                    vec![npb::sp()],
                ))
                .build()
                .unwrap();
            m.run(SimDuration::from_secs(12));
            let met = m.metrics().clone();
            (met.per_vm[0].remote_ratio(), met.page_migration_bytes)
        };
        let (base_ratio, base_bytes) = run(false);
        let (pm_ratio, pm_bytes) = run(true);
        assert_eq!(base_bytes, 0);
        assert!(pm_bytes > 0, "pages should move");
        assert!(
            pm_ratio < base_ratio,
            "page migration should cut remote accesses: {pm_ratio} vs {base_ratio}"
        );
    }

    #[test]
    fn provenance_records_decisions_without_changing_the_run() {
        let mut plain = crate::machine::tests_helpers::basic_machine_pub();
        let mut probed = crate::machine::tests_helpers::basic_machine_pub();
        probed.enable_provenance(100_000);
        plain.run(SimDuration::from_secs(1));
        probed.run(SimDuration::from_secs(1));
        // Recording is pure observation: every metric matches the plain run.
        assert_eq!(plain.metrics().steals, probed.metrics().steals);
        assert_eq!(plain.metrics().migrations, probed.metrics().migrations);
        for (a, b) in plain.metrics().per_vm.iter().zip(&probed.metrics().per_vm) {
            assert_eq!(a.instructions, b.instructions);
            assert_eq!(a.remote_accesses, b.remote_accesses);
        }
        assert!(plain.provenance().is_empty(), "disabled log stays empty");
        assert!(!probed.provenance().is_empty(), "decisions recorded");
        let kinds: std::collections::HashSet<&str> = probed
            .provenance()
            .iter()
            .map(|r| r.decision.kind())
            .collect();
        assert!(
            kinds.contains("placement") || kinds.contains("wake_placement"),
            "placement decisions present: {kinds:?}"
        );
        assert!(kinds.contains("steal"), "steal decisions present: {kinds:?}");
        // Every JSONL line round-trips through the shared parser and
        // carries the common fields.
        let jsonl = probed.provenance_jsonl();
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            let doc = sim_core::Json::parse(line).expect("valid decision json");
            assert!(doc.get("t_us").is_some(), "t_us in {line}");
            assert!(doc.get("seq").is_some(), "seq in {line}");
            assert!(doc.get("kind").is_some(), "kind in {line}");
            assert!(doc.get("rule").is_some(), "rule in {line}");
        }
    }
}

#[cfg(test)]
mod vprobe_test_policy {
    //! A minimal stand-in for the vprobe crate's policy (xen-sim cannot
    //! depend on it): assigns every worker to both nodes round-robin and,
    //! when enabled, requests page migration toward the assignment.
    use super::*;
    use crate::policy::{PageMigration, PartitionPlan};

    struct RoundRobinPm {
        pm: bool,
    }

    impl SchedPolicy for RoundRobinPm {
        fn name(&self) -> &str {
            "test-rr-pm"
        }
        fn on_sample(&mut self, view: AnalyzerView<'_>) -> PartitionPlan {
            let mut assignments = Vec::new();
            let mut page_migrations = Vec::new();
            for (i, s) in view.samples.iter().enumerate() {
                if s.instructions == 0 {
                    continue;
                }
                let node = NodeId::new((i % 2) as u16);
                let vcpu = VcpuId::new(i as u32);
                assignments.push(crate::policy::VcpuAssignment {
                    vcpu,
                    node: Some(node),
                });
                if self.pm {
                    page_migrations.push(PageMigration {
                        vcpu,
                        to_node: node,
                        max_bytes: 256 * 1024 * 1024,
                    });
                }
            }
            PartitionPlan {
                assignments,
                hard: false,
                page_migrations,
                ..PartitionPlan::default()
            }
        }
        fn steal(&mut self, _ctx: StealContext<'_>) -> Option<(PcpuId, VcpuId)> {
            None
        }
    }

    pub fn pm_policy(pm: bool) -> Box<dyn SchedPolicy> {
        Box::new(RoundRobinPm { pm })
    }
}

#[cfg(test)]
mod trace_and_serde_tests {
    use super::tests_helpers::basic_machine_pub;
    use super::*;
    use crate::trace::Event;

    #[test]
    fn trace_records_scheduling_events() {
        let mut m = basic_machine_pub();
        m.enable_trace(100_000);
        m.run(SimDuration::from_secs(3));
        let trace = m.trace();
        assert!(!trace.is_empty());
        let switches = trace.count(|e| matches!(e, Event::SwitchIn { .. }));
        assert!(switches > 100, "expected plenty of context switches: {switches}");
        // Steal events in the trace agree with the metric counter (modulo
        // ring eviction, which the capacity above prevents).
        assert_eq!(trace.dropped(), 0);
        let steals = trace.count(|e| matches!(e, Event::Steal { .. }));
        assert_eq!(steals as u64, m.metrics().steals);
    }

    #[test]
    fn disabled_trace_costs_nothing_and_stays_empty() {
        let mut m = basic_machine_pub();
        m.run(SimDuration::from_secs(1));
        assert!(m.trace().is_empty());
        assert!(!m.trace().is_enabled());
    }

    #[test]
    fn metrics_serialize_round_trip() {
        let mut m = basic_machine_pub();
        m.run(SimDuration::from_secs(2));
        let json = m.metrics().to_json();
        let back = RunMetrics::from_json(&json).expect("deserialize");
        assert_eq!(back.migrations, m.metrics().migrations);
        assert_eq!(back.per_vm.len(), m.metrics().per_vm.len());
        assert_eq!(
            back.per_vm[0].instructions,
            m.metrics().per_vm[0].instructions
        );
        assert_eq!(
            back.remote_ratio_series[0].points(),
            m.metrics().remote_ratio_series[0].points()
        );
        // Re-serialization is byte-stable.
        assert_eq!(back.to_json(), json);
    }
}

#[cfg(test)]
mod golden_tests {
    use super::tests_helpers::basic_machine_pub;
    use super::*;

    /// Pins the exact numeric trajectory of a short fixed-seed run. Any
    /// hot-path "optimization" that changes floating-point evaluation
    /// order, RNG draw order, or scheduling decisions trips this before it
    /// can silently skew every experiment. Captured from the reference
    /// (pre-optimization) implementation.
    #[test]
    fn golden_run_metrics_are_bit_stable() {
        let mut m = basic_machine_pub();
        m.run(SimDuration::from_secs(2));
        let met = m.metrics();
        let per_vm: Vec<(u64, u64, u64, u64, u64)> = met
            .per_vm
            .iter()
            .map(|v| {
                (
                    v.instructions,
                    v.llc_refs,
                    v.llc_misses,
                    v.local_accesses,
                    v.remote_accesses,
                )
            })
            .collect();
        eprintln!(
            "GOLDEN per_vm={per_vm:?} migrations={} cross={} steals={} busy={}",
            met.migrations, met.cross_node_migrations, met.steals, met.busy_us
        );
        assert_eq!(
            per_vm,
            vec![
                (5_635_518_083, 85_486_483, 21_567_919, 7_514_993, 14_052_926),
                (5_852_257_190, 97_004_594, 23_064_358, 14_386_681, 8_677_677),
                (30_727_096_524, 1_562_572, 22_749, 10_945, 11_804),
            ]
        );
        assert_eq!(met.migrations, 185);
        assert_eq!(met.cross_node_migrations, 96);
        assert_eq!(met.steals, 198);
        assert_eq!(met.busy_us, 16_000_000.0);
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::tests_helpers::basic_machine_pub;
    use super::*;

    #[test]
    fn zero_duration_run_is_a_noop() {
        let mut m = basic_machine_pub();
        m.run(SimDuration::ZERO);
        assert_eq!(m.now(), sim_core::SimTime::ZERO);
        assert_eq!(m.metrics().per_vm[0].instructions, 0);
    }

    #[test]
    fn reset_metrics_clears_measurement_but_not_state() {
        let mut m = basic_machine_pub();
        m.run(SimDuration::from_secs(2));
        let t = m.now();
        assert!(m.metrics().per_vm[0].instructions > 0);
        m.reset_metrics();
        assert_eq!(m.metrics().per_vm[0].instructions, 0);
        assert_eq!(m.metrics().elapsed, SimDuration::ZERO);
        assert_eq!(m.now(), t, "simulated time keeps running");
        m.run(SimDuration::from_secs(1));
        assert!(m.metrics().per_vm[0].instructions > 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn throughput_series_tracks_periods() {
        let mut m = basic_machine_pub();
        m.run(SimDuration::from_secs(3));
        let series = &m.metrics().throughput_series[0];
        assert_eq!(series.len(), 3);
        assert!(series.values().all(|v| v > 0.0));
        let csv = m.metrics().series_csv();
        assert!(csv.lines().count() > 3, "header plus rows: {csv}");
        assert!(csv.starts_with("time_s,vm,remote_ratio,instr_per_s"));
    }

    #[test]
    fn set_policy_mid_run_changes_behaviour() {
        let mut m = basic_machine_pub();
        m.run(SimDuration::from_secs(2));
        assert_eq!(m.policy_name(), "credit");
        m.set_policy(Box::new(crate::credit::CreditPolicy::new()));
        m.run(SimDuration::from_secs(1));
        m.check_invariants().unwrap();
    }
}

#[cfg(test)]
mod fault_tests {
    use super::tests_helpers::basic_machine_pub;
    use super::*;
    use crate::credit::CreditPolicy;
    use mem_model::AllocPolicy;
    use numa_topo::presets;
    use workloads::npb;

    const GB: u64 = 1024 * 1024 * 1024;

    fn faulty_machine(rate: f64, fault_seed: u64) -> Machine {
        MachineBuilder::new(presets::xeon_e5620())
            .policy(super::vprobe_test_policy::pm_policy(false))
            .faults(FaultConfig::uniform(rate, fault_seed))
            .add_vm(VmConfig::new("vm1", 8, 8 * GB, AllocPolicy::MostFree, vec![npb::lu()]))
            .add_vm(VmConfig::new("vm2", 8, 5 * GB, AllocPolicy::MostFree, vec![npb::lu()]))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_invalid_fault_config() {
        let err = MachineBuilder::new(presets::xeon_e5620())
            .policy(Box::new(CreditPolicy::new()))
            .faults(FaultConfig {
                sample_loss: 2.0,
                ..FaultConfig::none()
            })
            .add_vm(VmConfig::new("vm1", 8, GB, AllocPolicy::MostFree, vec![npb::lu()]))
            .build();
        let Err(err) = err else {
            panic!("expected an invalid-fault-config error")
        };
        assert!(matches!(err, SimError::FaultConfig(_)), "{err}");
    }

    #[test]
    fn builder_rejects_zero_sample_period() {
        let err = MachineBuilder::new(presets::xeon_e5620())
            .policy(Box::new(CreditPolicy::new()))
            .sample_period(SimDuration::ZERO)
            .add_vm(VmConfig::new("vm1", 8, GB, AllocPolicy::MostFree, vec![npb::lu()]))
            .build();
        let Err(err) = err else {
            panic!("expected a zero-sample-period error")
        };
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn zero_fault_rate_leaves_metrics_clean() {
        let mut m = basic_machine_pub();
        m.run(SimDuration::from_secs(2));
        assert_eq!(m.metrics().faults, crate::metrics::FaultMetrics::default());
        assert!(!m.metrics().to_json().contains("\"faults\""));
    }

    #[test]
    fn faulty_run_is_deterministic_per_seed() {
        let run = |fault_seed: u64| {
            let mut m = faulty_machine(0.2, fault_seed);
            m.run(SimDuration::from_secs(4));
            m.check_invariants().unwrap();
            m.metrics().to_json()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "fault seed must matter");
    }

    #[test]
    fn uniform_faults_fire_and_are_counted() {
        let mut m = faulty_machine(0.3, 5);
        m.run(SimDuration::from_secs(6));
        m.check_invariants().unwrap();
        let f = m.metrics().faults;
        assert!(f.samples_lost > 0, "{f:?}");
        assert!(f.counters_noised > 0, "{f:?}");
        assert!(f.migrations_failed + f.migrations_delayed > 0, "{f:?}");
        assert!(f.injected() > 0);
        let json = m.metrics().to_json();
        assert!(json.contains("\"faults\""));
        let back = RunMetrics::from_json(&json).unwrap();
        assert_eq!(back.faults, f);
    }

    #[test]
    fn pcpu_stalls_cost_forward_progress() {
        let heavy_stalls = FaultConfig {
            pcpu_stall: 0.02,
            ..FaultConfig::none()
        };
        let run = |faults: FaultConfig| {
            let mut m = MachineBuilder::new(presets::xeon_e5620())
                .policy(Box::new(CreditPolicy::new()))
                .faults(faults)
                .add_vm(VmConfig::new("vm1", 8, GB, AllocPolicy::MostFree, vec![npb::lu()]))
                .build()
                .unwrap();
            m.run(SimDuration::from_secs(3));
            m.check_invariants().unwrap();
            (m.metrics().per_vm[0].instructions, m.metrics().faults)
        };
        let (clean_instr, clean_faults) = run(FaultConfig::none());
        let (stalled_instr, stall_faults) = run(heavy_stalls);
        assert_eq!(clean_faults.pcpu_stalls, 0);
        assert!(stall_faults.pcpu_stalls > 0);
        assert!(stall_faults.stalled_quanta >= stall_faults.pcpu_stalls);
        assert!(
            stalled_instr < clean_instr,
            "stalls must cost throughput: {stalled_instr} vs {clean_instr}"
        );
    }
}
