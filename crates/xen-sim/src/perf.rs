//! Machine-level perf introspection: deterministic work-avoidance
//! statistics for the macro-stepping layer, paired with the memory
//! engine's own counters ([`EnginePerf`]).
//!
//! Everything in this module is a pure function of the simulated
//! execution — batch lengths, horizon-closing events, engine counters —
//! so two runs at the same seed export byte-identical JSON regardless of
//! wall-clock, `--jobs`, or host. That is what lets the perf report be
//! pinned by golden files and digests the same way CSVs are.
//!
//! Collection is off by default. [`crate::Machine`] holds an
//! `Option<Box<MachinePerf>>`; until `enable_perf` is called the hot
//! path pays one pointer null-check per quantum and the run's outputs
//! are byte-for-byte those of a perf-unaware build.

use mem_model::EnginePerf;
use sim_core::Json;
use telemetry::BatchHistogram;

/// Which event closed a macro-step horizon (bound the batch length).
///
/// `macro_horizon` walks the event sources in a fixed order and keeps
/// the first one to reach the minimum, so the attribution is
/// deterministic: ties go to the earlier variant in this enum's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HorizonEvent {
    /// The machine was not quiescent (or a residue precondition failed);
    /// the horizon collapsed to a single quantum before any event scan.
    NonQuiescent,
    /// A running VCPU's timeslice expires.
    Timeslice,
    /// A guest workload phase change lands.
    PhaseChange,
    /// A timer-idler wake fires.
    IdlerWake,
    /// A guest thread shuffle fires.
    Shuffle,
    /// An effectful credit tick (PMU / tick-overhead policies) lands.
    CreditTick,
    /// A credit-accounting grant rewrites a VCPU's priority.
    Accounting,
    /// The sampling-period boundary.
    Sampler,
    /// Nothing closed the horizon before the caller's `max_quanta` cap.
    MaxQuanta,
}

/// Number of [`HorizonEvent`] variants (array-index domain).
pub const HORIZON_EVENTS: usize = 9;

impl HorizonEvent {
    /// All variants in index order (matches [`HorizonEvent::index`]).
    pub const ALL: [HorizonEvent; HORIZON_EVENTS] = [
        HorizonEvent::NonQuiescent,
        HorizonEvent::Timeslice,
        HorizonEvent::PhaseChange,
        HorizonEvent::IdlerWake,
        HorizonEvent::Shuffle,
        HorizonEvent::CreditTick,
        HorizonEvent::Accounting,
        HorizonEvent::Sampler,
        HorizonEvent::MaxQuanta,
    ];

    /// Stable dense index for per-event counters.
    pub fn index(self) -> usize {
        match self {
            HorizonEvent::NonQuiescent => 0,
            HorizonEvent::Timeslice => 1,
            HorizonEvent::PhaseChange => 2,
            HorizonEvent::IdlerWake => 3,
            HorizonEvent::Shuffle => 4,
            HorizonEvent::CreditTick => 5,
            HorizonEvent::Accounting => 6,
            HorizonEvent::Sampler => 7,
            HorizonEvent::MaxQuanta => 8,
        }
    }

    /// Stable export name.
    pub fn name(self) -> &'static str {
        match self {
            HorizonEvent::NonQuiescent => "non_quiescent",
            HorizonEvent::Timeslice => "timeslice",
            HorizonEvent::PhaseChange => "phase_change",
            HorizonEvent::IdlerWake => "idler_wake",
            HorizonEvent::Shuffle => "shuffle",
            HorizonEvent::CreditTick => "credit_tick",
            HorizonEvent::Accounting => "accounting",
            HorizonEvent::Sampler => "sampler",
            HorizonEvent::MaxQuanta => "max_quanta",
        }
    }
}

/// Macro-stepping statistics for one machine: every batch length the
/// stepper produced, and — for the quanta where the horizon was actually
/// consulted — which event closed it.
#[derive(Debug, Clone, Default)]
pub struct MachinePerf {
    /// Histogram of every batch length (plain quanta count as length 1).
    pub batches: BatchHistogram,
    /// Horizon consultations (quanta where the macro path was eligible).
    pub horizon_consults: u64,
    /// Per-event horizon closes, indexed by [`HorizonEvent::index`].
    pub horizon_close: [u64; HORIZON_EVENTS],
}

impl MachinePerf {
    /// Record a horizon consultation that produced `batch` quanta closed
    /// by `why`.
    pub fn consult(&mut self, batch: u64, why: HorizonEvent) {
        self.horizon_consults += 1;
        self.horizon_close[why.index()] += 1;
        self.batches.observe(batch);
    }

    /// Record a plain (non-macro-eligible) single quantum.
    pub fn plain_step(&mut self) {
        self.batches.observe(1);
    }
}

/// A point-in-time perf snapshot for one machine (or a merge of many
/// hosts): engine work-avoidance counters plus macro-stepping stats.
///
/// `to_json` is byte-stable: fixed key order, integers only, horizon
/// events listed in declaration order with zero-count events omitted.
#[derive(Debug, Clone, Default)]
pub struct PerfSnapshot {
    /// Machines merged into this snapshot (1 for a single machine).
    pub hosts: u64,
    /// Memory-engine work-avoidance counters (summed across hosts).
    pub engine: EnginePerf,
    /// Macro-stepping batch/horizon statistics (summed across hosts).
    pub machine: MachinePerf,
}

impl PerfSnapshot {
    /// Fold another snapshot into this one (host-index order at the call
    /// site keeps the merge deterministic).
    pub fn merge(&mut self, other: &PerfSnapshot) {
        self.hosts += other.hosts;
        self.engine.accumulate(other.engine);
        self.machine.batches.merge(&other.machine.batches);
        self.machine.horizon_consults += other.machine.horizon_consults;
        for (a, b) in self
            .machine
            .horizon_close
            .iter_mut()
            .zip(&other.machine.horizon_close)
        {
            *a += b;
        }
    }

    /// Horizon-close counts as `(name, count)` pairs in declaration
    /// order, zero counts skipped.
    pub fn horizon_close_named(&self) -> Vec<(&'static str, u64)> {
        HorizonEvent::ALL
            .iter()
            .map(|e| (e.name(), self.machine.horizon_close[e.index()]))
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// Deterministic JSON export (see the type docs).
    pub fn to_json(&self) -> Json {
        let e = &self.engine;
        let engine = Json::Obj(vec![
            ("steps".into(), Json::from(e.steps)),
            ("whole_step_skips".into(), Json::from(e.whole_step_skips)),
            ("node_solves".into(), Json::from(e.node_solves)),
            ("node_clean_skips".into(), Json::from(e.node_clean_skips)),
            ("memo_hits".into(), Json::from(e.memo_hits)),
            ("memo_misses".into(), Json::from(e.memo_misses)),
            ("memo_disables".into(), Json::from(e.memo_disables)),
            ("replay_fires".into(), Json::from(e.replay_fires)),
            ("fp_rounds".into(), Json::from(e.fp_rounds)),
            ("tolerance_exits".into(), Json::from(e.tolerance_exits)),
            ("snap_backs".into(), Json::from(e.snap_backs)),
        ]);
        let close = Json::Obj(
            self.horizon_close_named()
                .into_iter()
                .map(|(k, n)| (k.to_string(), Json::from(n)))
                .collect(),
        );
        Json::Obj(vec![
            ("hosts".into(), Json::from(self.hosts)),
            ("engine".into(), engine),
            ("batches".into(), self.machine.batches.to_json()),
            (
                "horizon_consults".into(),
                Json::from(self.machine.horizon_consults),
            ),
            ("horizon_close".into(), close),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_event_index_matches_all_order() {
        for (i, e) in HorizonEvent::ALL.iter().enumerate() {
            assert_eq!(e.index(), i, "{}", e.name());
        }
    }

    #[test]
    fn snapshot_merge_sums_everything() {
        let mut a = PerfSnapshot {
            hosts: 1,
            ..Default::default()
        };
        a.engine.steps = 10;
        a.machine.consult(8, HorizonEvent::Sampler);
        a.machine.plain_step();

        let mut b = PerfSnapshot {
            hosts: 1,
            ..Default::default()
        };
        b.engine.steps = 5;
        b.machine.consult(4, HorizonEvent::Sampler);
        b.machine.consult(2, HorizonEvent::Timeslice);

        a.merge(&b);
        assert_eq!(a.hosts, 2);
        assert_eq!(a.engine.steps, 15);
        assert_eq!(a.machine.horizon_consults, 3);
        assert_eq!(a.machine.batches.count(), 4);
        assert_eq!(
            a.horizon_close_named(),
            vec![("timeslice", 1), ("sampler", 2)]
        );
    }

    #[test]
    fn snapshot_json_is_stable_and_skips_zero_events() {
        let mut s = PerfSnapshot {
            hosts: 1,
            ..Default::default()
        };
        s.machine.consult(16, HorizonEvent::MaxQuanta);
        let json = s.to_json().to_string();
        assert_eq!(json, s.to_json().to_string());
        assert!(json.contains("\"max_quanta\":1"), "{json}");
        assert!(!json.contains("non_quiescent"), "{json}");
        assert!(json.starts_with("{\"hosts\":1,\"engine\":{\"steps\":0"), "{json}");
    }
}
