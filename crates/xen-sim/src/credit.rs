//! The stock Credit scheduler's NUMA-oblivious load-balance policy.
//!
//! Xen's `csched_load_balance` walks peer PCPUs in cpumask order — i.e.
//! ascending PCPU id from 0 — and steals the first migratable VCPU of
//! sufficient priority it finds, with no regard for NUMA topology, memory
//! placement, or cache behaviour. That is precisely the behaviour the
//! paper's §II-B shows causes heavy remote memory access and unbalanced
//! LLC contention, and it is the baseline every experiment normalizes to.

use crate::policy::{AnalyzerView, PartitionPlan, SchedPolicy, StealContext};
use numa_topo::{PcpuId, VcpuId};

/// NUMA-oblivious stealing, no periodic partitioning, no PMU use.
#[derive(Debug, Clone, Default)]
pub struct CreditPolicy;

impl CreditPolicy {
    pub fn new() -> Self {
        CreditPolicy
    }
}

impl SchedPolicy for CreditPolicy {
    fn name(&self) -> &str {
        "credit"
    }

    fn on_sample(&mut self, _view: AnalyzerView<'_>) -> PartitionPlan {
        PartitionPlan::none()
    }

    fn steal(&mut self, ctx: StealContext<'_>) -> Option<(PcpuId, VcpuId)> {
        // Scan victims in PCPU id order (the machine provides them sorted)
        // and take the first stealable VCPU — head of that queue.
        for (pcpu, _workload, candidates) in ctx.victims {
            if let Some(&vcpu) = candidates.first() {
                return Some((*pcpu, vcpu));
            }
        }
        None
    }

    fn uses_pmu(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topo::presets;

    #[test]
    fn steals_first_candidate_in_pcpu_order() {
        let topo = presets::xeon_e5620();
        let victims = vec![
            (PcpuId::new(0), 2, vec![]),
            (PcpuId::new(2), 3, vec![VcpuId::new(7), VcpuId::new(9)]),
            (PcpuId::new(5), 5, vec![VcpuId::new(1)]),
        ];
        let pressure = vec![0.0; 16];
        let mut p = CreditPolicy::new();
        let got = p.steal(StealContext {
            topo: &topo,
            idle_pcpu: PcpuId::new(6),
            victims: &victims,
            pressure: &pressure,
            would_idle: true,
        });
        // PCPU 2 comes before PCPU 5; head of its queue is vcpu 7 — even
        // though PCPU 6 (node1) is stealing cross-node from node0.
        assert_eq!(got, Some((PcpuId::new(2), VcpuId::new(7))));
    }

    #[test]
    fn returns_none_when_nothing_stealable() {
        let topo = presets::xeon_e5620();
        let victims = vec![(PcpuId::new(0), 1, vec![])];
        let mut p = CreditPolicy::new();
        let got = p.steal(StealContext {
            topo: &topo,
            idle_pcpu: PcpuId::new(1),
            victims: &victims,
            pressure: &[],
            would_idle: true,
        });
        assert_eq!(got, None);
    }

    #[test]
    fn no_partitioning_no_pmu() {
        let mut p = CreditPolicy::new();
        assert!(!p.uses_pmu());
        assert_eq!(p.decision_overhead_us(24), 0.0);
        let topo = presets::xeon_e5620();
        let plan = p.on_sample(AnalyzerView {
            topo: &topo,
            samples: &[],
            vcpus: &[],
        });
        assert!(plan.assignments.is_empty());
    }
}
