//! Xen-like hypervisor simulator.
//!
//! This crate reproduces the scheduling substrate the vProbe prototype was
//! built into: virtual machines with VCPUs, physical CPUs with per-PCPU run
//! queues, and the Credit scheduler's accounting (30 ms credit
//! distribution, 10 ms ticks, UNDER/OVER priorities, work stealing when a
//! PCPU would otherwise idle or run only OVER-priority work).
//!
//! Scheduling *policy* — which VCPU an idle PCPU steals, and how VCPUs are
//! (re)assigned to NUMA nodes at each sampling period — is pluggable
//! through [`policy::SchedPolicy`]. The stock NUMA-oblivious behaviour
//! lives in [`credit::CreditPolicy`]; vProbe and the other baselines live
//! in the `vprobe` crate.
//!
//! The simulation is discrete-time: [`machine::Machine::run`] advances a
//! fixed quantum (1 ms by default), resolves execution through
//! `mem_model::MemoryEngine`, feeds the virtual PMU, and fires credit
//! ticks, accounting, guest-level thread shuffles, and sampling periods on
//! their boundaries.

pub mod credit;
pub mod export;
pub mod machine;
pub mod metrics;
pub mod pcpu;
pub mod perf;
pub mod policy;
pub mod provenance;
pub mod runqueue;
pub mod trace;
pub mod vcpu;
pub mod vm;

pub use credit::CreditPolicy;
pub use machine::{Machine, MachineBuilder, MachineConfig};
pub use metrics::{FaultMetrics, RunMetrics, VmMetrics};
pub use policy::{
    AnalyzerView, DegradeReport, PageMigration, PartitionNote, PartitionPlan, PeriodFeedback,
    SchedPolicy, StealContext, VcpuAssignment, VcpuView,
};
pub use export::{to_chrome, to_jsonl, ChromeContext};
pub use perf::{HorizonEvent, MachinePerf, PerfSnapshot};
pub use provenance::{Decision, DecisionRecord, ProvenanceLog, StealCandidate};
pub use sim_core::{FaultConfig, FaultInjector};
pub use trace::{Event, FaultEvent, TraceLog};
pub use vcpu::{Priority, VcpuState};
pub use vm::{GuestThread, VmConfig, VmRuntime};
