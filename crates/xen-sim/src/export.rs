//! Trace export: JSONL and Chrome Trace Event (Perfetto) serialization.
//!
//! Both exporters walk a [`TraceLog`] front to back and are pure functions
//! of its contents, so byte-identical logs yield byte-identical files. The
//! JSONL form is one self-describing object per line (grep- and
//! `jq`-friendly); the Chrome form renders per-PCPU tracks of which VCPU
//! ran when, with scheduler decisions overlaid as instant events, and an
//! extra "events" track for machine-wide occurrences (sampling periods,
//! partition moves, faults, degrade transitions).
//!
//! Exporters take the machine context they need (PCPU count, VCPU labels)
//! explicitly; `Machine::trace_jsonl` / `Machine::trace_chrome` supply it.

use crate::trace::{Event, FaultEvent, TraceLog};
use sim_core::Json;
use telemetry::ChromeTrace;

/// Serialize a trace as JSON Lines: one event object per line, each with
/// `t_us` (microsecond timestamp) and `kind`, plus event-specific fields.
pub fn to_jsonl(log: &TraceLog) -> String {
    let mut out = String::new();
    for (t, e) in log.iter() {
        let mut fields: Vec<(String, Json)> = vec![("t_us".into(), Json::from(t.as_micros()))];
        let kind: &str = match e {
            Event::SwitchIn { .. } => "switch_in",
            Event::SwitchOut { .. } => "switch_out",
            Event::Steal { .. } => "steal",
            Event::PartitionMove { .. } => "partition_move",
            Event::IdlerWake { .. } => "idler_wake",
            Event::CreditBoost { .. } => "credit_boost",
            Event::SamplePeriod { .. } => "sample_period",
            Event::PageMigration { .. } => "page_migration",
            Event::Degrade { .. } => "degrade",
            Event::Fault(f) => f.kind(),
        };
        if let Event::Fault(_) = e {
            fields.push(("kind".into(), Json::from("fault")));
            fields.push(("fault".into(), Json::from(kind)));
        } else {
            fields.push(("kind".into(), Json::from(kind)));
        }
        match e {
            Event::SwitchIn { vcpu, pcpu } | Event::SwitchOut { vcpu, pcpu } => {
                fields.push(("vcpu".into(), Json::from(vcpu.index())));
                fields.push(("pcpu".into(), Json::from(pcpu.index())));
            }
            Event::Steal {
                thief,
                victim,
                vcpu,
                cross_node,
            } => {
                fields.push(("thief".into(), Json::from(thief.index())));
                fields.push(("victim".into(), Json::from(victim.index())));
                fields.push(("vcpu".into(), Json::from(vcpu.index())));
                fields.push(("cross_node".into(), Json::from(*cross_node)));
            }
            Event::PartitionMove { vcpu, node } => {
                fields.push(("vcpu".into(), Json::from(vcpu.index())));
                fields.push(("node".into(), Json::from(node.index())));
            }
            Event::IdlerWake { vcpu, pcpu } | Event::CreditBoost { vcpu, pcpu } => {
                fields.push(("vcpu".into(), Json::from(vcpu.index())));
                fields.push(("pcpu".into(), Json::from(pcpu.index())));
            }
            Event::SamplePeriod { periods } => {
                fields.push(("periods".into(), Json::from(*periods)));
            }
            Event::PageMigration { vcpu, node, bytes } => {
                fields.push(("vcpu".into(), Json::from(vcpu.index())));
                fields.push(("node".into(), Json::from(node.index())));
                fields.push(("bytes".into(), Json::from(*bytes)));
            }
            Event::Degrade { fallback } => {
                fields.push(("fallback".into(), Json::from(*fallback)));
            }
            Event::Fault(f) => match f {
                FaultEvent::SampleLost { vcpu }
                | FaultEvent::CounterNoise { vcpu }
                | FaultEvent::AffinityCorrupted { vcpu } => {
                    fields.push(("vcpu".into(), Json::from(vcpu.index())));
                }
                FaultEvent::MigrationFailed { vcpu, node } => {
                    fields.push(("vcpu".into(), Json::from(vcpu.index())));
                    fields.push(("node".into(), Json::from(node.index())));
                }
                FaultEvent::MigrationDelayed { vcpu, node, quanta } => {
                    fields.push(("vcpu".into(), Json::from(vcpu.index())));
                    fields.push(("node".into(), Json::from(node.index())));
                    fields.push(("quanta".into(), Json::from(*quanta)));
                }
                FaultEvent::StealFailed { thief } => {
                    fields.push(("thief".into(), Json::from(thief.index())));
                }
                FaultEvent::PcpuStall { pcpu, quanta } => {
                    fields.push(("pcpu".into(), Json::from(pcpu.index())));
                    fields.push(("quanta".into(), Json::from(*quanta)));
                }
                FaultEvent::NodeThrottled { node } => {
                    fields.push(("node".into(), Json::from(node.index())));
                }
            },
        }
        out.push_str(&Json::Obj(fields).to_string());
        out.push('\n');
    }
    out
}

/// Context the Chrome exporter needs from the machine.
pub struct ChromeContext<'a> {
    /// Track count: tids `0..num_pcpus` are PCPUs, tid `num_pcpus` is the
    /// machine-wide "events" track.
    pub num_pcpus: usize,
    /// Human labels (`"vm0/v2"`, `"idler3"`) indexed by VCPU index.
    pub vcpu_labels: &'a [String],
    /// Timestamp to close still-open execution spans at (run end).
    pub end_us: u64,
}

/// Render the trace as a Chrome Trace Event file: one track per PCPU with
/// complete spans for each VCPU occupancy (paired from SwitchIn/SwitchOut,
/// closed at `end_us` if still running), instants for per-PCPU scheduler
/// decisions, and a final "events" track for machine-wide occurrences.
pub fn to_chrome(log: &TraceLog, ctx: &ChromeContext) -> String {
    let mut t = ChromeTrace::new();
    for p in 0..ctx.num_pcpus {
        t.thread_name(p as u64, &format!("pcpu{p}"));
    }
    let events_tid = ctx.num_pcpus as u64;
    t.thread_name(events_tid, "events");

    let label = |v: usize| -> &str {
        ctx.vcpu_labels
            .get(v)
            .map(|s| s.as_str())
            .unwrap_or("vcpu?")
    };
    // Open occupancy per PCPU: (vcpu index, span start in us).
    let mut open: Vec<Option<(usize, u64)>> = vec![None; ctx.num_pcpus];
    let close = |t: &mut ChromeTrace, open: &mut Vec<Option<(usize, u64)>>, p: usize, ts: u64| {
        if let Some((v, start)) = open[p].take() {
            t.complete(p as u64, label(v), start, ts.saturating_sub(start));
        }
    };

    for (time, e) in log.iter() {
        let ts = time.as_micros();
        match e {
            Event::SwitchIn { vcpu, pcpu } => {
                // A missing SwitchOut (dropped from the ring) leaves a
                // stale open span; close it at the hand-over instant.
                close(&mut t, &mut open, pcpu.index(), ts);
                open[pcpu.index()] = Some((vcpu.index(), ts));
            }
            Event::SwitchOut { pcpu, .. } => {
                close(&mut t, &mut open, pcpu.index(), ts);
            }
            Event::Steal {
                thief,
                victim,
                vcpu,
                cross_node,
            } => {
                t.instant(
                    thief.index() as u64,
                    if *cross_node { "steal(remote)" } else { "steal(local)" },
                    ts,
                    vec![
                        ("victim".into(), Json::from(victim.index())),
                        ("vcpu".into(), Json::from(label(vcpu.index()))),
                    ],
                );
            }
            Event::PartitionMove { vcpu, node } => {
                t.instant(
                    events_tid,
                    "partition_move",
                    ts,
                    vec![
                        ("vcpu".into(), Json::from(label(vcpu.index()))),
                        ("node".into(), Json::from(node.index())),
                    ],
                );
            }
            Event::IdlerWake { vcpu, pcpu } => {
                t.instant(
                    pcpu.index() as u64,
                    "idler_wake",
                    ts,
                    vec![("vcpu".into(), Json::from(label(vcpu.index())))],
                );
            }
            Event::CreditBoost { vcpu, pcpu } => {
                t.instant(
                    pcpu.index() as u64,
                    "credit_boost",
                    ts,
                    vec![("vcpu".into(), Json::from(label(vcpu.index())))],
                );
            }
            Event::SamplePeriod { periods } => {
                t.instant(
                    events_tid,
                    "sample_period",
                    ts,
                    vec![("periods".into(), Json::from(*periods))],
                );
            }
            Event::PageMigration { vcpu, node, bytes } => {
                t.instant(
                    events_tid,
                    "page_migration",
                    ts,
                    vec![
                        ("vcpu".into(), Json::from(label(vcpu.index()))),
                        ("node".into(), Json::from(node.index())),
                        ("bytes".into(), Json::from(*bytes)),
                    ],
                );
            }
            Event::Degrade { fallback } => {
                t.instant(
                    events_tid,
                    if *fallback { "degrade(enter)" } else { "degrade(recover)" },
                    ts,
                    vec![],
                );
            }
            Event::Fault(f) => {
                t.instant(
                    events_tid,
                    &format!("fault:{}", f.kind()),
                    ts,
                    vec![],
                );
            }
        }
    }
    for p in 0..ctx.num_pcpus {
        close(&mut t, &mut open, p, ctx.end_us);
    }
    t.to_json_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topo::{NodeId, PcpuId, VcpuId};
    use sim_core::{SimDuration, SimTime};

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::with_capacity(64);
        log.record(
            t(0),
            Event::SwitchIn {
                vcpu: VcpuId::new(3),
                pcpu: PcpuId::new(1),
            },
        );
        log.record(
            t(10),
            Event::Steal {
                thief: PcpuId::new(0),
                victim: PcpuId::new(1),
                vcpu: VcpuId::new(4),
                cross_node: true,
            },
        );
        log.record(
            t(30),
            Event::SwitchOut {
                vcpu: VcpuId::new(3),
                pcpu: PcpuId::new(1),
            },
        );
        log.record(
            t(40),
            Event::Fault(FaultEvent::PcpuStall {
                pcpu: PcpuId::new(1),
                quanta: 3,
            }),
        );
        log.record(t(1000), Event::SamplePeriod { periods: 1 });
        log.record(t(1000), Event::Degrade { fallback: true });
        log.record(
            t(1000),
            Event::PartitionMove {
                vcpu: VcpuId::new(3),
                node: NodeId::new(1),
            },
        );
        log
    }

    #[test]
    fn jsonl_lines_parse_and_carry_schema() {
        let log = sample_log();
        let jsonl = to_jsonl(&log);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), log.len());
        for line in &lines {
            let doc = sim_core::Json::parse(line).expect("every line parses");
            assert!(doc.get("t_us").is_some(), "{line}");
            assert!(doc.get("kind").is_some(), "{line}");
        }
        assert!(lines[0].starts_with("{\"t_us\":0,\"kind\":\"switch_in\""));
        assert!(lines[3].contains("\"kind\":\"fault\",\"fault\":\"pcpu_stall\""));
        assert!(lines[5].contains("\"fallback\":true"));
    }

    #[test]
    fn chrome_pairs_spans_and_closes_at_end() {
        let log = sample_log();
        let ctx = ChromeContext {
            num_pcpus: 2,
            vcpu_labels: &["a", "b", "c", "vm0/v3", "vm1/v0"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
            end_us: 2_000_000,
        };
        let s = to_chrome(&log, &ctx);
        let doc = sim_core::Json::parse(&s).expect("valid JSON");
        let events = match doc.get("traceEvents").unwrap() {
            sim_core::Json::Arr(v) => v.clone(),
            _ => panic!(),
        };
        // 3 thread_name + 1 complete span + 5 instants.
        assert_eq!(events.len(), 9);
        // The span for vm0/v3 on pcpu1 runs 0 → 30ms.
        assert!(s.contains("\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":0,\"dur\":30000,\"name\":\"vm0/v3\""));
        assert!(s.contains("steal(remote)"));
        assert!(s.contains("fault:pcpu_stall"));
    }

    #[test]
    fn chrome_closes_still_open_span_at_end_us() {
        let mut log = TraceLog::with_capacity(8);
        log.record(
            t(5),
            Event::SwitchIn {
                vcpu: VcpuId::new(0),
                pcpu: PcpuId::new(0),
            },
        );
        let labels = vec!["vm0/v0".to_string()];
        let ctx = ChromeContext {
            num_pcpus: 1,
            vcpu_labels: &labels,
            end_us: 9_000,
        };
        let s = to_chrome(&log, &ctx);
        assert!(s.contains("\"ts\":5000,\"dur\":4000"));
    }

    #[test]
    fn exports_are_deterministic() {
        let log = sample_log();
        let labels: Vec<String> = (0..5).map(|i| format!("v{i}")).collect();
        let ctx = ChromeContext {
            num_pcpus: 2,
            vcpu_labels: &labels,
            end_us: 2_000_000,
        };
        assert_eq!(to_jsonl(&log), to_jsonl(&log));
        assert_eq!(to_chrome(&log, &ctx), to_chrome(&log, &ctx));
    }
}
