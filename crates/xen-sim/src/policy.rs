//! The pluggable scheduling-policy interface.
//!
//! The hypervisor owns the mechanism (run queues, credits, migration); a
//! [`SchedPolicy`] supplies the two decisions the paper varies:
//!
//! 1. **work stealing** ([`SchedPolicy::steal`]) — invoked when a PCPU
//!    would otherwise idle or run only OVER-priority work (Xen's
//!    `csched_load_balance`); the stock Credit policy scans PCPUs in id
//!    order, vProbe's Algorithm 2 prefers the local node, heaviest queue,
//!    smallest LLC pressure;
//! 2. **periodic partitioning** ([`SchedPolicy::on_sample`]) — invoked at
//!    the end of each PMU sampling period with per-VCPU samples; vProbe's
//!    Algorithm 1 returns node assignments for the memory-intensive VCPUs.

use numa_topo::{NodeId, PcpuId, Topology, VcpuId, VmId};
use pmu::PmuSample;

/// What the machine knows about each VCPU when consulting a policy.
#[derive(Debug, Clone)]
pub struct VcpuView {
    pub id: VcpuId,
    pub vm: VmId,
    /// Current partitioning restriction (None = may run anywhere).
    pub assigned_node: Option<NodeId>,
}

/// Candidate VCPUs a stealing PCPU may take, per victim PCPU.
#[derive(Debug, Clone)]
pub struct StealContext<'a> {
    pub topo: &'a Topology,
    /// The PCPU looking for work.
    pub idle_pcpu: PcpuId,
    /// For every other PCPU, in id order: its `workload` counter and the
    /// stealable VCPUs in queue order. Hard constraints (priority
    /// threshold, node-assignment compatibility with the idle PCPU) are
    /// already filtered by the machine.
    pub victims: &'a [(PcpuId, usize, Vec<VcpuId>)],
    /// Last sampled LLC access pressure per VCPU (Eq. 2), indexed by VCPU
    /// id. Zero before the first sampling period.
    pub pressure: &'a [f64],
    /// True when the stealing PCPU has nothing runnable at all (it will
    /// idle unless the steal succeeds); false when it merely holds
    /// OVER-priority work and is looking for an upgrade. Algorithm 2
    /// reaches across nodes only in the former case ("to utilize available
    /// CPU resources").
    pub would_idle: bool,
}

/// Analyzer inputs delivered at the end of a sampling period.
#[derive(Debug, Clone)]
pub struct AnalyzerView<'a> {
    pub topo: &'a Topology,
    /// One sample per VCPU, indexed by VCPU id.
    pub samples: &'a [PmuSample],
    pub vcpus: &'a [VcpuView],
}

/// One partitioning decision: pin the VCPU to a node, or release it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcpuAssignment {
    pub vcpu: VcpuId,
    pub node: Option<NodeId>,
}

/// A request to migrate part of a VCPU's working memory to a node (the
/// paper's §VI page-migration extension). The machine migrates up to
/// `max_bytes` of the guest range backing the VCPU's current thread and
/// charges the copy cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMigration {
    pub vcpu: VcpuId,
    pub to_node: NodeId,
    pub max_bytes: u64,
}

/// Health signals for the period just ended, delivered to the policy
/// before [`SchedPolicy::on_sample`] so degradation-aware policies can
/// gate their decisions on input quality.
#[derive(Debug, Clone)]
pub struct PeriodFeedback<'a> {
    /// Per-VCPU sample validity in `[0, 1]`, indexed by VCPU id: 1 for a
    /// clean sample, 0 for a lost one. (Intermediate values are reserved
    /// for partially multiplexed windows.)
    pub sample_validity: &'a [f64],
    /// Migrations requested last period that the machine failed to apply.
    pub failed_migrations: &'a [(VcpuId, NodeId)],
}

/// What a degradation-aware policy did this period, reported back through
/// [`PartitionPlan::report`] so the machine can record it in `RunMetrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradeReport {
    /// The policy skipped partitioning because sample validity fell below
    /// its confidence threshold.
    pub period_skipped: bool,
    /// The policy is running in plain-Credit fallback mode this period.
    pub fallback_active: bool,
    /// The policy entered fallback mode this period.
    pub fallback_entered: bool,
    /// Failed migrations re-requested this period after backoff.
    pub migration_retries: u32,
}

/// Provenance for one partitioning assignment: which rule placed the VCPU
/// and what the per-node alternatives looked like when it fired. Policies
/// fill these only in explain mode ([`SchedPolicy::set_explain`]); the
/// machine copies them into its decision log and they never influence the
/// schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionNote {
    pub vcpu: VcpuId,
    pub node: Option<NodeId>,
    /// Stable machine-readable rule name (e.g. "min-load-local-group").
    pub rule: &'static str,
    /// Candidate set at decision time: `(node index, load)` per node.
    pub candidates: Vec<(usize, u64)>,
}

/// The outcome of a policy's sampling-period pass.
#[derive(Debug, Clone, Default)]
pub struct PartitionPlan {
    pub assignments: Vec<VcpuAssignment>,
    /// When true, assignments pin VCPUs to their node until the next
    /// period (an ablation mode); the paper's partitioning is a one-shot
    /// migration, so the default is soft.
    pub hard: bool,
    /// Page-migration requests (§VI extension); empty for the paper's
    /// schedulers.
    pub page_migrations: Vec<PageMigration>,
    /// Degradation bookkeeping for this period (all-default for policies
    /// without degradation handling).
    pub report: DegradeReport,
    /// Per-assignment provenance, present only in explain mode and only
    /// for policies that produce it. Never affects plan application.
    pub notes: Vec<PartitionNote>,
}

impl PartitionPlan {
    pub fn none() -> Self {
        PartitionPlan::default()
    }
}

/// A scheduling policy. See module docs.
///
/// `Send` is required so a `Machine` (which boxes its policy) can be owned
/// by a fleet host that moves between worker threads; every policy here
/// holds only plain owned state, so the bound costs nothing.
pub trait SchedPolicy: Send {
    /// Human-readable policy name ("credit", "vprobe", "brm", …).
    fn name(&self) -> &str;

    /// End-of-period analysis; return node (re)assignments. The machine
    /// applies them, migrating VCPUs as needed and charging each migration
    /// to the overhead budget.
    fn on_sample(&mut self, view: AnalyzerView<'_>) -> PartitionPlan;

    /// Choose a VCPU to steal for `ctx.idle_pcpu`, or `None` to let the
    /// PCPU run what it has (or idle).
    fn steal(&mut self, ctx: StealContext<'_>) -> Option<(PcpuId, VcpuId)>;

    /// Health signals for the period just ended, delivered immediately
    /// before [`SchedPolicy::on_sample`]. The default ignores them — the
    /// paper's schedulers trust their inputs unconditionally.
    fn on_period_feedback(&mut self, _fb: &PeriodFeedback<'_>) {}

    /// Whether the policy consumes PMU data (controls whether sampling
    /// overhead is charged — the stock Credit scheduler reads no counters).
    fn uses_pmu(&self) -> bool {
        true
    }

    /// Serialization cost of one load-balance decision, in microseconds,
    /// as a function of the number of runnable VCPUs. BRM's global
    /// uncore-penalty lock makes this grow with contention; everything
    /// else is effectively free.
    fn decision_overhead_us(&self, _runnable_vcpus: usize) -> f64 {
        0.0
    }

    /// Serialization cost charged at every per-PCPU counter-update tick,
    /// in microseconds. BRM updates each VCPU's uncore penalty under one
    /// system-wide lock, so every tick waits behind the other runnable
    /// VCPUs' updates; vProbe's per-VCPU state needs no such lock.
    fn tick_overhead_us(&self, _runnable_vcpus: usize) -> f64 {
        0.0
    }

    /// Toggle explain mode: when on, the policy fills
    /// [`PartitionPlan::notes`] and answers [`SchedPolicy::explain_steal`]
    /// with the specific rule that fired. Explain mode must never change
    /// any decision — the machine enables it together with its provenance
    /// log and the byte-identity tests pin the invariant. The default
    /// ignores the toggle (policies without provenance support).
    fn set_explain(&mut self, _on: bool) {}

    /// Name the rule that produced `choice` for this steal context. Called
    /// by the machine only when provenance recording is enabled, after
    /// [`SchedPolicy::steal`] returned. The default covers policies that
    /// don't decompose their choice.
    fn explain_steal(
        &self,
        _ctx: &StealContext<'_>,
        _choice: &Option<(PcpuId, VcpuId)>,
    ) -> &'static str {
        "policy-default"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_plan_none_is_empty() {
        assert!(PartitionPlan::none().assignments.is_empty());
    }

    #[test]
    fn default_trait_methods() {
        struct Noop;
        impl SchedPolicy for Noop {
            fn name(&self) -> &str {
                "noop"
            }
            fn on_sample(&mut self, _: AnalyzerView<'_>) -> PartitionPlan {
                PartitionPlan::none()
            }
            fn steal(&mut self, _: StealContext<'_>) -> Option<(PcpuId, VcpuId)> {
                None
            }
        }
        let p = Noop;
        assert!(p.uses_pmu());
        assert_eq!(p.decision_overhead_us(100), 0.0);
    }
}
