//! Scheduling-event tracing.
//!
//! A bounded in-memory log of the decisions the machine makes — context
//! switches, steals, partition migrations, wakeups, sampling passes — in
//! the spirit of `xentrace`. Disabled by default (zero overhead beyond a
//! branch); when enabled it lets tests and tools audit *why* a schedule
//! came out the way it did, and gives examples something to print.

use numa_topo::{NodeId, PcpuId, VcpuId};
use sim_core::SimTime;
use std::collections::VecDeque;

/// One traced scheduling event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `vcpu` started running on `pcpu`.
    SwitchIn { vcpu: VcpuId, pcpu: PcpuId },
    /// `thief` stole `vcpu` from `victim`'s queue.
    Steal {
        thief: PcpuId,
        victim: PcpuId,
        vcpu: VcpuId,
        cross_node: bool,
    },
    /// The partitioning pass moved `vcpu` to `node`.
    PartitionMove { vcpu: VcpuId, node: NodeId },
    /// A timer idler woke onto `pcpu`.
    IdlerWake { vcpu: VcpuId, pcpu: PcpuId },
    /// A sampling period closed (`periods` completed so far).
    SamplePeriod { periods: u64 },
    /// Pages migrated for `vcpu` toward `node`.
    PageMigration {
        vcpu: VcpuId,
        node: NodeId,
        bytes: u64,
    },
}

/// A bounded ring of timestamped events.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    enabled: bool,
    capacity: usize,
    events: VecDeque<(SimTime, Event)>,
    dropped: u64,
}

impl TraceLog {
    /// A disabled log (records nothing).
    pub fn disabled() -> Self {
        TraceLog::default()
    }

    /// An enabled log keeping the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        TraceLog {
            enabled: true,
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled). Oldest events are dropped
    /// once the ring is full.
    pub fn record(&mut self, t: SimTime, e: Event) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((t, e));
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because of the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, Event)> {
        self.events.iter()
    }

    /// Count events matching a predicate.
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }

    /// Render as `xentrace`-style lines.
    pub fn to_lines(&self) -> Vec<String> {
        self.events
            .iter()
            .map(|(t, e)| match e {
                Event::SwitchIn { vcpu, pcpu } => format!("{t} switch_in  {vcpu} -> {pcpu}"),
                Event::Steal {
                    thief,
                    victim,
                    vcpu,
                    cross_node,
                } => format!(
                    "{t} steal      {thief} <- {victim} ({vcpu}{})",
                    if *cross_node { ", cross-node" } else { "" }
                ),
                Event::PartitionMove { vcpu, node } => {
                    format!("{t} partition  {vcpu} -> {node}")
                }
                Event::IdlerWake { vcpu, pcpu } => format!("{t} idler_wake {vcpu} on {pcpu}"),
                Event::SamplePeriod { periods } => format!("{t} sample     period #{periods}"),
                Event::PageMigration { vcpu, node, bytes } => {
                    format!("{t} page_mig   {vcpu} -> {node} ({bytes} bytes)")
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(
            t(1),
            Event::SwitchIn {
                vcpu: VcpuId::new(0),
                pcpu: PcpuId::new(0),
            },
        );
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn ring_drops_oldest() {
        let mut log = TraceLog::with_capacity(2);
        for i in 0..5 {
            log.record(t(i), Event::SamplePeriod { periods: i });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let kept: Vec<u64> = log
            .iter()
            .map(|(_, e)| match e {
                Event::SamplePeriod { periods } => *periods,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn count_and_lines() {
        let mut log = TraceLog::with_capacity(16);
        log.record(
            t(1),
            Event::Steal {
                thief: PcpuId::new(4),
                victim: PcpuId::new(0),
                vcpu: VcpuId::new(7),
                cross_node: true,
            },
        );
        log.record(
            t(2),
            Event::PartitionMove {
                vcpu: VcpuId::new(7),
                node: NodeId::new(1),
            },
        );
        assert_eq!(log.count(|e| matches!(e, Event::Steal { .. })), 1);
        let lines = log.to_lines();
        assert!(lines[0].contains("cross-node"));
        assert!(lines[1].contains("partition"));
    }
}
