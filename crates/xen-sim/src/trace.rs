//! Scheduling-event tracing.
//!
//! A bounded in-memory log of the decisions the machine makes — context
//! switches, steals, partition migrations, wakeups, sampling passes, fault
//! injections, degrade-mode transitions — in the spirit of `xentrace`.
//! Disabled by default (zero overhead beyond a branch); when enabled it
//! lets tests and tools audit *why* a schedule came out the way it did.
//! The [`crate::export`] module streams a log as JSONL or Chrome Trace
//! Event JSON for Perfetto.
//!
//! Events are recorded in non-decreasing time order (debug-asserted), so
//! the ring can be exported as a valid trace without sorting — including
//! runs that batch quanta with the event-horizon macro-stepper, which by
//! construction emits the same event stream as per-quantum stepping.

use numa_topo::{NodeId, PcpuId, VcpuId};
use sim_core::SimTime;
use std::collections::VecDeque;

/// One injected fault, as seen by the trace. Variants map one-to-one onto
/// the injection sites counted by `sim_core::faults::FaultMetrics`, so a
/// full (undropped) trace contains exactly `FaultMetrics::injected()`
/// fault events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// The sampler lost `vcpu`'s PMU sample this period.
    SampleLost { vcpu: VcpuId },
    /// `vcpu`'s PMU counters were perturbed with multiplicative noise.
    CounterNoise { vcpu: VcpuId },
    /// `vcpu`'s reported node affinity was corrupted.
    AffinityCorrupted { vcpu: VcpuId },
    /// A planned migration of `vcpu` to `node` failed outright.
    MigrationFailed { vcpu: VcpuId, node: NodeId },
    /// A planned migration of `vcpu` to `node` was delayed by `quanta`.
    MigrationDelayed {
        vcpu: VcpuId,
        node: NodeId,
        quanta: u64,
    },
    /// `thief`'s steal attempt was forced to fail.
    StealFailed { thief: PcpuId },
    /// `pcpu` stalled for `quanta` quanta.
    PcpuStall { pcpu: PcpuId, quanta: u64 },
    /// `node`'s memory controller was throttled this period.
    NodeThrottled { node: NodeId },
}

impl FaultEvent {
    /// Stable machine-readable name, used by the JSONL exporter.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultEvent::SampleLost { .. } => "sample_lost",
            FaultEvent::CounterNoise { .. } => "counter_noise",
            FaultEvent::AffinityCorrupted { .. } => "affinity_corrupted",
            FaultEvent::MigrationFailed { .. } => "migration_failed",
            FaultEvent::MigrationDelayed { .. } => "migration_delayed",
            FaultEvent::StealFailed { .. } => "steal_failed",
            FaultEvent::PcpuStall { .. } => "pcpu_stall",
            FaultEvent::NodeThrottled { .. } => "node_throttled",
        }
    }
}

/// One traced scheduling event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `vcpu` started running on `pcpu`.
    SwitchIn { vcpu: VcpuId, pcpu: PcpuId },
    /// `vcpu` stopped running on `pcpu` (descheduled, blocked, or pulled
    /// off by a partition move).
    SwitchOut { vcpu: VcpuId, pcpu: PcpuId },
    /// `thief` stole `vcpu` from `victim`'s queue.
    Steal {
        thief: PcpuId,
        victim: PcpuId,
        vcpu: VcpuId,
        cross_node: bool,
    },
    /// The partitioning pass moved `vcpu` to `node`.
    PartitionMove { vcpu: VcpuId, node: NodeId },
    /// A timer idler woke onto `pcpu`.
    IdlerWake { vcpu: VcpuId, pcpu: PcpuId },
    /// `vcpu` woke with BOOST priority (Credit's latency-hiding path).
    CreditBoost { vcpu: VcpuId, pcpu: PcpuId },
    /// A sampling period closed (`periods` completed so far).
    SamplePeriod { periods: u64 },
    /// Pages migrated for `vcpu` toward `node`.
    PageMigration {
        vcpu: VcpuId,
        node: NodeId,
        bytes: u64,
    },
    /// The vprobe-gd policy entered (`fallback: true`) or left
    /// (`fallback: false`) degraded fallback mode.
    Degrade { fallback: bool },
    /// The fault injector fired.
    Fault(FaultEvent),
}

/// A bounded ring of timestamped events.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    enabled: bool,
    capacity: usize,
    events: VecDeque<(SimTime, Event)>,
    dropped: u64,
    recorded: u64,
}

impl TraceLog {
    /// A disabled log (records nothing).
    pub fn disabled() -> Self {
        TraceLog::default()
    }

    /// An enabled log keeping the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        TraceLog {
            enabled: true,
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
            recorded: 0,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled). Oldest events are dropped
    /// once the ring is full; timestamps must be non-decreasing.
    pub fn record(&mut self, t: SimTime, e: Event) {
        if !self.enabled {
            return;
        }
        debug_assert!(
            self.events.back().is_none_or(|(last, _)| *last <= t),
            "trace events must be recorded in non-decreasing time order"
        );
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((t, e));
        self.recorded += 1;
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because of the capacity bound. Always equals
    /// `recorded() - len()`.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded, dropped or not.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, Event)> {
        self.events.iter()
    }

    /// Count events matching a predicate.
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }

    /// Render as `xentrace`-style lines.
    pub fn to_lines(&self) -> Vec<String> {
        self.events
            .iter()
            .map(|(t, e)| match e {
                Event::SwitchIn { vcpu, pcpu } => format!("{t} switch_in  {vcpu} -> {pcpu}"),
                Event::SwitchOut { vcpu, pcpu } => format!("{t} switch_out {vcpu} off {pcpu}"),
                Event::Steal {
                    thief,
                    victim,
                    vcpu,
                    cross_node,
                } => format!(
                    "{t} steal      {thief} <- {victim} ({vcpu}{})",
                    if *cross_node { ", cross-node" } else { "" }
                ),
                Event::PartitionMove { vcpu, node } => {
                    format!("{t} partition  {vcpu} -> {node}")
                }
                Event::IdlerWake { vcpu, pcpu } => format!("{t} idler_wake {vcpu} on {pcpu}"),
                Event::CreditBoost { vcpu, pcpu } => format!("{t} boost      {vcpu} on {pcpu}"),
                Event::SamplePeriod { periods } => format!("{t} sample     period #{periods}"),
                Event::PageMigration { vcpu, node, bytes } => {
                    format!("{t} page_mig   {vcpu} -> {node} ({bytes} bytes)")
                }
                Event::Degrade { fallback } => format!(
                    "{t} degrade    {}",
                    if *fallback { "enter fallback" } else { "recover" }
                ),
                Event::Fault(f) => format!("{t} fault      {}", f.kind()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(
            t(1),
            Event::SwitchIn {
                vcpu: VcpuId::new(0),
                pcpu: PcpuId::new(0),
            },
        );
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn ring_drops_oldest() {
        let mut log = TraceLog::with_capacity(2);
        for i in 0..5 {
            log.record(t(i), Event::SamplePeriod { periods: i });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.recorded(), 5);
        assert_eq!(log.recorded() - log.len() as u64, log.dropped());
        let kept: Vec<u64> = log
            .iter()
            .map(|(_, e)| match e {
                Event::SamplePeriod { periods } => *periods,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn drop_count_is_exact_at_capacity_boundary() {
        let mut log = TraceLog::with_capacity(3);
        for i in 0..3 {
            log.record(t(i), Event::SamplePeriod { periods: i });
        }
        // Exactly full: nothing dropped yet.
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 0);
        log.record(t(3), Event::SamplePeriod { periods: 3 });
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.recorded(), 4);
    }

    #[test]
    fn events_are_non_decreasing_in_time() {
        let mut log = TraceLog::with_capacity(8);
        for i in [0u64, 0, 1, 1, 5] {
            log.record(t(i), Event::SamplePeriod { periods: i });
        }
        let times: Vec<SimTime> = log.iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    #[cfg(debug_assertions)]
    fn out_of_order_record_panics_in_debug() {
        let mut log = TraceLog::with_capacity(8);
        log.record(t(5), Event::SamplePeriod { periods: 0 });
        log.record(t(4), Event::SamplePeriod { periods: 1 });
    }

    #[test]
    fn count_and_lines() {
        let mut log = TraceLog::with_capacity(16);
        log.record(
            t(1),
            Event::Steal {
                thief: PcpuId::new(4),
                victim: PcpuId::new(0),
                vcpu: VcpuId::new(7),
                cross_node: true,
            },
        );
        log.record(
            t(2),
            Event::PartitionMove {
                vcpu: VcpuId::new(7),
                node: NodeId::new(1),
            },
        );
        log.record(t(3), Event::Degrade { fallback: true });
        log.record(
            t(4),
            Event::Fault(FaultEvent::StealFailed {
                thief: PcpuId::new(2),
            }),
        );
        assert_eq!(log.count(|e| matches!(e, Event::Steal { .. })), 1);
        let lines = log.to_lines();
        assert!(lines[0].contains("cross-node"));
        assert!(lines[1].contains("partition"));
        assert!(lines[2].contains("enter fallback"));
        assert!(lines[3].contains("steal_failed"));
    }
}
