//! Virtual machines and their guest threads.

use mem_model::{AllocPolicy, NodeFree, VmMemoryLayout};
use numa_topo::{VcpuId, VmId};
use sim_core::{SimDuration, SimError, SimTime};
use workloads::phases::PhasedWorkload;
use workloads::WorkloadSpec;

/// Static description of one VM.
#[derive(Debug, Clone)]
pub struct VmConfig {
    pub name: String,
    /// VCPUs the domain is configured with. Guest threads occupy the first
    /// `total_threads()` of them; the rest are timer idlers (see
    /// `idler_period`), matching the paper's setups (8-VCPU VMs running
    /// 4-thread NPB programs).
    pub vcpus: usize,
    pub mem_bytes: u64,
    pub alloc: AllocPolicy,
    /// The applications to run: each spec contributes `spec.threads`
    /// guest threads (four identical SPEC instances = the same spec four
    /// times; a 4-thread NPB program = one spec with `threads == 4`).
    pub workloads: Vec<WorkloadSpec>,
    /// If set, the guest OS rebalances threads across VCPUs with this
    /// period (rotating the thread→VCPU mapping), which gradually
    /// invalidates per-VCPU PMU history — the effect behind the paper's
    /// Fig. 8 observation that over-long sampling periods hurt.
    pub shuffle_period: Option<SimDuration>,
    /// Guest-kernel timer period for the VM's surplus VCPUs: each idler
    /// wakes briefly (at BOOST priority) this often. `None` models a guest
    /// with tickless idle — surplus VCPUs never run.
    pub idler_period: Option<SimDuration>,
    /// Hard-pin every VCPU of this VM to one node (`xl vcpu-pin`); the
    /// Fig. 3 protocol pins its single VCPU to the local node.
    pub pin_node: Option<numa_topo::NodeId>,
    /// Run each workload through alternating memory-heavy/compute-heavy
    /// phases of this period instead of steady behaviour (see
    /// `workloads::phases`): stresses how quickly a policy re-adapts.
    pub phase_period: Option<SimDuration>,
    /// Credit-scheduler weight (Xen default 256): CPU time is shared in
    /// proportion to weight among competing VMs.
    pub weight: u32,
}

impl VmConfig {
    /// Convenience constructor with the common defaults: 10 ms guest timer
    /// on surplus VCPUs, no thread shuffling.
    pub fn new(
        name: impl Into<String>,
        vcpus: usize,
        mem_bytes: u64,
        alloc: AllocPolicy,
        workloads: Vec<WorkloadSpec>,
    ) -> Self {
        VmConfig {
            name: name.into(),
            vcpus,
            mem_bytes,
            alloc,
            workloads,
            shuffle_period: None,
            idler_period: Some(SimDuration::from_millis(30)),
            pin_node: None,
            phase_period: None,
            weight: 256,
        }
    }

    /// Total guest worker threads this VM will run.
    pub fn total_threads(&self) -> usize {
        self.workloads.iter().map(|w| w.threads).sum()
    }

    /// Surplus VCPUs that act as timer idlers.
    pub fn total_idlers(&self) -> usize {
        if self.idler_period.is_some() {
            self.vcpus - self.total_threads()
        } else {
            0
        }
    }

    pub fn validate(&self) -> Result<(), SimError> {
        if self.vcpus == 0 {
            return Err(SimError::InvalidConfig(format!("{}: zero VCPUs", self.name)));
        }
        if self.mem_bytes == 0 {
            return Err(SimError::InvalidConfig(format!("{}: zero memory", self.name)));
        }
        let threads = self.total_threads();
        if threads == 0 {
            return Err(SimError::InvalidConfig(format!(
                "{}: no guest threads",
                self.name
            )));
        }
        if threads > self.vcpus {
            return Err(SimError::InvalidConfig(format!(
                "{}: {threads} threads exceed {} VCPUs",
                self.name, self.vcpus
            )));
        }
        if let Some(p) = self.idler_period {
            if p.is_zero() {
                return Err(SimError::InvalidConfig(format!(
                    "{}: zero idler period",
                    self.name
                )));
            }
        }
        if self.weight == 0 {
            return Err(SimError::InvalidConfig(format!("{}: zero weight", self.name)));
        }
        Ok(())
    }
}

/// One guest thread: a (possibly phased) workload plus the node
/// distribution of the memory it touches.
#[derive(Debug, Clone)]
pub struct GuestThread {
    pub workload: PhasedWorkload,
    /// Fraction of this thread's accesses landing on each node; fixed at
    /// VM creation because machine pages are fixed at domain creation
    /// (page migration is the one exception — it goes through
    /// [`VmRuntime::migrate_thread_pages`], which refreshes the cache).
    pub access_dist: Vec<f64>,
    /// One ready-made access profile per workload phase, so the per-quantum
    /// execution path borrows a profile instead of rebuilding spec + node
    /// distribution every time a VCPU runs.
    profiles: Vec<mem_model::AccessProfile>,
}

impl GuestThread {
    fn new(workload: PhasedWorkload, access_dist: Vec<f64>) -> Self {
        let mut t = GuestThread {
            workload,
            access_dist,
            profiles: Vec::new(),
        };
        t.rebuild_profiles();
        t
    }

    fn rebuild_profiles(&mut self) {
        self.profiles = (0..self.workload.num_phases())
            .map(|i| {
                self.workload
                    .spec_for_phase(i)
                    .access_profile(self.access_dist.clone())
            })
            .collect();
    }

    /// The workload spec in effect at time `t`.
    pub fn spec_at(&self, t: SimTime) -> WorkloadSpec {
        self.workload.spec_at(t)
    }

    /// The cached access profile in effect at time `t` — identical to
    /// `spec_at(t).access_profile(access_dist.clone())` without the
    /// allocations.
    pub fn profile_at(&self, t: SimTime) -> &mem_model::AccessProfile {
        &self.profiles[self.workload.phase_index_at(t)]
    }
}

/// Runtime state of one VM.
#[derive(Debug, Clone)]
pub struct VmRuntime {
    pub id: VmId,
    pub name: String,
    pub layout: VmMemoryLayout,
    pub threads: Vec<GuestThread>,
    /// Ids of this VM's VCPUs: workers first (one per guest thread), then
    /// timer idlers.
    pub vcpu_ids: Vec<VcpuId>,
    pub shuffle_period: Option<SimDuration>,
    pub idler_period: Option<SimDuration>,
    pub pin_node: Option<numa_topo::NodeId>,
    pub weight: u32,
    /// Thread hosted by each worker slot (permuted by shuffles).
    slot_thread: Vec<usize>,
    /// Next swap position for the incremental shuffle.
    shuffle_cursor: usize,
}

impl VmRuntime {
    /// Instantiate a VM: place its memory and derive each thread's access
    /// distribution.
    pub fn create(
        id: VmId,
        cfg: &VmConfig,
        free: &mut NodeFree,
        first_vcpu: u32,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        let layout = VmMemoryLayout::allocate(cfg.mem_bytes, cfg.alloc, free)?;
        let total = cfg.total_threads();
        let mut threads = Vec::with_capacity(total);
        let mut idx = 0;
        for spec in &cfg.workloads {
            for _ in 0..spec.threads {
                let dist = layout.thread_access_distribution(idx, total, spec.shared_frac);
                let workload = match cfg.phase_period {
                    Some(period) => PhasedWorkload::alternating(spec.clone(), period),
                    None => PhasedWorkload::steady(spec.clone()),
                };
                threads.push(GuestThread::new(workload, dist));
                idx += 1;
            }
        }
        let num_vcpus = total + cfg.total_idlers();
        let vcpu_ids = (0..num_vcpus as u32)
            .map(|i| VcpuId::new(first_vcpu + i))
            .collect();
        let slot_thread = (0..total).collect();
        Ok(VmRuntime {
            id,
            name: cfg.name.clone(),
            layout,
            threads,
            vcpu_ids,
            shuffle_period: cfg.shuffle_period,
            idler_period: cfg.idler_period,
            pin_node: cfg.pin_node,
            weight: cfg.weight,
            slot_thread,
            shuffle_cursor: 0,
        })
    }

    pub fn num_workers(&self) -> usize {
        self.threads.len()
    }

    /// The guest thread currently mapped onto worker slot `vm_idx`.
    /// Panics for idler slots.
    pub fn thread_for_slot(&self, vm_idx: usize) -> &GuestThread {
        let n = self.threads.len();
        assert!(vm_idx < n, "slot {vm_idx} is not a worker slot");
        &self.threads[self.slot_thread[vm_idx]]
    }

    /// Guest-OS rebalance: swap one adjacent pair of thread slots. Real
    /// guest schedulers occasionally bounce a single thread between VCPUs
    /// rather than rotating the whole set; each swap slowly invalidates
    /// the hypervisor's per-VCPU PMU history.
    pub fn shuffle(&mut self) {
        let n = self.threads.len();
        if n > 1 {
            let a = self.shuffle_cursor % n;
            let b = (self.shuffle_cursor + 1) % n;
            self.slot_thread.swap(a, b);
            self.shuffle_cursor = (self.shuffle_cursor + 1) % n;
        }
    }

    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Migrate up to `max_bytes` of the pages behind worker slot
    /// `vm_idx`'s current thread to `to_node`; returns bytes moved.
    /// Refreshes every thread's access distribution (extents changed for
    /// the whole VM).
    pub fn migrate_thread_pages(&mut self, vm_idx: usize, to_node: numa_topo::NodeId, max_bytes: u64) -> u64 {
        let n = self.threads.len();
        assert!(vm_idx < n, "slot {vm_idx} is not a worker slot");
        let thread = self.slot_thread[vm_idx];
        let (start, end) = self.layout.thread_range(thread, n);
        let gen_before = self.layout.generation();
        let moved = self.layout.migrate_range(start, end, to_node, max_bytes);
        // Refresh distributions only when the page map actually changed;
        // a no-op migration must not perturb the cached profiles (the
        // engine's dirty tracking would otherwise see false changes).
        if self.layout.generation() != gen_before {
            for (i, t) in self.threads.iter_mut().enumerate() {
                let shared = t.workload.base().shared_frac;
                t.access_dist = self.layout.thread_access_distribution(i, n, shared);
                t.rebuild_profiles();
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{npb, speccpu};

    const GB: u64 = 1024 * 1024 * 1024;

    fn free() -> NodeFree {
        NodeFree::new(vec![12 * GB, 12 * GB])
    }

    fn npb_vm() -> VmConfig {
        VmConfig {
            name: "vm1".into(),
            vcpus: 8,
            mem_bytes: 8 * GB,
            alloc: AllocPolicy::SplitEven,
            workloads: vec![npb::lu()],
            shuffle_period: None,
            idler_period: Some(SimDuration::from_millis(30)),
            pin_node: None,
            phase_period: None,
            weight: 256,
        }
    }

    #[test]
    fn npb_vm_has_four_workers_and_four_idlers() {
        let cfg = npb_vm();
        assert_eq!(cfg.total_threads(), 4);
        assert_eq!(cfg.total_idlers(), 4);
        cfg.validate().unwrap();
        let vm = VmRuntime::create(VmId::new(0), &cfg, &mut free(), 0).unwrap();
        assert_eq!(vm.num_workers(), 4);
        assert_eq!(vm.vcpu_ids.len(), 8);
    }

    #[test]
    fn tickless_guest_has_no_idlers() {
        let mut cfg = npb_vm();
        cfg.idler_period = None;
        assert_eq!(cfg.total_idlers(), 0);
        let vm = VmRuntime::create(VmId::new(0), &cfg, &mut free(), 0).unwrap();
        assert_eq!(vm.vcpu_ids.len(), 4);
    }

    #[test]
    fn four_spec_instances_are_four_threads() {
        let cfg = VmConfig::new(
            "vm1",
            8,
            8 * GB,
            AllocPolicy::MostFree,
            vec![speccpu::soplex(); 4],
        );
        assert_eq!(cfg.total_threads(), 4);
        let vm = VmRuntime::create(VmId::new(0), &cfg, &mut free(), 0).unwrap();
        assert_eq!(vm.num_threads(), 4);
    }

    #[test]
    fn threads_cannot_exceed_vcpus() {
        let mut cfg = npb_vm();
        cfg.vcpus = 2;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn split_vm_threads_have_distinct_affinities() {
        let vm = VmRuntime::create(VmId::new(0), &npb_vm(), &mut free(), 0).unwrap();
        let d0 = &vm.threads[0].access_dist;
        let d3 = &vm.threads[3].access_dist;
        assert!(d0[0] > d0[1], "thread 0 leans node0: {d0:?}");
        assert!(d3[1] > d3[0], "thread 3 leans node1: {d3:?}");
    }

    #[test]
    fn shuffle_swaps_one_pair_at_a_time() {
        let mut vm = VmRuntime::create(VmId::new(0), &npb_vm(), &mut free(), 0).unwrap();
        let t2_before = vm.thread_for_slot(2).access_dist.clone();
        let t3_before = vm.thread_for_slot(3).access_dist.clone();
        // First swap touches slots 0 and 1 only.
        vm.shuffle();
        assert_eq!(t2_before, vm.thread_for_slot(2).access_dist);
        assert_eq!(t3_before, vm.thread_for_slot(3).access_dist);
        // Slots 0/1 exchanged threads.
        // (Their slices share a node, so compare slot→thread indices via a
        // cross-node pair instead: swap cursor now at 1, next swap moves
        // slot 1's thread to slot 2 — a cross-node change.)
        vm.shuffle();
        let t2_after = vm.thread_for_slot(2).access_dist.clone();
        assert_ne!(t2_before, t2_after, "slot 2 should now host a node0 thread");
    }

    #[test]
    fn single_thread_shuffle_is_noop() {
        let cfg = VmConfig::new("vm", 1, GB, AllocPolicy::MostFree, vec![speccpu::povray()]);
        let mut vm = VmRuntime::create(VmId::new(0), &cfg, &mut free(), 0).unwrap();
        let before = vm.thread_for_slot(0).access_dist.clone();
        vm.shuffle();
        assert_eq!(before, vm.thread_for_slot(0).access_dist);
    }

    #[test]
    #[should_panic(expected = "not a worker slot")]
    fn idler_slot_has_no_thread() {
        let vm = VmRuntime::create(VmId::new(0), &npb_vm(), &mut free(), 0).unwrap();
        vm.thread_for_slot(5);
    }

    #[test]
    fn vcpu_ids_are_globally_offset() {
        let vm = VmRuntime::create(VmId::new(1), &npb_vm(), &mut free(), 10).unwrap();
        assert_eq!(vm.vcpu_ids[0], VcpuId::new(10));
        assert_eq!(vm.vcpu_ids[7], VcpuId::new(17));
    }
}

#[cfg(test)]
mod phase_tests {
    use super::*;
    use mem_model::AllocPolicy;
    use workloads::npb;

    const GB: u64 = 1024 * 1024 * 1024;

    #[test]
    fn phase_period_makes_behaviour_time_varying() {
        let mut cfg = VmConfig::new(
            "phased",
            4,
            4 * GB,
            AllocPolicy::MostFree,
            vec![npb::lu()],
        );
        cfg.phase_period = Some(SimDuration::from_secs(2));
        let mut free = NodeFree::new(vec![12 * GB, 12 * GB]);
        let vm = VmRuntime::create(VmId::new(0), &cfg, &mut free, 0).unwrap();
        let t0 = SimTime::ZERO + SimDuration::from_millis(500);
        let t1 = SimTime::ZERO + SimDuration::from_millis(1_500);
        let heavy = vm.threads[0].spec_at(t0);
        let light = vm.threads[0].spec_at(t1);
        assert!(heavy.rpti > light.rpti * 2.0, "{} vs {}", heavy.rpti, light.rpti);
    }

    #[test]
    fn steady_default_is_time_invariant() {
        let cfg = VmConfig::new("steady", 4, 4 * GB, AllocPolicy::MostFree, vec![npb::lu()]);
        let mut free = NodeFree::new(vec![12 * GB, 12 * GB]);
        let vm = VmRuntime::create(VmId::new(0), &cfg, &mut free, 0).unwrap();
        let a = vm.threads[0].spec_at(SimTime::ZERO);
        let b = vm.threads[0].spec_at(SimTime::ZERO + SimDuration::from_secs(100));
        assert_eq!(a.rpti, b.rpti);
    }
}
