//! Run measurement.

use numa_topo::VmId;
use sim_core::{Json, SimDuration, SimTime, TimeSeries};

/// Aggregates for one VM over a run.
#[derive(Debug, Clone, Default)]
pub struct VmMetrics {
    pub instructions: u64,
    pub llc_refs: u64,
    pub llc_misses: u64,
    pub local_accesses: u64,
    pub remote_accesses: u64,
    /// Microseconds of PCPU time its VCPUs consumed.
    pub busy_us: u64,
}

impl VmMetrics {
    /// Total memory accesses (the paper's Fig. 4/5/6/7 (b) metric).
    pub fn total_accesses(&self) -> u64 {
        self.local_accesses + self.remote_accesses
    }

    /// Remote-access ratio (the Fig. 1 metric); 0 when idle.
    pub fn remote_ratio(&self) -> f64 {
        let t = self.total_accesses();
        if t == 0 {
            0.0
        } else {
            self.remote_accesses as f64 / t as f64
        }
    }

    /// Achieved instruction rate per second of *wall* time `elapsed`.
    pub fn instr_per_second(&self, elapsed: SimDuration) -> f64 {
        let s = elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / s
        }
    }

    fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("instructions".into(), Json::from(self.instructions)),
            ("llc_refs".into(), Json::from(self.llc_refs)),
            ("llc_misses".into(), Json::from(self.llc_misses)),
            ("local_accesses".into(), Json::from(self.local_accesses)),
            ("remote_accesses".into(), Json::from(self.remote_accesses)),
            ("busy_us".into(), Json::from(self.busy_us)),
        ])
    }

    fn from_value(v: &Json) -> Result<VmMetrics, String> {
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing/invalid vm metric '{key}'"))
        };
        Ok(VmMetrics {
            instructions: u("instructions")?,
            llc_refs: u("llc_refs")?,
            llc_misses: u("llc_misses")?,
            local_accesses: u("local_accesses")?,
            remote_accesses: u("remote_accesses")?,
            busy_us: u("busy_us")?,
        })
    }
}

/// Fault-injection and graceful-degradation counters for one run. All
/// zero (the `Default`) when fault injection is disabled, in which case
/// the block is omitted from the JSON serialization so fault-free output
/// stays byte-identical to pre-fault-model builds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultMetrics {
    /// PMU samples zeroed by injected sample loss.
    pub samples_lost: u64,
    /// Samples perturbed by counter-multiplexing noise.
    pub counters_noised: u64,
    /// Samples whose node-affinity histogram was corrupted.
    pub affinity_corruptions: u64,
    /// Partitioning migrations that failed outright.
    pub migrations_failed: u64,
    /// Partitioning migrations applied late.
    pub migrations_delayed: u64,
    /// Steal operations that failed after the policy chose a victim.
    pub steals_failed: u64,
    /// Transient PCPU stalls injected.
    pub pcpu_stalls: u64,
    /// Total quanta lost to PCPU stalls.
    pub stalled_quanta: u64,
    /// Node-period combinations that ran throttled.
    pub node_throttled_periods: u64,
    /// Periods the policy skipped for low sample validity.
    pub periods_skipped: u64,
    /// Periods spent in plain-Credit fallback mode.
    pub fallback_periods: u64,
    /// Transitions into fallback mode.
    pub fallbacks_triggered: u64,
    /// Failed migrations re-requested after backoff.
    pub migration_retries: u64,
}

impl FaultMetrics {
    /// Total faults injected into the run (degradation reactions not
    /// included).
    pub fn injected(&self) -> u64 {
        self.samples_lost
            + self.counters_noised
            + self.affinity_corruptions
            + self.migrations_failed
            + self.migrations_delayed
            + self.steals_failed
            + self.pcpu_stalls
            + self.node_throttled_periods
    }

    fn to_value(self) -> Json {
        Json::Obj(vec![
            ("samples_lost".into(), Json::from(self.samples_lost)),
            ("counters_noised".into(), Json::from(self.counters_noised)),
            (
                "affinity_corruptions".into(),
                Json::from(self.affinity_corruptions),
            ),
            (
                "migrations_failed".into(),
                Json::from(self.migrations_failed),
            ),
            (
                "migrations_delayed".into(),
                Json::from(self.migrations_delayed),
            ),
            ("steals_failed".into(), Json::from(self.steals_failed)),
            ("pcpu_stalls".into(), Json::from(self.pcpu_stalls)),
            ("stalled_quanta".into(), Json::from(self.stalled_quanta)),
            (
                "node_throttled_periods".into(),
                Json::from(self.node_throttled_periods),
            ),
            ("periods_skipped".into(), Json::from(self.periods_skipped)),
            ("fallback_periods".into(), Json::from(self.fallback_periods)),
            (
                "fallbacks_triggered".into(),
                Json::from(self.fallbacks_triggered),
            ),
            (
                "migration_retries".into(),
                Json::from(self.migration_retries),
            ),
        ])
    }

    fn from_value(v: &Json) -> Result<FaultMetrics, String> {
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing/invalid fault metric '{key}'"))
        };
        Ok(FaultMetrics {
            samples_lost: u("samples_lost")?,
            counters_noised: u("counters_noised")?,
            affinity_corruptions: u("affinity_corruptions")?,
            migrations_failed: u("migrations_failed")?,
            migrations_delayed: u("migrations_delayed")?,
            steals_failed: u("steals_failed")?,
            pcpu_stalls: u("pcpu_stalls")?,
            stalled_quanta: u("stalled_quanta")?,
            node_throttled_periods: u("node_throttled_periods")?,
            periods_skipped: u("periods_skipped")?,
            fallback_periods: u("fallback_periods")?,
            fallbacks_triggered: u("fallbacks_triggered")?,
            migration_retries: u("migration_retries")?,
        })
    }
}

/// Whole-run measurement.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    pub elapsed: SimDuration,
    pub per_vm: Vec<VmMetrics>,
    /// Total VCPU migrations between PCPUs.
    pub migrations: u64,
    /// Migrations that crossed NUMA nodes.
    pub cross_node_migrations: u64,
    /// Steal operations performed.
    pub steals: u64,
    /// Steal attempts (balance invocations).
    pub steal_attempts: u64,
    /// Attempts that found no candidates at all.
    pub steal_attempts_empty: u64,
    /// Steals broken down by the stolen VCPU's VM.
    pub steals_per_vm: Vec<u64>,
    /// Steals performed with an empty thief queue (true idleness) vs an
    /// OVER-only queue (upgrade steals).
    pub idle_steals: u64,
    /// Partitioning-pass reassignments applied.
    pub partition_moves: u64,
    /// Page-migration operations applied (§VI extension).
    pub page_migrations: u64,
    /// Bytes moved by page migration.
    pub page_migration_bytes: u64,
    /// Quanta during which at least one PCPU idled while work was queued
    /// elsewhere (a load-balance quality signal).
    pub idle_with_work_quanta: u64,
    /// "Overhead time" (PMU collection + partitioning) in microseconds.
    pub overhead_us: f64,
    /// Total busy PCPU time in microseconds.
    pub busy_us: f64,
    /// Per-VM remote-access ratio per sampling period.
    pub remote_ratio_series: Vec<TimeSeries>,
    /// Per-VM instruction throughput (instructions/s) per sampling period.
    pub throughput_series: Vec<TimeSeries>,
    /// Fault-injection and degradation counters; all zero without faults.
    pub faults: FaultMetrics,
    /// Telemetry-registry export (counters, gauges, histograms with their
    /// per-period series); `None` unless `Machine::enable_telemetry` was
    /// called, in which case the block is omitted from the JSON so
    /// telemetry-off runs stay byte-identical to pre-telemetry builds.
    pub telemetry: Option<Json>,
    /// Perf-introspection snapshot (work-avoidance counters, macro-batch
    /// histogram, horizon-close reasons); `None` unless
    /// `Machine::enable_perf` was called, in which case the block is
    /// omitted so perf-off runs stay byte-identical.
    pub perf: Option<Json>,
}

impl RunMetrics {
    pub fn new(num_vms: usize) -> Self {
        RunMetrics {
            per_vm: vec![VmMetrics::default(); num_vms],
            remote_ratio_series: vec![TimeSeries::new(); num_vms],
            throughput_series: vec![TimeSeries::new(); num_vms],
            steals_per_vm: vec![0; num_vms],
            ..Default::default()
        }
    }

    pub fn vm(&self, vm: VmId) -> &VmMetrics {
        &self.per_vm[vm.index()]
    }

    /// Render every per-VM time series as CSV
    /// (`time_s,vm,remote_ratio,instr_per_s` rows) for plotting.
    pub fn series_csv(&self) -> String {
        let mut out = String::from("time_s,vm,remote_ratio,instr_per_s\n");
        for (vm, (rr, tp)) in self
            .remote_ratio_series
            .iter()
            .zip(&self.throughput_series)
            .enumerate()
        {
            for (&(t, r), &(_, ips)) in rr.points().iter().zip(tp.points()) {
                out.push_str(&format!("{:.3},{},{:.4},{:.4e}\n", t.as_secs_f64(), vm, r, ips));
            }
        }
        out
    }

    /// Table III's metric: overhead time as a percentage of execution time.
    pub fn overhead_percent(&self) -> f64 {
        if self.busy_us <= 0.0 {
            0.0
        } else {
            self.overhead_us / self.busy_us * 100.0
        }
    }

    /// Serialize to JSON for external tooling; [`RunMetrics::from_json`]
    /// inverts it exactly (including the per-period series).
    pub fn to_json(&self) -> String {
        let series = |s: &[TimeSeries]| {
            Json::Arr(
                s.iter()
                    .map(|ts| {
                        Json::Arr(
                            ts.points()
                                .iter()
                                .map(|&(t, v)| {
                                    Json::Arr(vec![Json::from(t.as_micros()), Json::Num(v)])
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            )
        };
        let mut doc = Json::Obj(vec![
            ("elapsed_us".into(), Json::from(self.elapsed.as_micros())),
            (
                "per_vm".into(),
                Json::Arr(self.per_vm.iter().map(VmMetrics::to_value).collect()),
            ),
            ("migrations".into(), Json::from(self.migrations)),
            (
                "cross_node_migrations".into(),
                Json::from(self.cross_node_migrations),
            ),
            ("steals".into(), Json::from(self.steals)),
            ("steal_attempts".into(), Json::from(self.steal_attempts)),
            (
                "steal_attempts_empty".into(),
                Json::from(self.steal_attempts_empty),
            ),
            ("steals_per_vm".into(), Json::from(self.steals_per_vm.clone())),
            ("idle_steals".into(), Json::from(self.idle_steals)),
            ("partition_moves".into(), Json::from(self.partition_moves)),
            ("page_migrations".into(), Json::from(self.page_migrations)),
            (
                "page_migration_bytes".into(),
                Json::from(self.page_migration_bytes),
            ),
            (
                "idle_with_work_quanta".into(),
                Json::from(self.idle_with_work_quanta),
            ),
            ("overhead_us".into(), Json::Num(self.overhead_us)),
            ("busy_us".into(), Json::Num(self.busy_us)),
            (
                "remote_ratio_series".into(),
                series(&self.remote_ratio_series),
            ),
            ("throughput_series".into(), series(&self.throughput_series)),
        ]);
        // Emit the fault block only when something fired, so fault-free
        // runs serialize byte-identically to builds without fault support.
        let Json::Obj(fields) = &mut doc else {
            unreachable!("doc is an object")
        };
        if self.faults != FaultMetrics::default() {
            fields.push(("faults".into(), self.faults.to_value()));
        }
        // Likewise the telemetry block exists only when the registry was
        // enabled for the run.
        if let Some(t) = &self.telemetry {
            fields.push(("telemetry".into(), t.clone()));
        }
        // And the perf block only when introspection was enabled.
        if let Some(p) = &self.perf {
            fields.push(("perf".into(), p.clone()));
        }
        doc.to_string()
    }

    /// Parse the [`RunMetrics::to_json`] format.
    pub fn from_json(text: &str) -> Result<RunMetrics, String> {
        let doc = Json::parse(text)?;
        let u = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing/invalid '{key}'"))
        };
        let f = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing/invalid '{key}'"))
        };
        let series = |key: &str| -> Result<Vec<TimeSeries>, String> {
            doc.get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("missing/invalid '{key}'"))?
                .iter()
                .map(|ts| {
                    let mut out = TimeSeries::new();
                    for pt in ts.as_array().ok_or("series must be an array")? {
                        let pair = pt.as_array().ok_or("series point must be a pair")?;
                        let (t, v) = match pair {
                            [t, v] => (
                                t.as_u64().ok_or("bad series time")?,
                                v.as_f64().ok_or("bad series value")?,
                            ),
                            _ => return Err("series point must be a pair".into()),
                        };
                        out.push(SimTime::from_micros(t), v);
                    }
                    Ok(out)
                })
                .collect()
        };
        let per_vm = doc
            .get("per_vm")
            .and_then(Json::as_array)
            .ok_or("missing/invalid 'per_vm'")?
            .iter()
            .map(VmMetrics::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let steals_per_vm = doc
            .get("steals_per_vm")
            .and_then(Json::as_array)
            .ok_or("missing/invalid 'steals_per_vm'")?
            .iter()
            .map(|v| v.as_u64().ok_or_else(|| "bad steal count".to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RunMetrics {
            elapsed: SimDuration::from_micros(u("elapsed_us")?),
            per_vm,
            migrations: u("migrations")?,
            cross_node_migrations: u("cross_node_migrations")?,
            steals: u("steals")?,
            steal_attempts: u("steal_attempts")?,
            steal_attempts_empty: u("steal_attempts_empty")?,
            steals_per_vm,
            idle_steals: u("idle_steals")?,
            partition_moves: u("partition_moves")?,
            page_migrations: u("page_migrations")?,
            page_migration_bytes: u("page_migration_bytes")?,
            idle_with_work_quanta: u("idle_with_work_quanta")?,
            overhead_us: f("overhead_us")?,
            busy_us: f("busy_us")?,
            remote_ratio_series: series("remote_ratio_series")?,
            throughput_series: series("throughput_series")?,
            faults: match doc.get("faults") {
                Some(v) => FaultMetrics::from_value(v)?,
                None => FaultMetrics::default(),
            },
            telemetry: doc.get("telemetry").cloned(),
            perf: doc.get("perf").cloned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_metric_derivations() {
        let m = VmMetrics {
            instructions: 1_000,
            llc_refs: 100,
            llc_misses: 50,
            local_accesses: 10,
            remote_accesses: 40,
            busy_us: 1_000,
        };
        assert_eq!(m.total_accesses(), 50);
        assert!((m.remote_ratio() - 0.8).abs() < 1e-12);
        assert!((m.instr_per_second(SimDuration::from_secs(2)) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn empty_vm_is_zero() {
        let m = VmMetrics::default();
        assert_eq!(m.remote_ratio(), 0.0);
        assert_eq!(m.instr_per_second(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn fault_block_omitted_when_clean() {
        let r = RunMetrics::new(1);
        let json = r.to_json();
        assert!(!json.contains("faults"));
        let back = RunMetrics::from_json(&json).unwrap();
        assert_eq!(back.faults, FaultMetrics::default());
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn fault_block_round_trips_when_present() {
        let mut r = RunMetrics::new(1);
        r.faults.samples_lost = 3;
        r.faults.migrations_failed = 2;
        r.faults.fallbacks_triggered = 1;
        r.faults.migration_retries = 4;
        let json = r.to_json();
        assert!(json.contains("\"faults\""));
        let back = RunMetrics::from_json(&json).unwrap();
        assert_eq!(back.faults, r.faults);
        assert_eq!(back.to_json(), json);
        assert_eq!(r.faults.injected(), 5);
    }

    #[test]
    fn telemetry_block_omitted_when_none_and_round_trips_when_some() {
        let clean = RunMetrics::new(1);
        assert!(!clean.to_json().contains("telemetry"));

        let mut r = RunMetrics::new(1);
        r.telemetry = Some(Json::Obj(vec![(
            "counters".into(),
            Json::Arr(vec![Json::Obj(vec![
                ("name".into(), Json::from("steals_local")),
                ("total".into(), Json::from(7u64)),
            ])]),
        )]));
        let json = r.to_json();
        assert!(json.contains("\"telemetry\""));
        let back = RunMetrics::from_json(&json).unwrap();
        assert_eq!(back.telemetry, r.telemetry);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn overhead_percent() {
        let mut r = RunMetrics::new(1);
        r.overhead_us = 10.0;
        r.busy_us = 100_000.0;
        assert!((r.overhead_percent() - 0.01).abs() < 1e-9);
        assert_eq!(RunMetrics::new(0).overhead_percent(), 0.0);
    }
}
