//! Decision provenance: a structured log of *why* each scheduling choice
//! came out the way it did.
//!
//! The [`crate::trace`] log records *what* happened (a steal, a partition
//! move); this log records the decision behind it — the candidate set the
//! chooser saw, the per-candidate score components (LLC pressure estimate,
//! queue occupancy, NUMA distance, credit priority), the winner, and the
//! stable name of the rule that fired. Records are emitted at every
//! placement, steal, partition, page-migration, and degrade-fallback site
//! in [`crate::Machine`], gated by the same enabled-flag discipline as
//! telemetry: disabled, each site costs one branch and every metric, CSV,
//! and trace byte stays identical.
//!
//! Records carry a sequence number so downstream queries (`explain vm`,
//! `explain steal`) can reconstruct exact decision order even when several
//! decisions share a timestamp. Recording makes no RNG draws and never
//! feeds back into the schedule.

use numa_topo::{NodeId, PcpuId, VcpuId};
use sim_core::{Json, SimTime};
use std::collections::VecDeque;

use crate::policy::PartitionNote;
use crate::vcpu::Priority;

/// Stable lowercase name for a credit priority, used in exports.
pub fn priority_name(p: Priority) -> &'static str {
    match p {
        Priority::Boost => "boost",
        Priority::Under => "under",
        Priority::Over => "over",
    }
}

/// One stealable VCPU as the steal policy saw it, with the score
/// components vProbe's Algorithm 2 (and any other policy) decides on.
#[derive(Debug, Clone, PartialEq)]
pub struct StealCandidate {
    pub pcpu: PcpuId,
    pub vcpu: VcpuId,
    /// Victim PCPU's node.
    pub node: NodeId,
    /// NUMA distance victim node → thief node (the locality penalty).
    pub dist: u32,
    /// Victim queue occupancy (its `workload` counter).
    pub workload: usize,
    /// Candidate's last sampled LLC access pressure (intensity estimate).
    pub pressure: f64,
    /// Candidate's credit state at decision time.
    pub prio: Priority,
}

/// The decision-specific payload of a [`DecisionRecord`].
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// A steal decision: `thief` examined `candidates` and took `chosen`
    /// (or nothing). Only recorded when at least one candidate existed.
    Steal {
        thief: PcpuId,
        thief_node: NodeId,
        would_idle: bool,
        chosen: Option<(PcpuId, VcpuId)>,
        candidates: Vec<StealCandidate>,
    },
    /// A wakeup placement: `vcpu` woke and was placed on `chosen` out of
    /// `num_candidates` allowed PCPUs.
    WakePlacement {
        vcpu: VcpuId,
        chosen: PcpuId,
        num_candidates: usize,
    },
    /// A node-level placement: `vcpu` was queued on `chosen` among the
    /// `num_candidates` PCPUs of `node`.
    Placement {
        vcpu: VcpuId,
        node: NodeId,
        chosen: PcpuId,
        num_candidates: usize,
    },
    /// A partitioning assignment from the sampling-period pass, with the
    /// per-node candidate loads the partitioner weighed (empty when the
    /// policy supplied no note for the assignment).
    Partition {
        vcpu: VcpuId,
        node: Option<NodeId>,
        candidates: Vec<(usize, u64)>,
    },
    /// A page-migration grant: `bytes` of `vcpu`'s working set moved
    /// toward `node`.
    PageMigration {
        vcpu: VcpuId,
        node: NodeId,
        bytes: u64,
    },
    /// The policy entered (`fallback: true`) or left degraded fallback.
    Degrade { fallback: bool },
}

impl Decision {
    /// Stable machine-readable name, used by the JSONL exporter.
    pub fn kind(&self) -> &'static str {
        match self {
            Decision::Steal { .. } => "steal",
            Decision::WakePlacement { .. } => "wake_placement",
            Decision::Placement { .. } => "placement",
            Decision::Partition { .. } => "partition",
            Decision::PageMigration { .. } => "page_migration",
            Decision::Degrade { .. } => "degrade",
        }
    }
}

/// One recorded decision: when, in what order, under which rule, and the
/// full choice context.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    pub t: SimTime,
    /// Global decision sequence number (0-based, never reused).
    pub seq: u64,
    /// Stable name of the rule that fired (e.g. "local-heaviest-min-pressure").
    pub rule: &'static str,
    pub decision: Decision,
}

/// A bounded ring of decision records, mirroring [`crate::trace::TraceLog`].
#[derive(Debug, Clone, Default)]
pub struct ProvenanceLog {
    enabled: bool,
    capacity: usize,
    records: VecDeque<DecisionRecord>,
    dropped: u64,
    recorded: u64,
}

impl ProvenanceLog {
    /// A disabled log (records nothing).
    pub fn disabled() -> Self {
        ProvenanceLog::default()
    }

    /// An enabled log keeping the most recent `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        ProvenanceLog {
            enabled: true,
            capacity,
            records: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
            recorded: 0,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a decision (no-op when disabled). Oldest records drop once
    /// the ring is full; timestamps must be non-decreasing.
    pub fn record(&mut self, t: SimTime, rule: &'static str, decision: Decision) {
        if !self.enabled {
            return;
        }
        debug_assert!(
            self.records.back().is_none_or(|r| r.t <= t),
            "decisions must be recorded in non-decreasing time order"
        );
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(DecisionRecord {
            t,
            seq: self.recorded,
            rule,
            decision,
        });
        self.recorded += 1;
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records dropped to the capacity bound; equals `recorded() - len()`.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total records ever recorded, dropped or not.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    pub fn iter(&self) -> impl Iterator<Item = &DecisionRecord> {
        self.records.iter()
    }

    /// Count records matching a predicate.
    pub fn count(&self, pred: impl Fn(&Decision) -> bool) -> usize {
        self.records.iter().filter(|r| pred(&r.decision)).count()
    }
}

/// Convert a policy's [`PartitionNote`] into the decision payload the
/// machine records when it applies the corresponding assignment.
pub fn decision_from_note(note: &PartitionNote) -> Decision {
    Decision::Partition {
        vcpu: note.vcpu,
        node: note.node,
        candidates: note.candidates.clone(),
    }
}

/// Serialize a provenance log as JSON Lines: one decision per line with
/// `t_us`, `seq`, `kind`, `rule`, then kind-specific fields.
pub fn to_jsonl(log: &ProvenanceLog) -> String {
    let mut out = String::new();
    for r in log.iter() {
        let mut fields: Vec<(String, Json)> = vec![
            ("t_us".into(), Json::from(r.t.as_micros())),
            ("seq".into(), Json::from(r.seq)),
            ("kind".into(), Json::from(r.decision.kind())),
            ("rule".into(), Json::from(r.rule)),
        ];
        match &r.decision {
            Decision::Steal {
                thief,
                thief_node,
                would_idle,
                chosen,
                candidates,
            } => {
                fields.push(("thief".into(), Json::from(thief.index())));
                fields.push(("thief_node".into(), Json::from(thief_node.index())));
                fields.push(("would_idle".into(), Json::from(*would_idle)));
                match chosen {
                    Some((victim, vcpu)) => {
                        fields.push(("victim".into(), Json::from(victim.index())));
                        fields.push(("vcpu".into(), Json::from(vcpu.index())));
                    }
                    None => {
                        fields.push(("victim".into(), Json::Null));
                        fields.push(("vcpu".into(), Json::Null));
                    }
                }
                let cands = candidates
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("pcpu".into(), Json::from(c.pcpu.index())),
                            ("vcpu".into(), Json::from(c.vcpu.index())),
                            ("node".into(), Json::from(c.node.index())),
                            ("dist".into(), Json::from(u64::from(c.dist))),
                            ("workload".into(), Json::from(c.workload)),
                            ("pressure".into(), Json::Num(c.pressure)),
                            ("prio".into(), Json::from(priority_name(c.prio))),
                        ])
                    })
                    .collect();
                fields.push(("candidates".into(), Json::Arr(cands)));
            }
            Decision::WakePlacement {
                vcpu,
                chosen,
                num_candidates,
            } => {
                fields.push(("vcpu".into(), Json::from(vcpu.index())));
                fields.push(("pcpu".into(), Json::from(chosen.index())));
                fields.push(("num_candidates".into(), Json::from(*num_candidates)));
            }
            Decision::Placement {
                vcpu,
                node,
                chosen,
                num_candidates,
            } => {
                fields.push(("vcpu".into(), Json::from(vcpu.index())));
                fields.push(("node".into(), Json::from(node.index())));
                fields.push(("pcpu".into(), Json::from(chosen.index())));
                fields.push(("num_candidates".into(), Json::from(*num_candidates)));
            }
            Decision::Partition {
                vcpu,
                node,
                candidates,
            } => {
                fields.push(("vcpu".into(), Json::from(vcpu.index())));
                fields.push((
                    "node".into(),
                    node.map(|n| Json::from(n.index())).unwrap_or(Json::Null),
                ));
                let cands = candidates
                    .iter()
                    .map(|&(n, load)| {
                        Json::Obj(vec![
                            ("node".into(), Json::from(n)),
                            ("load".into(), Json::from(load)),
                        ])
                    })
                    .collect();
                fields.push(("candidates".into(), Json::Arr(cands)));
            }
            Decision::PageMigration { vcpu, node, bytes } => {
                fields.push(("vcpu".into(), Json::from(vcpu.index())));
                fields.push(("node".into(), Json::from(node.index())));
                fields.push(("bytes".into(), Json::from(*bytes)));
            }
            Decision::Degrade { fallback } => {
                fields.push(("fallback".into(), Json::from(*fallback)));
            }
        }
        out.push_str(&Json::Obj(fields).to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn steal_decision() -> Decision {
        Decision::Steal {
            thief: PcpuId::new(4),
            thief_node: NodeId::new(1),
            would_idle: true,
            chosen: Some((PcpuId::new(0), VcpuId::new(7))),
            candidates: vec![StealCandidate {
                pcpu: PcpuId::new(0),
                vcpu: VcpuId::new(7),
                node: NodeId::new(0),
                dist: 21,
                workload: 3,
                pressure: 14.25,
                prio: Priority::Under,
            }],
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = ProvenanceLog::disabled();
        log.record(t(1), "x", steal_decision());
        assert!(log.is_empty());
        assert!(!log.is_enabled());
        assert_eq!(to_jsonl(&log), "");
    }

    #[test]
    fn ring_drops_oldest_and_keeps_seq() {
        let mut log = ProvenanceLog::with_capacity(2);
        for i in 0..5 {
            log.record(t(i), "r", Decision::Degrade { fallback: false });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.recorded(), 5);
        let seqs: Vec<u64> = log.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn jsonl_schema_is_stable() {
        let mut log = ProvenanceLog::with_capacity(16);
        log.record(t(10), "local-heaviest-min-pressure", steal_decision());
        log.record(
            t(1000),
            "min-load-local-group",
            Decision::Partition {
                vcpu: VcpuId::new(3),
                node: Some(NodeId::new(1)),
                candidates: vec![(0, 4), (1, 2)],
            },
        );
        log.record(
            t(1000),
            "uniform-random",
            Decision::Placement {
                vcpu: VcpuId::new(3),
                node: NodeId::new(1),
                chosen: PcpuId::new(5),
                num_candidates: 4,
            },
        );
        log.record(t(2000), "dark-streak", Decision::Degrade { fallback: true });
        let jsonl = to_jsonl(&log);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let doc = Json::parse(line).expect("every line parses");
            assert!(doc.get("t_us").is_some(), "{line}");
            assert!(doc.get("seq").is_some(), "{line}");
            assert!(doc.get("kind").is_some(), "{line}");
            assert!(doc.get("rule").is_some(), "{line}");
        }
        assert!(lines[0].starts_with(
            "{\"t_us\":10000,\"seq\":0,\"kind\":\"steal\",\"rule\":\"local-heaviest-min-pressure\""
        ));
        assert!(lines[0].contains("\"prio\":\"under\""));
        assert!(lines[1].contains("\"candidates\":[{\"node\":0,\"load\":4},{\"node\":1,\"load\":2}]"));
        assert!(lines[2].contains("\"num_candidates\":4"));
        assert!(lines[3].contains("\"fallback\":true"));
    }

    #[test]
    fn export_is_deterministic() {
        let mut log = ProvenanceLog::with_capacity(8);
        log.record(t(1), "r", steal_decision());
        assert_eq!(to_jsonl(&log), to_jsonl(&log));
    }
}
