//! Per-VCPU scheduler state.

use numa_topo::{NodeId, PcpuId, VcpuId, VmId};
use sim_core::SimTime;

/// Credit-scheduler priority.
///
/// BOOST is Xen's latency hack: a VCPU that wakes while still holding
/// credits runs ahead of UNDER work until its next tick. The guest-timer
/// wakeups of otherwise-idle VCPUs arrive at BOOST, preempting the
/// CPU-bound workers — the churn engine behind the Credit scheduler's
/// migration behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Freshly woken with credits: runs first.
    Boost,
    /// Still holds credits.
    Under,
    /// Out of credits — runs only when nothing better is available.
    Over,
}

/// What a VCPU does when it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcpuKind {
    /// Hosts a guest application thread; always runnable.
    Worker,
    /// One of the VM's surplus VCPUs: the guest has no thread for it, but
    /// its kernel timer still wakes it briefly and periodically.
    TimerIdler,
}

/// Dynamic state of one VCPU.
///
/// Mirrors the paper's additions to `struct csched_vcpu`: the analyzer's
/// `node_affinity`, `LLC_pressure`, and `vcpu_type` live policy-side; the
/// machine holds the stock credit fields plus the partitioning pin
/// (`assigned_node`).
#[derive(Debug, Clone)]
pub struct VcpuState {
    pub id: VcpuId,
    pub vm: VmId,
    /// Index of this VCPU within its VM (selects the guest thread slot for
    /// workers).
    pub vm_idx: usize,
    pub kind: VcpuKind,
    /// Remaining credits; sign determines UNDER/OVER.
    pub credits: i32,
    pub priority: Priority,
    /// Blocked in the guest (only timer idlers block).
    pub blocked: bool,
    /// When a blocked idler next wakes.
    pub next_wake: SimTime,
    /// Quanta left in the idler's current wake burst.
    pub burst_left: u32,
    /// PCPU currently executing this VCPU, if any.
    pub running_on: Option<PcpuId>,
    /// PCPU whose run queue holds this VCPU, if queued.
    pub queued_on: Option<PcpuId>,
    /// PCPU this VCPU last ran on (for migration detection).
    pub last_pcpu: Option<PcpuId>,
    /// Quanta left in the current timeslice.
    pub timeslice_left: u32,
    /// Quanta of post-migration cache cold-start remaining.
    pub cold_quanta: u32,
    /// Node this VCPU was pinned to by the partitioning pass, if any.
    pub assigned_node: Option<NodeId>,
    /// Permanent administrative pin (VmConfig::pin_node): survives every
    /// partitioning pass.
    pub admin_pinned: bool,
    /// Total quanta this VCPU has executed (service received).
    pub run_quanta: u64,
    /// Multiplicative memory-intensity fluctuation (Ornstein-Uhlenbeck
    /// around 1.0): real programs are bursty, so short PMU windows see
    /// noisy RPTI estimates while long windows average out.
    pub intensity_noise: f64,
}

impl VcpuState {
    pub fn new(id: VcpuId, vm: VmId, vm_idx: usize, kind: VcpuKind) -> Self {
        VcpuState {
            id,
            vm,
            vm_idx,
            kind,
            credits: 0,
            priority: Priority::Under,
            blocked: false,
            next_wake: SimTime::ZERO,
            burst_left: 0,
            running_on: None,
            queued_on: None,
            last_pcpu: None,
            timeslice_left: 0,
            cold_quanta: 0,
            assigned_node: None,
            admin_pinned: false,
            run_quanta: 0,
            intensity_noise: 1.0,
        }
    }

    /// Apply a credit delta; recompute priority from the sign (clearing any
    /// BOOST, as Xen's tick does). The clamp bounds how much entitlement a
    /// waiting VCPU can bank and how deep a deficit a running one can dig;
    /// it spans several accounting periods so that persistent over-service
    /// is remembered long enough for the UNDER/OVER feedback to correct it.
    pub fn adjust_credits(&mut self, delta: i32) {
        self.credits = (self.credits + delta).clamp(-900, 900);
        self.priority = if self.credits >= 0 {
            Priority::Under
        } else {
            Priority::Over
        };
    }

    /// Apply `n` identical per-quantum debits in closed form. Each debit
    /// subtracts `per_quantum` (> 0) and clamps at -900; once the floor is
    /// hit every further debit is a no-op, so the sequence collapses to
    /// `max(-900, credits - n·per_quantum)` with the same final priority as
    /// `n` calls to [`VcpuState::adjust_credits`] with `-per_quantum`.
    pub fn debit_n(&mut self, per_quantum: i32, n: u64) {
        debug_assert!(per_quantum > 0);
        let debited = self.credits as i64 - per_quantum as i64 * n as i64;
        self.credits = debited.max(-900) as i32;
        self.priority = if self.credits >= 0 {
            Priority::Under
        } else {
            Priority::Over
        };
    }

    /// Wake-time priority: BOOST if the VCPU still holds credits.
    pub fn wake_priority(&self) -> Priority {
        if self.credits >= 0 {
            Priority::Boost
        } else {
            Priority::Over
        }
    }

    /// Whether the VCPU may run on a PCPU of `node`, honoring a
    /// partitioning assignment if present.
    pub fn allowed_on(&self, node: NodeId) -> bool {
        self.assigned_node.is_none_or(|n| n == node)
    }

    pub fn is_running(&self) -> bool {
        self.running_on.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vcpu() -> VcpuState {
        VcpuState::new(VcpuId::new(0), VmId::new(0), 0, VcpuKind::Worker)
    }

    #[test]
    fn starts_under_with_zero_credits() {
        let v = vcpu();
        assert_eq!(v.priority, Priority::Under);
        assert_eq!(v.credits, 0);
        assert!(!v.is_running());
        assert!(!v.blocked);
    }

    #[test]
    fn priority_follows_credit_sign() {
        let mut v = vcpu();
        v.adjust_credits(-100);
        assert_eq!(v.priority, Priority::Over);
        v.adjust_credits(150);
        assert_eq!(v.priority, Priority::Under);
    }

    #[test]
    fn credits_clamped() {
        let mut v = vcpu();
        for _ in 0..10 {
            v.adjust_credits(300);
        }
        assert_eq!(v.credits, 900);
        for _ in 0..10 {
            v.adjust_credits(-300);
        }
        assert_eq!(v.credits, -900);
    }

    #[test]
    fn boost_orders_first() {
        assert!(Priority::Boost < Priority::Under);
        assert!(Priority::Under < Priority::Over);
    }

    #[test]
    fn wake_priority_boosts_only_with_credits() {
        let mut v = vcpu();
        assert_eq!(v.wake_priority(), Priority::Boost);
        v.adjust_credits(-100);
        assert_eq!(v.wake_priority(), Priority::Over);
    }

    #[test]
    fn tick_clears_boost() {
        let mut v = vcpu();
        v.priority = Priority::Boost;
        v.adjust_credits(-100);
        assert_eq!(v.priority, Priority::Over);
    }

    #[test]
    fn affinity_restricts_nodes() {
        let mut v = vcpu();
        assert!(v.allowed_on(NodeId::new(0)));
        assert!(v.allowed_on(NodeId::new(1)));
        v.assigned_node = Some(NodeId::new(1));
        assert!(!v.allowed_on(NodeId::new(0)));
        assert!(v.allowed_on(NodeId::new(1)));
    }
}
