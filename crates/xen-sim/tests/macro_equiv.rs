//! Golden equivalence of the event-horizon macro-stepper.
//!
//! Macro-stepping is an execution strategy, not a model change: every
//! metric and series a machine emits must be byte-identical whether quanta
//! are executed one at a time or batched to the event horizon. These tests
//! pin that contract at the `Machine` level; the workspace-level property
//! tests extend it across every scheduler policy.

use mem_model::AllocPolicy;
use numa_topo::presets;
use sim_core::{FaultConfig, SimDuration};
use workloads::{hungry, speccpu, WorkloadSpec};
use xen_sim::{CreditPolicy, Machine, MachineBuilder, MachineConfig, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

struct Setup {
    seed: u64,
    faults: FaultConfig,
    noise_sd: f64,
    shuffle: Option<SimDuration>,
    /// (vcpus, workloads) per VM; fewer workloads than VCPUs gives the
    /// surplus to timer idlers, whose wakes bound the event horizon.
    vms: Vec<(usize, Vec<WorkloadSpec>)>,
}

fn build(s: &Setup, macro_step: bool) -> Machine {
    let cfg = MachineConfig {
        seed: s.seed,
        faults: s.faults.clone(),
        intensity_noise_sd: s.noise_sd,
        macro_step,
        ..MachineConfig::default()
    };
    let mut b = MachineBuilder::new(presets::xeon_e5620())
        .config(cfg)
        .policy(Box::new(CreditPolicy::new()));
    for (i, (vcpus, workloads)) in s.vms.iter().enumerate() {
        let mut vm = VmConfig::new(
            format!("vm{i}"),
            *vcpus,
            2 * GB,
            AllocPolicy::MostFree,
            workloads.clone(),
        );
        vm.shuffle_period = s.shuffle;
        b = b.add_vm(vm);
    }
    b.build().unwrap()
}

/// Run the setup both ways and demand byte-identical outputs; returns the
/// macro machine's batch count so callers can assert engagement.
fn assert_equivalent(s: &Setup, secs: u64) -> u64 {
    let mut fast = build(s, true);
    let mut slow = build(s, false);
    fast.run(SimDuration::from_secs(secs));
    slow.run(SimDuration::from_secs(secs));
    assert_eq!(slow.macro_batches(), 0, "reference stepper must not batch");
    assert_eq!(
        fast.metrics().to_json(),
        slow.metrics().to_json(),
        "RunMetrics diverged (seed {})",
        s.seed
    );
    assert_eq!(
        fast.metrics().series_csv(),
        slow.metrics().series_csv(),
        "series diverged (seed {})",
        s.seed
    );
    fast.macro_batches()
}

/// A fully quiescent machine — noise-free, saturated, single-phase, no
/// idlers — must actually take the macro path, and still match the
/// reference stepper byte for byte.
#[test]
fn quiescent_machine_batches_and_matches_reference() {
    for seed in [1, 7, 42] {
        let s = Setup {
            seed,
            faults: FaultConfig::none(),
            noise_sd: 0.0,
            shuffle: None,
            vms: vec![(8, vec![hungry::hungry_loop(); 8])],
        };
        let batches = assert_equivalent(&s, 2);
        assert!(batches > 0, "macro-stepper never engaged (seed {seed})");
    }
}

/// Timer idlers, guest shuffles, and memory-bound phases all bound the
/// event horizon; batching must weave between them without drifting.
#[test]
fn horizon_events_bound_batches_without_drift() {
    for seed in [1, 7, 42] {
        let s = Setup {
            seed,
            faults: FaultConfig::none(),
            noise_sd: 0.0,
            shuffle: Some(SimDuration::from_millis(50)),
            vms: vec![
                (8, vec![speccpu::soplex(); 6]),
                (4, vec![hungry::hungry_loop(); 4]),
            ],
        };
        assert_equivalent(&s, 2);
    }
}

/// With the default intensity noise the horizon collapses to one quantum;
/// outputs are trivially identical, but the flag itself must be inert.
#[test]
fn noisy_machine_matches_reference() {
    for seed in [1, 7, 42] {
        let s = Setup {
            seed,
            faults: FaultConfig::none(),
            noise_sd: MachineConfig::default().intensity_noise_sd,
            shuffle: Some(SimDuration::from_millis(50)),
            vms: vec![(8, vec![speccpu::milc(); 6])],
        };
        assert_equivalent(&s, 2);
    }
}

/// Fault injection pins the horizon to one quantum so the seeded fault
/// streams stay byte-identical: the macro machine must take zero batches
/// and reproduce the reference run exactly, fault counters included.
#[test]
fn faulty_machine_never_batches_and_matches_reference() {
    for seed in [1, 7, 42] {
        let s = Setup {
            seed,
            faults: FaultConfig::uniform(0.1, seed + 1),
            noise_sd: 0.0,
            shuffle: None,
            vms: vec![(8, vec![hungry::hungry_loop(); 8])],
        };
        let batches = assert_equivalent(&s, 2);
        assert_eq!(batches, 0, "faults must pin the horizon to 1 quantum");
    }
}
