//! Perf-introspection contracts at the `Machine` level.
//!
//! Three pins: (1) enabling perf changes no other output byte — the
//! RunMetrics JSON of a perf-on run is the perf-off JSON plus the
//! appended `perf` block; (2) the snapshot is deterministic — same seed,
//! byte-identical perf JSON; (3) the counters actually measure the
//! work-avoidance machinery — a quiescent macro-run shows multi-quantum
//! batches with attributed horizon closes, a noisy run shows the engine
//! solving (and skipping) per quantum.

use mem_model::AllocPolicy;
use numa_topo::presets;
use sim_core::SimDuration;
use workloads::hungry;
use xen_sim::{CreditPolicy, Machine, MachineBuilder, MachineConfig, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

fn build(seed: u64, noise_sd: f64) -> Machine {
    let cfg = MachineConfig {
        seed,
        intensity_noise_sd: noise_sd,
        ..MachineConfig::default()
    };
    MachineBuilder::new(presets::xeon_e5620())
        .config(cfg)
        .policy(Box::new(CreditPolicy::new()))
        .add_vm(VmConfig::new(
            "vm0",
            8,
            2 * GB,
            AllocPolicy::MostFree,
            vec![hungry::hungry_loop(); 8],
        ))
        .build()
        .unwrap()
}

#[test]
fn enabling_perf_changes_no_other_output_byte() {
    let mut plain = build(42, 0.18);
    let mut probed = build(42, 0.18);
    probed.enable_perf();
    plain.run(SimDuration::from_secs(2));
    probed.run(SimDuration::from_secs(2));

    let off = plain.metrics().to_json();
    let on = probed.metrics().to_json();
    assert!(!off.contains("\"perf\""), "perf block absent when disabled");
    assert!(on.contains("\"perf\""), "perf block present when enabled");
    // The perf block is appended last: everything before it is identical.
    let prefix = &off[..off.len() - 1]; // strip the closing brace
    assert!(
        on.starts_with(prefix),
        "perf-on JSON must extend the perf-off JSON byte-for-byte"
    );
    assert_eq!(&on[prefix.len()..prefix.len() + 8], ",\"perf\":");
}

#[test]
fn perf_snapshot_is_deterministic() {
    let run = || {
        let mut m = build(7, 0.18);
        m.enable_perf();
        m.run(SimDuration::from_secs(2));
        m.perf_snapshot().to_json().to_string()
    };
    assert_eq!(run(), run());
}

#[test]
fn quiescent_macro_run_attributes_batches() {
    let mut m = build(42, 0.0);
    m.enable_perf();
    m.run(SimDuration::from_secs(2));
    assert!(m.macro_batches() > 0, "macro-stepper must engage");
    let snap = m.perf_snapshot();
    assert!(snap.machine.horizon_consults > 0, "horizon consulted");
    assert!(
        snap.machine.batches.mean() > 1.0,
        "batches extend past one quantum: mean {}",
        snap.machine.batches.mean()
    );
    let close = snap.horizon_close_named();
    assert!(!close.is_empty(), "closes attributed: {close:?}");
    let attributed: u64 = close.iter().map(|&(_, n)| n).sum();
    assert_eq!(
        attributed, snap.machine.horizon_consults,
        "every consult has exactly one close reason"
    );
    // The engine sees one step per batch, so whole-step skips dominate a
    // quiescent run (nothing changes between solves).
    assert!(snap.engine.steps > 0);
    assert!(
        snap.engine.whole_step_skips > 0,
        "quiescent run skips whole steps: {:?}",
        snap.engine
    );
}

#[test]
fn noisy_run_counts_solving_work() {
    let mut m = build(42, 0.18);
    m.enable_perf();
    m.run(SimDuration::from_secs(2));
    let snap = m.perf_snapshot();
    // Noise dirties inputs every quantum: no macro batching, real solves.
    assert_eq!(snap.machine.horizon_consults, 0, "noise defeats macro path");
    assert_eq!(snap.machine.batches.mean(), 1.0);
    assert!(snap.engine.steps > 0);
    assert!(snap.engine.node_solves > 0, "{:?}", snap.engine);
    assert!(snap.engine.fp_rounds > 0, "{:?}", snap.engine);
    // Exact mode never consults the memo.
    assert_eq!(snap.engine.memo_hits, 0);
    assert_eq!(snap.engine.memo_misses, 0);
}
