//! Trace-export and telemetry contracts at the `Machine` level.
//!
//! Three pins: (1) trace files and telemetry are deterministic — same seed,
//! byte-identical output; (2) macro-stepping with tracing and telemetry
//! enabled changes *nothing* — the event-horizon stepper emits exactly the
//! per-quantum event stream, so JSONL, Chrome trace, and the RunMetrics
//! JSON (telemetry block included) all match the reference stepper byte
//! for byte; (3) fault-injected runs are auditable — every injected fault
//! appears in the trace, and the `faults_injected` telemetry counter
//! equals `FaultMetrics::injected()`.

use mem_model::AllocPolicy;
use numa_topo::presets;
use sim_core::{FaultConfig, Json, SimDuration};
use workloads::hungry;
use xen_sim::{CreditPolicy, Event, Machine, MachineBuilder, MachineConfig, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;
const TRACE_CAP: usize = 1_000_000;

fn build(seed: u64, faults: FaultConfig, noise_sd: f64, macro_step: bool) -> Machine {
    let cfg = MachineConfig {
        seed,
        faults,
        intensity_noise_sd: noise_sd,
        macro_step,
        ..MachineConfig::default()
    };
    let mut m = MachineBuilder::new(presets::xeon_e5620())
        .config(cfg)
        .policy(Box::new(CreditPolicy::new()))
        .add_vm(VmConfig::new(
            "vm0",
            8,
            2 * GB,
            AllocPolicy::MostFree,
            vec![hungry::hungry_loop(); 6],
        ))
        .add_vm(VmConfig::new(
            "vm1",
            4,
            2 * GB,
            AllocPolicy::MostFree,
            vec![hungry::hungry_loop(); 4],
        ))
        .build()
        .unwrap();
    m.enable_trace(TRACE_CAP);
    m.enable_telemetry();
    m
}

/// A saturated, noise-free machine (one worker per PCPU, no idlers) — the
/// shape where the event-horizon macro-stepper actually engages.
fn build_quiescent(seed: u64, macro_step: bool) -> Machine {
    let cfg = MachineConfig {
        seed,
        intensity_noise_sd: 0.0,
        macro_step,
        ..MachineConfig::default()
    };
    let mut m = MachineBuilder::new(presets::xeon_e5620())
        .config(cfg)
        .policy(Box::new(CreditPolicy::new()))
        .add_vm(VmConfig::new(
            "vm0",
            8,
            2 * GB,
            AllocPolicy::MostFree,
            vec![hungry::hungry_loop(); 8],
        ))
        .build()
        .unwrap();
    m.enable_trace(TRACE_CAP);
    m.enable_telemetry();
    m
}

#[test]
fn same_seed_gives_byte_identical_trace_files() {
    let run = || {
        let mut m = build(7, FaultConfig::none(), 0.0, true);
        m.run(SimDuration::from_secs(2));
        (m.trace_jsonl(), m.trace_chrome(), m.metrics().to_json())
    };
    let (j1, c1, m1) = run();
    let (j2, c2, m2) = run();
    assert_eq!(j1, j2, "JSONL must be deterministic");
    assert_eq!(c1, c2, "Chrome trace must be deterministic");
    assert_eq!(m1, m2, "RunMetrics JSON must be deterministic");
}

/// The macro-stepper batches only quanta in which no event can occur, so a
/// quiescent run must produce the *same trace* as per-quantum stepping —
/// not just the same metrics. This is the strongest form of the "synthesize
/// batched events exactly" requirement: nothing to synthesize, because no
/// event ever falls inside a batch.
#[test]
fn macro_stepping_preserves_trace_and_telemetry_exactly() {
    for seed in [1, 7, 42] {
        let mut fast = build_quiescent(seed, true);
        let mut slow = build_quiescent(seed, false);
        fast.run(SimDuration::from_secs(2));
        slow.run(SimDuration::from_secs(2));
        assert!(fast.macro_batches() > 0, "macro-stepper never engaged (seed {seed})");
        assert_eq!(slow.macro_batches(), 0, "reference stepper must not batch");
        assert_eq!(
            fast.metrics().to_json(),
            slow.metrics().to_json(),
            "RunMetrics JSON (telemetry block included) diverged (seed {seed})"
        );
        assert_eq!(
            fast.trace_jsonl(),
            slow.trace_jsonl(),
            "JSONL trace diverged (seed {seed})"
        );
        assert_eq!(
            fast.trace_chrome(),
            slow.trace_chrome(),
            "Chrome trace diverged (seed {seed})"
        );
    }
}

#[test]
fn trace_times_are_non_decreasing_across_macro_batches() {
    let mut m = build_quiescent(42, true);
    m.run(SimDuration::from_secs(2));
    assert!(m.macro_batches() > 0, "test requires batching to engage");
    let times: Vec<_> = m.trace().iter().map(|(t, _)| *t).collect();
    assert!(!times.is_empty());
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "trace must stay time-ordered across batched quanta"
    );
    assert_eq!(m.trace().dropped(), 0, "capacity must hold the full run");
    assert_eq!(m.trace().recorded(), m.trace().len() as u64);
}

#[test]
fn every_injected_fault_is_traced_and_counted() {
    let mut m = build(3, FaultConfig::uniform(0.1, 11), 0.0, true);
    m.run(SimDuration::from_secs(2));
    let injected = m.metrics().faults.injected();
    assert!(injected > 0, "fault config must actually inject");
    assert_eq!(m.trace().dropped(), 0, "capacity must hold the full run");
    let traced = m.trace().count(|e| matches!(e, Event::Fault(_)));
    assert_eq!(
        traced as u64, injected,
        "trace must carry exactly one event per injected fault"
    );
    assert_eq!(
        m.telemetry().counter_total_by_name("faults_injected"),
        Some(injected),
        "telemetry counter must equal FaultMetrics::injected()"
    );
}

#[test]
fn jsonl_lines_parse_and_chrome_is_valid_json() {
    let mut m = build(7, FaultConfig::uniform(0.05, 9), 0.0, true);
    m.run(SimDuration::from_secs(2));
    let jsonl = m.trace_jsonl();
    assert_eq!(jsonl.lines().count(), m.trace().len());
    for line in jsonl.lines() {
        let doc = Json::parse(line).expect("every JSONL line parses");
        assert!(doc.get("t_us").is_some());
        assert!(doc.get("kind").is_some());
    }
    let chrome = Json::parse(&m.trace_chrome()).expect("chrome trace parses");
    let events = chrome
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    // Track metadata (one per PCPU + the events track) plus real events.
    assert!(events.len() > m.topology().num_pcpus() + 1);
}

#[test]
fn telemetry_block_appears_only_when_enabled() {
    let run = |telemetry: bool| {
        let cfg = MachineConfig {
            seed: 5,
            intensity_noise_sd: 0.0,
            ..MachineConfig::default()
        };
        let mut m = MachineBuilder::new(presets::xeon_e5620())
            .config(cfg)
            .policy(Box::new(CreditPolicy::new()))
            .add_vm(VmConfig::new(
                "vm0",
                8,
                2 * GB,
                AllocPolicy::MostFree,
                vec![hungry::hungry_loop(); 8],
            ))
            .build()
            .unwrap();
        if telemetry {
            m.enable_telemetry();
        }
        m.run(SimDuration::from_secs(2));
        m.metrics().to_json()
    };
    let without = run(false);
    let with = run(true);
    assert!(!without.contains("telemetry"));
    assert!(with.contains("\"telemetry\""));
    // Stripping the telemetry block must leave the metrics identical:
    // telemetry observes the run, never steers it.
    let mut doc = xen_sim::RunMetrics::from_json(&with).unwrap();
    doc.telemetry = None;
    assert_eq!(doc.to_json(), without);
}

#[test]
fn telemetry_counters_match_run_metrics() {
    let mut m = build(7, FaultConfig::none(), 0.0, true);
    m.run(SimDuration::from_secs(2));
    let reg = m.telemetry();
    let local = reg.counter_total_by_name("steals_local").unwrap();
    let remote = reg.counter_total_by_name("steals_remote").unwrap();
    assert_eq!(local + remote, m.metrics().steals);
    assert_eq!(
        reg.counter_total_by_name("partition_moves").unwrap(),
        m.metrics().partition_moves
    );
    // Every steal contributes one latency observation.
    assert_eq!(
        reg.histogram_by_name("steal_latency").unwrap().count(),
        m.metrics().steals
    );
}
