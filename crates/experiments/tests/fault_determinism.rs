//! Fault injection must be a pure function of its inputs: the same
//! (simulation seed, fault seed, fault rate) triple yields byte-identical
//! metrics, and a zero rate is indistinguishable — to the byte — from a
//! run with no fault machinery configured at all. The second property is
//! what keeps the golden outputs of every pre-fault experiment valid.

use experiments::fig_faults;
use experiments::runner::{run_workload, RunOptions, Scheduler, SetupKind};
use sim_core::{FaultConfig, SimDuration};
use workloads::speccpu;

fn quick_opts() -> RunOptions {
    RunOptions {
        duration: SimDuration::from_secs(4),
        warmup: SimDuration::from_secs(2),
        ..RunOptions::default()
    }
}

fn run(scheduler: Scheduler, opts: &RunOptions) -> experiments::runner::WorkloadRun {
    run_workload(
        scheduler,
        SetupKind::PaperEval,
        vec![speccpu::soplex(); 4],
        vec![speccpu::soplex(); 4],
        opts,
    )
    .unwrap()
}

#[test]
fn same_seed_and_rate_reproduce_metrics_byte_for_byte() {
    let mut opts = quick_opts();
    opts.faults = FaultConfig::uniform(0.1, 3);
    for scheduler in [Scheduler::VProbe, Scheduler::VProbeGd] {
        let a = run(scheduler, &opts);
        let b = run(scheduler, &opts);
        assert_eq!(
            a.metrics.to_json(),
            b.metrics.to_json(),
            "{scheduler:?} diverged under identical fault inputs"
        );
        assert!(
            a.metrics.faults.injected() > 0,
            "{scheduler:?}: rate 0.1 must actually inject faults"
        );
    }
}

#[test]
fn zero_rate_is_byte_identical_to_no_injection() {
    let clean = run(Scheduler::VProbe, &quick_opts());
    let mut zeroed = quick_opts();
    zeroed.faults = FaultConfig::uniform(0.0, 77);
    let zero = run(Scheduler::VProbe, &zeroed);
    assert_eq!(clean.metrics.to_json(), zero.metrics.to_json());
    assert_eq!(clean.instr_rate, zero.instr_rate);
}

#[test]
fn different_fault_seed_changes_the_schedule() {
    let mut a_opts = quick_opts();
    a_opts.faults = FaultConfig::uniform(0.2, 1);
    let mut b_opts = quick_opts();
    b_opts.faults = FaultConfig::uniform(0.2, 2);
    let a = run(Scheduler::VProbe, &a_opts);
    let b = run(Scheduler::VProbe, &b_opts);
    assert_ne!(
        a.metrics.to_json(),
        b.metrics.to_json(),
        "distinct fault seeds must produce distinct runs"
    );
}

#[test]
fn fault_sweep_csv_is_reproducible() {
    let opts = quick_opts();
    let schedulers = [Scheduler::Credit, Scheduler::VProbeGd];
    let rates = [0.0, 0.2];
    let a = fig_faults::run_grid(&schedulers, &rates, &opts).unwrap();
    let b = fig_faults::run_grid(&schedulers, &rates, &opts).unwrap();
    assert_eq!(
        fig_faults::render(&a).to_csv(),
        fig_faults::render(&b).to_csv()
    );
    assert_eq!(fig_faults::to_json(&a), fig_faults::to_json(&b));
}
