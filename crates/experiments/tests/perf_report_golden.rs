//! Golden-file pin for the perf-report counter export, and the
//! work-avoidance acceptance contract on the quick regime.
//!
//! The deterministic counter export is a public contract like the trace
//! and provenance exports: `BENCH_history.jsonl` records its digest per
//! commit and CI byte-compares it against
//! `tests/golden/perf_report_quick.json`. A diff means the simulator's
//! *work-avoidance behavior* changed — a cache stopped hitting, the
//! macro-stepper batches differently — which is exactly the class of
//! silent regression the perf layer exists to catch. Regenerate a
//! deliberate change with
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p experiments --test perf_report_golden
//! ```

use experiments::perfreport::{self, ReportOptions};
use mem_model::EngineSelect;
use telemetry::PhaseTimers;

fn check_golden(file: &str, actual: &str) {
    let path = format!("{}/tests/golden/{file}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        eprintln!("updated {path}");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden {path}: {e}"));
    assert!(
        actual == expected,
        "{file} diverged from its golden copy — the work-avoidance \
         machinery behaves differently.\n\
         If the change is intentional, regenerate with\n\
         UPDATE_GOLDEN=1 cargo test -p experiments --test perf_report_golden\n\
         and commit the diff."
    );
}

#[test]
fn quick_regime_counters_match_golden_and_contract() {
    let mut timers = PhaseTimers::new();
    let points = perfreport::run(&ReportOptions::quick(), &mut timers).unwrap();

    // The work-avoidance contract on the 10 s sims. The noisy run's
    // per-quantum noise dirties every node every step, so it shows the
    // solver grinding; the phased run is where the exact engine's reuse
    // caches must fire (clean-node skips stand in for memo hits, which
    // exact mode structurally never consults) along with demand replay;
    // the noisy approx run must exit through the tolerance test.
    let find = |scenario: &str, engine: EngineSelect| {
        &points
            .iter()
            .find(|p| p.scenario == scenario && p.engine == engine)
            .unwrap()
            .snap
    };
    let noisy_exact = find("noisy", EngineSelect::Exact);
    assert!(noisy_exact.engine.node_solves > 0);
    assert!(noisy_exact.engine.fp_rounds > 0);
    assert_eq!(noisy_exact.engine.memo_hits, 0, "exact never consults memo");
    let noisy_approx = find("noisy", EngineSelect::Approx);
    assert!(
        noisy_approx.engine.tolerance_exits > 0,
        "approx tolerance exits: {:?}",
        noisy_approx.engine
    );
    let phased_exact = find("phased", EngineSelect::Exact);
    assert!(
        phased_exact.engine.node_clean_skips > 0,
        "exact cache hits (clean-node skips): {:?}",
        phased_exact.engine
    );
    assert!(
        phased_exact.engine.replay_fires > 0,
        "demand replay fires: {:?}",
        phased_exact.engine
    );

    // The quiescent sim exercises the other half: macro batches with
    // attributed horizon closes and whole-step skips.
    let quiet = find("quiescent", EngineSelect::Exact);
    assert!(quiet.machine.horizon_consults > 0);
    assert!(quiet.engine.whole_step_skips > 0);

    // And the export those counters produce is pinned byte-for-byte,
    // with its digest alongside for the CI gate to compare against the
    // `counter digest:` line of the binary's output.
    check_golden("perf_report_quick.json", &perfreport::to_json(&points));
    check_golden(
        "perf_report_quick.digest",
        &format!("{}\n", perfreport::digest(&points)),
    );
}
