//! Golden-file pin for the decision-provenance export, the
//! provenance-off byte-diff, and `explain` determinism.
//!
//! `decisions.jsonl` is a public contract like the trace exports: jq
//! pipelines and the `explain` binary consume it. This test replays the
//! same small fault-enabled vprobe-gd scenario as `trace_golden` and
//! pins the export byte-for-byte against
//! `tests/golden/decisions.jsonl`. Regenerate a deliberate schema
//! change with
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p experiments --test provenance_golden
//! ```
//!
//! The byte-diff test is the tentpole invariant: enabling provenance
//! must not change a single byte of the trace, Chrome, or metrics
//! exports — recording observes decisions, it never participates in
//! them.

use experiments::scenario::Scenario;
use experiments::{explain, parallel};
use sim_core::{Json, SimDuration};
use xen_sim::Machine;

/// Same scenario as `trace_golden`, so the two goldens describe one run.
const SCENARIO: &str = r#"{
  "topology": "xeon_e5620",
  "scheduler": "vprobe-gd",
  "duration_s": 2,
  "seed": 7,
  "fault_rate": 0.05,
  "fault_seed": 11,
  "vms": [
    { "name": "spec", "vcpus": 4, "mem_gb": 2, "workloads": ["soplex", "mcf", "milc"] },
    { "name": "batch", "vcpus": 2, "mem_gb": 2, "workloads": ["soplex", "soplex"] }
  ]
}"#;

fn golden_run(provenance: bool) -> Machine {
    let scenario = Scenario::from_json(SCENARIO).unwrap();
    let mut m = scenario.build().unwrap();
    m.enable_trace(1_000_000);
    m.enable_telemetry();
    if provenance {
        m.enable_provenance(1_000_000);
    }
    m.run(SimDuration::from_secs(scenario.duration_s));
    m
}

fn check_golden(file: &str, actual: &str) {
    let path = format!("{}/tests/golden/{file}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        eprintln!("updated {path}");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden {path}: {e}"));
    assert!(
        actual == expected,
        "{file} diverged from its golden copy.\n\
         If the schema change is intentional, regenerate with\n\
         UPDATE_GOLDEN=1 cargo test -p experiments --test provenance_golden\n\
         and commit the diff."
    );
}

#[test]
fn decisions_jsonl_matches_golden() {
    let m = golden_run(true);
    let jsonl = m.provenance_jsonl();
    assert!(
        m.provenance().dropped() == 0,
        "golden run must not drop decisions"
    );
    // Schema sanity independent of the golden bytes: every line is an
    // object leading with t_us, then seq/kind/rule; seq strictly
    // increases so decision order is reconstructible.
    let mut prev_seq = None;
    for line in jsonl.lines() {
        let doc = Json::parse(line).expect("line parses");
        assert!(line.starts_with("{\"t_us\":"), "t_us leads: {line}");
        let seq = doc.get("seq").and_then(Json::as_u64).expect("seq field");
        assert!(prev_seq < Some(seq), "seq strictly increases: {line}");
        prev_seq = Some(seq);
        doc.get("kind").and_then(Json::as_str).expect("kind field");
        doc.get("rule").and_then(Json::as_str).expect("rule field");
    }
    check_golden("decisions.jsonl", &jsonl);
}

#[test]
fn provenance_does_not_change_any_export_byte() {
    let plain = golden_run(false);
    let prov = golden_run(true);
    assert!(prov.provenance().recorded() > 0, "provenance recorded");
    assert_eq!(plain.trace_jsonl(), prov.trace_jsonl());
    assert_eq!(plain.trace_chrome(), prov.trace_chrome());
    assert_eq!(plain.metrics().to_json(), prov.metrics().to_json());
    assert!(
        plain.provenance_jsonl().is_empty(),
        "disabled log exports nothing"
    );
}

#[test]
fn explain_answers_are_byte_identical_across_jobs() {
    let decisions = golden_run(true).provenance_jsonl();
    let answer = |jobs: usize| {
        parallel::set_jobs(jobs);
        let out = (
            explain::explain_vm(&decisions, 0, Some(1_500_000))
                .unwrap()
                .to_string_pretty(),
            explain::explain_steal(&decisions, Some(0))
                .unwrap()
                .to_string_pretty(),
        );
        parallel::set_jobs(0);
        out
    };
    let (vm1, steal1) = answer(1);
    let (vm4, steal4) = answer(4);
    assert_eq!(vm1, vm4);
    assert_eq!(steal1, steal4);

    // And the answers are substantive: the run records decisions for
    // VCPU 0 and steals on node 0.
    let vm = Json::parse(&vm1).unwrap();
    assert!(vm.get("matched").and_then(Json::as_u64).unwrap() > 0);
    assert_ne!(vm.get("decision"), Some(&Json::Null));
    let steal = Json::parse(&steal1).unwrap();
    assert!(steal.get("decisions").and_then(Json::as_u64).unwrap() > 0);
}
