//! The parallel experiment harness must be invisible in the results: a
//! sweep fanned across worker threads has to produce the same
//! `WorkloadRun` values — and the same CSV bytes — as `--jobs 1`. Each
//! run is an independent deterministic simulation, and `parallel_map`
//! writes results back by input index, so any divergence here means the
//! fan-out leaked state between runs or reordered them.

use experiments::parallel::set_jobs;
use experiments::runner::{run_all_schedulers, RunOptions, SetupKind};
use experiments::{fig1_remote_ratio, table3_overhead};
use sim_core::SimDuration;
use workloads::speccpu;

fn quick_opts() -> RunOptions {
    RunOptions {
        duration: SimDuration::from_secs(2),
        warmup: SimDuration::from_secs(1),
        ..RunOptions::default()
    }
}

/// Comparable digest of one run: every scalar the tables are built from,
/// plus the full metrics serialization (byte-stable by construction).
fn digest(runs: &[experiments::runner::WorkloadRun]) -> Vec<(String, String)> {
    runs.iter()
        .map(|r| {
            (
                format!(
                    "{:?} rate={} instr={} total={} remote={} ratio={} ovh={} mig={} cross={} part={}",
                    r.scheduler,
                    r.instr_rate,
                    r.instructions,
                    r.total_accesses,
                    r.remote_accesses,
                    r.remote_ratio,
                    r.overhead_percent,
                    r.migrations,
                    r.cross_node_migrations,
                    r.partition_moves
                ),
                r.metrics.to_json(),
            )
        })
        .collect()
}

#[test]
fn scheduler_sweep_is_identical_across_job_counts() {
    let opts = quick_opts();
    let sweep = |jobs: usize| {
        set_jobs(jobs);
        let runs = run_all_schedulers(
            SetupKind::PaperEval,
            vec![speccpu::soplex(); 4],
            vec![speccpu::soplex(); 4],
            &opts,
        )
        .unwrap();
        digest(&runs)
    };
    let sequential = sweep(1);
    let parallel = sweep(4);
    set_jobs(0);
    assert_eq!(sequential, parallel);
}

#[test]
fn rendered_csv_bytes_are_identical_across_job_counts() {
    let opts = quick_opts();
    let csvs = |jobs: usize| {
        set_jobs(jobs);
        let fig1 = fig1_remote_ratio::render(&fig1_remote_ratio::run(&opts).unwrap()).to_csv();
        let t3 = table3_overhead::render(&table3_overhead::run(&opts).unwrap()).to_csv();
        (fig1, t3)
    };
    let sequential = csvs(1);
    let parallel = csvs(4);
    set_jobs(0);
    assert_eq!(sequential, parallel);
}
