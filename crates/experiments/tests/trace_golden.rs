//! Golden-file pin for the trace export schema.
//!
//! The JSONL and Chrome Trace Event exports are consumed outside this
//! repo (jq pipelines, Perfetto), so their byte layout is a public
//! contract: field order, number formatting, event naming. This test
//! replays a small fault-enabled vprobe-gd scenario and compares both
//! exports byte-for-byte against files committed under `tests/golden/`.
//!
//! If you change the schema *deliberately*, regenerate with
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p experiments --test trace_golden
//! ```
//!
//! and commit the diff — the review of that diff is the schema review.

use experiments::scenario::Scenario;
use sim_core::{Json, SimDuration};
use xen_sim::Machine;

/// Small on purpose: 2 s, six VCPUs on eight PCPUs, faults on, so the
/// golden covers switch/steal/idler/boost/sample/move/fault events while
/// staying reviewable in a diff.
const SCENARIO: &str = r#"{
  "topology": "xeon_e5620",
  "scheduler": "vprobe-gd",
  "duration_s": 2,
  "seed": 7,
  "fault_rate": 0.05,
  "fault_seed": 11,
  "vms": [
    { "name": "spec", "vcpus": 4, "mem_gb": 2, "workloads": ["soplex", "mcf", "milc"] },
    { "name": "batch", "vcpus": 2, "mem_gb": 2, "workloads": ["soplex", "soplex"] }
  ]
}"#;

fn golden_run() -> Machine {
    let scenario = Scenario::from_json(SCENARIO).unwrap();
    let mut m = scenario.build().unwrap();
    m.enable_trace(1_000_000);
    m.enable_telemetry();
    m.run(SimDuration::from_secs(scenario.duration_s));
    m
}

fn check_golden(file: &str, actual: &str) {
    let path = format!(
        "{}/tests/golden/{file}",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        eprintln!("updated {path}");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden {path}: {e}"));
    assert!(
        actual == expected,
        "{file} diverged from its golden copy.\n\
         If the schema change is intentional, regenerate with\n\
         UPDATE_GOLDEN=1 cargo test -p experiments --test trace_golden\n\
         and commit the diff."
    );
}

#[test]
fn jsonl_export_matches_golden() {
    let m = golden_run();
    let jsonl = m.trace_jsonl();
    assert!(m.trace().dropped() == 0, "golden run must not drop events");
    // Schema sanity independent of the golden bytes: every line is an
    // object leading with t_us then kind, and fault lines carry `fault`.
    for line in jsonl.lines() {
        let doc = Json::parse(line).expect("line parses");
        assert!(line.starts_with("{\"t_us\":"), "t_us leads: {line}");
        let kind = doc.get("kind").and_then(Json::as_str).expect("kind field");
        if kind == "fault" {
            assert!(doc.get("fault").is_some(), "fault lines name the fault");
        }
    }
    check_golden("trace.jsonl", &jsonl);
}

#[test]
fn chrome_export_matches_golden() {
    let m = golden_run();
    let chrome = m.trace_chrome();
    let doc = Json::parse(&chrome).expect("chrome trace parses");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    // One thread_name per PCPU plus the events track, before any event.
    let meta = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .count();
    assert_eq!(meta, m.topology().num_pcpus() + 1);
    check_golden("trace.chrome.json", &chrome);
}
