//! Regeneration harness for every table and figure in the vProbe paper.
//!
//! Each module reproduces one experiment:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig1_remote_ratio`] | Fig. 1 — remote-access % under the Credit scheduler |
//! | [`fig3_bounds`] | Fig. 3 — LLC miss rate and RPTI per program; the `low`/`high` bounds |
//! | [`fig4_spec`] | Fig. 4 — SPEC CPU2006 under the five schedulers |
//! | [`fig5_npb`] | Fig. 5 — NPB under the five schedulers |
//! | [`fig6_memcached`] | Fig. 6 — memcached concurrency sweep |
//! | [`fig7_redis`] | Fig. 7 — redis connection sweep |
//! | [`table3_overhead`] | Table III — "overhead time" percentage, 1–4 VMs |
//! | [`fig8_period`] | Fig. 8 — sampling-period sweep on workload *mix* |
//!
//! [`extensions`] goes beyond the paper: the §VI future-work features
//! (page migration) and a node-count scaling study. [`fig_faults`] is the
//! robustness sweep — per-scheduler slowdown vs injected fault rate,
//! including the graceful-degradation variant `vProbe-GD`. [`fig_fleet`]
//! scales out to a whole fleet of hosts (the [`fleet`] crate) and compares
//! schedulers on SLO outcomes under churn, host crashes, and
//! rack-correlated failures.
//!
//! [`runner`] holds the shared machinery (the paper's §V-A VM setup, the
//! five schedulers, one-run measurement); [`report`] renders results as
//! aligned text tables and CSV. [`tracetool`] turns a traced run into the
//! analysis report the `trace` binary prints alongside its JSONL and
//! Chrome Trace Event (Perfetto) exports. [`perfreport`] is the
//! simulator's self-observability harness: it measures the
//! work-avoidance machinery itself (deterministic counters, the
//! `perf-report` binary, the `BENCH_history.jsonl` regression log).

pub mod benchrec;
pub mod explain;
pub mod extensions;
pub mod fig1_remote_ratio;
pub mod fig3_bounds;
pub mod fig4_spec;
pub mod fig5_npb;
pub mod fig6_memcached;
pub mod fig7_redis;
pub mod fig8_period;
pub mod fig_faults;
pub mod fig_fleet;
pub mod parallel;
pub mod perfreport;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod table3_overhead;
pub mod tracetool;

pub use runner::{run_workload, Scheduler, SetupKind, WorkloadRun, ALL_SCHEDULERS};
