//! Fig. 5 — NAS Parallel Benchmarks under the five schedulers.
//!
//! Five 4-threaded programs (bt, cg, lu, mg, sp) run identically in VM1
//! and VM2 (§V-B2); metrics and normalization are the same three panels as
//! Fig. 4. The paper's headline number — vProbe 45.2 % faster than Credit —
//! comes from this experiment's `sp` workload.

use crate::fig4_spec::{normalize, WorkloadBars};
use crate::report::Table;
use crate::runner::{run_all_schedulers, RunOptions, SetupKind};
use sim_core::SimError;
use workloads::{npb, WorkloadSpec};

/// The five Fig. 5 programs.
pub fn workload_set() -> Vec<(String, Vec<WorkloadSpec>)> {
    npb::fig5_set()
        .into_iter()
        .map(|w| (w.name.clone(), vec![w]))
        .collect()
}

/// Run the full Fig. 5 sweep (workloads in parallel; rows stay in
/// `workload_set` order).
pub fn run(opts: &RunOptions) -> Result<Vec<WorkloadBars>, SimError> {
    crate::parallel::parallel_try_map(workload_set(), |(name, wl)| {
        let runs = run_all_schedulers(SetupKind::PaperEval, wl.clone(), wl, opts)?;
        Ok(normalize(&name, runs))
    })
}

/// Render (same panel layout as Fig. 4).
pub fn render(results: &[WorkloadBars]) -> Table {
    crate::fig4_spec::render(results, "Fig. 5")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn quick() -> RunOptions {
        RunOptions {
            duration: SimDuration::from_secs(8),
            warmup: SimDuration::from_secs(4),
            ..RunOptions::default()
        }
    }

    #[test]
    fn workload_set_is_the_papers_five() {
        let names: Vec<String> = workload_set().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["bt", "cg", "lu", "mg", "sp"]);
    }

    #[test]
    fn sp_shape_vprobe_beats_credit() {
        // sp is the paper's best case (45.2 %); at minimum vProbe must win.
        let (name, wl) = workload_set().remove(4);
        assert_eq!(name, "sp");
        let runs = run_all_schedulers(SetupKind::PaperEval, wl.clone(), wl, &quick()).unwrap();
        let wb = normalize(&name, runs);
        let vprobe = wb.bars.iter().find(|b| b.scheduler == "vProbe").unwrap();
        assert!(
            vprobe.norm_time < 1.0,
            "vProbe must beat Credit on sp: {}",
            vprobe.norm_time
        );
        assert!(vprobe.norm_remote < 0.95);
    }
}
