//! Fig. 7 — redis under a parallel-connection sweep.
//!
//! Four redis servers plus four redis-benchmark drivers per VM (§V-B4),
//! GET flood, connection counts 2 000–10 000. Reported per level and
//! scheduler: average throughput in requests/second (7a — redis is the one
//! workload the paper reports as throughput rather than time) and
//! normalized total/remote accesses (7b, 7c).

use crate::report::{f3, Table};
use crate::runner::{run_all_schedulers, RunOptions, SetupKind, WorkloadRun};
use sim_core::SimError;
use workloads::kv::{self, REDIS_CONNECTIONS};

/// One scheduler's results at one connection count.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    pub connections: u32,
    pub scheduler: &'static str,
    /// Aggregate GET throughput across VM1's four servers, requests/s.
    pub throughput_rps: f64,
    pub norm_throughput: f64,
    pub norm_total: f64,
    pub norm_remote: f64,
}

/// Run the full sweep.
pub fn run(opts: &RunOptions) -> Result<Vec<Fig7Point>, SimError> {
    run_levels(&REDIS_CONNECTIONS, opts)
}

/// Run a chosen set of connection counts (levels in parallel on top of
/// the per-scheduler parallelism; point order is unchanged).
pub fn run_levels(levels: &[u32], opts: &RunOptions) -> Result<Vec<Fig7Point>, SimError> {
    let per_level = crate::parallel::parallel_try_map(levels.to_vec(), |k| {
        let spec = kv::redis(k);
        let runs = run_all_schedulers(
            SetupKind::PaperEval,
            vec![spec.clone()],
            vec![spec.clone()],
            opts,
        )?;
        let credit = runs[0].clone();
        Ok(runs
            .iter()
            .map(|r| point(k, &spec, r, &credit))
            .collect::<Vec<_>>())
    })?;
    Ok(per_level.into_iter().flatten().collect())
}

fn point(
    k: u32,
    spec: &workloads::WorkloadSpec,
    r: &WorkloadRun,
    credit: &WorkloadRun,
) -> Fig7Point {
    let tput = kv::ops_per_second(spec, r.instr_rate);
    let credit_tput = kv::ops_per_second(spec, credit.instr_rate);
    Fig7Point {
        connections: k,
        scheduler: r.scheduler.name(),
        throughput_rps: tput,
        norm_throughput: tput / credit_tput,
        norm_total: r.normalized_total_vs(credit),
        norm_remote: r.normalized_remote_vs(credit),
    }
}

/// Render as a table.
pub fn render(points: &[Fig7Point]) -> Table {
    let mut t = Table::new(
        "Fig. 7 — redis GET flood (throughput; accesses normalized vs Credit)",
        &[
            "connections",
            "scheduler",
            "throughput (req/s)",
            "vs Credit (a)",
            "total (b)",
            "remote (c)",
        ],
    );
    for p in points {
        t.push_row(vec![
            p.connections.to_string(),
            p.scheduler.to_string(),
            format!("{:.0}", p.throughput_rps),
            f3(p.norm_throughput),
            f3(p.norm_total),
            f3(p.norm_remote),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn quick() -> RunOptions {
        RunOptions {
            duration: SimDuration::from_secs(8),
            warmup: SimDuration::from_secs(4),
            ..RunOptions::default()
        }
    }

    #[test]
    fn sweep_levels_match_paper() {
        assert_eq!(REDIS_CONNECTIONS, [2_000, 4_000, 6_000, 8_000, 10_000]);
    }

    #[test]
    fn vprobe_outperforms_credit_at_2000_connections() {
        // The paper's biggest redis gain (26.0 %) is at 2 000 connections.
        let pts = run_levels(&[2_000], &quick()).unwrap();
        assert_eq!(pts.len(), 5);
        let vprobe = pts.iter().find(|p| p.scheduler == "vProbe").unwrap();
        assert!(
            vprobe.norm_throughput > 1.0,
            "vProbe throughput should exceed Credit: {}",
            vprobe.norm_throughput
        );
    }

    #[test]
    fn throughput_is_positive_and_credit_normalizes() {
        let pts = run_levels(&[6_000], &quick()).unwrap();
        assert!(pts.iter().all(|p| p.throughput_rps > 0.0));
        assert!((pts[0].norm_throughput - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_shape() {
        let pts = run_levels(&[2_000], &quick()).unwrap();
        let t = render(&pts);
        assert_eq!(t.num_rows(), 5);
    }
}
