//! Regenerate the paper's tables and figures.
//!
//! ```sh
//! repro all            # everything, paper-scale windows (~10 min)
//! repro fig4 fig8      # a selection
//! repro --quick all    # short windows (~1 min), for smoke runs
//! repro --csv DIR all  # additionally write one CSV per artifact
//! ```

use experiments::report::Table;
use experiments::runner::RunOptions;
use experiments::{
    fig1_remote_ratio, fig3_bounds, fig4_spec, fig5_npb, fig6_memcached, fig7_redis, fig8_period,
    table3_overhead,
};
use sim_core::SimDuration;
use std::path::PathBuf;

const ARTIFACTS: [&str; 10] = [
    "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "table3", "fig8", "ext-pagemig", "ext-scaling",
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = take_flag(&mut args, "--quick");
    let csv_dir = take_value(&mut args, "--csv").map(PathBuf::from);
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--quick] [--csv DIR] all | {}", ARTIFACTS.join(" | "));
        std::process::exit(2);
    }
    let selected: Vec<&str> = if args.iter().any(|a| a == "all") {
        ARTIFACTS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for s in &selected {
        if !ARTIFACTS.contains(s) {
            eprintln!("unknown artifact '{s}'; known: {}", ARTIFACTS.join(", "));
            std::process::exit(2);
        }
    }

    let opts = if quick {
        RunOptions {
            duration: SimDuration::from_secs(10),
            warmup: SimDuration::from_secs(4),
            ..RunOptions::default()
        }
    } else {
        RunOptions {
            duration: SimDuration::from_secs(30),
            warmup: SimDuration::from_secs(10),
            ..RunOptions::default()
        }
    };

    for name in selected {
        let table = generate(name, &opts);
        println!("{}", table.to_text());
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = dir.join(format!("{name}.csv"));
            std::fs::write(&path, table.to_csv()).expect("write csv");
            eprintln!("wrote {}", path.display());
        }
    }
}

fn generate(name: &str, opts: &RunOptions) -> Table {
    match name {
        "fig1" => fig1_remote_ratio::render(&fig1_remote_ratio::run(opts).expect("fig1")),
        "fig3" => fig3_bounds::render(&fig3_bounds::run(opts).expect("fig3")),
        "fig4" => fig4_spec::render(&fig4_spec::run(opts).expect("fig4"), "Fig. 4"),
        "fig5" => fig5_npb::render(&fig5_npb::run(opts).expect("fig5")),
        "fig6" => fig6_memcached::render(&fig6_memcached::run(opts).expect("fig6")),
        "fig7" => fig7_redis::render(&fig7_redis::run(opts).expect("fig7")),
        "table3" => table3_overhead::render(&table3_overhead::run(opts).expect("table3")),
        "fig8" => fig8_period::render(&fig8_period::run(opts).expect("fig8")),
        "ext-pagemig" => experiments::extensions::render_page_migration(
            &experiments::extensions::run_page_migration(opts).expect("ext-pagemig"),
        ),
        "ext-scaling" => experiments::extensions::render_scaling(
            &experiments::extensions::run_scaling(opts).expect("ext-scaling"),
        ),
        _ => unreachable!("validated above"),
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    args.remove(i);
    if i < args.len() {
        Some(args.remove(i))
    } else {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
}
