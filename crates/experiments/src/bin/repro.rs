//! Regenerate the paper's tables and figures.
//!
//! ```sh
//! repro all            # everything, paper-scale windows
//! repro fig4 fig8      # a selection
//! repro --quick all    # short windows, for smoke runs
//! repro --csv DIR all  # additionally write one CSV per artifact
//! repro --jobs 1 all   # sequential (identical output, slower)
//! repro --seed 7 all   # override the simulation seed
//! repro --fault-rate 0.05 --fault-seed 1 all   # run under fault injection
//! repro fig-faults     # the robustness sweep (rates swept internally)
//! repro fig-fleet      # the fleet sweep (churn + host failures at scale)
//! repro --no-macro-step all   # reference per-quantum stepper (bisection)
//! repro --reference-engine all # frozen pre-rewrite memory engine
//! repro --approx-engine all    # quantized fast engine (bounded error)
//! ```
//!
//! Every invocation also records per-artifact and total wall-clock time in
//! `BENCH_repro.json` (merged across runs, keyed by job count), so a
//! parallel run and a `--jobs 1` run of the same selection can be compared
//! directly. Results are bit-identical regardless of `--jobs`.

use experiments::benchrec;
use experiments::report::Table;
use experiments::runner::RunOptions;
use mem_model::EngineSelect;
use experiments::{
    fig1_remote_ratio, fig3_bounds, fig4_spec, fig5_npb, fig6_memcached, fig7_redis, fig8_period,
    fig_faults, fig_fleet, parallel, table3_overhead,
};
use sim_core::{FaultConfig, Json, SimDuration, SimError};
use std::path::{Path, PathBuf};
use std::time::Instant;

const ARTIFACTS: [&str; 12] = [
    "fig1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table3",
    "fig8",
    "fig-faults",
    "fig-fleet",
    "ext-pagemig",
    "ext-scaling",
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = take_flag(&mut args, "--quick");
    let csv_dir = take_value(&mut args, "--csv").map(PathBuf::from);
    let jobs = take_value(&mut args, "--jobs").map(|v| parse_num(&v, "--jobs"));
    let seed = take_value(&mut args, "--seed").map(|v| parse_num(&v, "--seed"));
    let fault_rate = take_value(&mut args, "--fault-rate").map(|v| parse_rate(&v, "--fault-rate"));
    let fault_seed = take_value(&mut args, "--fault-seed").map(|v| parse_num(&v, "--fault-seed"));
    let no_macro = take_flag(&mut args, "--no-macro-step");
    let reference_engine = take_flag(&mut args, "--reference-engine");
    let approx_engine = take_flag(&mut args, "--approx-engine");
    if reference_engine && approx_engine {
        eprintln!("--reference-engine and --approx-engine are mutually exclusive");
        std::process::exit(2);
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: repro [--quick] [--csv DIR] [--jobs N] [--seed N] \
             [--fault-rate R] [--fault-seed N] [--no-macro-step] \
             [--reference-engine | --approx-engine] all | {}",
            ARTIFACTS.join(" | ")
        );
        std::process::exit(2);
    }
    if let Some(j) = jobs {
        parallel::set_jobs(j as usize);
    }
    let selected: Vec<&str> = if args.iter().any(|a| a == "all") {
        ARTIFACTS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for s in &selected {
        if !ARTIFACTS.contains(s) {
            eprintln!("unknown artifact '{s}'; known: {}", ARTIFACTS.join(", "));
            std::process::exit(2);
        }
    }

    let mut opts = if quick {
        RunOptions {
            duration: SimDuration::from_secs(10),
            warmup: SimDuration::from_secs(4),
            ..RunOptions::default()
        }
    } else {
        RunOptions {
            duration: SimDuration::from_secs(30),
            warmup: SimDuration::from_secs(10),
            ..RunOptions::default()
        }
    };
    if let Some(s) = seed {
        opts.seed = s;
    }
    opts.macro_step = !no_macro;
    opts.engine = if reference_engine {
        EngineSelect::Reference
    } else if approx_engine {
        EngineSelect::Approx
    } else {
        EngineSelect::Exact
    };
    if fault_rate.is_some() || fault_seed.is_some() {
        let cfg = FaultConfig::uniform(fault_rate.unwrap_or(0.0), fault_seed.unwrap_or(1));
        if let Err(e) = cfg.validate() {
            eprintln!("{e}");
            std::process::exit(2);
        }
        opts.faults = cfg;
    }

    let total = Instant::now();
    let mut timings: Vec<(String, f64)> = Vec::new();
    let mut failed: Vec<&str> = Vec::new();
    for name in &selected {
        let started = Instant::now();
        match generate(name, &opts, quick) {
            Ok((table, extra)) => {
                timings.push((name.to_string(), started.elapsed().as_secs_f64()));
                println!("{}", table.to_text());
                if let Some(dir) = &csv_dir {
                    if let Err(e) = write_outputs(dir, name, &table, extra) {
                        eprintln!("error: {name}: cannot write outputs: {e}");
                        failed.push(name);
                    }
                }
            }
            // A failed artifact doesn't abort the selection: later
            // artifacts still regenerate, and the run exits nonzero.
            Err(e) => {
                eprintln!("error: {name}: {e}");
                failed.push(name);
            }
        }
    }
    let total_s = total.elapsed().as_secs_f64();
    let effective_jobs = parallel::configured_jobs();
    eprintln!("total wall time: {total_s:.2} s ({effective_jobs} jobs)");
    record_bench(effective_jobs, quick, !no_macro, opts.engine, &timings, total_s);
    if !failed.is_empty() {
        eprintln!("failed artifacts: {}", failed.join(", "));
        std::process::exit(1);
    }
}

/// Produce a table, plus (for artifacts that have one) a named JSON
/// sidecar written next to the CSV.
fn generate(
    name: &str,
    opts: &RunOptions,
    quick: bool,
) -> Result<(Table, Option<(String, String)>), SimError> {
    let table = match name {
        "fig1" => fig1_remote_ratio::render(&fig1_remote_ratio::run(opts)?),
        "fig3" => fig3_bounds::render(&fig3_bounds::run(opts)?),
        "fig4" => fig4_spec::render(&fig4_spec::run(opts)?, "Fig. 4"),
        "fig5" => fig5_npb::render(&fig5_npb::run(opts)?),
        "fig6" => fig6_memcached::render(&fig6_memcached::run(opts)?),
        "fig7" => fig7_redis::render(&fig7_redis::run(opts)?),
        "table3" => table3_overhead::render(&table3_overhead::run(opts)?),
        "fig8" => fig8_period::render(&fig8_period::run(opts)?),
        "fig-faults" => {
            let points = fig_faults::run(opts)?;
            let json = fig_faults::to_json(&points);
            return Ok((
                fig_faults::render(&points),
                Some(("fig-faults.json".into(), json)),
            ));
        }
        "fig-fleet" => {
            let points = if quick {
                fig_fleet::run_quick(opts)?
            } else {
                fig_fleet::run(opts)?
            };
            let json = fig_fleet::to_json(&points);
            return Ok((
                fig_fleet::render(&points),
                Some(("fig-fleet.json".into(), json)),
            ));
        }
        "ext-pagemig" => experiments::extensions::render_page_migration(
            &experiments::extensions::run_page_migration(opts)?,
        ),
        "ext-scaling" => {
            experiments::extensions::render_scaling(&experiments::extensions::run_scaling(opts)?)
        }
        _ => unreachable!("validated above"),
    };
    Ok((table, None))
}

/// Write the CSV (and optional JSON sidecar) for one artifact.
fn write_outputs(
    dir: &Path,
    name: &str,
    table: &Table,
    extra: Option<(String, String)>,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv())?;
    eprintln!("wrote {}", path.display());
    if let Some((file, contents)) = extra {
        let path = dir.join(file);
        std::fs::write(&path, contents)?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

/// Merge this run's wall-clock numbers into `BENCH_repro.json`, keyed by
/// job count, stepping mode, and engine, so sequential/parallel,
/// macro/per-quantum, and exact/approx/reference timings of the same
/// selection sit side by side. The same record (plus the key) is
/// appended to `BENCH_history.jsonl`, the append-only benchmark log.
fn record_bench(
    jobs: usize,
    quick: bool,
    macro_step: bool,
    engine: EngineSelect,
    timings: &[(String, f64)],
    total_s: f64,
) {
    let artifacts = Json::Obj(
        timings
            .iter()
            .map(|(name, s)| (name.clone(), Json::Num(benchrec::round3(*s))))
            .collect(),
    );
    let regime = if quick { "quick" } else { "full" };
    let mut fields = benchrec::stamp(regime, engine.name());
    fields.extend([
        ("jobs".into(), Json::from(jobs)),
        ("macro_step".into(), Json::from(macro_step)),
        ("total_wall_s".into(), Json::Num(benchrec::round3(total_s))),
        ("artifact_wall_s".into(), artifacts),
    ]);
    let entry = Json::Obj(fields.clone());
    let mut key = if macro_step {
        format!("jobs_{jobs}")
    } else {
        format!("jobs_{jobs}_nomacro")
    };
    if engine != EngineSelect::Exact {
        key.push('_');
        key.push_str(engine.name());
    }
    benchrec::record(benchrec::BENCH_FILE, &key, entry);
    fields.insert(0, ("bench".into(), Json::Str(key)));
    benchrec::append_history(benchrec::HISTORY_FILE, &Json::Obj(fields));
}

fn parse_num(v: &str, flag: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a non-negative integer, got '{v}'");
        std::process::exit(2);
    })
}

fn parse_rate(v: &str, flag: &str) -> f64 {
    match v.parse::<f64>() {
        Ok(r) if (0.0..=1.0).contains(&r) => r,
        _ => {
            eprintln!("{flag} expects a probability in [0, 1], got '{v}'");
            std::process::exit(2);
        }
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    args.remove(i);
    if i < args.len() {
        Some(args.remove(i))
    } else {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
}
