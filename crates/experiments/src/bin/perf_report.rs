//! Print the simulator's work-avoidance report.
//!
//! ```sh
//! perf-report --quick             # 10 s windows + smoke fleet (CI regime)
//! perf-report                     # 30 s windows + bigger fleet
//! perf-report --jobs 1            # sequential; stdout is byte-identical
//! perf-report --seed 7            # different simulated history
//! perf-report --no-fleet         # single-machine scenarios only
//! perf-report --out report.txt    # write the report to a file
//! ```
//!
//! Runs the [`experiments::perfreport`] scenario × engine matrix with
//! perf introspection enabled and prints what the optimization machinery
//! saved: whole-step skip rates, clean-node skips, memo hit rates,
//! demand replays, fixed-point rounds per solving step, macro-step batch
//! lengths with horizon-close attribution, and the exact-vs-approx
//! effectiveness deltas.
//!
//! Everything on stdout is a pure function of the simulated execution:
//! byte-identical across `--jobs`, repeated runs, and machines, and
//! summarized by the trailing `counter digest:` line. Wall-clock
//! attribution (real time per scenario/engine cell) goes to stderr and
//! into `BENCH_repro.json` + `BENCH_history.jsonl` — never into the
//! deterministic report.

use experiments::perfreport::{self, ReportOptions};
use experiments::{benchrec, parallel};
use sim_core::Json;
use telemetry::PhaseTimers;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        std::process::exit(2);
    }
    let quick = take_flag(&mut args, "--quick");
    let no_fleet = take_flag(&mut args, "--no-fleet");
    let jobs = take_value(&mut args, "--jobs").map(|v| parse_num(&v, "--jobs"));
    let seed = take_value(&mut args, "--seed").map(|v| parse_num(&v, "--seed"));
    let out = take_value(&mut args, "--out");
    if let Some(a) = args.first() {
        usage();
        eprintln!("unknown argument '{a}'");
        std::process::exit(2);
    }
    if let Some(j) = jobs {
        parallel::set_jobs(j as usize);
    }
    let mut opts = if quick {
        ReportOptions::quick()
    } else {
        ReportOptions::full()
    };
    if let Some(s) = seed {
        opts.seed = s;
    }
    if no_fleet {
        opts.fleet_hosts = 0;
    }

    let mut timers = PhaseTimers::new();
    let points = match perfreport::run(&opts, &mut timers) {
        Ok(points) => points,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let report = perfreport::report_text(&points);
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
        None => print!("{report}"),
    }

    // Wall-clock attribution: stderr + best-effort BENCH records only.
    let total_s = timers.total().as_secs_f64();
    eprintln!(
        "wall-clock attribution: {}",
        timers.to_json().to_string_pretty()
    );
    eprintln!("total wall time: {total_s:.2} s");
    record_bench(quick, &points, &timers, total_s);
}

/// Merge this run into `BENCH_repro.json` under `perf_report` and append
/// the same record (with the counter digest) to `BENCH_history.jsonl`.
fn record_bench(quick: bool, points: &[perfreport::PerfPoint], timers: &PhaseTimers, total_s: f64) {
    let regime = if quick { "quick" } else { "full" };
    let mut fields = benchrec::stamp(regime, "exact+approx");
    fields.extend([
        ("jobs".into(), Json::from(parallel::configured_jobs())),
        ("digest".into(), Json::Str(perfreport::digest(points))),
        ("total_wall_s".into(), Json::Num(benchrec::round3(total_s))),
        ("phase_wall".into(), timers.to_json()),
    ]);
    benchrec::record(
        benchrec::BENCH_FILE,
        "perf_report",
        Json::Obj(fields.clone()),
    );
    fields.insert(0, ("bench".into(), Json::Str("perf_report".into())));
    benchrec::append_history(benchrec::HISTORY_FILE, &Json::Obj(fields));
}

fn usage() {
    eprintln!(
        "usage: perf-report [--quick] [--jobs N] [--seed N] [--no-fleet] [--out FILE]\n\
         prints the deterministic work-avoidance report (stdout) and\n\
         wall-clock attribution (stderr + BENCH_repro.json/BENCH_history.jsonl)"
    );
}

fn parse_num(v: &str, flag: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a non-negative integer, got '{v}'");
        std::process::exit(2);
    })
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    args.remove(i);
    if i < args.len() {
        Some(args.remove(i))
    } else {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
}
