//! Diagnose the sampling-period sweep: what does a short period buy?
use experiments::runner::{run_workload, RunOptions, Scheduler, SetupKind};
use sim_core::{SimDuration, SimError};
use workloads::speccpu;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), SimError> {
    for p in [0.1, 0.5, 1.0, 2.0, 10.0] {
        let opts = RunOptions {
            duration: SimDuration::from_secs(20),
            warmup: SimDuration::from_secs(5),
            sample_period: SimDuration::from_secs_f64(p),
            ..RunOptions::default()
        };
        let r = run_workload(Scheduler::VProbe, SetupKind::PaperEval,
            speccpu::mix(), speccpu::mix(), &opts)?;
        let vm1 = &r.metrics.per_vm[0];
        println!("p={p:<4} rate={:.3e} rratio={:.3} mpi={:.3} busy={:.1}s part_moves={} migr={} cross={} ovh={:.4}%",
            r.instr_rate, r.remote_ratio,
            vm1.llc_misses as f64 / vm1.instructions.max(1) as f64 * 1000.0,
            vm1.busy_us as f64 / 1e6,
            r.partition_moves, r.migrations, r.cross_node_migrations, r.overhead_percent);
    }
    Ok(())
}
