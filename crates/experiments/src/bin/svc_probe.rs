//! Diagnostic: per-VCPU service (run quanta) and credit state under
//! Credit, vProbe, and LB — the fairness probe used while calibrating the
//! credit machinery (DESIGN.md §8).

use experiments::runner::{build_machine, RunOptions, Scheduler, SetupKind};
use sim_core::{SimDuration, SimError};
use workloads::speccpu;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), SimError> {
    let opts = RunOptions { duration: SimDuration::from_secs(30), ..RunOptions::default() };
    for sched in [Scheduler::Credit, Scheduler::VProbe, Scheduler::Lb] {
        let mut m = build_machine(sched, SetupKind::PaperEval,
            vec![speccpu::soplex(); 4], vec![speccpu::soplex(); 4], &opts)?;
        m.run(opts.duration);
        let q = m.vcpu_run_quanta();
        let c = m.vcpu_credits();
        println!("{:8}: vm1_w={:?} vm2_w={:?} vm3_h={:?}", format!("{:?}", sched),
            &q[0..4], &q[8..12], &q[16..24]);
        println!("          credits vm1={:?} vm3={:?}", &c[0..4], &c[16..24]);
        let met = m.metrics();
        println!("          steals={} attempts={} empty={} migr={} cross={}",
            met.steals, met.steal_attempts, met.steal_attempts_empty,
            met.migrations, met.cross_node_migrations);
    }
    Ok(())
}
