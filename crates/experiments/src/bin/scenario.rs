//! Run a declarative JSON scenario file.
//!
//! ```sh
//! scenario path/to/scenario.json
//! scenario --seed 9 path/to/scenario.json   # override the file's seed
//! scenario --jobs 1 path/to/scenario.json   # worker-thread count
//! scenario --fault-rate 0.05 --fault-seed 1 path/to/scenario.json
//! scenario --no-macro-step path/to/scenario.json   # reference stepper
//! scenario --print-example
//! ```

use experiments::parallel;
use experiments::scenario::Scenario;

const EXAMPLE: &str = r#"{
  "topology": "xeon_e5620",
  "scheduler": "vprobe",
  "duration_s": 20,
  "seed": 7,
  "vms": [
    { "name": "db", "vcpus": 8, "mem_gb": 8, "alloc": "split",
      "workloads": ["redis:4000"] },
    { "name": "cache", "vcpus": 8, "mem_gb": 4,
      "workloads": ["memcached:64"] },
    { "name": "batch", "vcpus": 4, "mem_gb": 4,
      "workloads": ["soplex", "soplex", "soplex", "soplex"] }
  ]
}"#;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = take_value(&mut args, "--jobs").map(|v| parse_num(&v, "--jobs"));
    let seed = take_value(&mut args, "--seed").map(|v| parse_num(&v, "--seed"));
    let fault_rate = take_value(&mut args, "--fault-rate").map(|v| parse_rate(&v, "--fault-rate"));
    let fault_seed = take_value(&mut args, "--fault-seed").map(|v| parse_num(&v, "--fault-seed"));
    let no_macro = take_flag(&mut args, "--no-macro-step");
    if let Some(j) = jobs {
        parallel::set_jobs(j as usize);
    }
    match args.as_slice() {
        [flag] if flag == "--print-example" => println!("{EXAMPLE}"),
        [path] => {
            let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let mut scenario = Scenario::from_json(&json).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            if let Some(s) = seed {
                scenario.seed = s;
            }
            if let Some(r) = fault_rate {
                scenario.fault_rate = r;
            }
            if let Some(s) = fault_seed {
                scenario.fault_seed = s;
            }
            if no_macro {
                scenario.macro_step = false;
            }
            match scenario.run() {
                Ok(table) => println!("{}", table.to_text()),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        _ => {
            eprintln!(
                "usage: scenario [--jobs N] [--seed N] [--fault-rate R] [--fault-seed N] \
                 [--no-macro-step] <file.json> | --print-example"
            );
            std::process::exit(2);
        }
    }
}

fn parse_num(v: &str, flag: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a non-negative integer, got '{v}'");
        std::process::exit(2);
    })
}

fn parse_rate(v: &str, flag: &str) -> f64 {
    match v.parse::<f64>() {
        Ok(r) if (0.0..=1.0).contains(&r) => r,
        _ => {
            eprintln!("{flag} expects a probability in [0, 1], got '{v}'");
            std::process::exit(2);
        }
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    args.remove(i);
    if i < args.len() {
        Some(args.remove(i))
    } else {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
}
