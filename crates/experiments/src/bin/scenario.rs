//! Run a declarative JSON scenario file.
//!
//! ```sh
//! scenario path/to/scenario.json
//! scenario --print-example
//! ```

use experiments::scenario::Scenario;

const EXAMPLE: &str = r#"{
  "topology": "xeon_e5620",
  "scheduler": "vprobe",
  "duration_s": 20,
  "seed": 7,
  "vms": [
    { "name": "db", "vcpus": 8, "mem_gb": 8, "alloc": "split",
      "workloads": ["redis:4000"] },
    { "name": "cache", "vcpus": 8, "mem_gb": 4,
      "workloads": ["memcached:64"] },
    { "name": "batch", "vcpus": 4, "mem_gb": 4,
      "workloads": ["soplex", "soplex", "soplex", "soplex"] }
  ]
}"#;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag] if flag == "--print-example" => println!("{EXAMPLE}"),
        [path] => {
            let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let scenario = Scenario::from_json(&json).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            match scenario.run() {
                Ok(table) => println!("{}", table.to_text()),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        _ => {
            eprintln!("usage: scenario <file.json> | --print-example");
            std::process::exit(2);
        }
    }
}
