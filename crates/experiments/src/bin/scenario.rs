//! Run a declarative JSON scenario file.
//!
//! ```sh
//! scenario path/to/scenario.json
//! scenario --seed 9 path/to/scenario.json   # override the file's seed
//! scenario --jobs 1 path/to/scenario.json   # worker-thread count
//! scenario --fault-rate 0.05 --fault-seed 1 path/to/scenario.json
//! scenario --no-macro-step path/to/scenario.json   # reference stepper
//! scenario --print-example
//! ```

use experiments::parallel;
use experiments::scenario::Scenario;
use sim_core::SimError;

const EXAMPLE: &str = r#"{
  "topology": "xeon_e5620",
  "scheduler": "vprobe",
  "duration_s": 20,
  "seed": 7,
  "vms": [
    { "name": "db", "vcpus": 8, "mem_gb": 8, "alloc": "split",
      "workloads": ["redis:4000"] },
    { "name": "cache", "vcpus": 8, "mem_gb": 4,
      "workloads": ["memcached:64"] },
    { "name": "batch", "vcpus": 4, "mem_gb": 4,
      "workloads": ["soplex", "soplex", "soplex", "soplex"] }
  ]
}"#;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        std::process::exit(2);
    }
    match run(args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn usage() {
    eprintln!(
        "usage: scenario [--jobs N] [--seed N] [--fault-rate R] [--fault-seed N] \
         [--no-macro-step] <file.json> | --print-example"
    );
}

fn run(mut args: Vec<String>) -> Result<(), SimError> {
    if let Some(j) = take_parsed::<usize>(&mut args, "--jobs")? {
        parallel::set_jobs(j);
    }
    let seed = take_parsed::<u64>(&mut args, "--seed")?;
    let fault_rate = take_rate(&mut args, "--fault-rate")?;
    let fault_seed = take_parsed::<u64>(&mut args, "--fault-seed")?;
    let no_macro = take_flag(&mut args, "--no-macro-step");
    match args.as_slice() {
        [flag] if flag == "--print-example" => {
            println!("{EXAMPLE}");
            Ok(())
        }
        [path] => {
            let json = std::fs::read_to_string(path)
                .map_err(|e| SimError::InvalidConfig(format!("cannot read {path}: {e}")))?;
            let mut scenario = Scenario::from_json(&json)?;
            if let Some(s) = seed {
                scenario.seed = s;
            }
            if let Some(r) = fault_rate {
                scenario.fault_rate = r;
            }
            if let Some(s) = fault_seed {
                scenario.fault_seed = s;
            }
            if no_macro {
                scenario.macro_step = false;
            }
            let table = scenario.run()?;
            println!("{}", table.to_text());
            Ok(())
        }
        _ => {
            usage();
            std::process::exit(2);
        }
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, SimError> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    args.remove(i);
    if i < args.len() {
        Ok(Some(args.remove(i)))
    } else {
        Err(SimError::InvalidConfig(format!("{flag} requires a value")))
    }
}

fn take_parsed<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<T>, SimError> {
    match take_value(args, flag)? {
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| SimError::InvalidConfig(format!("{flag}: cannot parse '{v}'"))),
        None => Ok(None),
    }
}

fn take_rate(args: &mut Vec<String>, flag: &str) -> Result<Option<f64>, SimError> {
    match take_parsed::<f64>(args, flag)? {
        Some(r) if (0.0..=1.0).contains(&r) => Ok(Some(r)),
        Some(r) => Err(SimError::InvalidConfig(format!(
            "{flag} expects a probability in [0, 1], got '{r}'"
        ))),
        None => Ok(None),
    }
}
