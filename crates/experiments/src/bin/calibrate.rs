//! Quick calibration sweep: all five schedulers on several workloads,
//! printing the paper-relevant ratios. Used during development to tune
//! model parameters; kept as a diagnostic tool.

use experiments::runner::{run_all_schedulers, RunOptions, SetupKind};
use sim_core::{SimDuration, SimError};
use workloads::{npb, speccpu};

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), SimError> {
    let opts = RunOptions {
        duration: SimDuration::from_secs(30),
        ..RunOptions::default()
    };
    let cases: Vec<(&str, Vec<workloads::WorkloadSpec>)> = vec![
        ("soplex", vec![speccpu::soplex(); 4]),
        ("libquantum", vec![speccpu::libquantum(); 4]),
        ("milc", vec![speccpu::milc(); 4]),
        ("lu", vec![npb::lu()]),
        ("sp", vec![npb::sp()]),
        ("mix", speccpu::mix()),
    ];
    for (name, wl) in cases {
        let runs = run_all_schedulers(SetupKind::PaperEval, wl.clone(), wl, &opts)?;
        let credit = runs[0].clone();
        println!("== {name} ==");
        for r in &runs {
            let vm1 = &r.metrics.per_vm[0];
            let vm2 = &r.metrics.per_vm[1];
            let vm3 = &r.metrics.per_vm[2];
            println!(
                "  {:8} time={:.3} eff={:.3} total={:.3} remote={:.3} rratio={:.3} migr={} cross={} part={} busy=({:.1},{:.1},{:.1})s mpi1={:.4} cpi1={:.2} idlework={} steals={:?} idle_st={}",
                r.scheduler.name(),
                r.normalized_time_vs(&credit),
                {
                    let c1 = &credit.metrics.per_vm[0];
                    let v1 = &r.metrics.per_vm[0];
                    (v1.instructions as f64 / v1.busy_us.max(1) as f64)
                        / (c1.instructions as f64 / c1.busy_us.max(1) as f64)
                },
                r.normalized_total_vs(&credit),
                r.normalized_remote_vs(&credit),
                r.remote_ratio,
                r.migrations,
                r.cross_node_migrations,
                r.partition_moves,
                vm1.busy_us as f64/1e6, vm2.busy_us as f64/1e6, vm3.busy_us as f64/1e6,
                vm1.llc_misses as f64 / vm1.instructions.max(1) as f64 * 1000.0,
                vm1.busy_us as f64 * 2400.0 / vm1.instructions.max(1) as f64,
                r.metrics.idle_with_work_quanta,
                r.metrics.steals_per_vm,
                r.metrics.idle_steals,
            );
        }
    }
    Ok(())
}
