//! Answer "why" queries against a recorded trace.
//!
//! ```sh
//! explain vm 3 --trace traces/run1            # why is VCPU 3 placed where it is
//! explain vm 3 --at 1500000 --trace traces/run1   # ... as of sim-time 1.5 s
//! explain steal --node 1 --trace traces/run1  # steal-locality breakdown for node 1
//! explain steal --trace traces/run1           # ... machine-wide
//! explain slo --fleet fleet/run1              # who burned evacuation budget and why
//! ```
//!
//! `explain vm` and `explain steal` read `DIR/decisions.jsonl` as written
//! by the `trace` binary (`--trace DIR`, default `.`). `explain slo` reads
//! `DIR/slo.json` and `DIR/spans.jsonl` as written by
//! `fleet --provenance-dir DIR` (`--fleet DIR`, default `.`). Output is a
//! single pretty-printed JSON document on stdout.
//!
//! `--jobs N` is accepted for sweep-harness parity; answers are computed
//! from the recorded files alone, so output is byte-identical for any
//! value.

use experiments::{explain, parallel};
use sim_core::SimError;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        std::process::exit(2);
    }
    match run(args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn usage() {
    eprintln!(
        "usage: explain vm <id> [--at T_US] [--trace DIR] [--jobs N]\n\
         \u{20}      explain steal [--node N] [--trace DIR] [--jobs N]\n\
         \u{20}      explain slo [--fleet DIR] [--jobs N]"
    );
}

fn run(mut args: Vec<String>) -> Result<(), SimError> {
    if let Some(j) = take_parsed::<usize>(&mut args, "--jobs")? {
        parallel::set_jobs(j);
    }
    let trace_dir = take_parsed_or(&mut args, "--trace", ".".into())?;
    let fleet_dir = take_parsed_or(&mut args, "--fleet", ".".into())?;
    let answer = match args.first().map(String::as_str) {
        Some("vm") => {
            let at = take_parsed::<u64>(&mut args, "--at")?;
            let [_, id] = args.as_slice() else {
                usage();
                std::process::exit(2);
            };
            let id: u64 = id.parse().map_err(|_| {
                SimError::InvalidConfig(format!("vm id: cannot parse '{id}'"))
            })?;
            explain::explain_vm(&read(&trace_dir, "decisions.jsonl")?, id, at)?
        }
        Some("steal") => {
            let node = take_parsed::<u64>(&mut args, "--node")?;
            expect_bare(&args)?;
            explain::explain_steal(&read(&trace_dir, "decisions.jsonl")?, node)?
        }
        Some("slo") => {
            expect_bare(&args)?;
            explain::explain_slo(
                &read(&fleet_dir, "slo.json")?,
                &read(&fleet_dir, "spans.jsonl")?,
            )?
        }
        _ => {
            usage();
            std::process::exit(2);
        }
    };
    println!("{}", answer.to_string_pretty());
    Ok(())
}

/// After flag extraction, only the query word itself may remain.
fn expect_bare(args: &[String]) -> Result<(), SimError> {
    match args.len() {
        1 => Ok(()),
        _ => Err(SimError::InvalidConfig(format!(
            "unexpected argument '{}'",
            args[1]
        ))),
    }
}

fn read(dir: &str, file: &str) -> Result<String, SimError> {
    let p = format!("{dir}/{file}");
    std::fs::read_to_string(&p)
        .map_err(|e| SimError::InvalidConfig(format!("cannot read {p}: {e}")))
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, SimError> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    args.remove(i);
    if i < args.len() {
        Ok(Some(args.remove(i)))
    } else {
        Err(SimError::InvalidConfig(format!("{flag} requires a value")))
    }
}

fn take_parsed_or(args: &mut Vec<String>, flag: &str, default: String) -> Result<String, SimError> {
    Ok(take_value(args, flag)?.unwrap_or(default))
}

fn take_parsed<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<T>, SimError> {
    match take_value(args, flag)? {
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| SimError::InvalidConfig(format!("{flag}: cannot parse '{v}'"))),
        None => Ok(None),
    }
}
