//! Run a scenario with tracing + telemetry enabled and export the trace.
//!
//! ```sh
//! trace path/to/scenario.json                  # writes into the cwd
//! trace --out traces/run1 path/to/scenario.json
//! trace --seed 9 --fault-rate 0.1 --fault-seed 1 path/to/scenario.json
//! trace --no-macro-step path/to/scenario.json  # reference stepper
//! trace --trace-cap 500000 path/to/scenario.json
//! trace --print-example
//! ```
//!
//! Produces, under the output directory:
//!
//! * `trace.jsonl` — one JSON event per line (grep/jq-friendly);
//! * `trace.chrome.json` — Chrome Trace Event format; open it at
//!   <https://ui.perfetto.dev> or `chrome://tracing` to see per-PCPU
//!   tracks of which VCPU ran when;
//! * `metrics.json` — the full `RunMetrics` including the `telemetry`
//!   block (per-period counter/gauge/histogram series);
//!
//! and prints the analysis report: steal locality, partition-move churn,
//! fault/degrade audit, and the per-period RPTI classification table.

use experiments::scenario::Scenario;
use experiments::tracetool;
use sim_core::SimDuration;

const EXAMPLE: &str = r#"{
  "topology": "xeon_e5620",
  "scheduler": "vprobe-gd",
  "duration_s": 10,
  "seed": 7,
  "fault_rate": 0.05,
  "fault_seed": 11,
  "vms": [
    { "name": "spec", "vcpus": 8, "mem_gb": 4,
      "workloads": ["soplex", "mcf", "milc", "soplex", "mcf", "milc"] },
    { "name": "batch", "vcpus": 4, "mem_gb": 4,
      "workloads": ["soplex", "soplex", "soplex", "soplex"] }
  ]
}"#;

const DEFAULT_TRACE_CAP: usize = 2_000_000;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = take_value(&mut args, "--out").unwrap_or_else(|| ".".into());
    let seed = take_value(&mut args, "--seed").map(|v| parse_num(&v, "--seed"));
    let fault_rate = take_value(&mut args, "--fault-rate").map(|v| parse_rate(&v, "--fault-rate"));
    let fault_seed = take_value(&mut args, "--fault-seed").map(|v| parse_num(&v, "--fault-seed"));
    let trace_cap = take_value(&mut args, "--trace-cap")
        .map(|v| parse_num(&v, "--trace-cap") as usize)
        .unwrap_or(DEFAULT_TRACE_CAP);
    let no_macro = take_flag(&mut args, "--no-macro-step");
    match args.as_slice() {
        [flag] if flag == "--print-example" => println!("{EXAMPLE}"),
        [path] => {
            let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let mut scenario = Scenario::from_json(&json).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            if let Some(s) = seed {
                scenario.seed = s;
            }
            if let Some(r) = fault_rate {
                scenario.fault_rate = r;
            }
            if let Some(s) = fault_seed {
                scenario.fault_seed = s;
            }
            if no_macro {
                scenario.macro_step = false;
            }
            let mut machine = scenario.build().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            machine.enable_trace(trace_cap.max(1));
            machine.enable_telemetry();
            machine.run(SimDuration::from_secs(scenario.duration_s));

            std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
                eprintln!("cannot create {out_dir}: {e}");
                std::process::exit(1);
            });
            let write = |file: &str, contents: String| {
                let p = format!("{out_dir}/{file}");
                std::fs::write(&p, contents).unwrap_or_else(|e| {
                    eprintln!("cannot write {p}: {e}");
                    std::process::exit(1);
                });
                eprintln!("wrote {p}");
            };
            write("trace.jsonl", machine.trace_jsonl());
            write("trace.chrome.json", machine.trace_chrome());
            write("metrics.json", machine.metrics().to_json());

            println!("{}", tracetool::analysis_report(&machine));
        }
        _ => {
            eprintln!(
                "usage: trace [--out DIR] [--seed N] [--fault-rate R] [--fault-seed N] \
                 [--trace-cap N] [--no-macro-step] <file.json> | --print-example"
            );
            std::process::exit(2);
        }
    }
}

fn parse_num(v: &str, flag: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a non-negative integer, got '{v}'");
        std::process::exit(2);
    })
}

fn parse_rate(v: &str, flag: &str) -> f64 {
    match v.parse::<f64>() {
        Ok(r) if (0.0..=1.0).contains(&r) => r,
        _ => {
            eprintln!("{flag} expects a probability in [0, 1], got '{v}'");
            std::process::exit(2);
        }
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    args.remove(i);
    if i < args.len() {
        Some(args.remove(i))
    } else {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
}
