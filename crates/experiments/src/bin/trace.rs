//! Run a scenario with tracing + telemetry + provenance enabled and
//! export the trace.
//!
//! ```sh
//! trace path/to/scenario.json                  # writes into the cwd
//! trace --out traces/run1 path/to/scenario.json
//! trace --seed 9 --fault-rate 0.1 --fault-seed 1 path/to/scenario.json
//! trace --no-macro-step path/to/scenario.json  # reference stepper
//! trace --trace-cap 500000 path/to/scenario.json
//! trace --print-example
//! ```
//!
//! Produces, under the output directory:
//!
//! * `trace.jsonl` — one JSON event per line (grep/jq-friendly);
//! * `trace.chrome.json` — Chrome Trace Event format; open it at
//!   <https://ui.perfetto.dev> or `chrome://tracing` to see per-PCPU
//!   tracks of which VCPU ran when;
//! * `metrics.json` — the full `RunMetrics` including the `telemetry`
//!   block (per-period counter/gauge/histogram series);
//! * `decisions.jsonl` — one `DecisionRecord` per line: every
//!   placement/steal/partition/page-migration/degrade decision with its
//!   candidate set and the rule that fired (query with the `explain`
//!   binary);
//!
//! and prints the analysis report: steal locality, partition-move churn,
//! fault/degrade audit, and the per-period RPTI classification table.
//! The run's wall-clock is merged into `BENCH_repro.json` under the
//! `trace_tool` key, next to the `repro` sweep timings.

use experiments::benchrec;
use experiments::scenario::Scenario;
use experiments::tracetool;
use sim_core::{Json, SimDuration, SimError};
use std::time::Instant;

const EXAMPLE: &str = r#"{
  "topology": "xeon_e5620",
  "scheduler": "vprobe-gd",
  "duration_s": 10,
  "seed": 7,
  "fault_rate": 0.05,
  "fault_seed": 11,
  "vms": [
    { "name": "spec", "vcpus": 8, "mem_gb": 4,
      "workloads": ["soplex", "mcf", "milc", "soplex", "mcf", "milc"] },
    { "name": "batch", "vcpus": 4, "mem_gb": 4,
      "workloads": ["soplex", "soplex", "soplex", "soplex"] }
  ]
}"#;

const DEFAULT_TRACE_CAP: usize = 2_000_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        std::process::exit(2);
    }
    match run(args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn usage() {
    eprintln!(
        "usage: trace [--out DIR] [--seed N] [--fault-rate R] [--fault-seed N] \
         [--trace-cap N] [--no-macro-step] <file.json> | --print-example"
    );
}

fn run(mut args: Vec<String>) -> Result<(), SimError> {
    let out_dir = take_value(&mut args, "--out")?.unwrap_or_else(|| ".".into());
    let seed = take_parsed::<u64>(&mut args, "--seed")?;
    let fault_rate = take_rate(&mut args, "--fault-rate")?;
    let fault_seed = take_parsed::<u64>(&mut args, "--fault-seed")?;
    let trace_cap = take_parsed::<usize>(&mut args, "--trace-cap")?.unwrap_or(DEFAULT_TRACE_CAP);
    let no_macro = take_flag(&mut args, "--no-macro-step");
    match args.as_slice() {
        [flag] if flag == "--print-example" => {
            println!("{EXAMPLE}");
            Ok(())
        }
        [path] => {
            let path = path.clone();
            trace_one(
                &path, &out_dir, seed, fault_rate, fault_seed, trace_cap, no_macro,
            )
        }
        _ => {
            usage();
            std::process::exit(2);
        }
    }
}

fn trace_one(
    path: &str,
    out_dir: &str,
    seed: Option<u64>,
    fault_rate: Option<f64>,
    fault_seed: Option<u64>,
    trace_cap: usize,
    no_macro: bool,
) -> Result<(), SimError> {
    let started = Instant::now();
    let json = std::fs::read_to_string(path)
        .map_err(|e| SimError::InvalidConfig(format!("cannot read {path}: {e}")))?;
    let mut scenario = Scenario::from_json(&json)?;
    if let Some(s) = seed {
        scenario.seed = s;
    }
    if let Some(r) = fault_rate {
        scenario.fault_rate = r;
    }
    if let Some(s) = fault_seed {
        scenario.fault_seed = s;
    }
    if no_macro {
        scenario.macro_step = false;
    }
    let mut machine = scenario.build()?;
    machine.enable_trace(trace_cap.max(1));
    machine.enable_telemetry();
    machine.enable_provenance(trace_cap.max(1));
    machine.run(SimDuration::from_secs(scenario.duration_s));

    std::fs::create_dir_all(out_dir)
        .map_err(|e| SimError::InvalidConfig(format!("cannot create {out_dir}: {e}")))?;
    write_out(out_dir, "trace.jsonl", &machine.trace_jsonl())?;
    write_out(out_dir, "trace.chrome.json", &machine.trace_chrome())?;
    write_out(out_dir, "metrics.json", &machine.metrics().to_json())?;
    write_out(out_dir, "decisions.jsonl", &machine.provenance_jsonl())?;

    println!("{}", tracetool::analysis_report(&machine));

    // Scenario files have no engine knob: the trace tool always runs the
    // exact engine, and a scenario's own duration is its "regime".
    let mut fields = benchrec::stamp("full", "exact");
    fields.extend([
        ("scenario".into(), Json::Str(path.into())),
        ("duration_s".into(), Json::from(scenario.duration_s)),
        ("macro_step".into(), Json::from(scenario.macro_step)),
        ("events".into(), Json::from(machine.trace().recorded())),
        (
            "decisions".into(),
            Json::from(machine.provenance().recorded()),
        ),
        (
            "wall_s".into(),
            Json::Num(benchrec::round3(started.elapsed().as_secs_f64())),
        ),
    ]);
    benchrec::record(benchrec::BENCH_FILE, "trace_tool", Json::Obj(fields));
    Ok(())
}

fn write_out(dir: &str, file: &str, contents: &str) -> Result<(), SimError> {
    let p = format!("{dir}/{file}");
    std::fs::write(&p, contents)
        .map_err(|e| SimError::InvalidConfig(format!("cannot write {p}: {e}")))?;
    eprintln!("wrote {p}");
    Ok(())
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, SimError> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    args.remove(i);
    if i < args.len() {
        Ok(Some(args.remove(i)))
    } else {
        Err(SimError::InvalidConfig(format!("{flag} requires a value")))
    }
}

fn take_parsed<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<T>, SimError> {
    match take_value(args, flag)? {
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| SimError::InvalidConfig(format!("{flag}: cannot parse '{v}'"))),
        None => Ok(None),
    }
}

fn take_rate(args: &mut Vec<String>, flag: &str) -> Result<Option<f64>, SimError> {
    match take_parsed::<f64>(args, flag)? {
        Some(r) if (0.0..=1.0).contains(&r) => Ok(Some(r)),
        Some(r) => Err(SimError::InvalidConfig(format!(
            "{flag} expects a probability in [0, 1], got '{r}'"
        ))),
        None => Ok(None),
    }
}
