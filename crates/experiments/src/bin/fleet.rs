//! Run one fleet simulation: N NUMA hosts under churn, host/rack
//! failures, and self-healing placement.
//!
//! ```sh
//! fleet --hosts 100 --epochs 20 --scheduler vprobe        # one run, report on stdout
//! fleet --hosts 100 --crash-rate 0.02 --rack-crash-rate 0.005
//! fleet --hosts 50 --arrivals 2 --depart-rate 0.05        # churn only
//! fleet --hosts 8 --fault-rate 0.1 --fault-seed 3         # per-host PMU faults
//! fleet --hosts 4 --jobs 1 --out fleet.json               # sequential, JSON to a file
//! fleet --hosts 16 --trace-host 3 --trace-out host3.json  # Chrome trace of host 3
//! fleet --hosts 8 --crash-rate 0.1 --provenance-dir prov  # spans + SLO rollup
//! fleet --compare-single                                  # 1-host equivalence check
//! ```
//!
//! `--provenance-dir DIR` enables controller provenance and writes
//! `DIR/spans.jsonl` (admission/evacuation journeys with retry chains),
//! `DIR/fleet.chrome.json` (per-host span tracks for Perfetto), and
//! `DIR/slo.json` (fleet telemetry rollup + evac-latency burn-rate
//! series) after the run; query them with `explain slo --fleet DIR`.
//! The report itself stays byte-identical with or without it.
//!
//! `--compare-single` runs a quiet 1-host fleet and a directly-built
//! single `Machine` with the same seed and workload, and byte-diffs their
//! metrics JSON; any divergence means the fleet layer perturbed the
//! simulation it hosts, and the process exits 1. Every run is
//! seed-deterministic: the report is byte-identical for any `--jobs`.

use experiments::parallel;
use fleet::{Fleet, FleetConfig, FleetScheduler, HostPreset};
use sim_core::{SimDuration, SimError};
use xen_sim::MachineBuilder;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        std::process::exit(2);
    }
    match run(args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn usage() {
    eprintln!(
        "usage: fleet [--hosts N] [--epochs N] [--epoch-len-ms N] [--scheduler S] \
         [--presets P1,P2,..] [--vms-per-host N] [--seed N] \
         [--arrivals R] [--depart-rate R] \
         [--crash-rate R] [--rack-size N] [--rack-crash-rate R] \
         [--migration-fail-rate R] [--migration-delay-rate R] \
         [--fault-rate R] [--fault-seed N] [--jobs N] [--out FILE] \
         [--trace-host IDX] [--trace-out FILE] [--provenance-dir DIR] \
         [--slo-budget-s S] [--engine E] [--perf-out FILE] [--compare-single]\n\
         schedulers: credit, vprobe, vprobe-gd; presets: xeon-e5620, 4s32c, uma-quad; \
         engines: exact, approx, reference"
    );
}

fn run(mut args: Vec<String>) -> Result<(), SimError> {
    let compare_single = take_flag(&mut args, "--compare-single");
    let hosts = take_parsed(&mut args, "--hosts")?.unwrap_or(if compare_single { 1 } else { 8 });
    let scheduler = match take_value(&mut args, "--scheduler")? {
        Some(s) => FleetScheduler::parse(&s)?,
        None => FleetScheduler::VProbe,
    };
    let mut cfg = FleetConfig::new(hosts, scheduler);
    if let Some(e) = take_parsed(&mut args, "--epochs")? {
        cfg.epochs = e;
    }
    if let Some(ms) = take_parsed(&mut args, "--epoch-len-ms")? {
        cfg.epoch_len = SimDuration::from_millis(ms);
    }
    if let Some(p) = take_value(&mut args, "--presets")? {
        cfg.presets = p
            .split(',')
            .map(HostPreset::parse)
            .collect::<Result<_, _>>()?;
    }
    if let Some(n) = take_parsed(&mut args, "--vms-per-host")? {
        cfg.initial_vms_per_host = n;
    }
    if let Some(s) = take_parsed(&mut args, "--seed")? {
        cfg.seed = s;
    }
    if let Some(r) = take_parsed(&mut args, "--arrivals")? {
        cfg.churn.arrivals_per_epoch = r;
    }
    if let Some(r) = take_parsed(&mut args, "--depart-rate")? {
        cfg.churn.departure_rate = r;
    }
    if let Some(r) = take_parsed(&mut args, "--crash-rate")? {
        cfg.failures.host_crash_rate = r;
    }
    if let Some(n) = take_parsed(&mut args, "--rack-size")? {
        cfg.failures.rack_size = n;
    }
    if let Some(r) = take_parsed(&mut args, "--rack-crash-rate")? {
        cfg.failures.rack_crash_rate = r;
    }
    if let Some(r) = take_parsed(&mut args, "--migration-fail-rate")? {
        cfg.failures.migration_fail_rate = r;
    }
    if let Some(r) = take_parsed(&mut args, "--migration-delay-rate")? {
        cfg.failures.migration_delay_rate = r;
    }
    if let Some(r) = take_parsed(&mut args, "--fault-rate")? {
        cfg.host_fault_rate = r;
    }
    if let Some(s) = take_parsed(&mut args, "--fault-seed")? {
        cfg.fault_seed = s;
    }
    if let Some(j) = take_parsed::<usize>(&mut args, "--jobs")? {
        parallel::set_jobs(j);
    }
    if let Some(s) = take_parsed::<f64>(&mut args, "--slo-budget-s")? {
        cfg.slo_evac_budget_s = s;
    }
    if let Some(e) = take_value(&mut args, "--engine")? {
        cfg.engine = mem_model::EngineSelect::parse(&e).ok_or_else(|| {
            SimError::UnknownName(format!("engine '{e}' (known: exact, approx, reference)"))
        })?;
    }
    let perf_out = take_value(&mut args, "--perf-out")?;
    cfg.perf = perf_out.is_some();
    let out = take_value(&mut args, "--out")?;
    let trace_host = take_parsed::<usize>(&mut args, "--trace-host")?;
    let trace_out = take_value(&mut args, "--trace-out")?;
    let provenance_dir = take_value(&mut args, "--provenance-dir")?;
    if let Some(dir) = &provenance_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| SimError::InvalidConfig(format!("cannot create {dir}: {e}")))?;
    }
    if let Some(a) = args.first() {
        usage();
        return Err(SimError::InvalidConfig(format!("unknown argument '{a}'")));
    }

    if compare_single {
        return compare_single_host(&cfg);
    }

    let mut fleet = Fleet::new(cfg)?;
    if let Some(idx) = trace_host {
        fleet.set_trace_host(idx, 200_000);
    }
    if provenance_dir.is_some() {
        fleet.enable_provenance();
    }
    let report = fleet.run()?;
    let json = report.to_json();
    match out {
        Some(path) => {
            write_file(&path, &json)?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    if let Some(dir) = provenance_dir {
        for (file, contents) in [
            ("spans.jsonl", fleet.spans_jsonl()),
            ("fleet.chrome.json", fleet.spans_chrome()),
            ("slo.json", fleet.slo_json()?),
        ] {
            let contents = contents.ok_or_else(|| {
                SimError::InvalidConfig("provenance accessors empty after enable".into())
            })?;
            let p = format!("{dir}/{file}");
            write_file(&p, &contents)?;
            eprintln!("wrote {p}");
        }
    }
    if let Some(path) = perf_out {
        write_file(&path, &format!("{}\n", fleet.perf_json()))?;
        eprintln!("wrote {path}");
    }
    if let (Some(idx), Some(path)) = (trace_host, trace_out) {
        match fleet.hosts().get(idx).and_then(|h| h.machine.as_ref()) {
            Some(m) => {
                write_file(&path, &m.trace_chrome())?;
                eprintln!("wrote {path}");
            }
            None => eprintln!("warning: host {idx} has no live machine to trace"),
        }
    }
    if report.vms_lost != 0 {
        return Err(SimError::InvalidConfig(format!(
            "accounting violation: {} VMs lost",
            report.vms_lost
        )));
    }
    Ok(())
}

/// Byte-diff a quiet 1-host fleet against the equivalent directly-built
/// machine. Exit status is the check result.
fn compare_single_host(cfg: &FleetConfig) -> Result<(), SimError> {
    let mut quiet = cfg.clone();
    quiet.num_hosts = 1;
    quiet.churn = fleet::ChurnConfig::none();
    quiet.failures.host_crash_rate = 0.0;
    quiet.failures.rack_crash_rate = 0.0;
    let mut f = Fleet::new(quiet.clone())?;
    f.run()?;
    let fleet_json = f.host_metrics_json(0).ok_or_else(|| {
        SimError::InvalidConfig("1-host fleet ended without a live machine".into())
    })?;

    // The same simulation built by hand: host 0, generation 0, so the
    // machine seed is exactly the fleet seed, and the whole duration runs
    // in ONE call — the fleet's per-epoch chunking must not be observable.
    let topo = quiet.preset_for(0).topology();
    let num_nodes = topo.num_nodes();
    let faults = if quiet.host_fault_rate > 0.0 {
        sim_core::FaultConfig::uniform(quiet.host_fault_rate, quiet.fault_seed)
    } else {
        sim_core::FaultConfig::none()
    };
    let mut builder = MachineBuilder::new(topo)
        .policy(quiet.scheduler.policy(num_nodes, quiet.seed))
        .sample_period(quiet.epoch_len)
        .seed(quiet.seed)
        .faults(faults)
        .macro_step(quiet.macro_step)
        .engine(quiet.engine);
    for id in 0..quiet.initial_vms_per_host as u64 {
        let flavor = &quiet.flavors[id as usize % quiet.flavors.len()];
        builder = builder.add_vm(flavor.vm_config(id));
    }
    let mut machine = builder.build()?;
    machine.run(SimDuration::from_micros(
        quiet.epoch_len.as_micros() * quiet.epochs,
    ));
    let single_json = machine.metrics().to_json();

    if fleet_json == single_json {
        println!(
            "OK: 1-host fleet ({} epochs x {} us) is byte-identical to the single-machine run",
            quiet.epochs,
            quiet.epoch_len.as_micros()
        );
        Ok(())
    } else {
        eprintln!("--- fleet host 0 metrics ---\n{fleet_json}");
        eprintln!("--- single machine metrics ---\n{single_json}");
        Err(SimError::InvalidConfig(
            "1-host fleet diverged from the single-machine run".into(),
        ))
    }
}

fn write_file(path: &str, contents: &str) -> Result<(), SimError> {
    std::fs::write(path, contents)
        .map_err(|e| SimError::InvalidConfig(format!("cannot write {path}: {e}")))
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, SimError> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    args.remove(i);
    if i < args.len() {
        Ok(Some(args.remove(i)))
    } else {
        Err(SimError::InvalidConfig(format!("{flag} requires a value")))
    }
}

fn take_parsed<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<T>, SimError> {
    match take_value(args, flag)? {
        Some(v) => v.parse().map(Some).map_err(|_| {
            SimError::InvalidConfig(format!("{flag}: cannot parse '{v}'"))
        }),
        None => Ok(None),
    }
}
