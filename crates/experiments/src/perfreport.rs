//! Work-avoidance perf report: what the optimization machinery saved.
//!
//! The simulator's performance work — the incremental memory engine's
//! whole-step skip and dirty-node tracking, the LLC solve memo, the
//! demand replay, the approx engine's tolerance exit, event-horizon
//! macro-stepping, fleet host sharding — is deliberately invisible in
//! the artifacts it is forbidden to change. This module makes it
//! visible: it runs a small matrix of representative workloads with perf
//! introspection enabled and reports the deterministic work-avoidance
//! counters ([`xen_sim::PerfSnapshot`]).
//!
//! Four scenarios bracket the machinery's operating envelope:
//!
//! * **noisy** — the paper's §V-A eval setup (3 VMs, soplex + hungry
//!   interference) under vProbe at the default intensity noise. The
//!   per-quantum noise dirties every populated node every step, so this
//!   measures the *worst-case solving* path: per-node re-solves,
//!   fixed-point rounds, and (approx) tolerance exits, with the reuse
//!   caches structurally cold.
//! * **phased** — SPEC workloads with the noise off: inputs change only
//!   at workload phase boundaries, so this measures the *incremental
//!   reuse* path — clean-node skips, demand replays, whole-step skips —
//!   on a run that still does real scheduling work.
//! * **quiescent** — saturated hungry loops with the noise disabled.
//!   The sim reaches a fixed point and this measures the *skipping*
//!   path: macro-step batch lengths, horizon-close attribution.
//! * **fleet** — the smoke-scale churn/failure fleet sweep config on one
//!   scheduler, counters summed over every host and generation.
//!
//! Each scenario runs under both the exact and the approx engine (the
//! frozen reference engine has no counters), so the report also shows
//! the effectiveness delta the approximation buys. Everything printed on
//! stdout derives from the deterministic counters alone: the report is
//! byte-identical across `--jobs`, repeated runs, and machines, and
//! [`digest`] pins the whole export with one token for
//! `BENCH_history.jsonl` and the CI regression gate. Wall-clock lives in
//! the caller's [`telemetry::PhaseTimers`] and stays out of the report.

use crate::report::{f3, Table};
use crate::runner::{RunOptions, Scheduler, SetupKind};
use fleet::{Fleet, FleetScheduler};
use mem_model::{AllocPolicy, EngineSelect};
use numa_topo::presets;
use sim_core::{Json, SimDuration, SimError};
use telemetry::{digest64, PhaseTimers};
use workloads::{hungry, speccpu};
use xen_sim::{CreditPolicy, MachineBuilder, MachineConfig, PerfSnapshot, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

/// The engines compared. The frozen reference engine is excluded: it
/// predates the work-avoidance machinery, so every counter reads zero.
pub const ENGINES: [EngineSelect; 2] = [EngineSelect::Exact, EngineSelect::Approx];

/// Scenario durations and sizes for one report run.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    pub seed: u64,
    /// Simulated seconds of the noisy single-machine scenario.
    pub noisy_s: u64,
    /// Simulated seconds of the phased (noise-free SPEC) scenario.
    pub phased_s: u64,
    /// Simulated seconds of the quiescent macro-stepping scenario.
    pub quiescent_s: u64,
    /// Hosts in the fleet scenario (0 skips it).
    pub fleet_hosts: usize,
    pub fleet_epochs: u64,
}

impl ReportOptions {
    /// The smoke regime (CI, `--quick`): 10-second windows, small fleet.
    pub fn quick() -> ReportOptions {
        ReportOptions {
            seed: 42,
            noisy_s: 10,
            phased_s: 10,
            quiescent_s: 10,
            fleet_hosts: 8,
            fleet_epochs: 4,
        }
    }

    /// The full regime: paper-scale 30-second windows, bigger fleet.
    pub fn full() -> ReportOptions {
        ReportOptions {
            noisy_s: 30,
            phased_s: 30,
            quiescent_s: 30,
            fleet_hosts: 24,
            fleet_epochs: 8,
            ..ReportOptions::quick()
        }
    }
}

/// One (scenario, engine) cell of the report matrix.
#[derive(Debug, Clone)]
pub struct PerfPoint {
    pub scenario: &'static str,
    pub engine: EngineSelect,
    pub snap: PerfSnapshot,
}

/// Run the scenario × engine matrix. Wall-clock per cell is attributed
/// to `timers` under `"<scenario>/<engine>"`; the returned points hold
/// only deterministic counters.
pub fn run(opts: &ReportOptions, timers: &mut PhaseTimers) -> Result<Vec<PerfPoint>, SimError> {
    let mut points = Vec::new();
    for engine in ENGINES {
        let snap = timers.time(&format!("noisy/{}", engine.name()), || {
            noisy_snapshot(opts, engine)
        })?;
        points.push(PerfPoint {
            scenario: "noisy",
            engine,
            snap,
        });
    }
    for engine in ENGINES {
        let snap = timers.time(&format!("phased/{}", engine.name()), || {
            phased_snapshot(opts, engine)
        })?;
        points.push(PerfPoint {
            scenario: "phased",
            engine,
            snap,
        });
    }
    for engine in ENGINES {
        let snap = timers.time(&format!("quiescent/{}", engine.name()), || {
            quiescent_snapshot(opts, engine)
        })?;
        points.push(PerfPoint {
            scenario: "quiescent",
            engine,
            snap,
        });
    }
    if opts.fleet_hosts > 0 {
        for engine in ENGINES {
            let snap = timers.time(&format!("fleet/{}", engine.name()), || {
                fleet_snapshot(opts, engine)
            })?;
            points.push(PerfPoint {
                scenario: "fleet",
                engine,
                snap,
            });
        }
    }
    Ok(points)
}

/// The paper's eval setup under vProbe at default noise: every quantum
/// dirties inputs, so the engine actually solves.
fn noisy_snapshot(opts: &ReportOptions, engine: EngineSelect) -> Result<PerfSnapshot, SimError> {
    let ropts = RunOptions {
        seed: opts.seed,
        engine,
        ..RunOptions::default()
    };
    let mut m = crate::runner::build_machine(
        Scheduler::VProbe,
        SetupKind::PaperEval,
        vec![speccpu::soplex(); 4],
        vec![speccpu::soplex(); 4],
        &ropts,
    )?;
    m.enable_perf();
    m.run(SimDuration::from_secs(opts.noisy_s));
    Ok(m.perf_snapshot())
}

/// Phase-rich SPEC workloads with the per-quantum intensity noise off:
/// engine inputs change only when a workload crosses a phase boundary,
/// so unchanged nodes clean-skip and unchanged slots replay their
/// demand — the incremental-reuse path at its best case.
fn phased_snapshot(opts: &ReportOptions, engine: EngineSelect) -> Result<PerfSnapshot, SimError> {
    let cfg = MachineConfig {
        seed: opts.seed,
        intensity_noise_sd: 0.0,
        ..MachineConfig::default()
    };
    let mut m = MachineBuilder::new(presets::xeon_e5620())
        .config(cfg)
        .policy(Scheduler::VProbe.policy(2, opts.seed))
        .engine(engine)
        .add_vm(VmConfig::new(
            "spec0",
            4,
            2 * GB,
            AllocPolicy::MostFree,
            vec![
                speccpu::soplex(),
                speccpu::mcf(),
                speccpu::milc(),
                speccpu::soplex(),
            ],
        ))
        .add_vm(VmConfig::new(
            "spec1",
            4,
            2 * GB,
            AllocPolicy::MostFree,
            vec![
                speccpu::milc(),
                speccpu::soplex(),
                speccpu::mcf(),
                speccpu::mcf(),
            ],
        ))
        .build()?;
    m.enable_perf();
    m.run(SimDuration::from_secs(opts.phased_s));
    Ok(m.perf_snapshot())
}

/// Saturated hungry loops with intensity noise off: the run goes
/// stationary and the macro-stepper takes over.
fn quiescent_snapshot(
    opts: &ReportOptions,
    engine: EngineSelect,
) -> Result<PerfSnapshot, SimError> {
    let cfg = MachineConfig {
        seed: opts.seed,
        intensity_noise_sd: 0.0,
        ..MachineConfig::default()
    };
    let mut m = MachineBuilder::new(presets::xeon_e5620())
        .config(cfg)
        .policy(Box::new(CreditPolicy::new()))
        .engine(engine)
        .add_vm(VmConfig::new(
            "vm0",
            8,
            2 * GB,
            AllocPolicy::MostFree,
            vec![hungry::hungry_loop(); 8],
        ))
        .build()?;
    m.enable_perf();
    m.run(SimDuration::from_secs(opts.quiescent_s));
    Ok(m.perf_snapshot())
}

/// The smoke-scale churn/failure fleet under vProbe; counters are summed
/// over every host and machine generation.
fn fleet_snapshot(opts: &ReportOptions, engine: EngineSelect) -> Result<PerfSnapshot, SimError> {
    let mut cfg = crate::fig_fleet::sweep_config(
        FleetScheduler::VProbe,
        opts.fleet_hosts,
        opts.seed,
        opts.fleet_epochs,
        true,
    );
    cfg.engine = engine;
    cfg.perf = true;
    let mut fleet = Fleet::new(cfg)?;
    fleet.run()?;
    Ok(fleet.perf_snapshot())
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Top horizon-close reasons as `"name:count"`, most frequent first
/// (count desc, then name asc — fully deterministic), `-` when the
/// macro path never engaged.
fn top_closes(snap: &PerfSnapshot) -> String {
    let mut close = snap.horizon_close_named();
    close.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    if close.is_empty() {
        "-".into()
    } else {
        close
            .iter()
            .take(3)
            .map(|(name, n)| format!("{name}:{n}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// The counter matrix as a table (text / CSV via [`Table`]).
pub fn render(points: &[PerfPoint]) -> Table {
    let mut t = Table::new(
        "Perf introspection — work avoided by the optimization machinery",
        &[
            "scenario",
            "engine",
            "steps",
            "skip %",
            "clean skips",
            "memo hit %",
            "rounds/solve",
            "replay",
            "tol exits",
            "batch mean",
            "top horizon closes",
        ],
    );
    for p in points {
        let e = &p.snap.engine;
        t.push_row(vec![
            p.scenario.to_string(),
            p.engine.name().to_string(),
            e.steps.to_string(),
            pct(e.skip_rate()),
            e.node_clean_skips.to_string(),
            pct(e.memo_hit_rate()),
            f3(e.rounds_per_solving_step()),
            e.replay_fires.to_string(),
            e.tolerance_exits.to_string(),
            f3(p.snap.machine.batches.mean()),
            top_closes(&p.snap),
        ]);
    }
    t
}

/// Exact-vs-approx effectiveness deltas, one row per scenario that ran
/// under both engines. "rounds saved" is the fixed-point rounds the
/// approx engine avoided relative to exact (negative means it did more).
pub fn render_deltas(points: &[PerfPoint]) -> Table {
    let mut t = Table::new(
        "Exact vs approx — solver effort for the same simulated work",
        &[
            "scenario",
            "fp rounds (exact)",
            "fp rounds (approx)",
            "rounds saved",
            "tol exits",
            "snap backs",
            "memo hit % (approx)",
        ],
    );
    let mut seen: Vec<&'static str> = Vec::new();
    for p in points {
        if !seen.contains(&p.scenario) {
            seen.push(p.scenario);
        }
    }
    for scenario in seen {
        let find = |engine: EngineSelect| {
            points
                .iter()
                .find(|p| p.scenario == scenario && p.engine == engine)
        };
        if let (Some(ex), Some(ap)) = (find(EngineSelect::Exact), find(EngineSelect::Approx)) {
            let (exr, apr) = (ex.snap.engine.fp_rounds, ap.snap.engine.fp_rounds);
            let saved = if exr > 0 {
                format!("{:+.1}%", (1.0 - apr as f64 / exr as f64) * 100.0)
            } else {
                "-".into()
            };
            t.push_row(vec![
                scenario.to_string(),
                exr.to_string(),
                apr.to_string(),
                saved,
                ap.snap.engine.tolerance_exits.to_string(),
                ap.snap.engine.snap_backs.to_string(),
                pct(ap.snap.engine.memo_hit_rate()),
            ]);
        }
    }
    t
}

/// The full deterministic export: one object per point, stable order —
/// what the golden file pins and [`digest`] hashes.
pub fn to_json(points: &[PerfPoint]) -> String {
    Json::Arr(
        points
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("scenario".into(), Json::from(p.scenario)),
                    ("engine".into(), Json::Str(p.engine.name().into())),
                    ("perf".into(), p.snap.to_json()),
                ])
            })
            .collect(),
    )
    .to_string_pretty()
}

/// The one-token pin of the whole counter export.
pub fn digest(points: &[PerfPoint]) -> String {
    digest64(&to_json(points))
}

/// The complete stdout report: both tables plus the digest line.
pub fn report_text(points: &[PerfPoint]) -> String {
    format!(
        "{}\n{}\ncounter digest: {}\n",
        render(points).to_text(),
        render_deltas(points).to_text(),
        digest(points)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel;

    fn tiny() -> ReportOptions {
        ReportOptions {
            seed: 42,
            noisy_s: 3,
            phased_s: 3,
            quiescent_s: 2,
            fleet_hosts: 4,
            fleet_epochs: 3,
        }
    }

    #[test]
    fn report_is_deterministic_across_jobs_and_repeats() {
        let text = |jobs: usize| {
            parallel::set_jobs(jobs);
            let mut timers = PhaseTimers::new();
            let points = run(&tiny(), &mut timers).unwrap();
            parallel::set_jobs(0);
            assert!(!timers.is_empty(), "every cell attributes wall-clock");
            report_text(&points)
        };
        let a = text(1);
        let b = text(4);
        assert_eq!(a, b, "stdout report must be byte-identical across --jobs");
        assert_eq!(a, text(1), "and across repeated runs");
        assert!(a.contains("counter digest: "));
    }

    #[test]
    fn matrix_covers_scenarios_and_engines() {
        let mut timers = PhaseTimers::new();
        let points = run(&tiny(), &mut timers).unwrap();
        assert_eq!(points.len(), 8);
        let scenarios: Vec<_> = points.iter().map(|p| p.scenario).collect();
        assert_eq!(
            scenarios,
            [
                "noisy",
                "noisy",
                "phased",
                "phased",
                "quiescent",
                "quiescent",
                "fleet",
                "fleet"
            ]
        );
        // The quiescent exact run engages the macro-stepper...
        let quiet = &points[4];
        assert!(quiet.snap.machine.batches.mean() > 1.0);
        assert!(quiet.snap.engine.whole_step_skips > 0);
        // ...and the fleet run aggregates every host.
        let fl = &points[6];
        assert_eq!(fl.snap.hosts as usize, tiny().fleet_hosts);
    }

    #[test]
    fn fleet_scenario_can_be_skipped() {
        let opts = ReportOptions {
            fleet_hosts: 0,
            noisy_s: 1,
            phased_s: 1,
            quiescent_s: 1,
            ..tiny()
        };
        let mut timers = PhaseTimers::new();
        let points = run(&opts, &mut timers).unwrap();
        assert_eq!(points.len(), 6);
        assert!(points.iter().all(|p| p.scenario != "fleet"));
    }
}
