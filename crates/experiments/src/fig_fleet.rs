//! Fleet sweep (beyond the paper): scheduler robustness at datacenter
//! scale under churn and host failures.
//!
//! The paper evaluates one machine; this sweep stands up a whole fleet of
//! NUMA hosts via the [`fleet`] crate — VM arrival/departure churn,
//! seed-deterministic host crashes with rack-correlated failure domains,
//! and self-healing evacuation — and compares Credit, vProbe, and
//! vProbe-GD on SLO outcomes the single-machine figures cannot show:
//! evacuation latency, shed work, degraded VM-minutes, and throughput per
//! host-up-second.
//!
//! Points run **sequentially**: each fleet already shards its hosts over
//! the workspace worker pool ([`sim_core::parallel::parallel_map`]), so
//! parallelizing the sweep grid on top would nest thread pools for no
//! gain. Output is byte-identical for any `--jobs` value.

use crate::report::{f3, Table};
use crate::runner::RunOptions;
use fleet::{ChurnConfig, FailureConfig, Fleet, FleetConfig, FleetReport, FleetScheduler};
use sim_core::{Json, SimError};

/// The fleet schedulers compared (the single-machine-only heuristics
/// VCPU-P/LB/BRM are not interesting at fleet scale).
pub const SCHEDULERS: [FleetScheduler; 3] = [
    FleetScheduler::Credit,
    FleetScheduler::VProbe,
    FleetScheduler::VProbeGd,
];

/// Paper-scale fleet sizes (the 100–1000 host regime the placement
/// literature targets).
pub const FULL_SIZES: [usize; 2] = [100, 1000];
/// Smoke-scale sizes for `--quick` runs and tests (big enough that the
/// default failure rates actually crash a host or two over the run).
pub const QUICK_SIZES: [usize; 1] = [24];

/// One (scheduler, fleet-size) point of the sweep.
#[derive(Debug, Clone)]
pub struct FleetPoint {
    pub scheduler: &'static str,
    pub num_hosts: usize,
    pub crashes: u64,
    pub rack_crashes: u64,
    pub displaced: u64,
    pub evacuated: u64,
    pub shed: u64,
    /// Must be 0 — the no-silent-loss invariant.
    pub vms_lost: i64,
    pub evac_latency_mean_s: f64,
    pub degraded_vm_minutes: f64,
    pub placement_failures: u64,
    pub migration_failures: u64,
    pub hosts_up_end: usize,
    pub instr_per_host_up_s: f64,
}

impl FleetPoint {
    fn from_report(r: &FleetReport) -> FleetPoint {
        FleetPoint {
            scheduler: r.scheduler,
            num_hosts: r.num_hosts,
            crashes: r.metrics.crashes,
            rack_crashes: r.metrics.rack_crashes,
            displaced: r.metrics.displaced,
            evacuated: r.metrics.evacuated,
            shed: r.metrics.shed_total(),
            vms_lost: r.vms_lost,
            evac_latency_mean_s: r.metrics.evac_latency_s.mean(),
            degraded_vm_minutes: r.degraded_vm_minutes,
            placement_failures: r.metrics.placement_failures,
            migration_failures: r.metrics.migration_failures,
            hosts_up_end: r.hosts_up_end,
            instr_per_host_up_s: r.instr_per_host_up_s,
        }
    }
}

/// The churn/failure regime every point runs under. Arrival pressure
/// scales with fleet size so utilization stays comparable across sizes.
/// `smoke` raises the crash rates ~5× so the failure/evacuation paths are
/// reliably exercised even at [`QUICK_SIZES`]-scale host-epoch counts
/// (at 100+ hosts the production-plausible rates already crash plenty).
pub fn sweep_config(
    scheduler: FleetScheduler,
    hosts: usize,
    seed: u64,
    epochs: u64,
    smoke: bool,
) -> FleetConfig {
    let mut cfg = FleetConfig::new(hosts, scheduler);
    cfg.seed = seed;
    cfg.epochs = epochs;
    cfg.initial_vms_per_host = 2;
    cfg.churn = ChurnConfig {
        arrivals_per_epoch: hosts as f64 * 0.05,
        departure_rate: 0.02,
    };
    cfg.failures = FailureConfig {
        host_crash_rate: if smoke { 0.05 } else { 0.01 },
        rack_crash_rate: if smoke { 0.01 } else { 0.002 },
        recovery_epochs_mean: 3.0,
        migration_fail_rate: 0.1,
        migration_delay_rate: 0.1,
        ..FailureConfig::none()
    };
    cfg
}

/// Run the paper-scale sweep: [`SCHEDULERS`] × [`FULL_SIZES`]. Only
/// `opts.seed`, `opts.macro_step`, and `opts.engine` apply — fleet time
/// is measured in epochs, not the single-machine duration/warmup window.
pub fn run(opts: &RunOptions) -> Result<Vec<FleetPoint>, SimError> {
    run_grid(&SCHEDULERS, &FULL_SIZES, opts, 12, false)
}

/// Run the smoke-scale sweep: [`SCHEDULERS`] × [`QUICK_SIZES`].
pub fn run_quick(opts: &RunOptions) -> Result<Vec<FleetPoint>, SimError> {
    run_grid(&SCHEDULERS, &QUICK_SIZES, opts, 8, true)
}

/// Run chosen schedulers × fleet sizes, sequentially (see module docs).
pub fn run_grid(
    schedulers: &[FleetScheduler],
    sizes: &[usize],
    opts: &RunOptions,
    epochs: u64,
    smoke: bool,
) -> Result<Vec<FleetPoint>, SimError> {
    let mut points = Vec::with_capacity(schedulers.len() * sizes.len());
    for &scheduler in schedulers {
        for &hosts in sizes {
            let mut cfg = sweep_config(scheduler, hosts, opts.seed, epochs, smoke);
            cfg.macro_step = opts.macro_step;
            cfg.engine = opts.engine;
            let report = Fleet::new(cfg)?.run()?;
            if report.vms_lost != 0 {
                return Err(SimError::InvalidConfig(format!(
                    "fleet sweep ({} @ {hosts} hosts) lost {} VMs",
                    scheduler.name(),
                    report.vms_lost
                )));
            }
            points.push(FleetPoint::from_report(&report));
        }
    }
    Ok(points)
}

/// Render as a table (text / CSV via [`Table`]).
pub fn render(points: &[FleetPoint]) -> Table {
    let mut t = Table::new(
        "Fleet — churn + host failures: SLO outcomes per scheduler and fleet size",
        &[
            "scheduler",
            "hosts",
            "crashes",
            "displaced",
            "evacuated",
            "shed",
            "evac lat (s)",
            "degraded VM-min",
            "place fail",
            "instr/host-up-s",
        ],
    );
    for p in points {
        t.push_row(vec![
            p.scheduler.to_string(),
            p.num_hosts.to_string(),
            p.crashes.to_string(),
            p.displaced.to_string(),
            p.evacuated.to_string(),
            p.shed.to_string(),
            f3(p.evac_latency_mean_s),
            f3(p.degraded_vm_minutes),
            p.placement_failures.to_string(),
            format!("{:.3e}", p.instr_per_host_up_s),
        ]);
    }
    t
}

/// Serialize the sweep as JSON (one object per point, key order stable).
pub fn to_json(points: &[FleetPoint]) -> String {
    Json::Arr(
        points
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("scheduler".into(), Json::from(p.scheduler)),
                    ("num_hosts".into(), Json::from(p.num_hosts)),
                    ("crashes".into(), Json::from(p.crashes)),
                    ("rack_crashes".into(), Json::from(p.rack_crashes)),
                    ("displaced".into(), Json::from(p.displaced)),
                    ("evacuated".into(), Json::from(p.evacuated)),
                    ("shed".into(), Json::from(p.shed)),
                    ("vms_lost".into(), Json::from(p.vms_lost as f64)),
                    (
                        "evac_latency_mean_s".into(),
                        Json::Num(p.evac_latency_mean_s),
                    ),
                    (
                        "degraded_vm_minutes".into(),
                        Json::Num(p.degraded_vm_minutes),
                    ),
                    (
                        "placement_failures".into(),
                        Json::from(p.placement_failures),
                    ),
                    (
                        "migration_failures".into(),
                        Json::from(p.migration_failures),
                    ),
                    ("hosts_up_end".into(), Json::from(p.hosts_up_end)),
                    (
                        "instr_per_host_up_s".into(),
                        Json::Num(p.instr_per_host_up_s),
                    ),
                ])
            })
            .collect(),
    )
    .to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_runs_all_points_and_loses_nothing() {
        let opts = RunOptions::default();
        let pts = run_grid(&SCHEDULERS, &QUICK_SIZES, &opts, 4, true).unwrap();
        assert_eq!(pts.len(), SCHEDULERS.len());
        for p in &pts {
            assert_eq!(p.vms_lost, 0, "{}: no VM may vanish", p.scheduler);
            assert!(p.instr_per_host_up_s > 0.0);
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let opts = RunOptions {
            seed: 7,
            ..RunOptions::default()
        };
        let a = to_json(&run_grid(&[FleetScheduler::Credit], &[6], &opts, 4, true).unwrap());
        let b = to_json(&run_grid(&[FleetScheduler::Credit], &[6], &opts, 4, true).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn approx_engine_preserves_policy_rankings() {
        // The approx engine trades exactness for speed; it must not trade
        // away *conclusions*. Rank the schedulers by useful throughput in
        // the quick regime under both engines and demand the same order.
        let rankings = |engine| {
            let opts = RunOptions {
                engine,
                ..RunOptions::default()
            };
            let mut pts = run_grid(&SCHEDULERS, &QUICK_SIZES, &opts, 4, true).unwrap();
            pts.sort_by(|a, b| {
                b.instr_per_host_up_s
                    .partial_cmp(&a.instr_per_host_up_s)
                    .unwrap()
            });
            pts.iter().map(|p| p.scheduler).collect::<Vec<_>>()
        };
        let exact = rankings(mem_model::EngineSelect::Exact);
        let approx = rankings(mem_model::EngineSelect::Approx);
        assert_eq!(
            exact, approx,
            "approx engine must rank fleet policies like exact mode"
        );
    }

    #[test]
    fn render_and_json_shapes() {
        let opts = RunOptions::default();
        let pts = run_grid(&[FleetScheduler::VProbeGd], &[4], &opts, 3, true).unwrap();
        let t = render(&pts);
        assert_eq!(t.num_rows(), 1);
        assert!(t.to_csv().contains("vProbe-GD"));
        let doc = Json::parse(&to_json(&pts)).unwrap();
        let arr = doc.as_array().unwrap();
        assert_eq!(arr[0].get("num_hosts").unwrap().as_u64(), Some(4));
        assert_eq!(arr[0].get("vms_lost").unwrap().as_f64(), Some(0.0));
    }
}
