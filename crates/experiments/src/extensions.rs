//! Experiments beyond the paper: the §VI future-work features and a
//! node-count scaling study.
//!
//! * **Page migration**: the paper argues page migration is expensive but
//!   complementary; the extension migrates a bounded number of bytes per
//!   period toward each misplaced memory-intensive VCPU. This experiment
//!   measures what that buys on a workload whose memory is born on the
//!   wrong node.
//! * **Scaling**: Algorithms 1 and 2 are defined for N nodes; the paper
//!   only evaluates N = 2. This experiment repeats the core comparison on
//!   a 4-socket machine.

use crate::report::{f3, pct, Table};
use crate::runner::RunOptions;
use mem_model::AllocPolicy;
use numa_topo::{presets, NodeId};
use sim_core::SimError;
use vprobe::{variants, Bounds, VProbePolicy};
use workloads::{hungry, npb};
use xen_sim::{CreditPolicy, MachineBuilder, SchedPolicy, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

/// One row of the page-migration comparison.
#[derive(Debug, Clone)]
pub struct PageMigRow {
    pub policy: String,
    pub instr_rate: f64,
    pub remote_ratio: f64,
    pub migrated_mb: f64,
}

/// Run vProbe with and without page migration on a VM whose memory was
/// all allocated on node 0 (e.g. restored from a snapshot there) while
/// its threads need both sockets.
pub fn run_page_migration(opts: &RunOptions) -> Result<Vec<PageMigRow>, SimError> {
    // The policy box is built inside the worker (trait objects are not
    // `Send`); the tags keep the row order fixed.
    let names = vec!["Credit", "vProbe", "vProbe+pm"];
    crate::parallel::parallel_try_map(names, |name| {
        let policy: Box<dyn SchedPolicy> = match name {
            "Credit" => Box::new(CreditPolicy::new()),
            "vProbe" => Box::new(variants::vprobe(2, Bounds::default())),
            _ => Box::new(
                VProbePolicy::new(2, Bounds::default()).with_page_migration(256 * 1024 * 1024),
            ),
        };
        let mut machine = MachineBuilder::new(presets::xeon_e5620())
            .policy(policy)
            .sample_period(opts.sample_period)
            .seed(opts.seed)
            .add_vm(VmConfig::new(
                "vm1",
                8,
                8 * GB,
                AllocPolicy::OnNode(NodeId::new(0)),
                vec![npb::sp()],
            ))
            .add_vm(VmConfig::new(
                "vm2",
                8,
                5 * GB,
                AllocPolicy::OnNode(NodeId::new(0)),
                vec![npb::sp()],
            ))
            .add_vm(VmConfig::new(
                "vm3",
                8,
                GB,
                AllocPolicy::MostFree,
                vec![hungry::hungry_loop(); 8],
            ))
            .build()?;
        machine.run(opts.duration);
        let m = machine.metrics();
        Ok(PageMigRow {
            policy: name.into(),
            instr_rate: m.per_vm[0].instr_per_second(m.elapsed),
            remote_ratio: m.per_vm[0].remote_ratio(),
            migrated_mb: m.page_migration_bytes as f64 / (1024.0 * 1024.0),
        })
    })
}

pub fn render_page_migration(rows: &[PageMigRow]) -> Table {
    let mut t = Table::new(
        "Extension — §VI page migration (VM memory born on node 0)",
        &["policy", "vs Credit", "remote accesses", "migrated (MB)"],
    );
    let base = rows
        .iter()
        .find(|r| r.policy == "Credit")
        .map(|r| r.instr_rate)
        .unwrap_or(1.0);
    for r in rows {
        t.push_row(vec![
            r.policy.clone(),
            f3(r.instr_rate / base),
            pct(r.remote_ratio * 100.0),
            format!("{:.0}", r.migrated_mb),
        ]);
    }
    t
}

/// One row of the node-count scaling study.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    pub nodes: usize,
    pub policy: String,
    pub instr_rate: f64,
    pub remote_ratio: f64,
}

/// Compare Credit and vProbe on the paper's 2-socket box and on a
/// 4-socket machine with a proportionally scaled tenant set.
pub fn run_scaling(opts: &RunOptions) -> Result<Vec<ScalingRow>, SimError> {
    // One case per (machine size, policy); topology and policy are built
    // inside the worker so the case list is plain `Send` data.
    let cases: Vec<(usize, &'static str)> =
        vec![(2, "Credit"), (2, "vProbe"), (4, "Credit"), (4, "vProbe")];
    crate::parallel::parallel_try_map(cases, |(nodes, name)| {
        let topo = match nodes {
            2 => presets::xeon_e5620(),
            _ => presets::four_socket_32core(),
        };
        let vms_per_machine = nodes; // one heavy VM per socket's worth
        let policy: Box<dyn SchedPolicy> = match name {
            "Credit" => Box::new(CreditPolicy::new()),
            _ => Box::new(variants::vprobe(nodes, Bounds::default())),
        };
        let mut b = MachineBuilder::new(topo)
            .policy(policy)
            .sample_period(opts.sample_period)
            .seed(opts.seed);
        for i in 0..vms_per_machine {
            b = b.add_vm(VmConfig::new(
                format!("vm{i}"),
                8,
                6 * GB,
                AllocPolicy::SplitEven,
                vec![if i % 2 == 0 { npb::sp() } else { npb::lu() }],
            ));
        }
        let mut machine = b.build()?;
        machine.run(opts.duration);
        let m = machine.metrics();
        let instr: u64 = m.per_vm.iter().map(|v| v.instructions).sum();
        let remote: u64 = m.per_vm.iter().map(|v| v.remote_accesses).sum();
        let total: u64 = m.per_vm.iter().map(|v| v.total_accesses()).sum();
        Ok(ScalingRow {
            nodes,
            policy: name.into(),
            instr_rate: instr as f64 / m.elapsed.as_secs_f64(),
            remote_ratio: remote as f64 / total.max(1) as f64,
        })
    })
}

pub fn render_scaling(rows: &[ScalingRow]) -> Table {
    let mut t = Table::new(
        "Extension — node-count scaling (whole-machine throughput)",
        &["nodes", "policy", "instr/s", "remote accesses"],
    );
    for r in rows {
        t.push_row(vec![
            r.nodes.to_string(),
            r.policy.clone(),
            format!("{:.3e}", r.instr_rate),
            pct(r.remote_ratio * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn quick() -> RunOptions {
        RunOptions {
            duration: SimDuration::from_secs(15),
            warmup: SimDuration::ZERO,
            ..RunOptions::default()
        }
    }

    #[test]
    fn page_migration_moves_memory_and_cuts_remote_traffic() {
        let rows = run_page_migration(&quick()).unwrap();
        let get = |n: &str| rows.iter().find(|r| r.policy == n).unwrap();
        assert_eq!(get("Credit").migrated_mb, 0.0);
        assert_eq!(get("vProbe").migrated_mb, 0.0);
        let pm = get("vProbe+pm");
        assert!(pm.migrated_mb > 0.0, "pages should move");
        assert!(
            pm.remote_ratio < get("vProbe").remote_ratio,
            "page migration should cut remote traffic further: {} vs {}",
            pm.remote_ratio,
            get("vProbe").remote_ratio
        );
    }

    #[test]
    fn page_migration_beats_plain_vprobe_on_misplaced_memory() {
        let mut o = quick();
        o.duration = SimDuration::from_secs(15);
        let rows = run_page_migration(&o).unwrap();
        let get = |n: &str| rows.iter().find(|r| r.policy == n).unwrap();
        assert!(
            get("vProbe+pm").instr_rate > get("vProbe").instr_rate,
            "pm {} vs vprobe {}",
            get("vProbe+pm").instr_rate,
            get("vProbe").instr_rate
        );
    }

    #[test]
    fn vprobe_helps_on_four_sockets_too() {
        let rows = run_scaling(&quick()).unwrap();
        for nodes in [2usize, 4] {
            let credit = rows
                .iter()
                .find(|r| r.nodes == nodes && r.policy == "Credit")
                .unwrap();
            let vp = rows
                .iter()
                .find(|r| r.nodes == nodes && r.policy == "vProbe")
                .unwrap();
            assert!(
                vp.remote_ratio < credit.remote_ratio,
                "n={nodes}: vProbe must cut remote traffic"
            );
        }
    }

    #[test]
    fn render_shapes() {
        let rows = run_page_migration(&quick()).unwrap();
        assert_eq!(render_page_migration(&rows).num_rows(), 3);
        let rows = run_scaling(&quick()).unwrap();
        assert_eq!(render_scaling(&rows).num_rows(), 4);
    }
}
