//! Result rendering: aligned text tables and CSV.

/// A simple column-aligned table builder for experiment output.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:<w$}", c, w = widths[i]));
            }
            while s.ends_with(' ') {
                s.pop();
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Render as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a ratio to three decimals (the paper's bar-chart precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a percentage with two significant decimals.
pub fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

/// Format an overhead percentage with Table III's precision.
pub fn pct5(x: f64) -> String {
    format!("{x:.5}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("T", &["a", "bb"]);
        t.push_row(vec!["x".into(), "1.000".into()]);
        t.push_row(vec!["longer".into(), "2".into()]);
        t
    }

    #[test]
    fn text_is_aligned() {
        let txt = table().to_text();
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].starts_with("a       bb"));
        assert!(lines[3].starts_with("x       1.000"));
        assert!(lines[4].starts_with("longer  2"));
    }

    #[test]
    fn csv_round_trip() {
        let csv = table().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "a,bb");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("T", &["a"]);
        t.push_row(vec!["x,y".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.0105), "0.01%");
        assert_eq!(pct5(0.0123456), "0.01235");
    }
}
