//! Table III — vProbe's "overhead time".
//!
//! The paper creates one to four VMs (2 VCPUs, 4 GB each), each running
//! two soplex instances, and measures the time spent collecting PMU data
//! plus reassigning VCPUs in the partitioning pass, as a percentage of
//! total execution time. Reported values are 0.00847 %–0.01619 % — far
//! below 0.1 %. Our overhead model charges the same cost sources
//! explicitly (see `pmu::overhead`), so this experiment *measures* the
//! percentage end to end rather than asserting it.

use crate::report::{pct5, Table};
use crate::runner::RunOptions;
use mem_model::AllocPolicy;
use numa_topo::presets;
use sim_core::SimError;
use vprobe::{variants, Bounds};
use workloads::speccpu;
use xen_sim::{MachineBuilder, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

/// One row of Table III.
#[derive(Debug, Clone)]
pub struct Table3Row {
    pub num_vms: usize,
    /// "Overhead time" as a percentage of total execution time.
    pub overhead_percent: f64,
}

/// Run with `num_vms` VMs (1–4 in the paper).
pub fn run_one(num_vms: usize, opts: &RunOptions) -> Result<Table3Row, SimError> {
    let topo = presets::xeon_e5620();
    let mut b = MachineBuilder::new(topo)
        .policy(Box::new(variants::vprobe(2, Bounds::default())))
        .sample_period(opts.sample_period)
        .seed(opts.seed);
    for i in 0..num_vms {
        b = b.add_vm(VmConfig::new(
            format!("vm{}", i + 1),
            2,
            4 * GB,
            AllocPolicy::MostFree,
            vec![speccpu::soplex(); 2],
        ));
    }
    let mut machine = b.build()?;
    machine.run(opts.duration);
    Ok(Table3Row {
        num_vms,
        overhead_percent: machine.metrics().overhead_percent(),
    })
}

/// Run the full 1–4 VM sweep (in parallel; rows stay in VM-count order).
pub fn run(opts: &RunOptions) -> Result<Vec<Table3Row>, SimError> {
    crate::parallel::parallel_try_map((1..=4).collect(), |n| run_one(n, opts))
}

/// Render as a table.
pub fn render(rows: &[Table3Row]) -> Table {
    let mut t = Table::new(
        "Table III — vProbe \"overhead time\" (percent of execution time)",
        &["VMs", "overhead %"],
    );
    for r in rows {
        t.push_row(vec![r.num_vms.to_string(), pct5(r.overhead_percent)]);
    }
    t
}

/// The paper's claim: overhead stays far below 0.1 % at every VM count.
pub fn shape_holds(rows: &[Table3Row]) -> bool {
    rows.iter().all(|r| r.overhead_percent < 0.1 && r.overhead_percent > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn quick() -> RunOptions {
        RunOptions {
            duration: SimDuration::from_secs(6),
            warmup: SimDuration::ZERO,
            ..RunOptions::default()
        }
    }

    #[test]
    fn overhead_is_negligible_for_every_vm_count() {
        let rows = run(&quick()).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(shape_holds(&rows), "rows: {rows:?}");
    }

    #[test]
    fn overhead_grows_then_is_bounded() {
        // The paper sees overhead rise from 1 to 3 VMs (more VCPUs to
        // sample and migrate) and stay below 0.1 % at 4.
        let rows = run(&quick()).unwrap();
        assert!(
            rows[2].overhead_percent > rows[0].overhead_percent * 0.8,
            "3-VM overhead should not be far below 1-VM: {rows:?}"
        );
        assert!(rows[3].overhead_percent < 0.1);
    }

    #[test]
    fn render_has_four_rows() {
        let rows = run(&quick()).unwrap();
        let t = render(&rows);
        assert_eq!(t.num_rows(), 4);
        assert!(t.to_text().contains("overhead"));
    }
}
