//! Fig. 4 — SPEC CPU2006 under the five schedulers.
//!
//! Five workloads (paper §V-B1): four identical instances each of soplex,
//! libquantum, and milc; mcf split six-in-VM1 / two-in-VM2 (VM2's 5 GB
//! only fits two); and *mix* (one instance each of the four programs).
//! For every workload and scheduler we report normalized execution time
//! (4a), normalized total memory accesses (4b), and normalized remote
//! memory accesses (4c), all relative to Credit.

use crate::report::{f3, Table};
use crate::runner::{run_all_schedulers, RunOptions, SetupKind, WorkloadRun};
use sim_core::SimError;
use workloads::{speccpu, WorkloadSpec};

/// One scheduler's bars for one workload.
#[derive(Debug, Clone)]
pub struct SchedulerBars {
    pub scheduler: &'static str,
    pub norm_time: f64,
    pub norm_total: f64,
    pub norm_remote: f64,
}

/// All five schedulers' results for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadBars {
    pub workload: String,
    pub bars: Vec<SchedulerBars>,
    pub runs: Vec<WorkloadRun>,
}

/// The five Fig. 4 workloads as (name, VM1 programs, VM2 programs).
pub fn workload_set() -> Vec<(String, Vec<WorkloadSpec>, Vec<WorkloadSpec>)> {
    vec![
        (
            "soplex".into(),
            vec![speccpu::soplex(); 4],
            vec![speccpu::soplex(); 4],
        ),
        (
            "libquantum".into(),
            vec![speccpu::libquantum(); 4],
            vec![speccpu::libquantum(); 4],
        ),
        // "we run six instances of the mcf in VM1 and two instances in VM2
        // to guarantee that all four workloads have the same total number
        // of instances" (§V-B1).
        ("mcf".into(), vec![speccpu::mcf(); 6], vec![speccpu::mcf(); 2]),
        (
            "milc".into(),
            vec![speccpu::milc(); 4],
            vec![speccpu::milc(); 4],
        ),
        ("mix".into(), speccpu::mix(), speccpu::mix()),
    ]
}

/// Normalize a scheduler sweep against its Credit run (always `runs[0]`).
pub fn normalize(workload: &str, runs: Vec<WorkloadRun>) -> WorkloadBars {
    let credit = runs[0].clone();
    let bars = runs
        .iter()
        .map(|r| SchedulerBars {
            scheduler: r.scheduler.name(),
            norm_time: r.normalized_time_vs(&credit),
            norm_total: r.normalized_total_vs(&credit),
            norm_remote: r.normalized_remote_vs(&credit),
        })
        .collect();
    WorkloadBars {
        workload: workload.to_string(),
        bars,
        runs,
    }
}

/// Run the full Fig. 4 sweep (workloads in parallel; rows stay in
/// `workload_set` order).
pub fn run(opts: &RunOptions) -> Result<Vec<WorkloadBars>, SimError> {
    crate::parallel::parallel_try_map(workload_set(), |(name, vm1, vm2)| {
        let runs = run_all_schedulers(SetupKind::PaperEval, vm1, vm2, opts)?;
        Ok(normalize(&name, runs))
    })
}

/// Render all three panels as one table.
pub fn render(results: &[WorkloadBars], figure: &str) -> Table {
    let mut t = Table::new(
        format!("{figure} — normalized vs Credit (time / total accesses / remote accesses)"),
        &["workload", "scheduler", "time (a)", "total (b)", "remote (c)"],
    );
    for wb in results {
        for b in &wb.bars {
            t.push_row(vec![
                wb.workload.clone(),
                b.scheduler.to_string(),
                f3(b.norm_time),
                f3(b.norm_total),
                f3(b.norm_remote),
            ]);
        }
    }
    t
}

/// The qualitative claims of Fig. 4 that the reproduction asserts:
/// vProbe no slower than Credit and with clearly fewer remote accesses,
/// on every workload.
pub fn shape_holds(results: &[WorkloadBars]) -> bool {
    results.iter().all(|wb| {
        let vprobe = wb.bars.iter().find(|b| b.scheduler == "vProbe").unwrap();
        vprobe.norm_time <= 1.02 && vprobe.norm_remote < 0.9
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Scheduler;
    use sim_core::SimDuration;

    fn quick() -> RunOptions {
        RunOptions {
            duration: SimDuration::from_secs(8),
            warmup: SimDuration::from_secs(4),
            ..RunOptions::default()
        }
    }

    #[test]
    fn workload_set_matches_paper() {
        let set = workload_set();
        assert_eq!(set.len(), 5);
        let (name, vm1, vm2) = &set[2];
        assert_eq!(name, "mcf");
        assert_eq!(vm1.len(), 6, "six mcf instances in VM1");
        assert_eq!(vm2.len(), 2, "two in VM2");
        assert_eq!(set[4].1.len(), 4, "mix runs one instance of each");
    }

    #[test]
    fn soplex_shape_vprobe_beats_credit() {
        let (name, vm1, vm2) = workload_set().remove(0);
        let runs = run_all_schedulers(SetupKind::PaperEval, vm1, vm2, &quick()).unwrap();
        let wb = normalize(&name, runs);
        let vprobe = wb.bars.iter().find(|b| b.scheduler == "vProbe").unwrap();
        assert!(
            vprobe.norm_time < 1.0,
            "vProbe should beat Credit on soplex: {}",
            vprobe.norm_time
        );
        assert!(
            vprobe.norm_remote < 0.95,
            "vProbe should cut remote accesses: {}",
            vprobe.norm_remote
        );
    }

    #[test]
    fn normalize_sets_credit_to_unity() {
        let (name, vm1, vm2) = workload_set().remove(1);
        let runs = run_all_schedulers(SetupKind::PaperEval, vm1, vm2, &quick()).unwrap();
        let wb = normalize(&name, runs);
        let credit = &wb.bars[0];
        assert_eq!(credit.scheduler, Scheduler::Credit.name());
        assert!((credit.norm_time - 1.0).abs() < 1e-9);
        assert!((credit.norm_total - 1.0).abs() < 1e-9);
        assert!((credit.norm_remote - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_emits_five_rows_per_workload() {
        let (name, vm1, vm2) = workload_set().remove(0);
        let runs = run_all_schedulers(SetupKind::PaperEval, vm1, vm2, &quick()).unwrap();
        let t = render(&[normalize(&name, runs)], "Fig. 4");
        assert_eq!(t.num_rows(), 5);
    }
}
