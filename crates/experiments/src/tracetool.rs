//! Trace analysis: turn a finished machine's trace and telemetry into the
//! text report the `trace` binary prints.
//!
//! The report answers the questions the paper's evaluation keeps asking of
//! a schedule: how much stealing stayed NUMA-local (Alg. 2's preference),
//! how much partition-move churn each sampling pass caused (Fig. 8's
//! left-arm cost), and how each period's workers classified against the
//! RPTI bounds (the Table 2 view of Eq. 3). All numbers come from the
//! telemetry registry, so the report is deterministic and macro-step
//! invariant.

use crate::report::Table;
use xen_sim::Machine;

/// Render the post-run analysis. Requires telemetry to have been enabled
/// for the run; sections whose metrics never fired say so instead of
/// vanishing, so reports are comparable across scenarios.
pub fn analysis_report(m: &Machine) -> String {
    let reg = m.telemetry();
    let met = m.metrics();
    let mut out = String::new();
    let total = |name: &str| reg.counter_total_by_name(name).unwrap_or(0);

    out.push_str(&format!(
        "policy: {}   simulated: {:.1}s   trace: {} events kept, {} dropped\n",
        m.policy_name(),
        met.elapsed.as_secs_f64(),
        m.trace().len(),
        m.trace().dropped(),
    ));

    // Steal locality: Alg. 2 prefers same-node victims; the local/remote
    // split is the one-line verdict on how well that worked out.
    let local = total("steals_local");
    let remote = total("steals_remote");
    let steals = local + remote;
    if steals == 0 {
        out.push_str("steals: none\n");
    } else {
        out.push_str(&format!(
            "steals: {} total, {} local / {} remote ({:.1}% local)\n",
            steals,
            local,
            remote,
            local as f64 / steals as f64 * 100.0,
        ));
    }

    // Partition-move churn: how hard the sampling pass shuffled VCPUs.
    let moves = total("partition_moves");
    if let Some(series) = reg.counter_series("partition_moves") {
        let per_period: Vec<f64> = series.values().collect();
        let peak = per_period.iter().cloned().fold(0.0_f64, f64::max);
        let periods = per_period.len().max(1);
        out.push_str(&format!(
            "partition moves: {} over {} periods ({:.2}/period mean, {:.0} peak)\n",
            moves,
            per_period.len(),
            moves as f64 / periods as f64,
            peak,
        ));
    }

    let faults = total("faults_injected");
    if faults > 0 {
        out.push_str(&format!(
            "faults: {} injected   degrade: {} enter / {} recover\n",
            faults,
            total("degrade_enter"),
            total("degrade_recover"),
        ));
    }

    out.push('\n');
    out.push_str(&classification_table(m).to_text());
    out
}

/// Per-period worker classification against the RPTI bounds — the Table 2
/// view of each sampling period, from the `rpti_*` counter series.
fn classification_table(m: &Machine) -> Table {
    let reg = m.telemetry();
    let mut t = Table::new(
        "per-period RPTI classification (workers)",
        &["period", "t_s", "friendly", "fitting", "thrashing"],
    );
    let (Some(friendly), Some(fitting), Some(thrashing)) = (
        reg.counter_series("rpti_friendly"),
        reg.counter_series("rpti_fitting"),
        reg.counter_series("rpti_thrashing"),
    ) else {
        return t;
    };
    for (i, &(time, fr)) in friendly.points().iter().enumerate() {
        let fi = fitting.points().get(i).map_or(0.0, |p| p.1);
        let th = thrashing.points().get(i).map_or(0.0, |p| p.1);
        t.push_row(vec![
            format!("{}", i + 1),
            format!("{:.1}", time.as_secs_f64()),
            format!("{fr:.0}"),
            format!("{fi:.0}"),
            format!("{th:.0}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use sim_core::SimDuration;

    fn quick_scenario(scheduler: &str, fault_rate: f64) -> Machine {
        quick_scenario_secs(scheduler, fault_rate, 3)
    }

    fn quick_scenario_secs(scheduler: &str, fault_rate: f64, duration_s: u64) -> Machine {
        let json = format!(
            r#"{{
              "topology": "xeon_e5620",
              "scheduler": "{scheduler}",
              "duration_s": {duration_s},
              "seed": 7,
              "fault_rate": {fault_rate},
              "fault_seed": 11,
              "vms": [
                {{ "name": "a", "vcpus": 8, "mem_gb": 2, "workloads": ["soplex","soplex","soplex","soplex","soplex","soplex"] }},
                {{ "name": "b", "vcpus": 4, "mem_gb": 2, "workloads": ["mcf","mcf","mcf","mcf"] }}
              ]
            }}"#
        );
        let scenario = Scenario::from_json(&json).unwrap();
        let mut m = scenario.build().unwrap();
        m.enable_trace(1_000_000);
        m.enable_telemetry();
        m.run(SimDuration::from_secs(scenario.duration_s));
        m
    }

    #[test]
    fn report_covers_steals_and_classification() {
        let m = quick_scenario("vprobe", 0.0);
        let report = analysis_report(&m);
        assert!(report.contains("policy: vprobe"), "{report}");
        assert!(report.contains("steals:"), "{report}");
        assert!(report.contains("partition moves:"), "{report}");
        assert!(report.contains("per-period RPTI classification"), "{report}");
        // 3 simulated seconds at the default 1 s period ⇒ 3 table rows.
        assert!(report.matches('\n').count() > 6, "{report}");
        // Deterministic: same scenario, same report.
        let again = analysis_report(&quick_scenario("vprobe", 0.0));
        assert_eq!(report, again);
    }

    #[test]
    fn faulty_vprobe_gd_run_is_auditable() {
        let m = quick_scenario("vprobe-gd", 0.2);
        let injected = m.metrics().faults.injected();
        assert!(injected > 0, "fault rate 0.2 must inject");
        assert_eq!(
            m.telemetry().counter_total_by_name("faults_injected"),
            Some(injected)
        );
        let traced = m
            .trace()
            .count(|e| matches!(e, xen_sim::Event::Fault(_)));
        assert_eq!(traced as u64, injected);
        let report = analysis_report(&m);
        assert!(report.contains("faults:"), "{report}");
    }

    /// A heavy sample-loss run must push vprobe-gd through its Credit
    /// fallback, and every transition must land in both the trace and
    /// the degrade counters.
    #[test]
    fn degrade_transitions_reach_trace_and_counters() {
        let m = quick_scenario_secs("vprobe-gd", 0.7, 6);
        let enter = m
            .telemetry()
            .counter_total_by_name("degrade_enter")
            .unwrap();
        let recover = m
            .telemetry()
            .counter_total_by_name("degrade_recover")
            .unwrap();
        assert!(enter >= 1, "70% fault rate must force fallback");
        assert_eq!(enter, m.metrics().faults.fallbacks_triggered);
        let traced_enter = m.trace().count(|e| {
            matches!(e, xen_sim::Event::Degrade { fallback: true })
        });
        let traced_recover = m.trace().count(|e| {
            matches!(e, xen_sim::Event::Degrade { fallback: false })
        });
        assert_eq!(traced_enter as u64, enter);
        assert_eq!(traced_recover as u64, recover);
        let report = analysis_report(&m);
        assert!(report.contains("degrade:"), "{report}");
    }
}
