//! Fig. 1 — remote memory accesses under the stock Credit scheduler.
//!
//! The paper's motivation experiment (§II-B): VM1 and VM2 (8 VCPUs, 8 GB)
//! run a memory-intensive program — a 4-threaded NPB benchmark or four
//! identical SPEC CPU2006 instances — while VM3 (8 VCPUs, 2 GB) burns CPU
//! with eight hungry loops. The measured quantity is the fraction of VM1's
//! memory accesses served by a remote node; the paper finds >80 % for
//! every program except soplex (77.4 %).
//!
//! Our NUMA-oblivious substrate reproduces the *mechanism* — the Credit
//! scheduler's placement is uncorrelated with memory location, so a large
//! fraction of accesses cross the interconnect — at a lower magnitude
//! (~35-50 %), because the paper's testbed compounds the effect with
//! allocation artifacts of real Xen 4.0.1 that we model more neutrally
//! (see EXPERIMENTS.md).

use crate::report::{pct, Table};
use crate::runner::{run_workload, RunOptions, Scheduler, SetupKind};
use sim_core::SimError;
use workloads::{npb, speccpu, WorkloadSpec};

/// One bar of Fig. 1.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    pub workload: String,
    pub remote_ratio: f64,
}

/// The Fig. 1 program list: NPB (4-threaded) then SPEC (4 instances).
pub fn workload_set() -> Vec<(String, Vec<WorkloadSpec>)> {
    let mut v: Vec<(String, Vec<WorkloadSpec>)> = npb::fig5_set()
        .into_iter()
        .map(|w| (w.name.clone(), vec![w]))
        .collect();
    for w in [
        speccpu::soplex(),
        speccpu::libquantum(),
        speccpu::mcf(),
        speccpu::milc(),
    ] {
        v.push((w.name.clone(), vec![w; 4]));
    }
    v
}

/// Run the experiment (one run per workload, in parallel).
pub fn run(opts: &RunOptions) -> Result<Vec<Fig1Row>, SimError> {
    crate::parallel::parallel_try_map(workload_set(), |(name, wl)| {
        let r = run_workload(
            Scheduler::Credit,
            SetupKind::Motivation,
            wl.clone(),
            wl,
            opts,
        )?;
        Ok(Fig1Row {
            workload: name,
            remote_ratio: r.remote_ratio,
        })
    })
}

/// Render as a table.
pub fn render(rows: &[Fig1Row]) -> Table {
    let mut t = Table::new(
        "Fig. 1 — remote memory access ratio of VM1 under the Credit scheduler",
        &["workload", "remote accesses"],
    );
    for r in rows {
        t.push_row(vec![r.workload.clone(), pct(r.remote_ratio * 100.0)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn quick() -> RunOptions {
        RunOptions {
            duration: SimDuration::from_secs(5),
            warmup: SimDuration::from_secs(3),
            ..RunOptions::default()
        }
    }

    #[test]
    fn covers_all_nine_programs() {
        let names: Vec<String> = workload_set().into_iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            vec!["bt", "cg", "lu", "mg", "sp", "soplex", "libquantum", "mcf", "milc"]
        );
    }

    #[test]
    fn credit_goes_remote_for_memory_intensive_programs() {
        // One representative program keeps the test fast; the full sweep
        // runs in the bench harness.
        let mut opts = quick();
        opts.duration = SimDuration::from_secs(8);
        let (name, wl) = workload_set().remove(6); // libquantum
        assert_eq!(name, "libquantum");
        let r = run_workload(Scheduler::Credit, SetupKind::Motivation, wl.clone(), wl, &opts)
            .unwrap();
        assert!(
            r.remote_ratio > 0.2,
            "Credit should produce substantial remote traffic: {}",
            r.remote_ratio
        );
    }

    #[test]
    fn render_has_one_row_per_program() {
        let rows = vec![
            Fig1Row {
                workload: "bt".into(),
                remote_ratio: 0.45,
            },
            Fig1Row {
                workload: "cg".into(),
                remote_ratio: 0.5,
            },
        ];
        let t = render(&rows);
        assert_eq!(t.num_rows(), 2);
        assert!(t.to_text().contains("45.00%"));
    }
}
