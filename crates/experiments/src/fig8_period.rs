//! Fig. 8 — sampling-period sensitivity.
//!
//! The paper runs the SPEC *mix* workload under vProbe with the sampling
//! period swept from 0.1 s to 10 s and reports the workload's completion
//! time, finding a U-shape with the optimum at 1 s: shorter periods pay
//! monitoring/migration overhead, longer ones act on stale memory-access
//! characteristics (the guest keeps rebalancing threads across VCPUs, so
//! per-VCPU affinities rot).

use crate::report::{f3, Table};
use crate::runner::{run_workload, RunOptions, Scheduler, SetupKind};
use sim_core::{SimDuration, SimError};
use workloads::speccpu;

/// The swept periods (seconds, paper Fig. 8 x-axis).
pub const PERIODS_S: [f64; 7] = [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0];

/// One point of Fig. 8.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    pub period_s: f64,
    /// Relative completion time of the mix workload (1.0 = the 1 s run).
    pub norm_time: f64,
    pub instr_rate: f64,
}

/// Run the sweep under vProbe.
pub fn run(opts: &RunOptions) -> Result<Vec<Fig8Point>, SimError> {
    run_periods(&PERIODS_S, opts)
}

/// Run chosen periods; normalization is against the 1 s run (or the first
/// period if 1 s is not included).
pub fn run_periods(periods_s: &[f64], opts: &RunOptions) -> Result<Vec<Fig8Point>, SimError> {
    let rates = crate::parallel::parallel_try_map(periods_s.to_vec(), |p| {
        let mut o = opts.clone();
        o.sample_period = SimDuration::from_secs_f64(p);
        let r = run_workload(
            Scheduler::VProbe,
            SetupKind::PaperEval,
            speccpu::mix(),
            speccpu::mix(),
            &o,
        )?;
        Ok((p, r.instr_rate))
    })?;
    let reference = rates
        .iter()
        .find(|&&(p, _)| (p - 1.0).abs() < 1e-9)
        .or_else(|| rates.first())
        .map(|&(_, rate)| rate)
        .ok_or_else(|| {
            SimError::InvalidConfig("sampling-period sweep needs at least one period".into())
        })?;
    Ok(rates
        .into_iter()
        .map(|(p, rate)| Fig8Point {
            period_s: p,
            norm_time: reference / rate,
            instr_rate: rate,
        })
        .collect())
}

/// Render as a table.
pub fn render(points: &[Fig8Point]) -> Table {
    let mut t = Table::new(
        "Fig. 8 — workload mix completion time vs sampling period (1 s = 1.000)",
        &["period (s)", "normalized time"],
    );
    for p in points {
        t.push_row(vec![format!("{}", p.period_s), f3(p.norm_time)]);
    }
    t
}

/// The paper's claim: 1 s is no worse than both the shortest and the
/// longest period (the sweep is U-shaped around it).
pub fn u_shape_holds(points: &[Fig8Point]) -> bool {
    let at = |p: f64| {
        points
            .iter()
            .find(|x| (x.period_s - p).abs() < 1e-9)
            .map(|x| x.norm_time)
    };
    match (at(0.1), at(1.0), at(10.0)) {
        (Some(short), Some(mid), Some(long)) => mid <= short + 1e-9 && mid <= long + 1e-9,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunOptions {
        RunOptions {
            duration: SimDuration::from_secs(12),
            warmup: SimDuration::from_secs(4),
            ..RunOptions::default()
        }
    }

    #[test]
    fn periods_span_paper_range() {
        assert_eq!(PERIODS_S[0], 0.1);
        assert_eq!(PERIODS_S[PERIODS_S.len() - 1], 10.0);
        assert!(PERIODS_S.contains(&1.0));
    }

    #[test]
    fn one_second_beats_extremes() {
        let pts = run_periods(&[0.1, 1.0, 10.0], &quick()).unwrap();
        assert!(u_shape_holds(&pts), "points: {pts:?}");
    }

    #[test]
    fn normalization_reference_is_one_second() {
        let pts = run_periods(&[0.5, 1.0], &quick()).unwrap();
        let one = pts.iter().find(|p| p.period_s == 1.0).unwrap();
        assert!((one.norm_time - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_shape() {
        let pts = vec![
            Fig8Point {
                period_s: 1.0,
                norm_time: 1.0,
                instr_rate: 1.0,
            },
            Fig8Point {
                period_s: 10.0,
                norm_time: 1.1,
                instr_rate: 0.9,
            },
        ];
        let t = render(&pts);
        assert_eq!(t.num_rows(), 2);
    }
}
