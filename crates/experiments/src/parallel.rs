//! Deterministic parallel execution — re-exported from [`sim_core::parallel`].
//!
//! The implementation moved to `sim-core` when the fleet layer arrived (it
//! shards hosts over the same worker pool and must share the process-wide
//! `--jobs` setting with the experiment sweeps). This alias keeps the
//! historical `experiments::parallel::*` paths working.

pub use sim_core::parallel::{
    configured_jobs, parallel_map, parallel_map_with_jobs, parallel_try_map, set_jobs,
};
