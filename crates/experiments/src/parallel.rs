//! Deterministic parallel execution of independent experiment runs.
//!
//! Every `(scheduler, workload, seed)` simulation in this crate is an
//! independent, deterministic computation: its outcome is a pure function
//! of its inputs. That makes the experiment sweeps embarrassingly
//! parallel — the only requirement is that result *order* stays identical
//! to the sequential path so rendered tables and CSV files are
//! byte-for-byte the same.
//!
//! [`parallel_map`] provides exactly that: items are claimed by worker
//! threads from a shared counter, but each result is written back into the
//! slot of its input index, so the output order never depends on thread
//! scheduling. With one job (or one item) it degenerates to a plain
//! sequential loop with no thread machinery at all.
//!
//! The process-wide job count is a global (set once at binary startup from
//! `--jobs`) so that deeply nested experiment code — `run_all_schedulers`,
//! every `fig*` module, the extensions — picks it up without threading a
//! parameter through every signature.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// 0 means "unset": use the machine's available parallelism.
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide worker count for [`parallel_map`]. `0` restores
/// the default (all available cores).
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, Ordering::SeqCst);
}

/// The worker count [`parallel_map`] will use: the last `set_jobs` value,
/// or the machine's available parallelism when unset.
pub fn configured_jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Map `f` over `items` using the configured number of worker threads,
/// returning results in input order (bit-identical to the sequential map).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with_jobs(configured_jobs(), items, f)
}

/// [`parallel_map`] with an explicit worker count (used by tests so they
/// don't mutate the process-wide setting).
pub fn parallel_map_with_jobs<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Per-slot mutexes rather than one shared queue: claiming is a single
    // atomic increment, and each slot is locked exactly twice (take input,
    // store output), so contention is negligible next to a simulation run.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("work item claimed twice");
                let result = f(item);
                *out[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    out.into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without storing a result")
        })
        .collect()
}

/// Fallible variant: runs every item (in parallel), then returns the first
/// error by input order, matching what the sequential `?`-chain would have
/// surfaced.
pub fn parallel_try_map<T, R, E, F>(items: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(T) -> Result<R, E> + Sync,
{
    parallel_map(items, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 7, 64] {
            let got = parallel_map_with_jobs(jobs, items.clone(), |x| x * 3 + 1);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map_with_jobs(8, empty, |x| x).is_empty());
        assert_eq!(parallel_map_with_jobs(8, vec![9], |x| x + 1), vec![10]);
    }

    #[test]
    fn try_map_returns_first_error_by_index() {
        let r: Result<Vec<u32>, String> =
            parallel_try_map((0..16).collect(), |x| if x % 5 == 3 { Err(format!("e{x}")) } else { Ok(x) });
        assert_eq!(r.unwrap_err(), "e3");
        let ok: Result<Vec<u32>, String> = parallel_try_map((0..4).collect(), Ok);
        assert_eq!(ok.unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn configured_jobs_defaults_to_cores() {
        // Whatever the machine, the default is at least one.
        assert!(configured_jobs() >= 1);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Make late indices fast and early ones slow so the completion
        // order inverts the input order.
        let got = parallel_map_with_jobs(4, (0u64..32).collect(), |x| {
            std::thread::sleep(std::time::Duration::from_micros((32 - x) * 50));
            x
        });
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }
}
