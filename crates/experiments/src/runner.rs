//! Shared experiment machinery: the paper's §V-A testbed and scheduler set.

use mem_model::{AllocPolicy, EngineSelect};
use numa_topo::presets;
use sim_core::{FaultConfig, SimDuration, SimError};
use vprobe::{variants, Bounds, BrmPolicy};
use workloads::{hungry, WorkloadSpec};
use xen_sim::{CreditPolicy, Machine, MachineBuilder, RunMetrics, SchedPolicy, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

/// The five evaluated schedulers (paper §V-A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheduler {
    Credit,
    VProbe,
    /// VCPU periodical partitioning only.
    VcpuP,
    /// NUMA-aware load balance only.
    Lb,
    /// Bias Random vCPU Migration (Rao et al., HPCA 2013).
    Brm,
    /// vProbe with the graceful-degradation layer (robustness extension;
    /// not part of the paper's scheduler set, so not in
    /// [`ALL_SCHEDULERS`]).
    VProbeGd,
}

/// All five, in the paper's legend order.
pub const ALL_SCHEDULERS: [Scheduler; 5] = [
    Scheduler::Credit,
    Scheduler::VProbe,
    Scheduler::VcpuP,
    Scheduler::Lb,
    Scheduler::Brm,
];

impl Scheduler {
    pub fn name(self) -> &'static str {
        match self {
            Scheduler::Credit => "Credit",
            Scheduler::VProbe => "vProbe",
            Scheduler::VcpuP => "VCPU-P",
            Scheduler::Lb => "LB",
            Scheduler::Brm => "BRM",
            Scheduler::VProbeGd => "vProbe-GD",
        }
    }

    /// Instantiate the policy for a machine with `num_nodes` nodes.
    pub fn policy(self, num_nodes: usize, seed: u64) -> Box<dyn SchedPolicy> {
        match self {
            Scheduler::Credit => Box::new(CreditPolicy::new()),
            Scheduler::VProbe => Box::new(variants::vprobe(num_nodes, Bounds::default())),
            Scheduler::VcpuP => Box::new(variants::vcpu_p(num_nodes, Bounds::default())),
            Scheduler::Lb => Box::new(variants::lb_only(num_nodes, Bounds::default())),
            Scheduler::Brm => Box::new(BrmPolicy::new(seed)),
            Scheduler::VProbeGd => Box::new(variants::vprobe_gd(num_nodes, Bounds::default())),
        }
    }
}

/// Which VM arrangement to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetupKind {
    /// The paper's §V-A evaluation setup: VM1 (8 VCPU, 15 GB split across
    /// both nodes) runs the measured workload; VM2 (8 VCPU, 5 GB) runs the
    /// same workload as interference; VM3 (8 VCPU, 1 GB) runs eight hungry
    /// loops.
    PaperEval,
    /// The §II-B motivation setup: VM1/VM2 with 8 GB each, VM3 with 2 GB
    /// of hungry loops (used for Fig. 1).
    Motivation,
}

/// Options for one simulation run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    pub duration: SimDuration,
    pub sample_period: SimDuration,
    pub seed: u64,
    /// Guest-OS thread rebalance period for VM1/VM2 (None disables).
    pub shuffle: Option<SimDuration>,
    /// Warmup under the stock Credit scheduler before switching to the
    /// policy under test and opening the measurement window — the
    /// experimental protocol of measuring applications on a live system.
    pub warmup: SimDuration,
    /// Fault injection (default [`FaultConfig::none`]: clean run).
    pub faults: FaultConfig,
    /// Event-horizon macro-stepping (default on; byte-identical outputs
    /// either way). `--no-macro-step` on the binaries clears it so
    /// regressions can be bisected against the reference stepper.
    pub macro_step: bool,
    /// Memory-engine implementation (default exact incremental;
    /// `--reference-engine` / `--approx-engine` on the binaries select the
    /// frozen pre-rewrite solver or the quantized fast path).
    pub engine: EngineSelect,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            duration: SimDuration::from_secs(30),
            sample_period: SimDuration::from_secs(1),
            seed: 42,
            shuffle: Some(SimDuration::from_secs(8)),
            warmup: SimDuration::from_secs(10),
            faults: FaultConfig::none(),
            macro_step: true,
            engine: EngineSelect::Exact,
        }
    }
}

/// Measured outcome of one (scheduler, workload) run; VM1 is the measured
/// VM throughout the paper.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    pub scheduler: Scheduler,
    /// VM1 achieved instructions per second (performance ∝ this).
    pub instr_rate: f64,
    /// VM1 instructions retired in the window.
    pub instructions: u64,
    /// VM1 total memory accesses (Fig. 4/5/6/7 (b)).
    pub total_accesses: u64,
    /// VM1 remote memory accesses (Fig. 4/5/6/7 (c)).
    pub remote_accesses: u64,
    pub remote_ratio: f64,
    /// Table III metric.
    pub overhead_percent: f64,
    pub migrations: u64,
    pub cross_node_migrations: u64,
    pub partition_moves: u64,
    pub metrics: RunMetrics,
}

impl WorkloadRun {
    /// Execution time relative to `baseline` (1.0 = same speed; < 1.0 =
    /// faster). Time ∝ 1 / rate for a fixed instruction budget.
    pub fn normalized_time_vs(&self, baseline: &WorkloadRun) -> f64 {
        baseline.instr_rate / self.instr_rate
    }

    /// Memory accesses per instruction, i.e. accesses for equal work. The
    /// paper runs each program to completion (fixed work) and counts
    /// accesses; our fixed-duration windows must divide by the work done
    /// or a faster scheduler would appear to "access more".
    pub fn total_per_instr(&self) -> f64 {
        self.total_accesses as f64 / self.instructions.max(1) as f64
    }

    pub fn remote_per_instr(&self) -> f64 {
        self.remote_accesses as f64 / self.instructions.max(1) as f64
    }

    /// Fig. 4/5/6/7 (b): total memory accesses for equal work, relative to
    /// the baseline scheduler.
    pub fn normalized_total_vs(&self, baseline: &WorkloadRun) -> f64 {
        self.total_per_instr() / baseline.total_per_instr().max(f64::MIN_POSITIVE)
    }

    /// Fig. 4/5/6/7 (c): remote memory accesses for equal work, relative
    /// to the baseline scheduler.
    pub fn normalized_remote_vs(&self, baseline: &WorkloadRun) -> f64 {
        self.remote_per_instr() / baseline.remote_per_instr().max(f64::MIN_POSITIVE)
    }
}

/// Build the machine for a setup.
pub fn build_machine(
    scheduler: Scheduler,
    setup: SetupKind,
    vm1_workloads: Vec<WorkloadSpec>,
    vm2_workloads: Vec<WorkloadSpec>,
    opts: &RunOptions,
) -> Result<Machine, SimError> {
    let topo = presets::xeon_e5620();
    let num_nodes = topo.num_nodes();
    let (vm1_mem, vm1_alloc, vm2_mem, vm3_mem) = match setup {
        SetupKind::PaperEval => (15 * GB, AllocPolicy::SplitEven, 5 * GB, GB),
        SetupKind::Motivation => (8 * GB, AllocPolicy::MostFree, 8 * GB, 2 * GB),
    };
    let mut vm1 = VmConfig::new("vm1", 8, vm1_mem, vm1_alloc, vm1_workloads);
    vm1.shuffle_period = opts.shuffle;
    let mut vm2 = VmConfig::new("vm2", 8, vm2_mem, AllocPolicy::MostFree, vm2_workloads);
    vm2.shuffle_period = opts.shuffle;
    let vm3 = VmConfig::new(
        "vm3",
        8,
        vm3_mem,
        AllocPolicy::MostFree,
        vec![hungry::hungry_loop(); 8],
    );
    MachineBuilder::new(topo)
        .policy(scheduler.policy(num_nodes, opts.seed))
        .sample_period(opts.sample_period)
        .seed(opts.seed)
        .faults(opts.faults.clone())
        .macro_step(opts.macro_step)
        .engine(opts.engine)
        .add_vm(vm1)
        .add_vm(vm2)
        .add_vm(vm3)
        .build()
}

/// Run one (scheduler, workload) configuration and measure VM1.
pub fn run_workload(
    scheduler: Scheduler,
    setup: SetupKind,
    vm1_workloads: Vec<WorkloadSpec>,
    vm2_workloads: Vec<WorkloadSpec>,
    opts: &RunOptions,
) -> Result<WorkloadRun, SimError> {
    let mut machine = build_machine(Scheduler::Credit, setup, vm1_workloads, vm2_workloads, opts)?;
    if !opts.warmup.is_zero() {
        machine.run(opts.warmup);
    }
    machine.set_policy(scheduler.policy(machine.topology().num_nodes(), opts.seed));
    machine.reset_metrics();
    machine.run(opts.duration);
    let metrics = machine.metrics().clone();
    let vm1 = &metrics.per_vm[0];
    Ok(WorkloadRun {
        scheduler,
        instr_rate: vm1.instr_per_second(metrics.elapsed),
        instructions: vm1.instructions,
        total_accesses: vm1.total_accesses(),
        remote_accesses: vm1.remote_accesses,
        remote_ratio: vm1.remote_ratio(),
        overhead_percent: metrics.overhead_percent(),
        migrations: metrics.migrations,
        cross_node_migrations: metrics.cross_node_migrations,
        partition_moves: metrics.partition_moves,
        metrics,
    })
}

/// Run all five schedulers on one workload. The five runs are
/// independent and execute in parallel (see [`crate::parallel`]); the
/// result order always matches [`ALL_SCHEDULERS`].
pub fn run_all_schedulers(
    setup: SetupKind,
    vm1_workloads: Vec<WorkloadSpec>,
    vm2_workloads: Vec<WorkloadSpec>,
    opts: &RunOptions,
) -> Result<Vec<WorkloadRun>, SimError> {
    crate::parallel::parallel_try_map(ALL_SCHEDULERS.to_vec(), |s| {
        run_workload(
            s,
            setup,
            vm1_workloads.clone(),
            vm2_workloads.clone(),
            opts,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::speccpu;

    fn quick_opts() -> RunOptions {
        RunOptions {
            duration: SimDuration::from_secs(6),
            ..RunOptions::default()
        }
    }

    #[test]
    fn scheduler_names_and_policies() {
        for s in ALL_SCHEDULERS {
            let p = s.policy(2, 1);
            assert!(!p.name().is_empty());
        }
        assert_eq!(Scheduler::VProbe.name(), "vProbe");
    }

    #[test]
    fn paper_eval_setup_builds_and_runs() {
        let run = run_workload(
            Scheduler::Credit,
            SetupKind::PaperEval,
            vec![speccpu::soplex(); 4],
            vec![speccpu::soplex(); 4],
            &quick_opts(),
        )
        .unwrap();
        assert!(run.instr_rate > 0.0);
        assert!(run.total_accesses > 0);
    }

    #[test]
    fn vprobe_beats_credit_on_memory_intensive_workload() {
        let opts = RunOptions {
            duration: SimDuration::from_secs(12),
            ..RunOptions::default()
        };
        let credit = run_workload(
            Scheduler::Credit,
            SetupKind::PaperEval,
            vec![speccpu::soplex(); 4],
            vec![speccpu::soplex(); 4],
            &opts,
        )
        .unwrap();
        let vp = run_workload(
            Scheduler::VProbe,
            SetupKind::PaperEval,
            vec![speccpu::soplex(); 4],
            vec![speccpu::soplex(); 4],
            &opts,
        )
        .unwrap();
        assert!(
            vp.instr_rate > credit.instr_rate,
            "vProbe {} must beat Credit {}",
            vp.instr_rate,
            credit.instr_rate
        );
        assert!(
            vp.remote_ratio < credit.remote_ratio,
            "vProbe remote ratio {} must undercut Credit {}",
            vp.remote_ratio,
            credit.remote_ratio
        );
    }

    #[test]
    fn normalization_helpers() {
        let opts = quick_opts();
        let a = run_workload(
            Scheduler::Credit,
            SetupKind::PaperEval,
            vec![speccpu::milc(); 4],
            vec![speccpu::milc(); 4],
            &opts,
        )
        .unwrap();
        assert!((a.normalized_time_vs(&a) - 1.0).abs() < 1e-9);
        assert!((a.normalized_total_vs(&a) - 1.0).abs() < 1e-9);
        assert!((a.normalized_remote_vs(&a) - 1.0).abs() < 1e-9);
    }
}
