//! Query a recorded trace for *why* — the library behind the `explain`
//! binary.
//!
//! Three questions, three pure functions over exported files (nothing
//! here re-runs a simulation, so answers are reproducible from artifacts
//! alone and byte-identical for any `--jobs`):
//!
//! * [`explain_vm`] — why is this VCPU where it is: the decision chain
//!   from `decisions.jsonl` (written by the `trace` binary) filtered to
//!   one VCPU, optionally as of a point in sim-time;
//! * [`explain_steal`] — steal-locality breakdown for one node (or the
//!   whole machine): which rules fired, how often the thief went local
//!   vs remote vs empty-handed, and the pressure/distance score deltas
//!   between the chosen victim and the best alternative;
//! * [`explain_slo`] — which hosts and racks burned evacuation-latency
//!   budget, and which retry chains caused it, from the fleet binary's
//!   `slo.json` + `spans.jsonl`.
//!
//! All aggregation iterates inputs in file order and keeps histograms in
//! first-appearance order, so output bytes are a pure function of input
//! bytes.

use crate::benchrec::round3;
use sim_core::{Json, SimError};

/// Decision kinds in the order `explain vm` reports them.
const KINDS: [&str; 6] = [
    "placement",
    "wake_placement",
    "partition",
    "steal",
    "page_migration",
    "degrade",
];

/// Parse a JSONL export, reporting the first bad line.
fn parse_jsonl(text: &str, what: &str) -> Result<Vec<Json>, SimError> {
    text.lines()
        .enumerate()
        .map(|(i, line)| {
            Json::parse(line).map_err(|e| {
                SimError::InvalidConfig(format!("{what} line {}: {e}", i + 1))
            })
        })
        .collect()
}

fn str_field<'a>(doc: &'a Json, key: &str) -> Option<&'a str> {
    doc.get(key).and_then(Json::as_str)
}

fn num_field(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key).and_then(Json::as_u64)
}

/// Why is VCPU `vcpu` where it is (as of `at_us`, if given)?
///
/// Returns the most recent decision involving the VCPU as `decision`,
/// the up-to-8 most recent as `history` (oldest first), and a per-kind
/// count of every involvement. `decision` is `null` when nothing in the
/// log involves the VCPU — still a valid answer for a VCPU that never
/// moved inside the recorded window.
pub fn explain_vm(decisions_jsonl: &str, vcpu: u64, at_us: Option<u64>) -> Result<Json, SimError> {
    let records = parse_jsonl(decisions_jsonl, "decisions.jsonl")?;
    let involved: Vec<&Json> = records
        .iter()
        .filter(|r| num_field(r, "vcpu") == Some(vcpu))
        .filter(|r| match at_us {
            Some(t) => num_field(r, "t_us").is_some_and(|rt| rt <= t),
            None => true,
        })
        .collect();
    let by_kind: Vec<Json> = KINDS
        .iter()
        .filter_map(|kind| {
            let count = involved
                .iter()
                .filter(|r| str_field(r, "kind") == Some(kind))
                .count();
            (count > 0).then(|| {
                Json::Obj(vec![
                    ("kind".into(), Json::from(*kind)),
                    ("count".into(), Json::from(count)),
                ])
            })
        })
        .collect();
    let history: Vec<Json> = involved
        .iter()
        .rev()
        .take(8)
        .rev()
        .map(|r| (*r).clone())
        .collect();
    Ok(Json::Obj(vec![
        ("vcpu".into(), Json::from(vcpu)),
        (
            "at_us".into(),
            at_us.map(Json::from).unwrap_or(Json::Null),
        ),
        ("matched".into(), Json::from(involved.len())),
        ("by_kind".into(), Json::Arr(by_kind)),
        (
            "decision".into(),
            involved.last().map(|r| (*r).clone()).unwrap_or(Json::Null),
        ),
        ("history".into(), Json::Arr(history)),
    ]))
}

/// Steal-locality breakdown for thief node `node` (all nodes when `None`).
///
/// Covers every `steal` decision in the log: rule histogram
/// (first-appearance order), local/remote/empty-handed split, how often
/// the thief would otherwise have idled, and — over decisions that took
/// a victim — the mean pressure of the chosen candidate vs the best
/// alternative candidate, and the mean NUMA distance paid.
pub fn explain_steal(decisions_jsonl: &str, node: Option<u64>) -> Result<Json, SimError> {
    let records = parse_jsonl(decisions_jsonl, "decisions.jsonl")?;
    let steals: Vec<&Json> = records
        .iter()
        .filter(|r| str_field(r, "kind") == Some("steal"))
        .filter(|r| match node {
            Some(n) => num_field(r, "thief_node") == Some(n),
            None => true,
        })
        .collect();

    let mut rules: Vec<(String, u64)> = Vec::new();
    let (mut taken, mut empty, mut local, mut remote, mut would_idle) = (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut chosen_pressure = Vec::new();
    let mut best_alt_pressure = Vec::new();
    let mut chosen_dist = Vec::new();
    for r in &steals {
        let rule = str_field(r, "rule").unwrap_or("?").to_string();
        match rules.iter_mut().find(|(k, _)| *k == rule) {
            Some(slot) => slot.1 += 1,
            None => rules.push((rule, 1)),
        }
        if r.get("would_idle").and_then(Json::as_bool) == Some(true) {
            would_idle += 1;
        }
        let victim = num_field(r, "victim");
        let thief_node = num_field(r, "thief_node");
        match victim {
            None => empty += 1,
            Some(v) => {
                taken += 1;
                let empty_vec = Vec::new();
                let cands = r
                    .get("candidates")
                    .and_then(Json::as_array)
                    .unwrap_or(&empty_vec);
                let chosen = cands.iter().find(|c| num_field(c, "pcpu") == Some(v));
                if let Some(c) = chosen {
                    if num_field(c, "node") == thief_node {
                        local += 1;
                    } else {
                        remote += 1;
                    }
                    if let Some(p) = c.get("pressure").and_then(Json::as_f64) {
                        chosen_pressure.push(p);
                    }
                    if let Some(d) = num_field(c, "dist") {
                        chosen_dist.push(d as f64);
                    }
                    let best_alt = cands
                        .iter()
                        .filter(|a| num_field(a, "pcpu") != Some(v))
                        .filter_map(|a| a.get("pressure").and_then(Json::as_f64))
                        .fold(f64::INFINITY, f64::min);
                    if best_alt.is_finite() {
                        best_alt_pressure.push(best_alt);
                    }
                }
            }
        }
    }
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            Json::Null
        } else {
            Json::Num(round3(xs.iter().sum::<f64>() / xs.len() as f64))
        }
    };
    let rules: Vec<Json> = rules
        .into_iter()
        .map(|(rule, count)| {
            Json::Obj(vec![
                ("rule".into(), Json::Str(rule)),
                ("count".into(), Json::from(count)),
            ])
        })
        .collect();
    Ok(Json::Obj(vec![
        (
            "node".into(),
            node.map(Json::from).unwrap_or(Json::Null),
        ),
        ("decisions".into(), Json::from(steals.len())),
        ("taken".into(), Json::from(taken)),
        ("empty_handed".into(), Json::from(empty)),
        ("local".into(), Json::from(local)),
        ("remote".into(), Json::from(remote)),
        ("thief_would_idle".into(), Json::from(would_idle)),
        ("rules".into(), Json::Arr(rules)),
        ("mean_chosen_pressure".into(), mean(&chosen_pressure)),
        (
            "mean_best_alternative_pressure".into(),
            mean(&best_alt_pressure),
        ),
        ("mean_chosen_dist".into(), mean(&chosen_dist)),
    ]))
}

/// Which hosts/racks burned evacuation-latency budget, and which retry
/// chains caused it.
///
/// Reads the fleet binary's `slo.json` (budget, burn series, per-host
/// attribution) and `spans.jsonl` (journeys and their retry children).
/// Reports the peak-burn epoch, the top-5 burning hosts, journey
/// outcome counts, and the top-5 longest retry chains with a reason
/// histogram.
pub fn explain_slo(slo_json: &str, spans_jsonl: &str) -> Result<Json, SimError> {
    let slo = Json::parse(slo_json)
        .map_err(|e| SimError::InvalidConfig(format!("slo.json: {e}")))?;
    let spans = parse_jsonl(spans_jsonl, "spans.jsonl")?;

    // Peak-burn epoch (first on tie); null when nothing burned.
    let empty_vec = Vec::new();
    let burn = slo
        .get("burn_by_epoch")
        .and_then(Json::as_array)
        .unwrap_or(&empty_vec);
    let mut peak: Option<(&Json, f64)> = None;
    for entry in burn {
        let b = entry.get("burn").and_then(Json::as_f64).unwrap_or(0.0);
        if b > 0.0 && peak.is_none_or(|(_, best)| b > best) {
            peak = Some((entry, b));
        }
    }

    // Top burning hosts, descending; stable tie-break on host index.
    let hosts = slo
        .get("burned_by_host")
        .and_then(Json::as_array)
        .unwrap_or(&empty_vec);
    let mut burning: Vec<&Json> = hosts
        .iter()
        .filter(|h| h.get("burned_s").and_then(Json::as_f64).unwrap_or(0.0) > 0.0)
        .collect();
    burning.sort_by(|a, b| {
        let (sa, sb) = (
            a.get("burned_s").and_then(Json::as_f64).unwrap_or(0.0),
            b.get("burned_s").and_then(Json::as_f64).unwrap_or(0.0),
        );
        sb.partial_cmp(&sa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| num_field(a, "host").cmp(&num_field(b, "host")))
    });
    let top_hosts: Vec<Json> = burning.iter().take(5).map(|h| (*h).clone()).collect();

    // Journey outcomes from the top-level spans.
    let (mut evacs, mut admissions) = (0u64, 0u64);
    let (mut landed, mut shed_timeout, mut shed_retries, mut open) = (0u64, 0u64, 0u64, 0u64);
    for s in &spans {
        if s.get("parent").and_then(Json::as_u64).is_some() {
            continue;
        }
        let name = str_field(s, "name").unwrap_or("");
        if name.starts_with("evacuation vm") {
            evacs += 1;
        } else if name.starts_with("admission vm") {
            admissions += 1;
        } else {
            continue;
        }
        let outcome = s
            .get("args")
            .and_then(|a| a.get("outcome"))
            .and_then(Json::as_str);
        match outcome {
            Some("landed") => landed += 1,
            Some("shed-timeout") => shed_timeout += 1,
            Some("shed-retries") => shed_retries += 1,
            _ => open += 1,
        }
    }

    // Retry chains: child spans named "retry", grouped by parent journey.
    let mut by_reason: Vec<(String, u64)> = Vec::new();
    let mut chains: Vec<(u64, u64)> = Vec::new(); // (parent id, retries)
    let mut total_retries = 0u64;
    for s in &spans {
        if str_field(s, "name") != Some("retry") {
            continue;
        }
        let Some(parent) = s.get("parent").and_then(Json::as_u64) else {
            continue;
        };
        total_retries += 1;
        let reason = s
            .get("args")
            .and_then(|a| a.get("reason"))
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        match by_reason.iter_mut().find(|(k, _)| *k == reason) {
            Some(slot) => slot.1 += 1,
            None => by_reason.push((reason, 1)),
        }
        match chains.iter_mut().find(|(p, _)| *p == parent) {
            Some(slot) => slot.1 += 1,
            None => chains.push((parent, 1)),
        }
    }
    chains.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let span_name = |id: u64| -> &str {
        spans
            .iter()
            .find(|s| num_field(s, "id") == Some(id))
            .and_then(|s| str_field(s, "name"))
            .unwrap_or("?")
    };
    let worst_chains: Vec<Json> = chains
        .iter()
        .take(5)
        .map(|&(parent, retries)| {
            Json::Obj(vec![
                ("span".into(), Json::from(parent)),
                ("name".into(), Json::from(span_name(parent))),
                ("retries".into(), Json::from(retries)),
            ])
        })
        .collect();
    let by_reason: Vec<Json> = by_reason
        .into_iter()
        .map(|(reason, count)| {
            Json::Obj(vec![
                ("reason".into(), Json::Str(reason)),
                ("count".into(), Json::from(count)),
            ])
        })
        .collect();

    let carry = |key: &str| slo.get(key).cloned().unwrap_or(Json::Null);
    Ok(Json::Obj(vec![
        ("budget_s".into(), carry("budget_s")),
        ("total_burned_s".into(), carry("total_burned_s")),
        ("total_burn".into(), carry("total_burn")),
        (
            "peak_epoch".into(),
            peak.map(|(e, _)| e.clone()).unwrap_or(Json::Null),
        ),
        ("top_burning_hosts".into(), Json::Arr(top_hosts)),
        (
            "journeys".into(),
            Json::Obj(vec![
                ("evacuations".into(), Json::from(evacs)),
                ("admissions".into(), Json::from(admissions)),
                ("landed".into(), Json::from(landed)),
                ("shed_timeout".into(), Json::from(shed_timeout)),
                ("shed_retries".into(), Json::from(shed_retries)),
                ("open".into(), Json::from(open)),
            ]),
        ),
        (
            "retries".into(),
            Json::Obj(vec![
                ("total".into(), Json::from(total_retries)),
                ("by_reason".into(), Json::Arr(by_reason)),
                ("worst_chains".into(), Json::Arr(worst_chains)),
            ]),
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECISIONS: &str = concat!(
        "{\"t_us\":1000,\"seq\":0,\"kind\":\"placement\",\"rule\":\"uniform-random\",\"vcpu\":3,\"node\":1,\"pcpu\":5,\"num_candidates\":4}\n",
        "{\"t_us\":2000,\"seq\":1,\"kind\":\"steal\",\"rule\":\"local-heaviest-min-pressure\",\"thief\":4,\"thief_node\":1,\"would_idle\":true,\"victim\":5,\"vcpu\":3,\"candidates\":[{\"pcpu\":5,\"vcpu\":3,\"node\":1,\"dist\":10,\"workload\":2,\"pressure\":8.0,\"prio\":\"under\"},{\"pcpu\":0,\"vcpu\":7,\"node\":0,\"dist\":21,\"workload\":3,\"pressure\":14.5,\"prio\":\"over\"}]}\n",
        "{\"t_us\":3000,\"seq\":2,\"kind\":\"steal\",\"rule\":\"no-candidates\",\"thief\":2,\"thief_node\":0,\"would_idle\":true,\"victim\":null,\"vcpu\":null,\"candidates\":[]}\n",
        "{\"t_us\":4000,\"seq\":3,\"kind\":\"partition\",\"rule\":\"min-load-local-group\",\"vcpu\":3,\"node\":0,\"candidates\":[{\"node\":0,\"load\":1},{\"node\":1,\"load\":3}]}\n",
    );

    #[test]
    fn explain_vm_filters_by_vcpu_and_time() {
        let all = explain_vm(DECISIONS, 3, None).unwrap();
        assert_eq!(all.get("matched").and_then(Json::as_u64), Some(3));
        let last = all.get("decision").unwrap();
        assert_eq!(last.get("kind").and_then(Json::as_str), Some("partition"));

        let early = explain_vm(DECISIONS, 3, Some(2500)).unwrap();
        assert_eq!(early.get("matched").and_then(Json::as_u64), Some(2));
        let last = early.get("decision").unwrap();
        assert_eq!(last.get("kind").and_then(Json::as_str), Some("steal"));

        let none = explain_vm(DECISIONS, 9, None).unwrap();
        assert_eq!(none.get("matched").and_then(Json::as_u64), Some(0));
        assert_eq!(none.get("decision"), Some(&Json::Null));
    }

    #[test]
    fn explain_steal_splits_locality_and_scores() {
        let all = explain_steal(DECISIONS, None).unwrap();
        assert_eq!(all.get("decisions").and_then(Json::as_u64), Some(2));
        assert_eq!(all.get("taken").and_then(Json::as_u64), Some(1));
        assert_eq!(all.get("empty_handed").and_then(Json::as_u64), Some(1));
        assert_eq!(all.get("local").and_then(Json::as_u64), Some(1));
        assert_eq!(all.get("remote").and_then(Json::as_u64), Some(0));
        assert_eq!(
            all.get("mean_chosen_pressure").and_then(Json::as_f64),
            Some(8.0)
        );
        assert_eq!(
            all.get("mean_best_alternative_pressure")
                .and_then(Json::as_f64),
            Some(14.5)
        );
        let rules = all.get("rules").and_then(Json::as_array).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(
            rules[0].get("rule").and_then(Json::as_str),
            Some("local-heaviest-min-pressure")
        );

        let node0 = explain_steal(DECISIONS, Some(0)).unwrap();
        assert_eq!(node0.get("decisions").and_then(Json::as_u64), Some(1));
        assert_eq!(node0.get("empty_handed").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn explain_slo_ranks_hosts_and_chains() {
        let slo = r#"{
            "budget_s": 60.0,
            "total_burned_s": 9.0,
            "total_burn": 0.15,
            "burn_by_epoch": [
                {"epoch": 0, "burn": 0.0},
                {"epoch": 1, "burn": 0.1},
                {"epoch": 2, "burn": 0.05}
            ],
            "burned_by_host": [
                {"host": 0, "rack": 0, "burned_s": 3.0},
                {"host": 1, "rack": 0, "burned_s": 6.0},
                {"host": 2, "rack": 1, "burned_s": 0.0}
            ]
        }"#;
        let spans = concat!(
            "{\"id\":1,\"name\":\"evacuation vm7\",\"track\":1,\"parent\":null,\"start_us\":0,\"end_us\":500,\"args\":{\"src_host\":1,\"rack\":0,\"outcome\":\"landed\"}}\n",
            "{\"id\":2,\"name\":\"retry\",\"track\":4,\"parent\":1,\"start_us\":0,\"end_us\":100,\"args\":{\"reason\":\"no-host\",\"attempt\":1}}\n",
            "{\"id\":3,\"name\":\"retry\",\"track\":4,\"parent\":1,\"start_us\":100,\"end_us\":200,\"args\":{\"reason\":\"migration-fault\",\"attempt\":2}}\n",
            "{\"id\":4,\"name\":\"admission vm9\",\"track\":4,\"parent\":null,\"start_us\":0,\"end_us\":null,\"args\":{\"flavor\":\"small\"}}\n",
        );
        let out = explain_slo(slo, spans).unwrap();
        assert_eq!(
            out.get("peak_epoch").unwrap().get("epoch").and_then(Json::as_u64),
            Some(1)
        );
        let top = out.get("top_burning_hosts").and_then(Json::as_array).unwrap();
        assert_eq!(top.len(), 2, "zero-burn hosts are omitted");
        assert_eq!(top[0].get("host").and_then(Json::as_u64), Some(1));
        let journeys = out.get("journeys").unwrap();
        assert_eq!(journeys.get("evacuations").and_then(Json::as_u64), Some(1));
        assert_eq!(journeys.get("admissions").and_then(Json::as_u64), Some(1));
        assert_eq!(journeys.get("landed").and_then(Json::as_u64), Some(1));
        assert_eq!(journeys.get("open").and_then(Json::as_u64), Some(1));
        let retries = out.get("retries").unwrap();
        assert_eq!(retries.get("total").and_then(Json::as_u64), Some(2));
        let chains = retries.get("worst_chains").and_then(Json::as_array).unwrap();
        assert_eq!(chains[0].get("span").and_then(Json::as_u64), Some(1));
        assert_eq!(
            chains[0].get("name").and_then(Json::as_str),
            Some("evacuation vm7")
        );
        assert_eq!(chains[0].get("retries").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn bad_lines_are_reported_with_position() {
        let err = explain_vm("{\"ok\":1}\nnot json\n", 0, None).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn output_is_deterministic() {
        let a = explain_steal(DECISIONS, None).unwrap().to_string_pretty();
        let b = explain_steal(DECISIONS, None).unwrap().to_string_pretty();
        assert_eq!(a, b);
    }
}
