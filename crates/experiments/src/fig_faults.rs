//! Robustness sweep (beyond the paper): scheduler slowdown vs fault rate.
//!
//! The paper evaluates vProbe on a healthy testbed; this sweep asks what
//! each scheduler's PMU dependence costs when the counter pipeline and
//! the migration machinery degrade. Every scheduler runs the soplex
//! interference setup (§V-A) under [`sim_core::FaultConfig::uniform`]
//! fault injection at increasing rates, and reports its slowdown against
//! its own clean (rate 0) run — so the metric isolates fault sensitivity
//! from baseline scheduling quality.
//!
//! The sixth column is `vProbe-GD`, the graceful-degradation variant
//! ([`vprobe::variants::vprobe_gd`]): identical to vProbe at rate 0, it
//! should give back less performance than plain vProbe as the fault rate
//! grows.

use crate::report::{f3, Table};
use crate::runner::{run_workload, RunOptions, Scheduler, SetupKind};
use sim_core::{FaultConfig, Json, SimError};
use workloads::speccpu;

/// The swept uniform fault rates (x-axis). Rate 0 is the baseline and
/// must be bit-identical to a run without fault injection.
pub const FAULT_RATES: [f64; 4] = [0.0, 0.05, 0.1, 0.2];

/// The paper's five schedulers plus the degradation-hardened vProbe.
pub const SCHEDULERS: [Scheduler; 6] = [
    Scheduler::Credit,
    Scheduler::VProbe,
    Scheduler::VcpuP,
    Scheduler::Lb,
    Scheduler::Brm,
    Scheduler::VProbeGd,
];

/// One (scheduler, fault-rate) point of the sweep.
#[derive(Debug, Clone)]
pub struct FaultPoint {
    pub scheduler: Scheduler,
    pub fault_rate: f64,
    pub instr_rate: f64,
    /// Slowdown vs the same scheduler's lowest-rate run (1.0 = unharmed).
    pub slowdown: f64,
    pub remote_ratio: f64,
    /// Total injected fault events (sample loss, noise, corruption,
    /// failed/delayed migrations, stalls, throttles).
    pub faults_injected: u64,
    pub periods_skipped: u64,
    pub fallback_periods: u64,
    pub migration_retries: u64,
}

/// Run the full sweep: [`SCHEDULERS`] × [`FAULT_RATES`].
pub fn run(opts: &RunOptions) -> Result<Vec<FaultPoint>, SimError> {
    run_grid(&SCHEDULERS, &FAULT_RATES, opts)
}

/// Run chosen schedulers × rates. The fault seed is taken from
/// `opts.faults.seed`; each scheduler is normalized against its own run
/// at the lowest swept rate. Points come back grouped by scheduler, in
/// rate order.
pub fn run_grid(
    schedulers: &[Scheduler],
    rates: &[f64],
    opts: &RunOptions,
) -> Result<Vec<FaultPoint>, SimError> {
    let fault_seed = opts.faults.seed;
    let grid: Vec<(Scheduler, f64)> = schedulers
        .iter()
        .flat_map(|&s| rates.iter().map(move |&r| (s, r)))
        .collect();
    let runs = crate::parallel::parallel_try_map(grid, |(s, rate)| {
        let mut o = opts.clone();
        o.faults = FaultConfig::uniform(rate, fault_seed);
        let r = run_workload(
            s,
            SetupKind::PaperEval,
            vec![speccpu::soplex(); 4],
            vec![speccpu::soplex(); 4],
            &o,
        )?;
        Ok((s, rate, r))
    })?;
    let points = runs
        .iter()
        .map(|(s, rate, r)| {
            // The first point of each scheduler group is its lowest swept
            // rate: the normalization baseline.
            let baseline = runs
                .iter()
                .find(|(bs, _, _)| bs == s)
                .map(|(_, _, b)| b.instr_rate)
                .unwrap_or(r.instr_rate);
            let f = &r.metrics.faults;
            FaultPoint {
                scheduler: *s,
                fault_rate: *rate,
                instr_rate: r.instr_rate,
                slowdown: baseline / r.instr_rate.max(f64::MIN_POSITIVE),
                remote_ratio: r.remote_ratio,
                faults_injected: f.injected(),
                periods_skipped: f.periods_skipped,
                fallback_periods: f.fallback_periods,
                migration_retries: f.migration_retries,
            }
        })
        .collect();
    Ok(points)
}

/// Render as a table (text / CSV via [`Table`]).
pub fn render(points: &[FaultPoint]) -> Table {
    let mut t = Table::new(
        "Robustness — slowdown vs uniform fault rate (1.000 = clean-run speed)",
        &[
            "scheduler",
            "fault rate",
            "slowdown",
            "instr/s",
            "faults",
            "skipped",
            "fallback",
            "retries",
        ],
    );
    for p in points {
        t.push_row(vec![
            p.scheduler.name().to_string(),
            format!("{}", p.fault_rate),
            f3(p.slowdown),
            format!("{:.3e}", p.instr_rate),
            p.faults_injected.to_string(),
            p.periods_skipped.to_string(),
            p.fallback_periods.to_string(),
            p.migration_retries.to_string(),
        ]);
    }
    t
}

/// Serialize the sweep as JSON (one object per point, key order stable).
pub fn to_json(points: &[FaultPoint]) -> String {
    Json::Arr(
        points
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("scheduler".into(), Json::from(p.scheduler.name())),
                    ("fault_rate".into(), Json::Num(p.fault_rate)),
                    ("slowdown".into(), Json::Num(p.slowdown)),
                    ("instr_rate".into(), Json::Num(p.instr_rate)),
                    ("remote_ratio".into(), Json::Num(p.remote_ratio)),
                    ("faults_injected".into(), Json::from(p.faults_injected)),
                    ("periods_skipped".into(), Json::from(p.periods_skipped)),
                    ("fallback_periods".into(), Json::from(p.fallback_periods)),
                    (
                        "migration_retries".into(),
                        Json::from(p.migration_retries),
                    ),
                ])
            })
            .collect(),
    )
    .to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ALL_SCHEDULERS;
    use sim_core::SimDuration;

    fn quick() -> RunOptions {
        RunOptions {
            duration: SimDuration::from_secs(6),
            warmup: SimDuration::from_secs(4),
            ..RunOptions::default()
        }
    }

    #[test]
    fn rates_start_clean_and_grow() {
        assert_eq!(FAULT_RATES[0], 0.0);
        assert!(FAULT_RATES.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(SCHEDULERS.len(), ALL_SCHEDULERS.len() + 1);
        assert!(SCHEDULERS.contains(&Scheduler::VProbeGd));
    }

    #[test]
    fn zero_rate_point_matches_clean_run() {
        let opts = quick();
        let pts = run_grid(&[Scheduler::VProbe], &[0.0], &opts).unwrap();
        let clean = run_workload(
            Scheduler::VProbe,
            SetupKind::PaperEval,
            vec![speccpu::soplex(); 4],
            vec![speccpu::soplex(); 4],
            &opts,
        )
        .unwrap();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].instr_rate, clean.instr_rate);
        assert_eq!(pts[0].faults_injected, 0);
        assert!((pts[0].slowdown - 1.0).abs() < 1e-12);
    }

    #[test]
    fn faulty_sweep_is_deterministic_and_injects() {
        let opts = quick();
        let a = run_grid(&[Scheduler::Credit], &[0.2], &opts).unwrap();
        let b = run_grid(&[Scheduler::Credit], &[0.2], &opts).unwrap();
        assert_eq!(a[0].instr_rate, b[0].instr_rate);
        assert_eq!(a[0].faults_injected, b[0].faults_injected);
        assert!(a[0].faults_injected > 0, "rate 0.2 must inject faults");
    }

    #[test]
    fn render_and_json_shapes() {
        let pts = vec![FaultPoint {
            scheduler: Scheduler::VProbeGd,
            fault_rate: 0.1,
            instr_rate: 2.0e9,
            slowdown: 1.05,
            remote_ratio: 0.2,
            faults_injected: 17,
            periods_skipped: 2,
            fallback_periods: 1,
            migration_retries: 3,
        }];
        let t = render(&pts);
        assert_eq!(t.num_rows(), 1);
        assert!(t.to_csv().contains("vProbe-GD,0.1,1.050"));
        let json = to_json(&pts);
        let doc = Json::parse(&json).unwrap();
        let arr = doc.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("faults_injected").unwrap().as_u64(), Some(17));
    }
}
