//! Fig. 6 — memcached under a memslap concurrency sweep.
//!
//! Each of VM1/VM2 hosts a memcached server with eight working ports; the
//! memslap driver issues 50 000 operations at concurrency levels 16–112
//! (§V-B3). Reported per level and scheduler: normalized completion time
//! (6a) and normalized total/remote accesses (6b, 6c).
//!
//! The paper's qualitative finding — LB beats VCPU-P at low concurrency
//! (remote latency dominates) while VCPU-P wins at high concurrency (LLC
//! contention dominates) — emerges here from the concurrency-dependent
//! memory model in `workloads::kv`.

use crate::report::{f3, Table};
use crate::runner::{run_all_schedulers, RunOptions, SetupKind, WorkloadRun};
use sim_core::SimError;
use workloads::kv::{self, MEMCACHED_CONCURRENCIES, MEMSLAP_OPS};

/// One scheduler's results at one concurrency level.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    pub concurrency: u32,
    pub scheduler: &'static str,
    /// Completion time of the 50 000-operation memslap run, seconds.
    pub completion_s: f64,
    pub norm_time: f64,
    pub norm_total: f64,
    pub norm_remote: f64,
}

/// Run the sweep. Returns points grouped by concurrency, Credit first.
pub fn run(opts: &RunOptions) -> Result<Vec<Fig6Point>, SimError> {
    run_levels(&MEMCACHED_CONCURRENCIES, opts)
}

/// Run a chosen set of concurrency levels (levels in parallel on top of
/// the per-scheduler parallelism; point order is unchanged).
pub fn run_levels(levels: &[u32], opts: &RunOptions) -> Result<Vec<Fig6Point>, SimError> {
    let per_level = crate::parallel::parallel_try_map(levels.to_vec(), |c| {
        let spec = kv::memcached(c);
        let runs = run_all_schedulers(
            SetupKind::PaperEval,
            vec![spec.clone()],
            vec![spec.clone()],
            opts,
        )?;
        let credit = runs[0].clone();
        Ok(runs
            .iter()
            .map(|r| point(c, &spec, r, &credit))
            .collect::<Vec<_>>())
    })?;
    Ok(per_level.into_iter().flatten().collect())
}

fn point(c: u32, spec: &workloads::WorkloadSpec, r: &WorkloadRun, credit: &WorkloadRun) -> Fig6Point {
    Fig6Point {
        concurrency: c,
        scheduler: r.scheduler.name(),
        completion_s: kv::completion_time_s(spec, r.instr_rate, MEMSLAP_OPS),
        norm_time: r.normalized_time_vs(credit),
        norm_total: r.normalized_total_vs(credit),
        norm_remote: r.normalized_remote_vs(credit),
    }
}

/// Render as a table.
pub fn render(points: &[Fig6Point]) -> Table {
    let mut t = Table::new(
        "Fig. 6 — memcached, 50 000 memslap ops (normalized vs Credit)",
        &[
            "concurrency",
            "scheduler",
            "completion (s)",
            "time (a)",
            "total (b)",
            "remote (c)",
        ],
    );
    for p in points {
        t.push_row(vec![
            p.concurrency.to_string(),
            p.scheduler.to_string(),
            f3(p.completion_s),
            f3(p.norm_time),
            f3(p.norm_total),
            f3(p.norm_remote),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn quick() -> RunOptions {
        RunOptions {
            duration: SimDuration::from_secs(8),
            warmup: SimDuration::from_secs(4),
            ..RunOptions::default()
        }
    }

    #[test]
    fn sweep_levels_match_paper() {
        assert_eq!(MEMCACHED_CONCURRENCIES, [16, 32, 48, 64, 80, 96, 112]);
    }

    #[test]
    fn single_level_produces_five_points() {
        let pts = run_levels(&[80], &quick()).unwrap();
        assert_eq!(pts.len(), 5);
        assert!(pts.iter().all(|p| p.concurrency == 80));
        assert!((pts[0].norm_time - 1.0).abs() < 1e-9, "credit normalizes to 1");
        assert!(pts.iter().all(|p| p.completion_s > 0.0));
    }

    #[test]
    fn vprobe_wins_at_the_papers_peak_level() {
        // The paper's biggest gain is at concurrency 80.
        let pts = run_levels(&[80], &quick()).unwrap();
        let vprobe = pts.iter().find(|p| p.scheduler == "vProbe").unwrap();
        assert!(
            vprobe.norm_time < 1.0,
            "vProbe should beat Credit at c=80: {}",
            vprobe.norm_time
        );
    }

    #[test]
    fn render_shape() {
        let pts = run_levels(&[16], &quick()).unwrap();
        let t = render(&pts);
        assert_eq!(t.num_rows(), 5);
        assert!(t.to_text().contains("memslap"));
    }
}
