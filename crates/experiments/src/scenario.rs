//! Declarative scenarios: describe a machine, its VMs, and a scheduler in
//! JSON; run it and get the standard metrics back.
//!
//! This is the "I want to try my own setup" entry point a downstream user
//! reaches for before writing Rust:
//!
//! ```json
//! {
//!   "topology": "xeon_e5620",
//!   "scheduler": "vprobe",
//!   "duration_s": 20,
//!   "seed": 7,
//!   "vms": [
//!     { "name": "db", "vcpus": 8, "mem_gb": 8, "alloc": "split",
//!       "workloads": ["redis:4000"] },
//!     { "name": "batch", "vcpus": 4, "mem_gb": 4, "alloc": "most_free",
//!       "workloads": ["soplex", "soplex", "soplex", "soplex"] }
//!   ]
//! }
//! ```
//!
//! Workload strings name registry entries (`soplex`, `lu`, `hungry`, …)
//! plus the parameterized servers `memcached:<concurrency>` and
//! `redis:<connections>`.

use crate::report::{pct, Table};
use mem_model::AllocPolicy;
use numa_topo::{presets, NodeId, Topology};
use sim_core::{FaultConfig, Json, SimDuration, SimError};
use vprobe::{variants, Bounds, BrmPolicy};
use workloads::{kv, registry, WorkloadSpec};
use xen_sim::{CreditPolicy, Machine, MachineBuilder, SchedPolicy, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

/// One VM in a scenario file.
#[derive(Debug, Clone)]
pub struct VmSpec {
    pub name: String,
    pub vcpus: usize,
    pub mem_gb: u64,
    /// `most_free` | `split` | `node:<id>` | `striped` (default `most_free`)
    pub alloc: String,
    /// Workload names; see module docs.
    pub workloads: Vec<String>,
    /// Optional hard pin (`node:<id>`).
    pub pin: Option<String>,
    /// Credit weight (Xen default 256).
    pub weight: u32,
}

fn default_alloc() -> String {
    "most_free".into()
}

fn default_weight() -> u32 {
    256
}

/// A whole scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// "xeon_e5620" | "four_socket" | "uma" (default "xeon_e5620")
    pub topology: String,
    /// "credit" | "vprobe" | "vcpu-p" | "lb" | "brm" | "vprobe-gd"
    /// (default "vprobe")
    pub scheduler: String,
    pub duration_s: u64,
    pub seed: u64,
    /// Uniform fault-injection rate (default 0: clean run).
    pub fault_rate: f64,
    /// Seed for the fault schedule (independent of `seed`).
    pub fault_seed: u64,
    /// Event-horizon macro-stepping (default on; results are identical
    /// either way, per-quantum stepping is just slower).
    pub macro_step: bool,
    pub vms: Vec<VmSpec>,
}

fn default_topology() -> String {
    "xeon_e5620".into()
}

fn default_scheduler() -> String {
    "vprobe".into()
}

fn default_duration() -> u64 {
    20
}

fn parse_err(msg: impl std::fmt::Display) -> SimError {
    SimError::InvalidConfig(format!("scenario parse error: {msg}"))
}

fn field_str(obj: &Json, key: &str, default: Option<&str>) -> Result<String, SimError> {
    match obj.get(key) {
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| parse_err(format!("'{key}' must be a string"))),
        None => default
            .map(str::to_string)
            .ok_or_else(|| parse_err(format!("missing field '{key}'"))),
    }
}

fn field_u64(obj: &Json, key: &str, default: Option<u64>) -> Result<u64, SimError> {
    match obj.get(key) {
        Some(v) => v
            .as_u64()
            .ok_or_else(|| parse_err(format!("'{key}' must be a non-negative integer"))),
        None => default.ok_or_else(|| parse_err(format!("missing field '{key}'"))),
    }
}

fn field_f64(obj: &Json, key: &str, default: f64) -> Result<f64, SimError> {
    match obj.get(key) {
        Some(v) => v
            .as_f64()
            .ok_or_else(|| parse_err(format!("'{key}' must be a number"))),
        None => Ok(default),
    }
}

fn field_bool(obj: &Json, key: &str, default: bool) -> Result<bool, SimError> {
    match obj.get(key) {
        Some(v) => v
            .as_bool()
            .ok_or_else(|| parse_err(format!("'{key}' must be a boolean"))),
        None => Ok(default),
    }
}

impl VmSpec {
    fn from_value(v: &Json) -> Result<VmSpec, SimError> {
        if v.as_object().is_none() {
            return Err(parse_err("each entry of 'vms' must be an object"));
        }
        let workloads = v
            .get("workloads")
            .and_then(Json::as_array)
            .ok_or_else(|| parse_err("'workloads' must be an array of strings"))?
            .iter()
            .map(|w| {
                w.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| parse_err("'workloads' entries must be strings"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let pin = match v.get("pin") {
            None | Some(Json::Null) => None,
            Some(p) => Some(
                p.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| parse_err("'pin' must be a string"))?,
            ),
        };
        Ok(VmSpec {
            name: field_str(v, "name", None)?,
            vcpus: field_u64(v, "vcpus", None)? as usize,
            mem_gb: field_u64(v, "mem_gb", None)?,
            alloc: field_str(v, "alloc", Some(&default_alloc()))?,
            workloads,
            pin,
            weight: u32::try_from(field_u64(v, "weight", Some(u64::from(default_weight())))?)
                .map_err(|_| parse_err("'weight' out of range"))?,
        })
    }

    fn to_value(&self) -> Json {
        let mut pairs = vec![
            ("name".to_string(), Json::from(self.name.clone())),
            ("vcpus".to_string(), Json::from(self.vcpus)),
            ("mem_gb".to_string(), Json::from(self.mem_gb)),
            ("alloc".to_string(), Json::from(self.alloc.clone())),
            (
                "workloads".to_string(),
                Json::from(self.workloads.clone()),
            ),
        ];
        if let Some(pin) = &self.pin {
            pairs.push(("pin".to_string(), Json::from(pin.clone())));
        }
        pairs.push(("weight".to_string(), Json::from(self.weight)));
        Json::Obj(pairs)
    }
}

impl Scenario {
    /// Parse from JSON. Missing optional fields take the documented
    /// defaults; `vms` is required.
    pub fn from_json(json: &str) -> Result<Scenario, SimError> {
        let doc = Json::parse(json).map_err(parse_err)?;
        if doc.as_object().is_none() {
            return Err(parse_err("top level must be an object"));
        }
        let vms = doc
            .get("vms")
            .and_then(Json::as_array)
            .ok_or_else(|| parse_err("missing field 'vms' (array)"))?
            .iter()
            .map(VmSpec::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Scenario {
            topology: field_str(&doc, "topology", Some(&default_topology()))?,
            scheduler: field_str(&doc, "scheduler", Some(&default_scheduler()))?,
            duration_s: field_u64(&doc, "duration_s", Some(default_duration()))?,
            seed: field_u64(&doc, "seed", Some(0))?,
            fault_rate: field_f64(&doc, "fault_rate", 0.0)?,
            fault_seed: field_u64(&doc, "fault_seed", Some(1))?,
            macro_step: field_bool(&doc, "macro_step", true)?,
            vms,
        })
    }

    /// Serialize back to JSON (compact, key order stable). The fault
    /// fields appear only when fault injection is on, so clean scenarios
    /// round-trip byte-identically to their pre-fault form.
    pub fn to_json(&self) -> String {
        let mut pairs = vec![
            ("topology".to_string(), Json::from(self.topology.clone())),
            ("scheduler".to_string(), Json::from(self.scheduler.clone())),
            ("duration_s".to_string(), Json::from(self.duration_s)),
            ("seed".to_string(), Json::from(self.seed)),
        ];
        if self.fault_rate > 0.0 {
            pairs.push(("fault_rate".to_string(), Json::Num(self.fault_rate)));
            pairs.push(("fault_seed".to_string(), Json::from(self.fault_seed)));
        }
        if !self.macro_step {
            pairs.push(("macro_step".to_string(), Json::from(false)));
        }
        pairs.push((
            "vms".to_string(),
            Json::Arr(self.vms.iter().map(VmSpec::to_value).collect()),
        ));
        Json::Obj(pairs).to_string()
    }

    pub fn topology(&self) -> Result<Topology, SimError> {
        match self.topology.as_str() {
            "xeon_e5620" => Ok(presets::xeon_e5620()),
            "four_socket" => Ok(presets::four_socket_32core()),
            "uma" => Ok(presets::uma_quad()),
            other => Err(SimError::UnknownName(format!("topology '{other}'"))),
        }
    }

    fn policy(&self, num_nodes: usize) -> Result<Box<dyn SchedPolicy>, SimError> {
        Ok(match self.scheduler.as_str() {
            "credit" => Box::new(CreditPolicy::new()),
            "vprobe" => Box::new(variants::vprobe(num_nodes, Bounds::default())),
            "vcpu-p" => Box::new(variants::vcpu_p(num_nodes, Bounds::default())),
            "lb" => Box::new(variants::lb_only(num_nodes, Bounds::default())),
            "brm" => Box::new(BrmPolicy::new(self.seed)),
            "vprobe-gd" => Box::new(variants::vprobe_gd(num_nodes, Bounds::default())),
            other => return Err(SimError::UnknownName(format!("scheduler '{other}'"))),
        })
    }

    /// Build the machine.
    pub fn build(&self) -> Result<Machine, SimError> {
        if self.vms.is_empty() {
            return Err(SimError::InvalidConfig("scenario has no VMs".into()));
        }
        let topo = self.topology()?;
        let mut b = MachineBuilder::new(topo.clone())
            .policy(self.policy(topo.num_nodes())?)
            .seed(self.seed)
            .macro_step(self.macro_step);
        if self.fault_rate > 0.0 {
            b = b.faults(FaultConfig::uniform(self.fault_rate, self.fault_seed));
        }
        for vm in &self.vms {
            let mut cfg = VmConfig::new(
                vm.name.clone(),
                vm.vcpus,
                vm.mem_gb * GB,
                parse_alloc(&vm.alloc)?,
                parse_workloads(&vm.workloads)?,
            );
            if let Some(pin) = &vm.pin {
                cfg.pin_node = Some(parse_node(pin)?);
            }
            cfg.weight = vm.weight;
            b = b.add_vm(cfg);
        }
        b.build()
    }

    /// Build, run, and summarize.
    pub fn run(&self) -> Result<Table, SimError> {
        let mut machine = self.build()?;
        machine.run(SimDuration::from_secs(self.duration_s));
        let m = machine.metrics();
        let mut t = Table::new(
            format!(
                "scenario: {} on {}, {} s (seed {})",
                self.scheduler, self.topology, self.duration_s, self.seed
            ),
            &["vm", "instr/s", "remote accesses", "busy (s)"],
        );
        for (vm, spec) in m.per_vm.iter().zip(&self.vms) {
            t.push_row(vec![
                spec.name.clone(),
                format!("{:.3e}", vm.instr_per_second(m.elapsed)),
                pct(vm.remote_ratio() * 100.0),
                format!("{:.1}", vm.busy_us as f64 / 1e6),
            ]);
        }
        Ok(t)
    }
}

fn parse_alloc(s: &str) -> Result<AllocPolicy, SimError> {
    if let Some(id) = s.strip_prefix("node:") {
        return Ok(AllocPolicy::OnNode(parse_node_id(id)?));
    }
    match s {
        "most_free" => Ok(AllocPolicy::MostFree),
        "split" => Ok(AllocPolicy::SplitEven),
        "striped" => Ok(AllocPolicy::Striped {
            chunk_bytes: 256 * 1024 * 1024,
        }),
        other => Err(SimError::UnknownName(format!("alloc policy '{other}'"))),
    }
}

fn parse_node(s: &str) -> Result<NodeId, SimError> {
    let id = s
        .strip_prefix("node:")
        .ok_or_else(|| SimError::InvalidConfig(format!("pin must be 'node:<id>', got '{s}'")))?;
    parse_node_id(id)
}

fn parse_node_id(id: &str) -> Result<NodeId, SimError> {
    id.parse::<u16>()
        .map(NodeId::new)
        .map_err(|_| SimError::InvalidConfig(format!("bad node id '{id}'")))
}

fn parse_workloads(names: &[String]) -> Result<Vec<WorkloadSpec>, SimError> {
    names
        .iter()
        .map(|n| {
            if let Some(c) = n.strip_prefix("memcached:") {
                let c: u32 = c
                    .parse()
                    .map_err(|_| SimError::InvalidConfig(format!("bad concurrency in '{n}'")))?;
                Ok(kv::memcached(c))
            } else if let Some(k) = n.strip_prefix("redis:") {
                let k: u32 = k
                    .parse()
                    .map_err(|_| SimError::InvalidConfig(format!("bad connections in '{n}'")))?;
                Ok(kv::redis(k))
            } else {
                registry::by_name(n)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"{
        "topology": "xeon_e5620",
        "scheduler": "vprobe",
        "duration_s": 3,
        "seed": 7,
        "vms": [
            { "name": "db", "vcpus": 8, "mem_gb": 8, "alloc": "split",
              "workloads": ["redis:4000"] },
            { "name": "batch", "vcpus": 4, "mem_gb": 4,
              "workloads": ["soplex", "soplex", "soplex", "soplex"] }
        ]
    }"#;

    #[test]
    fn example_scenario_parses_and_runs() {
        let sc = Scenario::from_json(EXAMPLE).unwrap();
        assert_eq!(sc.vms.len(), 2);
        assert_eq!(sc.vms[1].weight, 256, "default weight applied");
        let table = sc.run().unwrap();
        assert_eq!(table.num_rows(), 2);
        let txt = table.to_text();
        assert!(txt.contains("db"));
        assert!(txt.contains("batch"));
    }

    #[test]
    fn parameterized_server_workloads_parse() {
        let w = parse_workloads(&["memcached:64".into(), "redis:2000".into()]).unwrap();
        assert_eq!(w[0].name, "memcached-c64");
        assert_eq!(w[1].name, "redis-k2000");
    }

    #[test]
    fn bad_inputs_are_rejected_with_context() {
        assert!(Scenario::from_json("{").is_err());
        let mut sc = Scenario::from_json(EXAMPLE).unwrap();
        sc.scheduler = "fifo".into();
        assert!(sc.run().unwrap_err().to_string().contains("fifo"));
        let mut sc = Scenario::from_json(EXAMPLE).unwrap();
        sc.topology = "mainframe".into();
        assert!(sc.run().unwrap_err().to_string().contains("mainframe"));
        let mut sc = Scenario::from_json(EXAMPLE).unwrap();
        sc.vms[0].workloads = vec!["fortnite".into()];
        assert!(sc.run().is_err());
        let mut sc = Scenario::from_json(EXAMPLE).unwrap();
        sc.vms.clear();
        assert!(sc.run().unwrap_err().to_string().contains("no VMs"));
    }

    #[test]
    fn pinned_scenario_vm_stays_local() {
        let json = r#"{
            "scheduler": "credit",
            "duration_s": 3,
            "vms": [
                { "name": "pinned", "vcpus": 2, "mem_gb": 2,
                  "alloc": "node:1", "pin": "node:1",
                  "workloads": ["milc", "milc"] }
            ]
        }"#;
        let sc = Scenario::from_json(json).unwrap();
        let mut machine = sc.build().unwrap();
        machine.run(SimDuration::from_secs(3));
        assert_eq!(machine.metrics().per_vm[0].remote_accesses, 0);
    }

    #[test]
    fn fault_fields_appear_only_when_injection_is_on() {
        let sc = Scenario::from_json(EXAMPLE).unwrap();
        assert_eq!(sc.fault_rate, 0.0);
        assert_eq!(sc.fault_seed, 1);
        assert!(!sc.to_json().contains("fault_rate"));
        let mut faulty = sc.clone();
        faulty.fault_rate = 0.1;
        faulty.fault_seed = 9;
        let json = faulty.to_json();
        assert!(json.contains("fault_rate"));
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back.fault_rate, 0.1);
        assert_eq!(back.fault_seed, 9);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn faulty_scenario_runs_under_vprobe_gd() {
        let mut sc = Scenario::from_json(EXAMPLE).unwrap();
        sc.scheduler = "vprobe-gd".into();
        sc.fault_rate = 0.2;
        let table = sc.run().unwrap();
        assert_eq!(table.num_rows(), 2);
        // An out-of-range rate is rejected by the machine builder.
        sc.fault_rate = 1.5;
        assert!(sc.run().is_err());
    }

    #[test]
    fn macro_step_field_round_trips_and_defaults_on() {
        let sc = Scenario::from_json(EXAMPLE).unwrap();
        assert!(sc.macro_step);
        assert!(!sc.to_json().contains("macro_step"));
        let mut slow = sc.clone();
        slow.macro_step = false;
        let json = slow.to_json();
        assert!(json.contains("\"macro_step\":false"));
        let back = Scenario::from_json(&json).unwrap();
        assert!(!back.macro_step);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let sc = Scenario::from_json(EXAMPLE).unwrap();
        let json = sc.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back.vms[0].name, "db");
        assert_eq!(back.vms[0].alloc, "split");
        assert_eq!(back.vms[1].weight, 256);
        assert_eq!(back.duration_s, 3);
        // A second round trip is byte-stable.
        assert_eq!(back.to_json(), json);
    }
}
