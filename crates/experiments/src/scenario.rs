//! Declarative scenarios: describe a machine, its VMs, and a scheduler in
//! JSON; run it and get the standard metrics back.
//!
//! This is the "I want to try my own setup" entry point a downstream user
//! reaches for before writing Rust:
//!
//! ```json
//! {
//!   "topology": "xeon_e5620",
//!   "scheduler": "vprobe",
//!   "duration_s": 20,
//!   "seed": 7,
//!   "vms": [
//!     { "name": "db", "vcpus": 8, "mem_gb": 8, "alloc": "split",
//!       "workloads": ["redis:4000"] },
//!     { "name": "batch", "vcpus": 4, "mem_gb": 4, "alloc": "most_free",
//!       "workloads": ["soplex", "soplex", "soplex", "soplex"] }
//!   ]
//! }
//! ```
//!
//! Workload strings name registry entries (`soplex`, `lu`, `hungry`, …)
//! plus the parameterized servers `memcached:<concurrency>` and
//! `redis:<connections>`.

use crate::report::{pct, Table};
use mem_model::AllocPolicy;
use numa_topo::{presets, NodeId, Topology};
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimError};
use vprobe::{variants, Bounds, BrmPolicy};
use workloads::{kv, registry, WorkloadSpec};
use xen_sim::{CreditPolicy, Machine, MachineBuilder, SchedPolicy, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

/// One VM in a scenario file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VmSpec {
    pub name: String,
    pub vcpus: usize,
    pub mem_gb: u64,
    /// `most_free` | `split` | `node:<id>` | `striped`
    #[serde(default = "default_alloc")]
    pub alloc: String,
    /// Workload names; see module docs.
    pub workloads: Vec<String>,
    /// Optional hard pin (`node:<id>`).
    #[serde(default)]
    pub pin: Option<String>,
    /// Credit weight (Xen default 256).
    #[serde(default = "default_weight")]
    pub weight: u32,
}

fn default_alloc() -> String {
    "most_free".into()
}

fn default_weight() -> u32 {
    256
}

/// A whole scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// "xeon_e5620" | "four_socket" | "uma"
    #[serde(default = "default_topology")]
    pub topology: String,
    /// "credit" | "vprobe" | "vcpu-p" | "lb" | "brm"
    #[serde(default = "default_scheduler")]
    pub scheduler: String,
    #[serde(default = "default_duration")]
    pub duration_s: u64,
    #[serde(default)]
    pub seed: u64,
    pub vms: Vec<VmSpec>,
}

fn default_topology() -> String {
    "xeon_e5620".into()
}

fn default_scheduler() -> String {
    "vprobe".into()
}

fn default_duration() -> u64 {
    20
}

impl Scenario {
    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<Scenario, SimError> {
        serde_json::from_str(json)
            .map_err(|e| SimError::InvalidConfig(format!("scenario parse error: {e}")))
    }

    pub fn topology(&self) -> Result<Topology, SimError> {
        match self.topology.as_str() {
            "xeon_e5620" => Ok(presets::xeon_e5620()),
            "four_socket" => Ok(presets::four_socket_32core()),
            "uma" => Ok(presets::uma_quad()),
            other => Err(SimError::UnknownName(format!("topology '{other}'"))),
        }
    }

    fn policy(&self, num_nodes: usize) -> Result<Box<dyn SchedPolicy>, SimError> {
        Ok(match self.scheduler.as_str() {
            "credit" => Box::new(CreditPolicy::new()),
            "vprobe" => Box::new(variants::vprobe(num_nodes, Bounds::default())),
            "vcpu-p" => Box::new(variants::vcpu_p(num_nodes, Bounds::default())),
            "lb" => Box::new(variants::lb_only(num_nodes, Bounds::default())),
            "brm" => Box::new(BrmPolicy::new(self.seed)),
            other => return Err(SimError::UnknownName(format!("scheduler '{other}'"))),
        })
    }

    /// Build the machine.
    pub fn build(&self) -> Result<Machine, SimError> {
        if self.vms.is_empty() {
            return Err(SimError::InvalidConfig("scenario has no VMs".into()));
        }
        let topo = self.topology()?;
        let mut b = MachineBuilder::new(topo.clone())
            .policy(self.policy(topo.num_nodes())?)
            .seed(self.seed);
        for vm in &self.vms {
            let mut cfg = VmConfig::new(
                vm.name.clone(),
                vm.vcpus,
                vm.mem_gb * GB,
                parse_alloc(&vm.alloc)?,
                parse_workloads(&vm.workloads)?,
            );
            if let Some(pin) = &vm.pin {
                cfg.pin_node = Some(parse_node(pin)?);
            }
            cfg.weight = vm.weight;
            b = b.add_vm(cfg);
        }
        b.build()
    }

    /// Build, run, and summarize.
    pub fn run(&self) -> Result<Table, SimError> {
        let mut machine = self.build()?;
        machine.run(SimDuration::from_secs(self.duration_s));
        let m = machine.metrics();
        let mut t = Table::new(
            format!(
                "scenario: {} on {}, {} s (seed {})",
                self.scheduler, self.topology, self.duration_s, self.seed
            ),
            &["vm", "instr/s", "remote accesses", "busy (s)"],
        );
        for (vm, spec) in m.per_vm.iter().zip(&self.vms) {
            t.push_row(vec![
                spec.name.clone(),
                format!("{:.3e}", vm.instr_per_second(m.elapsed)),
                pct(vm.remote_ratio() * 100.0),
                format!("{:.1}", vm.busy_us as f64 / 1e6),
            ]);
        }
        Ok(t)
    }
}

fn parse_alloc(s: &str) -> Result<AllocPolicy, SimError> {
    if let Some(id) = s.strip_prefix("node:") {
        return Ok(AllocPolicy::OnNode(parse_node_id(id)?));
    }
    match s {
        "most_free" => Ok(AllocPolicy::MostFree),
        "split" => Ok(AllocPolicy::SplitEven),
        "striped" => Ok(AllocPolicy::Striped {
            chunk_bytes: 256 * 1024 * 1024,
        }),
        other => Err(SimError::UnknownName(format!("alloc policy '{other}'"))),
    }
}

fn parse_node(s: &str) -> Result<NodeId, SimError> {
    let id = s
        .strip_prefix("node:")
        .ok_or_else(|| SimError::InvalidConfig(format!("pin must be 'node:<id>', got '{s}'")))?;
    parse_node_id(id)
}

fn parse_node_id(id: &str) -> Result<NodeId, SimError> {
    id.parse::<u16>()
        .map(NodeId::new)
        .map_err(|_| SimError::InvalidConfig(format!("bad node id '{id}'")))
}

fn parse_workloads(names: &[String]) -> Result<Vec<WorkloadSpec>, SimError> {
    names
        .iter()
        .map(|n| {
            if let Some(c) = n.strip_prefix("memcached:") {
                let c: u32 = c
                    .parse()
                    .map_err(|_| SimError::InvalidConfig(format!("bad concurrency in '{n}'")))?;
                Ok(kv::memcached(c))
            } else if let Some(k) = n.strip_prefix("redis:") {
                let k: u32 = k
                    .parse()
                    .map_err(|_| SimError::InvalidConfig(format!("bad connections in '{n}'")))?;
                Ok(kv::redis(k))
            } else {
                registry::by_name(n)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"{
        "topology": "xeon_e5620",
        "scheduler": "vprobe",
        "duration_s": 3,
        "seed": 7,
        "vms": [
            { "name": "db", "vcpus": 8, "mem_gb": 8, "alloc": "split",
              "workloads": ["redis:4000"] },
            { "name": "batch", "vcpus": 4, "mem_gb": 4,
              "workloads": ["soplex", "soplex", "soplex", "soplex"] }
        ]
    }"#;

    #[test]
    fn example_scenario_parses_and_runs() {
        let sc = Scenario::from_json(EXAMPLE).unwrap();
        assert_eq!(sc.vms.len(), 2);
        assert_eq!(sc.vms[1].weight, 256, "default weight applied");
        let table = sc.run().unwrap();
        assert_eq!(table.num_rows(), 2);
        let txt = table.to_text();
        assert!(txt.contains("db"));
        assert!(txt.contains("batch"));
    }

    #[test]
    fn parameterized_server_workloads_parse() {
        let w = parse_workloads(&["memcached:64".into(), "redis:2000".into()]).unwrap();
        assert_eq!(w[0].name, "memcached-c64");
        assert_eq!(w[1].name, "redis-k2000");
    }

    #[test]
    fn bad_inputs_are_rejected_with_context() {
        assert!(Scenario::from_json("{").is_err());
        let mut sc = Scenario::from_json(EXAMPLE).unwrap();
        sc.scheduler = "fifo".into();
        assert!(sc.run().unwrap_err().to_string().contains("fifo"));
        let mut sc = Scenario::from_json(EXAMPLE).unwrap();
        sc.topology = "mainframe".into();
        assert!(sc.run().unwrap_err().to_string().contains("mainframe"));
        let mut sc = Scenario::from_json(EXAMPLE).unwrap();
        sc.vms[0].workloads = vec!["fortnite".into()];
        assert!(sc.run().is_err());
        let mut sc = Scenario::from_json(EXAMPLE).unwrap();
        sc.vms.clear();
        assert!(sc.run().unwrap_err().to_string().contains("no VMs"));
    }

    #[test]
    fn pinned_scenario_vm_stays_local() {
        let json = r#"{
            "scheduler": "credit",
            "duration_s": 3,
            "vms": [
                { "name": "pinned", "vcpus": 2, "mem_gb": 2,
                  "alloc": "node:1", "pin": "node:1",
                  "workloads": ["milc", "milc"] }
            ]
        }"#;
        let sc = Scenario::from_json(json).unwrap();
        let mut machine = sc.build().unwrap();
        machine.run(SimDuration::from_secs(3));
        assert_eq!(machine.metrics().per_vm[0].remote_accesses, 0);
    }

    #[test]
    fn scenario_round_trips_through_serde() {
        let sc = Scenario::from_json(EXAMPLE).unwrap();
        let json = serde_json::to_string(&sc).unwrap();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back.vms[0].name, "db");
        assert_eq!(back.duration_s, 3);
    }
}
