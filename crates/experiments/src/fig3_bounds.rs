//! Fig. 3 — per-program LLC miss rate and RPTI; deriving the `low`/`high`
//! bounds (paper §IV-A).
//!
//! The paper runs each program in a 1-VCPU VM pinned to its local node and
//! measures (a) the LLC miss rate and (b) LLC references per thousand
//! instructions (RPTI). From povray/ep (LLC-friendly), lu/mg (fitting),
//! and milc/libquantum (thrashing) it picks `low = 3` and `high = 20`.
//!
//! We reproduce the same protocol: one single-worker VM alone on the
//! machine, measured through the virtual PMU (so the whole
//! engine→PMU→analyzer pipeline is exercised, not just the model inputs).

use crate::report::{f3, pct, Table};
use crate::runner::RunOptions;
use mem_model::AllocPolicy;
use numa_topo::presets;
use sim_core::SimError;
use vprobe::{Bounds, PmuDataAnalyzer, VcpuType};
use workloads::{npb, speccpu, WorkloadSpec};
use xen_sim::{CreditPolicy, MachineBuilder, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

/// One bar pair of Fig. 3.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    pub workload: String,
    /// Measured LLC miss rate, solo and pinned (Fig. 3a).
    pub miss_rate: f64,
    /// Measured LLC references per thousand instructions (Fig. 3b).
    pub rpti: f64,
    /// Classification under the derived bounds.
    pub class: VcpuType,
}

/// The six programs of Fig. 3, in the paper's order.
pub fn workload_set() -> Vec<WorkloadSpec> {
    vec![
        speccpu::povray(),
        npb::ep(),
        npb::lu(),
        npb::mg(),
        speccpu::milc(),
        speccpu::libquantum(),
    ]
}

/// Run one program alone in a 1-VCPU VM (paper: "a VM … configured with
/// 4 GB memory and 1 VCPU pinned to the local node").
pub fn run_one(spec: &WorkloadSpec, opts: &RunOptions) -> Result<Fig3Row, SimError> {
    let mut single = spec.clone();
    single.threads = 1;
    let mut vm = VmConfig::new(
        "solo",
        1,
        4 * GB,
        AllocPolicy::OnNode(numa_topo::NodeId::new(0)),
        vec![single],
    );
    // "1 VCPU pinned to the local node" (§IV-A).
    vm.pin_node = Some(numa_topo::NodeId::new(0));
    // A controlled microbenchmark run: burstiness off so the measured RPTI
    // is the program's intrinsic value, as in the paper's pinned setup.
    let cfg = xen_sim::MachineConfig {
        intensity_noise_sd: 0.0,
        ..Default::default()
    };
    let mut machine = MachineBuilder::new(presets::xeon_e5620())
        .config(cfg)
        .policy(Box::new(CreditPolicy::new()))
        .sample_period(opts.sample_period)
        .seed(opts.seed)
        .add_vm(vm)
        .build()?;
    machine.run(opts.duration);
    let totals = machine.vcpu_totals(numa_topo::VcpuId::new(0));
    let rpti = totals.llc_access_pressure(1_000.0);
    let analyzer = PmuDataAnalyzer::new(Bounds::default());
    Ok(Fig3Row {
        workload: spec.name.clone(),
        miss_rate: totals.miss_rate(),
        rpti,
        class: analyzer.classify(rpti),
    })
}

/// Run all six programs (in parallel; rows stay in `workload_set` order).
pub fn run(opts: &RunOptions) -> Result<Vec<Fig3Row>, SimError> {
    crate::parallel::parallel_try_map(workload_set(), |w| run_one(&w, opts))
}

/// Check that the measured RPTIs justify the paper's bounds: every
/// friendly program below `low`, every thrashing one at or above `high`,
/// the fitting ones in between.
pub fn bounds_consistent(rows: &[Fig3Row], bounds: Bounds) -> bool {
    rows.iter().all(|r| match r.workload.as_str() {
        "povray" | "ep" => r.rpti < bounds.low,
        "lu" | "mg" => bounds.low <= r.rpti && r.rpti < bounds.high,
        "milc" | "libquantum" => r.rpti >= bounds.high,
        _ => true,
    })
}

/// Render as a table.
pub fn render(rows: &[Fig3Row]) -> Table {
    let mut t = Table::new(
        "Fig. 3 — solo LLC miss rate and RPTI per program (bounds: low=3, high=20)",
        &["workload", "miss rate (3a)", "RPTI (3b)", "class"],
    );
    for r in rows {
        t.push_row(vec![
            r.workload.clone(),
            pct(r.miss_rate * 100.0),
            f3(r.rpti),
            format!("{:?}", r.class),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn quick() -> RunOptions {
        RunOptions {
            duration: SimDuration::from_secs(3),
            warmup: SimDuration::ZERO,
            ..RunOptions::default()
        }
    }

    #[test]
    fn solo_rpti_matches_fig3b_values() {
        let opts = quick();
        let rows = run(&opts).unwrap();
        let by_name = |n: &str| rows.iter().find(|r| r.workload == n).unwrap();
        assert!((by_name("povray").rpti - 0.48).abs() < 0.1);
        assert!((by_name("ep").rpti - 2.01).abs() < 0.2);
        assert!((by_name("lu").rpti - 15.38).abs() < 0.8);
        assert!((by_name("mg").rpti - 16.33).abs() < 0.8);
        assert!((by_name("milc").rpti - 21.68).abs() < 1.0);
        assert!((by_name("libquantum").rpti - 22.41).abs() < 1.0);
    }

    #[test]
    fn classes_and_bounds_are_recovered() {
        let rows = run(&quick()).unwrap();
        assert!(bounds_consistent(&rows, Bounds::default()));
        let classes: Vec<VcpuType> = rows.iter().map(|r| r.class).collect();
        assert_eq!(
            classes,
            vec![
                VcpuType::Friendly,
                VcpuType::Friendly,
                VcpuType::Fitting,
                VcpuType::Fitting,
                VcpuType::Thrashing,
                VcpuType::Thrashing,
            ]
        );
    }

    #[test]
    fn solo_miss_rates_follow_the_taxonomy() {
        let rows = run(&quick()).unwrap();
        let by_name = |n: &str| rows.iter().find(|r| r.workload == n).unwrap();
        assert!(by_name("povray").miss_rate < 0.05);
        assert!(by_name("lu").miss_rate < 0.25, "fitting program fits when alone");
        assert!(by_name("libquantum").miss_rate > 0.6);
        assert!(by_name("milc").miss_rate > 0.6);
    }

    #[test]
    fn render_includes_all_programs() {
        let rows = run(&quick()).unwrap();
        let txt = render(&rows).to_text();
        for n in ["povray", "ep", "lu", "mg", "milc", "libquantum"] {
            assert!(txt.contains(n), "missing {n}");
        }
    }
}
