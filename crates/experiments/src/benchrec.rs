//! Shared wall-clock recording into `BENCH_repro.json` and the
//! append-only `BENCH_history.jsonl`.
//!
//! Both the `repro` binary (per-artifact sweep timings, keyed
//! `jobs_N`/`jobs_N_nomacro`) and the `trace` binary (the `trace_tool`
//! key) merge their entries into the same file in the working
//! directory, so one JSON object holds every timing a checkout has
//! produced. Every entry carries the [`stamp`] provenance prefix (git
//! revision, quick/full regime, engine selection), so timings from
//! different checkouts and modes can be told apart after the fact.
//!
//! `BENCH_repro.json` answers "what does this checkout cost right now";
//! [`HISTORY_FILE`] answers "how has that cost moved over time". History
//! records are only ever appended — one JSON object per line, stamped
//! the same way, optionally carrying the deterministic counter digest a
//! `perf-report` run produces — which makes the file a continuous
//! benchmark log that CI can archive per commit and regress against.
//!
//! Recording is best-effort: a write failure warns and never fails the
//! run it is timing.

use sim_core::Json;

/// The merged timings file, written in the working directory.
pub const BENCH_FILE: &str = "BENCH_repro.json";

/// The append-only benchmark history (JSONL, one record per line).
pub const HISTORY_FILE: &str = "BENCH_history.jsonl";

/// Short git revision of the working tree, or `"unknown"` when git (or a
/// repository) is unavailable — recording must work from a tarball too.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// The provenance prefix every BENCH entry starts with: git revision,
/// `quick`/`full` regime, and memory-engine selection.
pub fn stamp(regime: &str, engine: &str) -> Vec<(String, Json)> {
    vec![
        ("git_rev".into(), Json::Str(git_rev())),
        ("regime".into(), Json::Str(regime.into())),
        ("engine".into(), Json::Str(engine.into())),
    ]
}

/// Append one record to the JSONL history at `file`. Best-effort like
/// [`record`]; the existing contents are never rewritten.
pub fn append_history(file: &str, record: &Json) {
    use std::io::Write;
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(file)
        .and_then(|mut f| f.write_all(format!("{record}\n").as_bytes()));
    match res {
        Err(e) => eprintln!("warning: cannot append to {file}: {e}"),
        Ok(()) => eprintln!("appended history record to {file}"),
    }
}

/// Merge `entry` under `key` into the JSON object stored at `file`,
/// creating the file (or replacing a non-object) if needed. Existing
/// keys other than `key` are preserved in their original order.
pub fn record(file: &str, key: &str, entry: Json) {
    let mut doc = std::fs::read_to_string(file)
        .ok()
        .and_then(|t| Json::parse(&t).ok())
        .and_then(|j| match j {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        })
        .unwrap_or_default();
    match doc.iter_mut().find(|(k, _)| k == key) {
        Some(slot) => slot.1 = entry,
        None => doc.push((key.to_string(), entry)),
    }
    let text = Json::Obj(doc).to_string_pretty();
    if let Err(e) = std::fs::write(file, text) {
        eprintln!("warning: cannot write {file}: {e}");
    } else {
        eprintln!("recorded timings in {file}");
    }
}

/// Round to milliseconds so the merged file diffs stay readable.
pub fn round3(s: f64) -> f64 {
    (s * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_merges_and_preserves_other_keys() {
        let dir = std::env::temp_dir().join("vprobe-benchrec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("bench.json");
        let file = file.to_str().unwrap();
        let _ = std::fs::remove_file(file);

        record(file, "a", Json::from(1u64));
        record(file, "b", Json::from(2u64));
        record(file, "a", Json::from(3u64));

        let doc = Json::parse(&std::fs::read_to_string(file).unwrap()).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("b").and_then(Json::as_u64), Some(2));
        // First-insertion order is preserved across re-records.
        match doc {
            Json::Obj(pairs) => {
                assert_eq!(pairs[0].0, "a");
                assert_eq!(pairs[1].0, "b");
            }
            _ => panic!("expected object"),
        }
        let _ = std::fs::remove_file(file);
    }

    #[test]
    fn stamp_carries_rev_regime_engine() {
        let s = stamp("quick", "approx");
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].0, "git_rev");
        assert!(matches!(&s[0].1, Json::Str(r) if !r.is_empty()));
        assert_eq!(s[1], ("regime".into(), Json::Str("quick".into())));
        assert_eq!(s[2], ("engine".into(), Json::Str("approx".into())));
    }

    #[test]
    fn append_history_is_append_only_jsonl() {
        let dir = std::env::temp_dir().join("vprobe-benchrec-history-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("history.jsonl");
        let file = file.to_str().unwrap();
        let _ = std::fs::remove_file(file);

        append_history(file, &Json::Obj(vec![("a".into(), Json::from(1u64))]));
        append_history(file, &Json::Obj(vec![("b".into(), Json::from(2u64))]));

        let text = std::fs::read_to_string(file).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            Json::parse(lines[0]).unwrap().get("a").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            Json::parse(lines[1]).unwrap().get("b").and_then(Json::as_u64),
            Some(2)
        );
        let _ = std::fs::remove_file(file);
    }

    #[test]
    fn round3_truncates_to_milliseconds() {
        assert_eq!(round3(1.23456), 1.235);
        assert_eq!(round3(0.0004), 0.0);
    }
}
