//! Shared wall-clock recording into `BENCH_repro.json`.
//!
//! Both the `repro` binary (per-artifact sweep timings, keyed
//! `jobs_N`/`jobs_N_nomacro`) and the `trace` binary (the `trace_tool`
//! key) merge their entries into the same file in the working
//! directory, so one JSON object holds every timing a checkout has
//! produced. Recording is best-effort: a write failure warns and never
//! fails the run it is timing.

use sim_core::Json;

/// The merged timings file, written in the working directory.
pub const BENCH_FILE: &str = "BENCH_repro.json";

/// Merge `entry` under `key` into the JSON object stored at `file`,
/// creating the file (or replacing a non-object) if needed. Existing
/// keys other than `key` are preserved in their original order.
pub fn record(file: &str, key: &str, entry: Json) {
    let mut doc = std::fs::read_to_string(file)
        .ok()
        .and_then(|t| Json::parse(&t).ok())
        .and_then(|j| match j {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        })
        .unwrap_or_default();
    match doc.iter_mut().find(|(k, _)| k == key) {
        Some(slot) => slot.1 = entry,
        None => doc.push((key.to_string(), entry)),
    }
    let text = Json::Obj(doc).to_string_pretty();
    if let Err(e) = std::fs::write(file, text) {
        eprintln!("warning: cannot write {file}: {e}");
    } else {
        eprintln!("recorded timings in {file}");
    }
}

/// Round to milliseconds so the merged file diffs stay readable.
pub fn round3(s: f64) -> f64 {
    (s * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_merges_and_preserves_other_keys() {
        let dir = std::env::temp_dir().join("vprobe-benchrec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("bench.json");
        let file = file.to_str().unwrap();
        let _ = std::fs::remove_file(file);

        record(file, "a", Json::from(1u64));
        record(file, "b", Json::from(2u64));
        record(file, "a", Json::from(3u64));

        let doc = Json::parse(&std::fs::read_to_string(file).unwrap()).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("b").and_then(Json::as_u64), Some(2));
        // First-insertion order is preserved across re-records.
        match doc {
            Json::Obj(pairs) => {
                assert_eq!(pairs[0].0, "a");
                assert_eq!(pairs[1].0, "b");
            }
            _ => panic!("expected object"),
        }
        let _ = std::fs::remove_file(file);
    }

    #[test]
    fn round3_truncates_to_milliseconds() {
        assert_eq!(round3(1.23456), 1.235);
        assert_eq!(round3(0.0004), 0.0);
    }
}
