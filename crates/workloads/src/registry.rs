//! Name-based lookup across all modeled workloads.

use crate::spec::WorkloadSpec;
use crate::{hungry, kv, npb, speccpu};
use sim_core::SimError;

/// Every statically named workload (server workloads are parameterized and
/// addressed via [`crate::kv`] directly, but the paper's default levels are
/// included here for convenience).
pub fn all_specs() -> Vec<WorkloadSpec> {
    vec![
        speccpu::povray(),
        speccpu::soplex(),
        speccpu::libquantum(),
        speccpu::mcf(),
        speccpu::milc(),
        speccpu::lbm(),
        speccpu::gcc(),
        speccpu::omnetpp(),
        speccpu::gobmk(),
        npb::bt(),
        npb::cg(),
        npb::ep(),
        npb::lu(),
        npb::mg(),
        npb::sp(),
        npb::ft(),
        npb::is(),
        hungry::hungry_loop(),
        kv::memcached(80),
        kv::redis(2_000),
    ]
}

/// Look a workload up by name ("soplex", "lu", "hungry", …).
pub fn by_name(name: &str) -> Result<WorkloadSpec, SimError> {
    all_specs()
        .into_iter()
        .find(|w| w.name == name)
        .ok_or_else(|| SimError::UnknownName(format!("workload '{name}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_are_unique() {
        let names: Vec<String> = all_specs().into_iter().map(|w| w.name).collect();
        let set: HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len(), "duplicate workload names");
    }

    #[test]
    fn lookup_finds_paper_workloads() {
        for name in ["soplex", "libquantum", "mcf", "milc", "bt", "cg", "lu", "mg", "sp", "hungry"]
        {
            assert!(by_name(name).is_ok(), "missing {name}");
        }
    }

    #[test]
    fn lookup_rejects_unknown() {
        assert!(by_name("fortnite").is_err());
    }

    #[test]
    fn every_spec_has_positive_parameters() {
        for w in all_specs() {
            assert!(w.rpti >= 0.0, "{}", w.name);
            assert!(w.base_cpi > 0.0, "{}", w.name);
            assert!(w.footprint_bytes > 0, "{}", w.name);
            assert!(w.threads > 0, "{}", w.name);
            assert!((0.0..=1.0).contains(&w.shared_frac), "{}", w.name);
        }
    }
}
