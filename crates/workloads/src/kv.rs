//! Key-value server models: memcached (driven by memslap) and redis
//! (driven by redis-benchmark).
//!
//! The paper's Figs. 6 and 7 sweep offered load — memslap concurrency 16 to
//! 112, redis parallel connections 2 000 to 10 000 — and measure completion
//! time (memcached) or throughput (redis). For a scheduler study the
//! relevant effect of load is on *memory behaviour*: more in-flight
//! requests touch more of the hash table per unit time, so LLC intensity
//! and the hot working set grow with concurrency, sliding the servers from
//! LLC-fitting toward LLC-thrashing. That is exactly why the paper finds
//! LB beats VCPU-P at low memcached concurrency (remote latency dominates)
//! but VCPU-P wins at high concurrency (LLC contention dominates).

use crate::spec::{LlcClass, Suite, WorkloadSpec, MB};
use mem_model::MissCurve;

/// The memslap concurrency levels of Fig. 6.
pub const MEMCACHED_CONCURRENCIES: [u32; 7] = [16, 32, 48, 64, 80, 96, 112];

/// The redis-benchmark connection counts of Fig. 7.
pub const REDIS_CONNECTIONS: [u32; 5] = [2_000, 4_000, 6_000, 8_000, 10_000];

/// Operations memslap issues per run in the paper (50 000 executions).
pub const MEMSLAP_OPS: u64 = 50_000;

/// A memcached server worker thread under `concurrency` concurrent calls.
///
/// Eight worker ports per server as in the paper's setup.
pub fn memcached(concurrency: u32) -> WorkloadSpec {
    assert!(concurrency > 0, "concurrency must be positive");
    let c = concurrency as f64;
    // Intensity grows with offered load and saturates: at c=16 the server
    // is fitting (RPTI ~10); by c=80+ it behaves like a thrasher (~21).
    let rpti = 8.0 + 12.0 * (c / (c + 40.0)) * 1.55;
    let ws = (4.0 + 0.16 * c) * MB as f64;
    WorkloadSpec {
        name: format!("memcached-c{concurrency}"),
        suite: Suite::KeyValue,
        expected_class: if rpti >= 20.0 {
            LlcClass::Thrashing
        } else {
            LlcClass::Fitting
        },
        rpti,
        base_cpi: 1.1,
        miss_curve: MissCurve::new(0.10, 0.80, ws as u64),
        // Hash-table chasing: modest overlap.
        mlp: 2.0,
        footprint_bytes: 2_048 * MB,
        // The hash table is shared among all worker threads.
        shared_frac: 0.6,
        threads: 8,
        instr_per_op: Some(40_000.0),
    }
}

/// A redis server instance under `connections` parallel connections.
///
/// Four server processes per VM as in the paper's setup. Redis is
/// single-threaded per instance and strongly memory-bound on GET floods.
pub fn redis(connections: u32) -> WorkloadSpec {
    assert!(connections > 0, "connections must be positive");
    let k = connections as f64 / 1_000.0;
    let rpti = 17.5 + 0.55 * k; // 18.6 at 2k .. 23.0 at 10k
    let ws = (10.0 + 1.2 * k) * MB as f64;
    WorkloadSpec {
        name: format!("redis-k{connections}"),
        suite: Suite::KeyValue,
        expected_class: if rpti >= 20.0 {
            LlcClass::Thrashing
        } else {
            LlcClass::Fitting
        },
        rpti,
        base_cpi: 1.0,
        miss_curve: MissCurve::new(0.30, 0.85, ws as u64),
        mlp: 2.0,
        footprint_bytes: 3_072 * MB,
        shared_frac: 0.3,
        threads: 4,
        instr_per_op: Some(25_000.0),
    }
}

/// Convert an achieved instruction rate (instructions per second across
/// all server threads) into request throughput (ops/second).
pub fn ops_per_second(spec: &WorkloadSpec, instr_per_s: f64) -> f64 {
    let per_op = spec
        .instr_per_op
        .expect("server workloads define instr_per_op");
    instr_per_s / per_op
}

/// Time to complete `ops` requests at the given instruction rate, seconds.
pub fn completion_time_s(spec: &WorkloadSpec, instr_per_s: f64, ops: u64) -> f64 {
    assert!(instr_per_s > 0.0, "rate must be positive");
    ops as f64 / ops_per_second(spec, instr_per_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcached_intensity_grows_with_concurrency() {
        let mut prev = 0.0;
        for c in MEMCACHED_CONCURRENCIES {
            let w = memcached(c);
            assert!(w.rpti > prev, "rpti must grow with concurrency");
            prev = w.rpti;
        }
    }

    #[test]
    fn memcached_crosses_into_thrashing_at_high_load() {
        assert_eq!(memcached(16).classify(3.0, 20.0), LlcClass::Fitting);
        assert_eq!(memcached(112).classify(3.0, 20.0), LlcClass::Thrashing);
    }

    #[test]
    fn redis_is_memory_intensive_at_every_level() {
        for k in REDIS_CONNECTIONS {
            let w = redis(k);
            assert!(w.rpti >= 18.0, "redis-{k} rpti={}", w.rpti);
            assert!(w.classify(3.0, 20.0) != LlcClass::Friendly);
        }
    }

    #[test]
    fn redis_intensity_grows_with_connections() {
        assert!(redis(10_000).rpti > redis(2_000).rpti);
        assert!(redis(10_000).miss_curve.ws_bytes > redis(2_000).miss_curve.ws_bytes);
    }

    #[test]
    fn throughput_conversion() {
        let w = redis(2_000);
        let rate = 2.5e9; // instructions/s
        let tput = ops_per_second(&w, rate);
        assert!((tput - 1e5).abs() < 1.0, "tput={tput}");
        let t = completion_time_s(&w, rate, 200_000);
        assert!((t - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "concurrency")]
    fn zero_concurrency_rejected() {
        memcached(0);
    }

    #[test]
    fn worker_thread_counts_match_paper_setup() {
        assert_eq!(memcached(16).threads, 8, "eight working ports");
        assert_eq!(redis(2_000).threads, 4, "four redis servers");
    }
}
