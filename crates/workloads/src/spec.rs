//! The static workload description type.

use mem_model::{AccessProfile, MissCurve};

pub const MB: u64 = 1024 * 1024;

/// Which benchmark family a workload comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006 (single-threaded; the paper runs four identical
    /// instances per VM).
    SpecCpu2006,
    /// NAS Parallel Benchmarks (the paper runs them four-threaded).
    Npb,
    /// Request-serving key-value stores (memcached, redis).
    KeyValue,
    /// Microbenchmarks (hungry loop).
    Micro,
}

/// The paper's VCPU taxonomy (§III-B2), used here to label what class a
/// workload *should* land in — tests assert the classifier recovers it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LlcClass {
    /// LLC-friendly: negligible LLC demand.
    Friendly,
    /// LLC-fitting: fits when uncontended, degrades under interference.
    Fitting,
    /// LLC-thrashing: misses heavily regardless of occupancy.
    Thrashing,
}

/// Static behavioural description of one application (one thread/instance).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    pub name: String,
    pub suite: Suite,
    /// Expected classification on the Table I machine (ground truth for
    /// classifier tests; the scheduler never reads this).
    pub expected_class: LlcClass,
    /// LLC references per thousand instructions.
    pub rpti: f64,
    /// Cycles per instruction assuming all LLC hits.
    pub base_cpi: f64,
    pub miss_curve: MissCurve,
    /// Memory-level parallelism (outstanding-miss overlap); see
    /// `mem_model::AccessProfile::mlp`.
    pub mlp: f64,
    /// Resident memory per thread/instance, bytes.
    pub footprint_bytes: u64,
    /// Fraction of accesses to VM-shared (vs thread-private) memory.
    pub shared_frac: f64,
    /// Natural degree of parallelism (threads for NPB, 1 for SPEC).
    pub threads: usize,
    /// Instructions retired per external request, for server workloads.
    pub instr_per_op: Option<f64>,
}

impl WorkloadSpec {
    /// Instantiate against a node-access distribution (from
    /// `mem_model::VmMemoryLayout::thread_access_distribution`).
    pub fn access_profile(&self, node_access_dist: Vec<f64>) -> AccessProfile {
        AccessProfile {
            rpti: self.rpti,
            base_cpi: self.base_cpi,
            miss_curve: self.miss_curve,
            mlp: self.mlp,
            node_access_dist,
        }
    }

    /// Miss rate this workload would show running alone and pinned on a
    /// cache of `llc_bytes` — what the paper's Fig. 3(a) experiment
    /// measures.
    pub fn solo_miss_rate(&self, llc_bytes: u64) -> f64 {
        self.miss_curve.solo_miss_rate(llc_bytes)
    }

    /// Classify by the paper's Eq. (3) bounds (RPTI thresholds).
    pub fn classify(&self, low: f64, high: f64) -> LlcClass {
        if self.rpti < low {
            LlcClass::Friendly
        } else if self.rpti < high {
            LlcClass::Fitting
        } else {
            LlcClass::Thrashing
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test".into(),
            suite: Suite::SpecCpu2006,
            expected_class: LlcClass::Fitting,
            rpti: 15.0,
            base_cpi: 1.0,
            miss_curve: MissCurve::new(0.1, 0.5, 6 * MB),
            mlp: 4.0,
            footprint_bytes: 100 * MB,
            shared_frac: 0.2,
            threads: 1,
            instr_per_op: None,
        }
    }

    #[test]
    fn access_profile_carries_parameters() {
        let p = spec().access_profile(vec![0.5, 0.5]);
        assert_eq!(p.rpti, 15.0);
        assert_eq!(p.base_cpi, 1.0);
        assert_eq!(p.node_access_dist, vec![0.5, 0.5]);
    }

    #[test]
    fn classify_uses_bounds() {
        let mut w = spec();
        assert_eq!(w.classify(3.0, 20.0), LlcClass::Fitting);
        w.rpti = 2.0;
        assert_eq!(w.classify(3.0, 20.0), LlcClass::Friendly);
        w.rpti = 25.0;
        assert_eq!(w.classify(3.0, 20.0), LlcClass::Thrashing);
        // Boundary cases: low is inclusive for Fitting, high for Thrashing.
        w.rpti = 3.0;
        assert_eq!(w.classify(3.0, 20.0), LlcClass::Fitting);
        w.rpti = 20.0;
        assert_eq!(w.classify(3.0, 20.0), LlcClass::Thrashing);
    }

    #[test]
    fn solo_miss_rate_delegates_to_curve() {
        let w = spec();
        assert!((w.solo_miss_rate(12 * MB) - 0.1).abs() < 1e-12);
        assert!(w.solo_miss_rate(3 * MB) > 0.25);
    }
}
