//! The "hungry loop" CPU burner.
//!
//! The paper's VM3 runs eight hungry-loop applications purely to consume
//! available CPU resources (§II-B, §V-A). They keep every PCPU busy so the
//! Credit scheduler's load balancing constantly migrates the
//! memory-intensive VCPUs — the interference that motivates vProbe.

use crate::spec::{LlcClass, Suite, WorkloadSpec, MB};
use mem_model::MissCurve;

/// A tight arithmetic loop: negligible memory traffic, low CPI.
pub fn hungry_loop() -> WorkloadSpec {
    WorkloadSpec {
        name: "hungry".into(),
        suite: Suite::Micro,
        expected_class: LlcClass::Friendly,
        rpti: 0.05,
        base_cpi: 0.6,
        miss_curve: MissCurve::new(0.01, 0.02, MB / 4),
        mlp: 1.0,
        footprint_bytes: 8 * MB,
        shared_frac: 0.0,
        threads: 1,
        instr_per_op: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hungry_is_llc_friendly() {
        let w = hungry_loop();
        assert_eq!(w.classify(3.0, 20.0), LlcClass::Friendly);
        assert!(w.rpti < 1.0);
        assert!(w.solo_miss_rate(12 * MB) < 0.02);
    }
}
