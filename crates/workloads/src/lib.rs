//! Synthetic application models.
//!
//! The paper evaluates vProbe with SPEC CPU2006 programs (soplex,
//! libquantum, mcf, milc, plus povray as the LLC-friendly control), NAS
//! Parallel Benchmarks (bt, cg, ep, lu, mg, sp), memcached driven by
//! memslap, redis driven by redis-benchmark, and a "hungry loop"
//! CPU-burner. None of those binaries can run inside a scheduler
//! simulation, so each is modeled by the characteristics the schedulers
//! actually react to:
//!
//! * **RPTI** — LLC references per thousand instructions, taken from the
//!   paper's Fig. 3(b) where reported (povray 0.48, ep 2.01, lu 15.38,
//!   mg 16.33, milc 21.68, libquantum 22.41) and from published
//!   characterization studies otherwise;
//! * a **miss-rate curve** (working-set size and min/max miss rates)
//!   placing each program in the paper's LLC-friendly / fitting /
//!   thrashing taxonomy, consistent with Fig. 3(a);
//! * **base CPI** and memory **footprint**;
//! * for the server workloads, a per-request instruction cost and a
//!   concurrency-dependent intensity model.
//!
//! [`spec::WorkloadSpec`] is the static description;
//! [`spec::WorkloadSpec::access_profile`] instantiates it against a VM's
//! memory layout to produce the [`mem_model::AccessProfile`] the execution
//! engine consumes.

pub mod hungry;
pub mod kv;
pub mod npb;
pub mod phases;
pub mod registry;
pub mod spec;
pub mod speccpu;

pub use registry::{all_specs, by_name};
pub use spec::{LlcClass, Suite, WorkloadSpec};
