//! Phase behaviour: workloads whose memory intensity changes over time.
//!
//! Real programs alternate between compute and memory phases; the paper's
//! Fig. 8 sampling-period sweep exists precisely because stale
//! characteristics mislead the scheduler when behaviour shifts. A
//! [`PhasedWorkload`] cycles a base [`WorkloadSpec`] through multiplicative
//! phases so experiments can stress how quickly each policy re-adapts.

use crate::spec::WorkloadSpec;
use sim_core::{SimDuration, SimTime};

/// One phase: scale factors applied to the base spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    pub duration: SimDuration,
    /// Multiplies RPTI (memory intensity).
    pub rpti_scale: f64,
    /// Multiplies the working-set size.
    pub ws_scale: f64,
}

/// A workload whose behaviour cycles through phases.
#[derive(Debug, Clone)]
pub struct PhasedWorkload {
    base: WorkloadSpec,
    phases: Vec<Phase>,
    cycle: SimDuration,
}

impl PhasedWorkload {
    /// Panics if `phases` is empty or any phase has zero duration.
    pub fn new(base: WorkloadSpec, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert!(
            phases.iter().all(|p| !p.duration.is_zero()),
            "phases must have nonzero duration"
        );
        let cycle = phases.iter().map(|p| p.duration).sum();
        PhasedWorkload { base, phases, cycle }
    }

    /// A steady workload (single identity phase).
    pub fn steady(base: WorkloadSpec) -> Self {
        PhasedWorkload::new(
            base,
            vec![Phase {
                duration: SimDuration::from_secs(1),
                rpti_scale: 1.0,
                ws_scale: 1.0,
            }],
        )
    }

    /// Alternate memory-heavy and compute-heavy halves of period `period`.
    pub fn alternating(base: WorkloadSpec, period: SimDuration) -> Self {
        let half = period / 2;
        PhasedWorkload::new(
            base,
            vec![
                Phase {
                    duration: half,
                    rpti_scale: 1.5,
                    ws_scale: 1.2,
                },
                Phase {
                    duration: half,
                    rpti_scale: 0.3,
                    ws_scale: 0.5,
                },
            ],
        )
    }

    pub fn base(&self) -> &WorkloadSpec {
        &self.base
    }

    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// Index of the phase in effect at simulated time `t`.
    pub fn phase_index_at(&self, t: SimTime) -> usize {
        let mut offset = t.as_micros() % self.cycle.as_micros();
        self.phases
            .iter()
            .position(|p| {
                if offset < p.duration.as_micros() {
                    true
                } else {
                    offset -= p.duration.as_micros();
                    false
                }
            })
            .expect("offset < cycle implies a phase matches")
    }

    /// The spec of phase `idx` (see [`PhasedWorkload::phase_index_at`]).
    /// Phases are static, so callers on a hot path can compute each
    /// phase's spec once and index by phase instead of rebuilding it
    /// every quantum.
    pub fn spec_for_phase(&self, idx: usize) -> WorkloadSpec {
        let phase = &self.phases[idx];
        let mut spec = self.base.clone();
        spec.rpti *= phase.rpti_scale;
        let ws = (self.base.miss_curve.ws_bytes as f64 * phase.ws_scale).max(1.0) as u64;
        spec.miss_curve = mem_model::MissCurve::new(
            self.base.miss_curve.min_miss,
            self.base.miss_curve.max_miss,
            ws,
        );
        spec
    }

    /// The spec in effect at simulated time `t`.
    pub fn spec_at(&self, t: SimTime) -> WorkloadSpec {
        self.spec_for_phase(self.phase_index_at(t))
    }

    /// The first time strictly after the phase containing `t` begins at
    /// which the active phase changes, or `None` for a single-phase
    /// workload (its spec never changes). Used as an event-horizon source:
    /// for any `t ≤ u < next_phase_change(t)`, `spec_at(u) == spec_at(t)`.
    pub fn next_phase_change(&self, t: SimTime) -> Option<SimTime> {
        if self.phases.len() <= 1 {
            return None;
        }
        let offset = t.as_micros() % self.cycle.as_micros();
        let mut end = 0u64;
        for p in &self.phases {
            end += p.duration.as_micros();
            if offset < end {
                return Some(SimTime::from_micros(t.as_micros() - offset + end));
            }
        }
        unreachable!("offset < cycle implies a phase matches")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::npb;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn steady_never_changes() {
        let p = PhasedWorkload::steady(npb::lu());
        assert_eq!(p.spec_at(t(0)).rpti, p.spec_at(t(12_345)).rpti);
    }

    #[test]
    fn alternating_switches_at_half_period() {
        let p = PhasedWorkload::alternating(npb::lu(), SimDuration::from_secs(2));
        let heavy = p.spec_at(t(500));
        let light = p.spec_at(t(1_500));
        assert!(heavy.rpti > light.rpti * 3.0);
        assert!(heavy.miss_curve.ws_bytes > light.miss_curve.ws_bytes);
    }

    #[test]
    fn phases_wrap_around() {
        let p = PhasedWorkload::alternating(npb::lu(), SimDuration::from_secs(2));
        assert_eq!(p.spec_at(t(100)).rpti, p.spec_at(t(2_100)).rpti);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        PhasedWorkload::new(npb::lu(), vec![]);
    }
}
