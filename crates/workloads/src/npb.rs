//! NAS Parallel Benchmark models (class C scale, four-threaded as in the
//! paper's Fig. 5 experiments).
//!
//! lu, mg, and ep RPTI values come from the paper's Fig. 3(b); bt, cg, and
//! sp use values consistent with published NPB memory characterizations
//! (cg and sp are the memory-bound members; bt is intermediate).

use crate::spec::{LlcClass, Suite, WorkloadSpec, MB};
use mem_model::MissCurve;

fn npb(
    name: &str,
    class: LlcClass,
    rpti: f64,
    base_cpi: f64,
    curve: MissCurve,
    mlp: f64,
    footprint_mb: u64,
) -> WorkloadSpec {
    WorkloadSpec {
        name: name.into(),
        suite: Suite::Npb,
        expected_class: class,
        rpti,
        base_cpi,
        miss_curve: curve,
        mlp,
        footprint_bytes: footprint_mb * MB,
        // MPI/OpenMP workers exchange boundary data: noticeable shared slice.
        shared_frac: 0.20,
        threads: 4,
        instr_per_op: None,
    }
}

/// BT — block tridiagonal solver; moderate LLC pressure, fitting.
pub fn bt() -> WorkloadSpec {
    npb(
        "bt",
        LlcClass::Fitting,
        13.5,
        1.0,
        MissCurve::new(0.08, 0.80, 7 * MB),
        3.0,
        700,
    )
}

/// CG — conjugate gradient; irregular sparse accesses, thrashing.
pub fn cg() -> WorkloadSpec {
    npb(
        "cg",
        LlcClass::Thrashing,
        23.0,
        1.1,
        MissCurve::new(0.60, 0.92, 40 * MB),
        2.0,
        900,
    )
}

/// EP — embarrassingly parallel; nearly no memory traffic (Fig. 3:
/// RPTI 2.01). The LLC-friendly control.
pub fn ep() -> WorkloadSpec {
    npb(
        "ep",
        LlcClass::Friendly,
        2.01,
        0.9,
        MissCurve::new(0.02, 0.05, MB),
        2.0,
        30,
    )
}

/// LU — LU factorization; fitting (Fig. 3: RPTI 15.38).
pub fn lu() -> WorkloadSpec {
    npb(
        "lu",
        LlcClass::Fitting,
        15.38,
        1.0,
        MissCurve::new(0.10, 0.85, 6 * MB),
        3.0,
        600,
    )
}

/// MG — multigrid; fitting (Fig. 3: RPTI 16.33).
pub fn mg() -> WorkloadSpec {
    npb(
        "mg",
        LlcClass::Fitting,
        16.33,
        1.0,
        MissCurve::new(0.12, 0.85, 8 * MB),
        3.0,
        3_300,
    )
}

/// SP — scalar pentadiagonal solver; the paper's best case for vProbe
/// (45.2 % over Credit): heavily memory-bound, thrashing.
pub fn sp() -> WorkloadSpec {
    npb(
        "sp",
        LlcClass::Thrashing,
        24.0,
        1.0,
        MissCurve::new(0.50, 0.90, 30 * MB),
        3.0,
        700,
    )
}

/// The five memory-intensive programs of the Fig. 5 experiment.
pub fn fig5_set() -> Vec<WorkloadSpec> {
    vec![bt(), cg(), lu(), mg(), sp()]
}

/// FT — 3-D FFT; large all-to-all working set, thrashing with good MLP.
pub fn ft() -> WorkloadSpec {
    npb(
        "ft",
        LlcClass::Thrashing,
        21.0,
        1.0,
        MissCurve::new(0.55, 0.90, 36 * MB),
        5.0,
        1_600,
    )
}

/// IS — integer sort; bucketed random access, fitting but steep under
/// contention.
pub fn is() -> WorkloadSpec {
    npb(
        "is",
        LlcClass::Fitting,
        14.0,
        0.9,
        MissCurve::new(0.15, 0.85, 9 * MB),
        3.0,
        1_000,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_rpti_values_match_paper() {
        assert!((ep().rpti - 2.01).abs() < 1e-9);
        assert!((lu().rpti - 15.38).abs() < 1e-9);
        assert!((mg().rpti - 16.33).abs() < 1e-9);
    }

    #[test]
    fn classes_recovered_by_paper_bounds() {
        for w in [bt(), cg(), ep(), lu(), mg(), sp()] {
            assert_eq!(
                w.classify(3.0, 20.0),
                w.expected_class,
                "misclassified {}",
                w.name
            );
        }
    }

    #[test]
    fn extended_npb_profiles_classify_as_expected() {
        assert_eq!(ft().classify(3.0, 20.0), LlcClass::Thrashing);
        assert_eq!(is().classify(3.0, 20.0), LlcClass::Fitting);
        assert_eq!(ft().threads, 4);
    }

    #[test]
    fn all_are_four_threaded_except_nothing() {
        for w in fig5_set() {
            assert_eq!(w.threads, 4, "{} should be 4-threaded", w.name);
        }
    }

    #[test]
    fn fitting_programs_fit_the_e5620_llc() {
        for w in [bt(), lu(), mg()] {
            assert!(
                w.miss_curve.ws_bytes <= 12 * MB,
                "{} working set must fit a 12MB LLC",
                w.name
            );
            assert!(w.solo_miss_rate(12 * MB) < 0.2);
        }
    }

    #[test]
    fn thrashing_programs_exceed_the_llc() {
        for w in [cg(), sp()] {
            assert!(w.miss_curve.ws_bytes > 12 * MB);
            assert!(w.solo_miss_rate(12 * MB) > 0.4);
        }
    }
}
