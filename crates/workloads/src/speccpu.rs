//! SPEC CPU2006 program models.
//!
//! The four memory-intensive programs the paper evaluates (Fig. 4) plus
//! povray, its LLC-friendly control from Fig. 3. RPTI values for povray,
//! milc, and libquantum come from the paper's Fig. 3(b); soplex and mcf use
//! values consistent with published CPU2006 LLC characterizations (both are
//! heavy LLC users; mcf is the suite's canonical thrasher).

use crate::spec::{LlcClass, Suite, WorkloadSpec, MB};
use mem_model::MissCurve;

/// 453.povray — ray tracer; tiny working set, LLC-friendly (Fig. 3:
/// RPTI 0.48, miss rate ~2 %).
pub fn povray() -> WorkloadSpec {
    WorkloadSpec {
        name: "povray".into(),
        suite: Suite::SpecCpu2006,
        expected_class: LlcClass::Friendly,
        rpti: 0.48,
        base_cpi: 0.85,
        miss_curve: MissCurve::new(0.015, 0.03, MB / 2),
        mlp: 2.0,
        footprint_bytes: 50 * MB,
        shared_frac: 0.05,
        threads: 1,
        instr_per_op: None,
    }
}

/// 450.soplex — LP solver; large sparse matrices, fits the 12 MB LLC when
/// uncontended but degrades steeply under interference. The paper's best
/// SPEC case for vProbe (32.5 % over Credit).
pub fn soplex() -> WorkloadSpec {
    WorkloadSpec {
        name: "soplex".into(),
        suite: Suite::SpecCpu2006,
        expected_class: LlcClass::Fitting,
        rpti: 19.0,
        base_cpi: 1.0,
        miss_curve: MissCurve::new(0.08, 0.85, 9 * MB),
        mlp: 2.5,
        footprint_bytes: 400 * MB,
        shared_frac: 0.10,
        threads: 1,
        instr_per_op: None,
    }
}

/// 462.libquantum — quantum simulation; streaming over a large array,
/// LLC-thrashing (Fig. 3: RPTI 22.41, miss rate >60 %).
pub fn libquantum() -> WorkloadSpec {
    WorkloadSpec {
        name: "libquantum".into(),
        suite: Suite::SpecCpu2006,
        expected_class: LlcClass::Thrashing,
        rpti: 22.41,
        base_cpi: 0.8,
        // Streaming over a large array: nearly every LLC reference misses.
        miss_curve: MissCurve::new(0.80, 0.98, 32 * MB),
        mlp: 6.0,
        footprint_bytes: 100 * MB,
        shared_frac: 0.05,
        threads: 1,
        instr_per_op: None,
    }
}

/// 429.mcf — vehicle scheduling; pointer chasing over ~1.7 GB,
/// the suite's canonical LLC thrasher.
pub fn mcf() -> WorkloadSpec {
    WorkloadSpec {
        name: "mcf".into(),
        suite: Suite::SpecCpu2006,
        expected_class: LlcClass::Thrashing,
        rpti: 26.0,
        base_cpi: 1.3,
        miss_curve: MissCurve::new(0.60, 0.95, 80 * MB),
        // Pointer chasing barely overlaps misses.
        mlp: 1.8,
        footprint_bytes: 1_700 * MB,
        shared_frac: 0.05,
        threads: 1,
        instr_per_op: None,
    }
}

/// 433.milc — lattice QCD; LLC-thrashing (Fig. 3: RPTI 21.68,
/// miss rate >60 %).
pub fn milc() -> WorkloadSpec {
    WorkloadSpec {
        name: "milc".into(),
        suite: Suite::SpecCpu2006,
        expected_class: LlcClass::Thrashing,
        rpti: 21.68,
        base_cpi: 1.0,
        miss_curve: MissCurve::new(0.70, 0.95, 64 * MB),
        mlp: 3.0,
        footprint_bytes: 700 * MB,
        shared_frac: 0.05,
        threads: 1,
        instr_per_op: None,
    }
}

/// The paper's Fig. 4 *mix* workload: one instance each of the four
/// memory-intensive programs.
pub fn mix() -> Vec<WorkloadSpec> {
    vec![soplex(), libquantum(), mcf(), milc()]
}

/// 470.lbm — lattice Boltzmann; a pure streaming kernel: very high MLP,
/// LLC-thrashing.
pub fn lbm() -> WorkloadSpec {
    WorkloadSpec {
        name: "lbm".into(),
        suite: Suite::SpecCpu2006,
        expected_class: LlcClass::Thrashing,
        rpti: 24.5,
        base_cpi: 0.9,
        miss_curve: MissCurve::new(0.85, 0.99, 48 * MB),
        mlp: 7.0,
        footprint_bytes: 420 * MB,
        shared_frac: 0.05,
        threads: 1,
        instr_per_op: None,
    }
}

/// 403.gcc — compiler; irregular but modest working set, LLC-fitting.
pub fn gcc() -> WorkloadSpec {
    WorkloadSpec {
        name: "gcc".into(),
        suite: Suite::SpecCpu2006,
        expected_class: LlcClass::Fitting,
        rpti: 9.5,
        base_cpi: 1.1,
        miss_curve: MissCurve::new(0.10, 0.70, 5 * MB),
        mlp: 2.0,
        footprint_bytes: 900 * MB,
        shared_frac: 0.05,
        threads: 1,
        instr_per_op: None,
    }
}

/// 471.omnetpp — discrete-event simulation; pointer-heavy heap walking,
/// LLC-fitting but latency-bound.
pub fn omnetpp() -> WorkloadSpec {
    WorkloadSpec {
        name: "omnetpp".into(),
        suite: Suite::SpecCpu2006,
        expected_class: LlcClass::Fitting,
        rpti: 17.0,
        base_cpi: 1.2,
        miss_curve: MissCurve::new(0.15, 0.80, 10 * MB),
        mlp: 1.6,
        footprint_bytes: 170 * MB,
        shared_frac: 0.05,
        threads: 1,
        instr_per_op: None,
    }
}

/// 445.gobmk — Go engine; compute-bound tree search, LLC-friendly.
pub fn gobmk() -> WorkloadSpec {
    WorkloadSpec {
        name: "gobmk".into(),
        suite: Suite::SpecCpu2006,
        expected_class: LlcClass::Friendly,
        rpti: 1.6,
        base_cpi: 1.0,
        miss_curve: MissCurve::new(0.02, 0.10, MB),
        mlp: 2.0,
        footprint_bytes: 30 * MB,
        shared_frac: 0.05,
        threads: 1,
        instr_per_op: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_rpti_values_match_paper() {
        assert!((povray().rpti - 0.48).abs() < 1e-9);
        assert!((milc().rpti - 21.68).abs() < 1e-9);
        assert!((libquantum().rpti - 22.41).abs() < 1e-9);
    }

    #[test]
    fn classes_recovered_by_paper_bounds() {
        for w in [povray(), soplex(), libquantum(), mcf(), milc()] {
            assert_eq!(
                w.classify(3.0, 20.0),
                w.expected_class,
                "misclassified {}",
                w.name
            );
        }
    }

    #[test]
    fn solo_miss_rates_respect_taxonomy() {
        let llc = 12 * MB;
        assert!(povray().solo_miss_rate(llc) < 0.05);
        assert!(soplex().solo_miss_rate(llc) < 0.15);
        assert!(libquantum().solo_miss_rate(llc) > 0.6);
        assert!(milc().solo_miss_rate(llc) > 0.6);
        assert!(mcf().solo_miss_rate(llc) > 0.6);
    }

    #[test]
    fn extended_profiles_classify_as_expected() {
        for w in [lbm(), gcc(), omnetpp(), gobmk()] {
            assert_eq!(w.classify(3.0, 20.0), w.expected_class, "{}", w.name);
        }
        assert!(lbm().solo_miss_rate(12 * MB) > 0.8, "lbm streams");
        assert!(gobmk().solo_miss_rate(12 * MB) < 0.05);
        assert!(omnetpp().mlp < gcc().mlp + 1.0, "pointer chaser overlaps little");
    }

    #[test]
    fn mix_has_four_distinct_programs() {
        let m = mix();
        assert_eq!(m.len(), 4);
        let names: std::collections::HashSet<_> = m.iter().map(|w| w.name.clone()).collect();
        assert_eq!(names.len(), 4);
    }
}
