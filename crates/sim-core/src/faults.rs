//! Deterministic, seed-driven fault injection.
//!
//! Real PMU pipelines lose samples, multiplex counters, and report stale
//! affinity data; real hypervisors occasionally fail or delay VCPU
//! migrations and suffer transient core stalls. [`FaultConfig`] describes
//! per-class fault rates and [`FaultInjector`] turns them into a
//! reproducible fault schedule: every fault class draws from its own
//! [`SimRng`](crate::SimRng) stream forked from the fault seed, so
//!
//! * the same `(fault seed, rates)` pair always yields the same schedule,
//! * enabling one fault class never perturbs the draws of another, and
//! * the machine's own RNG streams are untouched — a zero-rate injector
//!   makes no draws at all, keeping the fault-free path bit-identical to
//!   a build without fault injection.

use crate::error::SimError;
use crate::rng::SimRng;

/// Per-class fault rates and bounds. All rates are probabilities in
/// `[0, 1]`; a rate of zero disables the class entirely (no RNG draws).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault schedule, independent of the machine seed.
    pub seed: u64,
    /// Probability that a VCPU's PMU sample for a period is lost outright.
    pub sample_loss: f64,
    /// Std-dev of the multiplicative counter-multiplexing noise applied to
    /// surviving samples (0 disables).
    pub multiplex_noise_sd: f64,
    /// Probability that a sample's node-access histogram is rotated,
    /// corrupting the node-affinity reading (Eq. 1).
    pub affinity_corruption: f64,
    /// Probability that a requested VCPU migration fails outright.
    pub migration_fail: f64,
    /// Probability that a requested VCPU migration is delayed (drawn only
    /// if the migration did not fail).
    pub migration_delay: f64,
    /// Upper bound (inclusive) on the delay, in scheduling quanta.
    pub migration_delay_quanta_max: u32,
    /// Per-PCPU per-quantum probability of a transient stall.
    pub pcpu_stall: f64,
    /// Upper bound (inclusive) on a stall's length, in quanta.
    pub pcpu_stall_quanta_max: u32,
    /// Per-node per-period probability of memory throttling.
    pub node_throttle: f64,
    /// Runtime share granted to VCPUs on a throttled node (in `(0, 1]`).
    pub node_throttle_factor: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

impl FaultConfig {
    /// No faults: every rate zero. The injector built from this config
    /// never draws from its RNG streams.
    pub fn none() -> Self {
        FaultConfig {
            seed: 1,
            sample_loss: 0.0,
            multiplex_noise_sd: 0.0,
            affinity_corruption: 0.0,
            migration_fail: 0.0,
            migration_delay: 0.0,
            migration_delay_quanta_max: 500,
            pcpu_stall: 0.0,
            pcpu_stall_quanta_max: 50,
            node_throttle: 0.0,
            node_throttle_factor: 0.5,
        }
    }

    /// A single-knob profile used by the robustness sweep: `rate` scales
    /// every fault class. Sample loss, multiplexing noise, and migration
    /// faults track the rate directly; affinity corruption and node
    /// throttling are halved (they are period-scale events); PCPU stalls
    /// are scaled down to a per-quantum probability so a 5% fault rate
    /// does not stall every core permanently.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        FaultConfig {
            seed,
            sample_loss: rate,
            multiplex_noise_sd: rate,
            affinity_corruption: rate / 2.0,
            migration_fail: rate,
            migration_delay: rate,
            pcpu_stall: rate * 1e-3,
            node_throttle: rate / 2.0,
            ..FaultConfig::none()
        }
    }

    /// True when any fault class can fire.
    pub fn enabled(&self) -> bool {
        self.sample_loss > 0.0
            || self.multiplex_noise_sd > 0.0
            || self.affinity_corruption > 0.0
            || self.migration_fail > 0.0
            || self.migration_delay > 0.0
            || self.pcpu_stall > 0.0
            || self.node_throttle > 0.0
    }

    /// Validate rates and bounds, returning [`SimError::FaultConfig`] with
    /// the offending field named.
    pub fn validate(&self) -> Result<(), SimError> {
        let rate_fields = [
            ("sample_loss", self.sample_loss),
            ("affinity_corruption", self.affinity_corruption),
            ("migration_fail", self.migration_fail),
            ("migration_delay", self.migration_delay),
            ("pcpu_stall", self.pcpu_stall),
            ("node_throttle", self.node_throttle),
        ];
        for (name, rate) in rate_fields {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(SimError::FaultConfig(format!(
                    "{name} must be a probability in [0, 1], got {rate}"
                )));
            }
        }
        if !self.multiplex_noise_sd.is_finite() || self.multiplex_noise_sd < 0.0 {
            return Err(SimError::FaultConfig(format!(
                "multiplex_noise_sd must be finite and non-negative, got {}",
                self.multiplex_noise_sd
            )));
        }
        if !self.node_throttle_factor.is_finite()
            || self.node_throttle_factor <= 0.0
            || self.node_throttle_factor > 1.0
        {
            return Err(SimError::FaultConfig(format!(
                "node_throttle_factor must be in (0, 1], got {}",
                self.node_throttle_factor
            )));
        }
        if self.migration_delay > 0.0 && self.migration_delay_quanta_max == 0 {
            return Err(SimError::FaultConfig(
                "migration_delay_quanta_max must be >= 1 when delays are enabled".into(),
            ));
        }
        if self.pcpu_stall > 0.0 && self.pcpu_stall_quanta_max == 0 {
            return Err(SimError::FaultConfig(
                "pcpu_stall_quanta_max must be >= 1 when stalls are enabled".into(),
            ));
        }
        Ok(())
    }
}

/// Outcome of a migration fault draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationFault {
    /// The migration proceeds normally.
    None,
    /// The migration fails; the requester may retry.
    Failed,
    /// The migration lands after the given number of quanta.
    Delayed(u32),
}

/// Draws a deterministic fault schedule from a [`FaultConfig`].
///
/// Each fault class owns a forked RNG stream, and every decision method
/// skips its draw when the class is disabled, so adding faults to one
/// class never shifts another class's schedule.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    sample_rng: SimRng,
    noise_rng: SimRng,
    affinity_rng: SimRng,
    migration_rng: SimRng,
    stall_rng: SimRng,
    throttle_rng: SimRng,
}

impl FaultInjector {
    /// Build an injector, validating the config first.
    pub fn new(cfg: FaultConfig) -> Result<Self, SimError> {
        cfg.validate()?;
        let mut root = SimRng::seed_from(cfg.seed);
        Ok(FaultInjector {
            sample_rng: root.fork(1),
            noise_rng: root.fork(2),
            affinity_rng: root.fork(3),
            migration_rng: root.fork(4),
            stall_rng: root.fork(5),
            throttle_rng: root.fork(6),
            cfg,
        })
    }

    /// The validated configuration this injector draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True when any fault class can fire.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// Is this VCPU's sample for the current period lost?
    pub fn sample_lost(&mut self) -> bool {
        self.cfg.sample_loss > 0.0 && self.sample_rng.chance(self.cfg.sample_loss)
    }

    /// Multiplicative multiplexing-noise factor for a surviving sample, or
    /// `None` when noise is disabled.
    pub fn multiplex_factor(&mut self) -> Option<f64> {
        if self.cfg.multiplex_noise_sd > 0.0 {
            Some(
                self.noise_rng
                    .normal_clamped(1.0, self.cfg.multiplex_noise_sd, 0.05, 4.0),
            )
        } else {
            None
        }
    }

    /// Is this sample's node-affinity reading corrupted?
    pub fn affinity_corrupted(&mut self) -> bool {
        self.cfg.affinity_corruption > 0.0 && self.affinity_rng.chance(self.cfg.affinity_corruption)
    }

    /// Rotation offset for a corrupted node-access histogram of `num_nodes`
    /// entries: always a nonzero shift so corruption is observable.
    pub fn affinity_rotation(&mut self, num_nodes: usize) -> usize {
        if num_nodes <= 1 {
            0
        } else {
            self.affinity_rng.range(1..num_nodes)
        }
    }

    /// Draw the fate of a requested VCPU migration.
    pub fn migration_fault(&mut self) -> MigrationFault {
        if self.cfg.migration_fail > 0.0 && self.migration_rng.chance(self.cfg.migration_fail) {
            return MigrationFault::Failed;
        }
        if self.cfg.migration_delay > 0.0 && self.migration_rng.chance(self.cfg.migration_delay) {
            let quanta = self
                .migration_rng
                .range(1..self.cfg.migration_delay_quanta_max + 1);
            return MigrationFault::Delayed(quanta);
        }
        MigrationFault::None
    }

    /// Does this steal attempt fail? Shares the migration-fail rate: a
    /// steal is a migration on the work-stealing path.
    pub fn steal_failed(&mut self) -> bool {
        self.cfg.migration_fail > 0.0 && self.migration_rng.chance(self.cfg.migration_fail)
    }

    /// Does this PCPU stall this quantum, and for how many quanta?
    pub fn pcpu_stall(&mut self) -> Option<u32> {
        if self.cfg.pcpu_stall > 0.0 && self.stall_rng.chance(self.cfg.pcpu_stall) {
            Some(self.stall_rng.range(1..self.cfg.pcpu_stall_quanta_max + 1))
        } else {
            None
        }
    }

    /// Is this node throttled for the coming period?
    pub fn node_throttled(&mut self) -> bool {
        self.cfg.node_throttle > 0.0 && self.throttle_rng.chance(self.cfg.node_throttle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(inj: &mut FaultInjector, n: usize) -> Vec<u64> {
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(inj.sample_lost() as u64);
            out.push(inj.multiplex_factor().map_or(0, f64::to_bits));
            out.push(inj.affinity_corrupted() as u64);
            out.push(match inj.migration_fault() {
                MigrationFault::None => 0,
                MigrationFault::Failed => 1,
                MigrationFault::Delayed(q) => 2 + u64::from(q),
            });
            out.push(inj.steal_failed() as u64);
            out.push(inj.pcpu_stall().map_or(0, u64::from));
            out.push(inj.node_throttled() as u64);
        }
        out
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig::uniform(0.2, 99);
        let mut a = FaultInjector::new(cfg.clone()).unwrap();
        let mut b = FaultInjector::new(cfg).unwrap();
        assert_eq!(drain(&mut a, 200), drain(&mut b, 200));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(FaultConfig::uniform(0.2, 1)).unwrap();
        let mut b = FaultInjector::new(FaultConfig::uniform(0.2, 2)).unwrap();
        assert_ne!(drain(&mut a, 200), drain(&mut b, 200));
    }

    #[test]
    fn zero_rate_classes_never_fire_and_never_draw() {
        let mut inj = FaultInjector::new(FaultConfig::none()).unwrap();
        assert!(!inj.enabled());
        for _ in 0..100 {
            assert!(!inj.sample_lost());
            assert_eq!(inj.multiplex_factor(), None);
            assert!(!inj.affinity_corrupted());
            assert_eq!(inj.migration_fault(), MigrationFault::None);
            assert!(!inj.steal_failed());
            assert_eq!(inj.pcpu_stall(), None);
            assert!(!inj.node_throttled());
        }
    }

    #[test]
    fn classes_are_independent_streams() {
        // Enabling sample loss must not change the migration schedule.
        let base = FaultConfig {
            migration_fail: 0.3,
            ..FaultConfig::none()
        };
        let with_loss = FaultConfig {
            sample_loss: 0.5,
            ..base.clone()
        };
        let mut a = FaultInjector::new(base).unwrap();
        let mut b = FaultInjector::new(with_loss).unwrap();
        let fate_a: Vec<_> = (0..200).map(|_| a.migration_fault()).collect();
        let fate_b: Vec<_> = (0..200)
            .map(|_| {
                let _ = b.sample_lost();
                b.migration_fault()
            })
            .collect();
        assert_eq!(fate_a, fate_b);
    }

    #[test]
    fn uniform_profile_fires_all_classes() {
        let mut inj = FaultInjector::new(FaultConfig::uniform(0.5, 7)).unwrap();
        assert!(inj.enabled());
        let mut lost = 0;
        let mut failed = 0;
        let mut delayed = 0;
        let mut noisy = 0;
        for _ in 0..500 {
            lost += inj.sample_lost() as u32;
            noisy += inj.multiplex_factor().is_some() as u32;
            match inj.migration_fault() {
                MigrationFault::Failed => failed += 1,
                MigrationFault::Delayed(q) => {
                    assert!((1..=500).contains(&q));
                    delayed += 1;
                }
                MigrationFault::None => {}
            }
        }
        assert!(lost > 0, "sample loss never fired");
        assert!(failed > 0, "migration fail never fired");
        assert!(delayed > 0, "migration delay never fired");
        assert_eq!(noisy, 500, "noise applies to every surviving sample");
    }

    #[test]
    fn affinity_rotation_is_nonzero_shift() {
        let mut inj = FaultInjector::new(FaultConfig::uniform(0.5, 3)).unwrap();
        assert_eq!(inj.affinity_rotation(1), 0);
        for _ in 0..100 {
            let k = inj.affinity_rotation(4);
            assert!((1..4).contains(&k));
        }
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let bad = FaultConfig {
            sample_loss: 1.5,
            ..FaultConfig::none()
        };
        let err = bad.validate().unwrap_err();
        assert!(matches!(err, SimError::FaultConfig(_)));
        assert!(err.to_string().contains("sample_loss"));

        let bad = FaultConfig {
            multiplex_noise_sd: f64::NAN,
            ..FaultConfig::none()
        };
        assert!(bad.validate().is_err());

        let bad = FaultConfig {
            node_throttle_factor: 0.0,
            ..FaultConfig::none()
        };
        assert!(bad.validate().is_err());

        let bad = FaultConfig {
            migration_delay: 0.1,
            migration_delay_quanta_max: 0,
            ..FaultConfig::none()
        };
        assert!(bad.validate().is_err());

        let bad = FaultConfig {
            pcpu_stall: 0.1,
            pcpu_stall_quanta_max: 0,
            ..FaultConfig::none()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn uniform_profile_is_valid_across_rates() {
        for rate in [0.0, 0.01, 0.05, 0.1, 0.5, 1.0] {
            FaultConfig::uniform(rate, 1).validate().unwrap();
        }
        assert!(!FaultConfig::uniform(0.0, 1).enabled());
        assert!(FaultConfig::uniform(0.01, 1).enabled());
    }
}
