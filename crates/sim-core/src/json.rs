//! Minimal JSON value type, parser, and writer.
//!
//! The workspace exchanges small, trusted documents (scenario files, metric
//! dumps, bench records), so a compact recursive-descent parser over a value
//! enum is all that is needed. Object key order is preserved on parse and
//! emit, which keeps serialized output stable for byte-level comparisons.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize with two-space indentation, for human-facing artifacts.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Compact serialization (no whitespace). Integral numbers are written
/// without a fractional part so counters survive a round-trip textually.
/// `json.to_string()` comes for free via `ToString`.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else if n.is_finite() {
        // Shortest representation that round-trips through f64.
        let _ = write!(out, "{n}");
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: join, or replace when lone.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape '{hex}'"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

/// Convenience constructors for building documents.
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(
            Json::parse(r#""a\nbA""#).unwrap(),
            Json::Str("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2, {"b": "x"}], "c": {}, "d": []}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(v.get("c").unwrap().as_object().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_compact() {
        let doc = r#"{"name":"vm \"0\"","n":3,"f":0.25,"ok":true,"xs":[1,2,3],"none":null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.to_string(), doc);
        let again = Json::parse(&v.to_string()).unwrap();
        assert_eq!(again, v);
    }

    #[test]
    fn integers_written_without_fraction() {
        let v = Json::Obj(vec![
            ("big".into(), Json::from(123_456_789_012_u64)),
            ("half".into(), Json::from(0.5)),
        ]);
        assert_eq!(v.to_string(), r#"{"big":123456789012,"half":0.5}"#);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = Json::parse(r#"{"a":[1,{"b":2}],"c":"x"}"#).unwrap();
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("  \"a\""));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        let escaped = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(escaped.as_str(), Some("😀"));
    }

    #[test]
    fn key_order_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }
}
