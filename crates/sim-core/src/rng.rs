//! Deterministic, forkable randomness.
//!
//! Every experiment in the workspace is driven by a single `u64` seed.
//! Subsystems (workload generators, scheduler tie-breaking, request
//! arrivals) each get an independent stream via [`SimRng::fork`], so adding
//! randomness consumption to one subsystem never perturbs another — a
//! property the reproduction relies on when comparing five schedulers on
//! identical workloads.
//!
//! The generator is a self-contained ChaCha8 stream cipher core (64-bit
//! block counter, 64-bit stream id), buffered four blocks at a time. Seeding
//! expands the `u64` experiment seed into a 256-bit key with a PCG32 step,
//! and integer ranges are drawn with widening-multiply rejection, so the
//! byte stream and all derived draws are identical across platforms.

/// Number of `u32` words buffered per refill (four 16-word ChaCha blocks).
const BUF_WORDS: usize = 64;

/// ChaCha8 block generator state: 256-bit key, 64-bit counter, 64-bit
/// stream id (always zero here).
#[derive(Debug, Clone)]
struct ChaCha8 {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BUF_WORDS],
    /// Next unread word in `buf`; `BUF_WORDS` means "empty, refill".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8 {
    fn new(key: [u32; 8]) -> Self {
        ChaCha8 {
            key,
            counter: 0,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }

    /// Compute one 64-byte ChaCha8 block for the given counter value.
    fn block(&self, counter: u64, out: &mut [u32]) {
        const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut s: [u32; 16] = [
            SIGMA[0],
            SIGMA[1],
            SIGMA[2],
            SIGMA[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter as u32,
            (counter >> 32) as u32,
            0,
            0,
        ];
        let init = s;
        // ChaCha8: four double-rounds.
        for _ in 0..4 {
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for i in 0..16 {
            out[i] = s[i].wrapping_add(init[i]);
        }
    }

    fn refill(&mut self) {
        for blk in 0..4 {
            let counter = self.counter.wrapping_add(blk as u64);
            let (lo, hi) = (blk * 16, blk * 16 + 16);
            let mut words = [0u32; 16];
            self.block(counter, &mut words);
            self.buf[lo..hi].copy_from_slice(&words);
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = 0;
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Mirror rand_core's BlockRng: consume two adjacent words when
        // available, otherwise stitch across the refill boundary.
        if self.index < BUF_WORDS - 1 {
            let lo = self.buf[self.index];
            let hi = self.buf[self.index + 1];
            self.index += 2;
            (u64::from(hi) << 32) | u64::from(lo)
        } else if self.index >= BUF_WORDS {
            self.refill();
            let lo = self.buf[0];
            let hi = self.buf[1];
            self.index = 2;
            (u64::from(hi) << 32) | u64::from(lo)
        } else {
            let lo = self.buf[BUF_WORDS - 1];
            self.refill();
            let hi = self.buf[0];
            self.index = 1;
            (u64::from(hi) << 32) | u64::from(lo)
        }
    }
}

/// Expand a `u64` seed into a 256-bit ChaCha key, one 32-bit PCG step per
/// word (the same expansion rand_core uses for `seed_from_u64`).
fn expand_seed(mut state: u64) -> [u32; 8] {
    const MUL: u64 = 6_364_136_223_846_793_005;
    const INC: u64 = 11_634_580_027_462_260_723;
    let mut key = [0u32; 8];
    for w in key.iter_mut() {
        state = state.wrapping_mul(MUL).wrapping_add(INC);
        let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
        let rot = (state >> 59) as u32;
        *w = xorshifted.rotate_right(rot);
    }
    key
}

/// Types that [`SimRng::range`] can sample uniformly from a half-open range.
pub trait UniformSample: Copy + PartialOrd {
    fn sample_range(rng: &mut SimRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($ty:ty, $unsigned:ty, $large:ty, $next:ident) => {
        impl UniformSample for $ty {
            fn sample_range(rng: &mut SimRng, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in SimRng::range");
                let span = (high as $unsigned).wrapping_sub(low as $unsigned);
                // Widening-multiply rejection (Lemire): unbiased and uses
                // one draw in the common case.
                let zone = (span << span.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.chacha.$next() as $unsigned;
                    let m = (v as $large) * (span as $large);
                    let lo = m as $unsigned;
                    if lo <= zone {
                        let hi = (m >> <$unsigned>::BITS) as $unsigned;
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

impl_uniform_int!(u32, u32, u64, next_u32);
impl_uniform_int!(i32, u32, u64, next_u32);
impl_uniform_int!(u64, u64, u128, next_u64);
impl_uniform_int!(i64, u64, u128, next_u64);
impl_uniform_int!(usize, u64, u128, next_u64);

impl UniformSample for f64 {
    fn sample_range(rng: &mut SimRng, low: Self, high: Self) -> Self {
        assert!(low < high, "empty range in SimRng::range");
        let v = low + (high - low) * rng.unit();
        // Guard against rounding up to the excluded endpoint.
        if v < high {
            v
        } else {
            low.max(f64::from_bits(high.to_bits() - 1))
        }
    }
}

/// Seeded random source used throughout the simulation.
#[derive(Debug, Clone)]
pub struct SimRng {
    chacha: ChaCha8,
}

impl SimRng {
    /// Create a root stream from an experiment seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            chacha: ChaCha8::new(expand_seed(seed)),
        }
    }

    /// Derive an independent child stream.
    ///
    /// The child is keyed by `(parent seed material, label)` so that two
    /// forks with different labels are decorrelated, and forking is
    /// insensitive to how much the parent has already been consumed only in
    /// the sense that the caller controls ordering: fork all children before
    /// drawing from the parent when strict independence is required.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform sample from a half-open range, e.g. `rng.range(0..8)`.
    pub fn range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Uniform `f64` in `[0, 1)`: 53 random mantissa bits.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Pick a uniformly random element index for a slice of length `len`.
    /// Returns `None` for an empty slice.
    pub fn index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.range(0..len))
        }
    }

    /// Sample an exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        let u: f64 = self.unit().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Sample a Poisson-distributed count with the given rate `lambda`.
    ///
    /// Uses Knuth's inversion-by-multiplication for small rates and falls
    /// back to a clamped-normal approximation above `lambda = 30` so the
    /// draw cost stays bounded. `lambda <= 0` returns 0 without consuming
    /// any randomness, mirroring the zero-rate discipline of the fault
    /// injector (disabled fault classes must not perturb other streams).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let v = self.normal_clamped(lambda, lambda.sqrt(), 0.0, lambda * 8.0);
            return v.round() as u64;
        }
        let limit = (-lambda).exp();
        let mut product = self.unit();
        let mut count = 0u64;
        while product > limit {
            product *= self.unit();
            count += 1;
        }
        count
    }

    /// Sample a truncated normal value (resampled into `[min, max]`, with a
    /// clamp fallback after a bounded number of rejections).
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, min: f64, max: f64) -> f64 {
        assert!(min <= max, "invalid clamp bounds");
        for _ in 0..16 {
            // Box-Muller transform.
            let u1: f64 = self.unit().max(f64::MIN_POSITIVE);
            let u2: f64 = self.unit();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let v = mean + std_dev * z;
            if (min..=max).contains(&v) {
                return v;
            }
        }
        (mean).clamp(min, max)
    }

    /// Next raw 32-bit draw from the stream.
    pub fn next_u32(&mut self) -> u32 {
        self.chacha.next_u32()
    }

    /// Next raw 64-bit draw from the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.chacha.next_u64()
    }

    /// Fill a byte slice from the stream (little-endian word order).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be decorrelated, {same} collisions");
    }

    #[test]
    fn forks_are_independent_of_each_other() {
        let mut root = SimRng::seed_from(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_reproducible() {
        let mut r1 = SimRng::seed_from(9);
        let mut r2 = SimRng::seed_from(9);
        let mut a = r1.fork(5);
        let mut b = r2.fork(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(4);
        assert!((0..100).all(|_| rng.chance(1.0)));
        assert!((0..100).all(|_| !rng.chance(0.0)));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut rng = SimRng::seed_from(5);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn index_handles_empty() {
        let mut rng = SimRng::seed_from(6);
        assert_eq!(rng.index(0), None);
        let i = rng.index(5).unwrap();
        assert!(i < 5);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(8);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn poisson_zero_rate_consumes_no_randomness() {
        let mut a = SimRng::seed_from(13);
        let mut b = SimRng::seed_from(13);
        assert_eq!(a.poisson(0.0), 0);
        assert_eq!(a.poisson(-1.0), 0);
        // Stream position must be untouched.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = SimRng::seed_from(14);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.poisson(3.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_tail() {
        let mut rng = SimRng::seed_from(15);
        let n = 5_000;
        let sum: u64 = (0..n).map(|_| rng.poisson(100.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean={mean}");
    }

    #[test]
    fn poisson_is_deterministic() {
        let mut a = SimRng::seed_from(16);
        let mut b = SimRng::seed_from(16);
        for _ in 0..100 {
            assert_eq!(a.poisson(1.5), b.poisson(1.5));
        }
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut rng = SimRng::seed_from(10);
        for _ in 0..1000 {
            let v = rng.normal_clamped(1.0, 5.0, 0.0, 2.0);
            assert!((0.0..=2.0).contains(&v));
        }
    }

    #[test]
    fn range_draws_inclusive_exclusive() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..100 {
            let v: u32 = rng.range(3..7);
            assert!((3..7).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = SimRng::seed_from(12);
        let mut b = SimRng::seed_from(12);
        let mut buf = [0u8; 10];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        let w2 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..8], &w1);
        assert_eq!(&buf[8..], &w2[..2]);
    }

    /// The raw keystream for an all-zero key must match the published
    /// ChaCha8 test vector (first block, counter 0).
    #[test]
    fn chacha8_zero_key_test_vector() {
        let mut c = ChaCha8::new([0u32; 8]);
        let expected_first_bytes: [u8; 16] = [
            0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6, 0x7f, 0x5b, 0xb8, 0xe8, 0x1f, 0x09,
            0xa5, 0xa1,
        ];
        let mut got = [0u8; 16];
        for (i, chunk) in got.chunks_exact_mut(4).enumerate() {
            let _ = i;
            chunk.copy_from_slice(&c.next_u32().to_le_bytes());
        }
        assert_eq!(got, expected_first_bytes);
    }
}
