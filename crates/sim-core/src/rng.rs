//! Deterministic, forkable randomness.
//!
//! Every experiment in the workspace is driven by a single `u64` seed.
//! Subsystems (workload generators, scheduler tie-breaking, request
//! arrivals) each get an independent stream via [`SimRng::fork`], so adding
//! randomness consumption to one subsystem never perturbs another — a
//! property the reproduction relies on when comparing five schedulers on
//! identical workloads.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Seeded random source used throughout the simulation.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Create a root stream from an experiment seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream.
    ///
    /// The child is keyed by `(parent seed material, label)` so that two
    /// forks with different labels are decorrelated, and forking is
    /// insensitive to how much the parent has already been consumed only in
    /// the sense that the caller controls ordering: fork all children before
    /// drawing from the parent when strict independence is required.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let base = self.inner.next_u64();
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Uniform sample from a range, e.g. `rng.range(0..8)`.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Pick a uniformly random element index for a slice of length `len`.
    /// Returns `None` for an empty slice.
    pub fn index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.inner.gen_range(0..len))
        }
    }

    /// Sample an exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        let u: f64 = self.unit().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Sample a truncated normal value (resampled into `[min, max]`, with a
    /// clamp fallback after a bounded number of rejections).
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, min: f64, max: f64) -> f64 {
        assert!(min <= max, "invalid clamp bounds");
        for _ in 0..16 {
            // Box-Muller transform.
            let u1: f64 = self.unit().max(f64::MIN_POSITIVE);
            let u2: f64 = self.unit();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let v = mean + std_dev * z;
            if (min..=max).contains(&v) {
                return v;
            }
        }
        (mean).clamp(min, max)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be decorrelated, {same} collisions");
    }

    #[test]
    fn forks_are_independent_of_each_other() {
        let mut root = SimRng::seed_from(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_reproducible() {
        let mut r1 = SimRng::seed_from(9);
        let mut r2 = SimRng::seed_from(9);
        let mut a = r1.fork(5);
        let mut b = r2.fork(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(4);
        assert!((0..100).all(|_| rng.chance(1.0)));
        assert!((0..100).all(|_| !rng.chance(0.0)));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut rng = SimRng::seed_from(5);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn index_handles_empty() {
        let mut rng = SimRng::seed_from(6);
        assert_eq!(rng.index(0), None);
        let i = rng.index(5).unwrap();
        assert!(i < 5);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(8);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut rng = SimRng::seed_from(10);
        for _ in 0..1000 {
            let v = rng.normal_clamped(1.0, 5.0, 0.0, 2.0);
            assert!((0.0..=2.0).contains(&v));
        }
    }

    #[test]
    fn range_draws_inclusive_exclusive() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..100 {
            let v: u32 = rng.range(3..7);
            assert!((3..7).contains(&v));
        }
    }
}
