//! Deterministic parallel execution of independent simulation runs.
//!
//! Every `(scheduler, workload, seed)` simulation in the workspace is an
//! independent, deterministic computation: its outcome is a pure function
//! of its inputs. That makes the experiment sweeps embarrassingly
//! parallel — the only requirement is that result *order* stays identical
//! to the sequential path so rendered tables and CSV files are
//! byte-for-byte the same.
//!
//! [`parallel_map`] provides exactly that: items are claimed by worker
//! threads from a shared counter, but each result is written back into the
//! slot of its input index, so the output order never depends on thread
//! scheduling. With one job (or one item) it degenerates to a plain
//! sequential loop with no thread machinery at all.
//!
//! The process-wide job count is a global (set once at binary startup from
//! `--jobs`) so that deeply nested experiment code — `run_all_schedulers`,
//! every `fig*` module, the extensions — picks it up without threading a
//! parameter through every signature.
//!
//! Panics inside jobs are contained: every job runs under `catch_unwind`,
//! so one bad configuration cannot poison the worker pool or take down a
//! whole sweep silently. After all jobs finish, the panics are re-raised
//! as one panic that names each failed job by input index.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// 0 means "unset": use the machine's available parallelism.
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide worker count for [`parallel_map`]. `0` restores
/// the default (all available cores).
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, Ordering::SeqCst);
}

/// The worker count [`parallel_map`] will use: the last `set_jobs` value,
/// or the machine's available parallelism when unset.
pub fn configured_jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Map `f` over `items` using the configured number of worker threads,
/// returning results in input order (bit-identical to the sequential map).
///
/// A panicking job does not abort the rest of the sweep: every remaining
/// job still runs, then the panics are re-raised as a single panic whose
/// message lists each failed job's input index and payload.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with_jobs(configured_jobs(), items, f)
}

/// [`parallel_map`] with an explicit worker count (used by tests so they
/// don't mutate the process-wide setting).
pub fn parallel_map_with_jobs<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    let run_job = |i: usize, item: T| -> Option<R> {
        match catch_unwind(AssertUnwindSafe(|| f(item))) {
            Ok(r) => Some(r),
            Err(payload) => {
                panics
                    .lock()
                    .expect("panic list poisoned")
                    .push((i, panic_message(&*payload)));
                None
            }
        }
    };
    let results: Vec<Option<R>> = if jobs <= 1 || n <= 1 {
        items
            .into_iter()
            .enumerate()
            .map(|(i, item)| run_job(i, item))
            .collect()
    } else {
        // Per-slot mutexes rather than one shared queue: claiming is a
        // single atomic increment, and each slot is locked exactly twice
        // (take input, store output), so contention is negligible next to
        // a simulation run.
        let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let out: Vec<Mutex<Option<Option<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let run_job = &run_job;
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("work item claimed twice");
                    let result = run_job(i, item);
                    *out[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        out.into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker exited without storing a result")
            })
            .collect()
    };
    let mut failed = panics.into_inner().expect("panic list poisoned");
    if !failed.is_empty() {
        failed.sort_by_key(|&(i, _)| i);
        let detail: Vec<String> = failed
            .iter()
            .map(|(i, msg)| format!("job {i}: {msg}"))
            .collect();
        panic!(
            "parallel_map: {} job(s) panicked — {}",
            failed.len(),
            detail.join("; ")
        );
    }
    results
        .into_iter()
        .map(|r| r.expect("non-panicking job produced no result"))
        .collect()
}

/// Best-effort extraction of a panic payload's message (`&str` and
/// `String` payloads cover everything `panic!` produces).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fallible variant: runs every item (in parallel), then returns the first
/// error by input order, matching what the sequential `?`-chain would have
/// surfaced.
pub fn parallel_try_map<T, R, E, F>(items: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(T) -> Result<R, E> + Sync,
{
    parallel_map(items, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 7, 64] {
            let got = parallel_map_with_jobs(jobs, items.clone(), |x| x * 3 + 1);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map_with_jobs(8, empty, |x| x).is_empty());
        assert_eq!(parallel_map_with_jobs(8, vec![9], |x| x + 1), vec![10]);
    }

    #[test]
    fn try_map_returns_first_error_by_index() {
        let r: Result<Vec<u32>, String> =
            parallel_try_map((0..16).collect(), |x| if x % 5 == 3 { Err(format!("e{x}")) } else { Ok(x) });
        assert_eq!(r.unwrap_err(), "e3");
        let ok: Result<Vec<u32>, String> = parallel_try_map((0..4).collect(), Ok);
        assert_eq!(ok.unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn configured_jobs_defaults_to_cores() {
        // Whatever the machine, the default is at least one.
        assert!(configured_jobs() >= 1);
    }

    #[test]
    fn panicking_job_surfaces_its_input_index() {
        for jobs in [1, 4] {
            let err = std::panic::catch_unwind(|| {
                parallel_map_with_jobs(jobs, (0u32..8).collect(), |x| {
                    if x == 3 {
                        panic!("boom on {x}");
                    }
                    x
                })
            })
            .expect_err("a panicking job must fail the map");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .expect("aggregate panic carries a String message");
            assert!(msg.contains("1 job(s) panicked"), "jobs={jobs}: {msg}");
            assert!(msg.contains("job 3: boom on 3"), "jobs={jobs}: {msg}");
        }
    }

    #[test]
    fn all_panics_reported_in_index_order() {
        let err = std::panic::catch_unwind(|| {
            parallel_map_with_jobs(4, (0u32..8).collect(), |x| {
                if x % 3 == 1 {
                    panic!("bad {x}");
                }
                x
            })
        })
        .expect_err("panics expected");
        let msg = err.downcast_ref::<String>().cloned().unwrap();
        assert!(msg.contains("3 job(s) panicked"), "{msg}");
        let (i1, i4, i7) = (
            msg.find("job 1:").unwrap(),
            msg.find("job 4:").unwrap(),
            msg.find("job 7:").unwrap(),
        );
        assert!(i1 < i4 && i4 < i7, "{msg}");
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Make late indices fast and early ones slow so the completion
        // order inverts the input order.
        let got = parallel_map_with_jobs(4, (0u64..32).collect(), |x| {
            std::thread::sleep(std::time::Duration::from_micros((32 - x) * 50));
            x
        });
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }
}
