//! Discrete simulation time.
//!
//! All simulation time is kept in integer **microseconds**. The vProbe
//! experiments span sampling periods from 0.1 s to 10 s and scheduler ticks
//! of 10 ms over runs of a few simulated minutes, so `u64` microseconds give
//! both exactness (no drift when stepping 1 ms quanta) and headroom
//! (~584 000 years).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Build from a fractional second count, rounding to the nearest
    /// microsecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    pub const fn as_micros(self) -> u64 {
        self.0
    }

    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    /// Integer ratio of two durations (how many `rhs` fit in `self`).
    type Output = u64;
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// An absolute instant of simulated time (microseconds since boot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    pub const fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`. Panics if `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(earlier.0).expect("time went backwards"))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_micros())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_micros();
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

/// The simulation clock: a monotone counter advanced in fixed quanta.
///
/// The hypervisor simulation advances the clock by one quantum at a time and
/// uses [`Clock::ticks_crossed`] to detect when periodic events (credit
/// ticks, accounting, PMU sampling periods) fall inside the step.
#[derive(Debug, Clone)]
pub struct Clock {
    now: SimTime,
    quantum: SimDuration,
}

impl Clock {
    /// Create a clock starting at time zero with the given step quantum.
    /// Panics if the quantum is zero.
    pub fn new(quantum: SimDuration) -> Self {
        assert!(!quantum.is_zero(), "clock quantum must be nonzero");
        Clock {
            now: SimTime::ZERO,
            quantum,
        }
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn quantum(&self) -> SimDuration {
        self.quantum
    }

    /// Advance by one quantum and return the new time.
    pub fn step(&mut self) -> SimTime {
        self.now += self.quantum;
        self.now
    }

    /// Advance by `n` quanta at once and return the new time. Equivalent to
    /// `n` calls to [`Clock::step`]; used by macro-stepping callers that
    /// batch event-free quanta.
    pub fn step_n(&mut self, n: u64) -> SimTime {
        self.now += self.quantum * n;
        self.now
    }

    /// Number of multiples of `period` that were crossed by the most recent
    /// step, i.e. lie in the half-open interval `(now - quantum, now]`.
    ///
    /// With quantum ≤ period this is 0 or 1; larger quanta may cross several
    /// boundaries and the caller is expected to fire the event that many
    /// times.
    pub fn ticks_crossed(&self, period: SimDuration) -> u64 {
        assert!(!period.is_zero(), "period must be nonzero");
        let end = self.now.as_micros();
        let start = end.saturating_sub(self.quantum.as_micros());
        end / period.as_micros() - start / period.as_micros()
    }

    /// True if the current time is an exact multiple of `period`.
    pub fn on_boundary(&self, period: SimDuration) -> bool {
        !period.is_zero() && self.now.as_micros().is_multiple_of(period.as_micros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions_round_trip() {
        assert_eq!(SimDuration::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimDuration::from_millis(10).as_micros(), 10_000);
        assert_eq!(SimDuration::from_micros(7).as_micros(), 7);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        let d = SimDuration::from_secs_f64(0.1);
        assert_eq!(d.as_micros(), 100_000);
        assert!((d.as_secs_f64() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_secs_f64_rejects_negative() {
        SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(30);
        let b = SimDuration::from_millis(10);
        assert_eq!(a + b, SimDuration::from_millis(40));
        assert_eq!(a - b, SimDuration::from_millis(20));
        assert_eq!(a * 3, SimDuration::from_millis(90));
        assert_eq!(a / 3, SimDuration::from_millis(10));
        assert_eq!(a / b, 3);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    #[should_panic(expected = "duration underflow")]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_millis(1) - SimDuration::from_millis(2);
    }

    #[test]
    fn time_advances_and_measures() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(5);
        assert_eq!(t1.since(t0), SimDuration::from_millis(5));
        assert_eq!(t1.as_micros(), 5_000);
    }

    #[test]
    fn clock_steps_by_quantum() {
        let mut clock = Clock::new(SimDuration::from_millis(1));
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.step();
        clock.step();
        assert_eq!(clock.now().as_micros(), 2_000);
    }

    #[test]
    fn ticks_crossed_counts_period_boundaries() {
        let mut clock = Clock::new(SimDuration::from_millis(1));
        let tick = SimDuration::from_millis(10);
        let mut fired = 0;
        for _ in 0..100 {
            clock.step();
            fired += clock.ticks_crossed(tick);
        }
        // 100 ms of 1 ms steps crosses the 10 ms boundary exactly 10 times.
        assert_eq!(fired, 10);
    }

    #[test]
    fn ticks_crossed_with_coarse_quantum() {
        // A 25 ms quantum crosses two or three 10 ms boundaries per step.
        let mut clock = Clock::new(SimDuration::from_millis(25));
        let tick = SimDuration::from_millis(10);
        let mut fired = 0;
        for _ in 0..4 {
            clock.step();
            fired += clock.ticks_crossed(tick);
        }
        // 100 ms total => boundaries at 10..=100 => 10 firings.
        assert_eq!(fired, 10);
    }

    #[test]
    fn on_boundary_detects_multiples() {
        let mut clock = Clock::new(SimDuration::from_millis(5));
        clock.step(); // 5 ms
        assert!(clock.on_boundary(SimDuration::from_millis(5)));
        assert!(!clock.on_boundary(SimDuration::from_millis(10)));
        clock.step(); // 10 ms
        assert!(clock.on_boundary(SimDuration::from_millis(10)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_micros(42).to_string(), "42us");
    }
}
