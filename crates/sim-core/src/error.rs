//! Error type shared across the workspace.

use std::fmt;

/// Errors raised while constructing or running a simulation.
///
/// Construction-time validation (topology, VM configuration, workload
/// parameters) returns these rather than panicking, so library callers get
/// actionable diagnostics; internal invariant violations still use
/// `debug_assert!`/`panic!` as they indicate bugs, not bad input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A topology description was internally inconsistent.
    InvalidTopology(String),
    /// A VM/VCPU/workload configuration was rejected.
    InvalidConfig(String),
    /// A named entity (workload profile, scheduler, experiment) is unknown.
    UnknownName(String),
    /// Requested resources exceed what the machine provides.
    ResourceExhausted(String),
    /// A fault-injection configuration was rejected.
    FaultConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::UnknownName(name) => write!(f, "unknown name: {name}"),
            SimError::ResourceExhausted(msg) => write!(f, "resource exhausted: {msg}"),
            SimError::FaultConfig(msg) => write!(f, "invalid fault configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = SimError::InvalidTopology("zero nodes".into());
        assert_eq!(e.to_string(), "invalid topology: zero nodes");
        let e = SimError::UnknownName("soplexx".into());
        assert!(e.to_string().contains("soplexx"));
        let e = SimError::FaultConfig("rate out of range".into());
        assert_eq!(
            e.to_string(),
            "invalid fault configuration: rate out of range"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: E) {}
        assert_err(SimError::InvalidConfig("x".into()));
    }
}
