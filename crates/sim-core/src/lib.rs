//! Simulation substrate shared by every other crate in the vProbe workspace.
//!
//! This crate deliberately knows nothing about NUMA, Xen, or scheduling. It
//! provides the three things a deterministic discrete-time simulation needs:
//!
//! * a [`clock`] with explicit microsecond resolution ([`SimTime`],
//!   [`SimDuration`]) so that sampling periods, credit ticks, and quanta
//!   never suffer floating-point drift;
//! * a seedable, forkable random-number source ([`rng::SimRng`]) so that a
//!   whole experiment is reproducible from a single `u64` seed while every
//!   subsystem still gets an independent stream;
//! * lightweight statistics ([`stats`]) and time-series ([`series`])
//!   containers used to collect experiment results.

pub mod clock;
pub mod error;
pub mod faults;
pub mod json;
pub mod parallel;
pub mod rng;
pub mod series;
pub mod stats;

pub use clock::{Clock, SimDuration, SimTime};
pub use error::SimError;
pub use faults::{FaultConfig, FaultInjector, MigrationFault};
pub use json::Json;
pub use rng::SimRng;
pub use series::TimeSeries;
pub use stats::{Counter, Histogram, RunningStats};
