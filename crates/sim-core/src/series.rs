//! Time-stamped measurement series.

use crate::clock::SimTime;

/// An append-only series of `(time, value)` points, used to record per-period
/// measurements (remote-access ratio over time, throughput curves, …).
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Append a point. Panics (debug) if time regresses: series are expected
    /// to be recorded in simulation order.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(last, _)| last <= t),
            "time series must be appended in order"
        );
        self.points.push((t, v));
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, v)| v)
    }

    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.values().sum::<f64>() / self.points.len() as f64
    }

    /// Mean over the suffix of points with `t >= from`, used to skip warmup.
    pub fn mean_after(&self, from: SimTime) -> f64 {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn push_and_read() {
        let mut s = TimeSeries::new();
        assert!(s.is_empty());
        s.push(t(1), 1.0);
        s.push(t(2), 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some((t(2), 3.0)));
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn mean_after_skips_warmup() {
        let mut s = TimeSeries::new();
        s.push(t(0), 100.0);
        s.push(t(10), 2.0);
        s.push(t(20), 4.0);
        assert_eq!(s.mean_after(t(10)), 3.0);
        assert_eq!(s.mean_after(t(100)), 0.0);
    }

    #[test]
    fn empty_series_mean_is_zero() {
        assert_eq!(TimeSeries::new().mean(), 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "appended in order")]
    fn out_of_order_push_panics_in_debug() {
        let mut s = TimeSeries::new();
        s.push(t(5), 1.0);
        s.push(t(1), 2.0);
    }
}
