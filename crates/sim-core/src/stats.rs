//! Statistics containers for experiment measurement.


/// A monotonically increasing event counter with window support.
///
/// The PMU crate samples counters per period: [`Counter::window`] returns
/// the delta since the last [`Counter::reset_window`], while
/// [`Counter::total`] never resets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    total: u64,
    window_base: u64,
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    pub fn add(&mut self, n: u64) {
        self.total += n;
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events since the last window reset.
    pub fn window(&self) -> u64 {
        self.total - self.window_base
    }

    /// Close the current window; subsequent [`Counter::window`] calls count
    /// from this point.
    pub fn reset_window(&mut self) {
        self.window_base = self.total;
    }
}

/// Streaming mean/variance/min/max (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample: {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-bucket histogram over `[lo, hi)` with uniform bucket width plus
/// overflow/underflow buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.buckets.len() as f64) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Inclusive lower bound of the bucketed range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Exclusive upper bound of the bucketed range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Zero all counts, keeping the bucket layout.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.underflow = 0;
        self.overflow = 0;
        self.count = 0;
    }

    /// Approximate quantile (0 ≤ q ≤ 1) using bucket midpoints. Returns
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        Some(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_windows() {
        let mut c = Counter::new();
        c.add(10);
        c.add(5);
        assert_eq!(c.total(), 15);
        assert_eq!(c.window(), 15);
        c.reset_window();
        assert_eq!(c.window(), 0);
        c.add(3);
        assert_eq!(c.window(), 3);
        assert_eq!(c.total(), 18);
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn running_stats_basic_moments() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        data.iter().for_each(|&x| whole.push(x));

        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        data[..37].iter().for_each(|&x| a.push(x));
        data[37..].iter().for_each(|&x| b.push(x));
        a.merge(&b);

        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.mean();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before);
        let mut empty = RunningStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(0.0);
        h.record(5.5);
        h.record(9.99);
        h.record(10.0);
        h.record(100.0);
        assert_eq!(h.count(), 6);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[5], 1);
        assert_eq!(h.bucket_counts()[9], 1);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 49.5).abs() <= 1.0, "median={median}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.5);
        assert!(h.quantile(1.0).unwrap() >= 99.0);
        assert_eq!(Histogram::new(0.0, 1.0, 4).quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "histogram range")]
    fn histogram_rejects_bad_range() {
        Histogram::new(5.0, 5.0, 4);
    }
}
