//! The deterministic metric registry.
//!
//! Metrics are registered up front (registration order is the export
//! order), recorded through copyable ids, and snapshotted into
//! [`TimeSeries`] at sampling-period boundaries. Recording is gated on one
//! `enabled` flag so a disabled registry costs a predictable branch per
//! call and exports nothing — [`Registry::export`] returns `None`, letting
//! callers omit the block entirely and keep disabled output byte-identical
//! to builds without telemetry.
//!
//! *Diagnostic* gauges are the one exception to the gate: they are always
//! writable and readable (the machine uses one for its macro-step batch
//! counter) but are excluded from the export, so they never perturb
//! golden-file comparisons between runs that batch differently.

use sim_core::{Counter, Histogram, Json, SimTime, TimeSeries};

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Debug, Clone)]
struct CounterState {
    name: &'static str,
    counter: Counter,
    /// Per-period deltas (one point per snapshot).
    series: TimeSeries,
}

#[derive(Debug, Clone)]
struct GaugeState {
    name: &'static str,
    value: f64,
    /// Excluded from export and snapshots; always writable.
    diagnostic: bool,
    series: TimeSeries,
}

#[derive(Debug, Clone)]
struct HistogramState {
    name: &'static str,
    lo: f64,
    hi: f64,
    num_buckets: usize,
    hist: Histogram,
    /// Per-period sample-count deltas.
    series: TimeSeries,
    window_base: u64,
}

/// A fixed set of named metrics with deterministic ids and export order.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    enabled: bool,
    counters: Vec<CounterState>,
    gauges: Vec<GaugeState>,
    histograms: Vec<HistogramState>,
}

impl Registry {
    /// A registry that records nothing until [`Registry::set_enabled`].
    pub fn new() -> Self {
        Registry::default()
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turn recording (and export) on or off. Registrations and diagnostic
    /// gauge values survive either way.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Register a counter. Names must be unique; ids are assigned in
    /// registration order, which is also the export order.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        debug_assert!(
            self.counters.iter().all(|c| c.name != name),
            "duplicate counter '{name}'"
        );
        self.counters.push(CounterState {
            name,
            counter: Counter::new(),
            series: TimeSeries::new(),
        });
        CounterId(self.counters.len() - 1)
    }

    /// Register a gauge.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        self.register_gauge(name, false)
    }

    /// Register a diagnostic gauge: always writable regardless of the
    /// enabled flag, never exported.
    pub fn diagnostic_gauge(&mut self, name: &'static str) -> GaugeId {
        self.register_gauge(name, true)
    }

    fn register_gauge(&mut self, name: &'static str, diagnostic: bool) -> GaugeId {
        debug_assert!(
            self.gauges.iter().all(|g| g.name != name),
            "duplicate gauge '{name}'"
        );
        self.gauges.push(GaugeState {
            name,
            value: 0.0,
            diagnostic,
            series: TimeSeries::new(),
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Register a fixed-bucket histogram over `[lo, hi)`.
    pub fn histogram(&mut self, name: &'static str, lo: f64, hi: f64, buckets: usize) -> HistogramId {
        debug_assert!(
            self.histograms.iter().all(|h| h.name != name),
            "duplicate histogram '{name}'"
        );
        self.histograms.push(HistogramState {
            name,
            lo,
            hi,
            num_buckets: buckets,
            hist: Histogram::new(lo, hi, buckets),
            series: TimeSeries::new(),
            window_base: 0,
        });
        HistogramId(self.histograms.len() - 1)
    }

    /// Add to a counter (no-op when disabled).
    #[inline]
    pub fn inc(&mut self, id: CounterId, n: u64) {
        if self.enabled {
            self.counters[id.0].counter.add(n);
        }
    }

    /// Set a gauge. Diagnostic gauges accept the write even when disabled.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: f64) {
        let g = &mut self.gauges[id.0];
        if self.enabled || g.diagnostic {
            g.value = v;
        }
    }

    /// Add to a gauge. Diagnostic gauges accept the write even when
    /// disabled.
    #[inline]
    pub fn add_gauge(&mut self, id: GaugeId, delta: f64) {
        let g = &mut self.gauges[id.0];
        if self.enabled || g.diagnostic {
            g.value += delta;
        }
    }

    /// Record one histogram sample (no-op when disabled).
    #[inline]
    pub fn observe(&mut self, id: HistogramId, x: f64) {
        if self.enabled {
            self.histograms[id.0].hist.record(x);
        }
    }

    pub fn counter_total(&self, id: CounterId) -> u64 {
        self.counters[id.0].counter.total()
    }

    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].value
    }

    pub fn histogram_state(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].hist
    }

    /// Per-period delta series of a counter, by name.
    pub fn counter_series(&self, name: &str) -> Option<&TimeSeries> {
        self.counters.iter().find(|c| c.name == name).map(|c| &c.series)
    }

    /// Whole-run total of a counter, by name.
    pub fn counter_total_by_name(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.counter.total())
    }

    /// Final histogram of a metric, by name.
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|h| h.name == name).map(|h| &h.hist)
    }

    /// Close the current sampling period: push each counter's window delta,
    /// each non-diagnostic gauge's value, and each histogram's sample-count
    /// delta as one `(now, value)` point. No-op when disabled, so disabled
    /// runs allocate nothing.
    pub fn snapshot(&mut self, now: SimTime) {
        if !self.enabled {
            return;
        }
        for c in &mut self.counters {
            c.series.push(now, c.counter.window() as f64);
            c.counter.reset_window();
        }
        for g in &mut self.gauges {
            if !g.diagnostic {
                g.series.push(now, g.value);
            }
        }
        for h in &mut self.histograms {
            h.series.push(now, (h.hist.count() - h.window_base) as f64);
            h.window_base = h.hist.count();
        }
    }

    /// Zero all measurement state (counters, histograms, every series) but
    /// keep registrations, the enabled flag, and diagnostic gauge values —
    /// the telemetry analogue of `Machine::reset_metrics`.
    pub fn reset(&mut self) {
        for c in &mut self.counters {
            c.counter = Counter::new();
            c.series = TimeSeries::new();
        }
        for g in &mut self.gauges {
            if !g.diagnostic {
                g.value = 0.0;
            }
            g.series = TimeSeries::new();
        }
        for h in &mut self.histograms {
            h.hist = Histogram::new(h.lo, h.hi, h.num_buckets);
            h.series = TimeSeries::new();
            h.window_base = 0;
        }
    }

    /// Serialize every non-diagnostic metric as one JSON block, or `None`
    /// when disabled (callers omit the block so disabled output stays
    /// byte-identical to pre-telemetry builds). Key order is registration
    /// order, so the export is byte-stable across runs.
    pub fn export(&self) -> Option<Json> {
        if !self.enabled {
            return None;
        }
        let series_json = |s: &TimeSeries| {
            Json::Arr(
                s.points()
                    .iter()
                    .map(|&(t, v)| Json::Arr(vec![Json::from(t.as_micros()), Json::Num(v)]))
                    .collect(),
            )
        };
        let counters = Json::Arr(
            self.counters
                .iter()
                .map(|c| {
                    Json::Obj(vec![
                        ("name".into(), Json::from(c.name)),
                        ("total".into(), Json::from(c.counter.total())),
                        ("series".into(), series_json(&c.series)),
                    ])
                })
                .collect(),
        );
        let gauges = Json::Arr(
            self.gauges
                .iter()
                .filter(|g| !g.diagnostic)
                .map(|g| {
                    Json::Obj(vec![
                        ("name".into(), Json::from(g.name)),
                        ("value".into(), Json::Num(g.value)),
                        ("series".into(), series_json(&g.series)),
                    ])
                })
                .collect(),
        );
        let histograms = Json::Arr(
            self.histograms
                .iter()
                .map(|h| {
                    Json::Obj(vec![
                        ("name".into(), Json::from(h.name)),
                        ("lo".into(), Json::Num(h.lo)),
                        ("hi".into(), Json::Num(h.hi)),
                        (
                            "buckets".into(),
                            Json::from(h.hist.bucket_counts().to_vec()),
                        ),
                        ("underflow".into(), Json::from(h.hist.underflow())),
                        ("overflow".into(), Json::from(h.hist.overflow())),
                        ("count".into(), Json::from(h.hist.count())),
                        ("series".into(), series_json(&h.series)),
                    ])
                })
                .collect(),
        );
        Some(Json::Obj(vec![
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn disabled_registry_records_nothing_and_exports_none() {
        let mut r = Registry::new();
        let c = r.counter("steals");
        let g = r.gauge("depth");
        let h = r.histogram("lat", 0.0, 10.0, 5);
        r.inc(c, 3);
        r.set_gauge(g, 7.0);
        r.observe(h, 2.0);
        r.snapshot(t(1000));
        assert_eq!(r.counter_total(c), 0);
        assert_eq!(r.gauge_value(g), 0.0);
        assert_eq!(r.histogram_state(h).count(), 0);
        assert!(r.export().is_none());
    }

    #[test]
    fn diagnostic_gauge_is_writable_when_disabled_but_not_exported() {
        let mut r = Registry::new();
        let d = r.diagnostic_gauge("macro_batches");
        r.add_gauge(d, 1.0);
        r.add_gauge(d, 1.0);
        assert_eq!(r.gauge_value(d), 2.0);
        r.set_enabled(true);
        let json = r.export().unwrap().to_string();
        assert!(!json.contains("macro_batches"), "{json}");
        // Reset keeps the diagnostic value (it tracks mechanism, not
        // measurement).
        r.reset();
        assert_eq!(r.gauge_value(d), 2.0);
    }

    #[test]
    fn snapshot_records_window_deltas() {
        let mut r = Registry::new();
        r.set_enabled(true);
        let c = r.counter("steals");
        let g = r.gauge("depth");
        let h = r.histogram("lat", 0.0, 10.0, 5);
        r.inc(c, 3);
        r.set_gauge(g, 7.0);
        r.observe(h, 2.0);
        r.observe(h, 4.0);
        r.snapshot(t(1000));
        r.inc(c, 1);
        r.snapshot(t(2000));
        let series = r.counter_series("steals").unwrap();
        assert_eq!(series.points(), &[(t(1000), 3.0), (t(2000), 1.0)]);
        assert_eq!(r.counter_total(c), 4);
        let json = r.export().unwrap().to_string();
        assert!(json.contains("\"steals\""));
        assert!(json.contains("\"depth\""));
        assert!(json.contains("\"lat\""));
        // Histogram per-period sample counts: 2 then 0.
        assert!(json.contains("[1000000,2],[2000000,0]"), "{json}");
    }

    #[test]
    fn export_is_byte_stable_and_parses() {
        let build = || {
            let mut r = Registry::new();
            r.set_enabled(true);
            let c = r.counter("a");
            let h = r.histogram("b", 0.0, 4.0, 4);
            r.inc(c, 2);
            r.observe(h, 1.5);
            r.snapshot(t(500));
            r.export().unwrap().to_string()
        };
        let one = build();
        assert_eq!(one, build());
        Json::parse(&one).expect("export must be valid JSON");
    }

    #[test]
    fn reset_clears_measurement_but_keeps_registrations() {
        let mut r = Registry::new();
        r.set_enabled(true);
        let c = r.counter("a");
        r.inc(c, 5);
        r.snapshot(t(100));
        r.reset();
        assert_eq!(r.counter_total(c), 0);
        assert!(r.counter_series("a").unwrap().is_empty());
        r.inc(c, 1);
        assert_eq!(r.counter_total(c), 1);
    }
}
