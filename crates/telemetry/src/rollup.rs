//! Fleet-level metric rollups: aggregate several [`crate::Registry`]
//! export documents (one per host) into one fleet document.
//!
//! Operating on the export JSON rather than live registries keeps the
//! rollup usable wherever exports are found — end-of-run reports, files on
//! disk, or hosts whose registries have since been rebuilt. Aggregation is
//! by metric name: counter totals and gauge values sum, histograms sum
//! bucket-wise (shapes must match — same `lo`/`hi`/bucket count — or the
//! rollup errors: same-named histograms with different layouts indicate
//! divergent registrations, and bucket-wise addition across them would
//! silently produce garbage). Per-period series are intentionally dropped:
//! hosts snapshot on their own clocks, so pointwise sums are not
//! meaningful across them; the burn-rate series the fleet layer builds is
//! the cross-host time axis.
//!
//! Output key order follows first appearance across the input documents,
//! so a fixed host order yields byte-identical rollups.

use sim_core::Json;

fn field<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
    obj.get(key)
}

fn name_of(entry: &Json) -> Option<&str> {
    field(entry, "name").and_then(|n| n.as_str())
}

fn num(entry: &Json, key: &str) -> f64 {
    field(entry, key).and_then(|n| n.as_f64()).unwrap_or(0.0)
}

/// Sum `key`-valued scalars from `section` entries across all docs,
/// keyed by metric name in first-appearance order. Returns
/// `(name, sum, docs_seen)` triples.
fn sum_scalars(docs: &[Json], section: &str, key: &str) -> Vec<(String, f64, u64)> {
    let mut out: Vec<(String, f64, u64)> = Vec::new();
    for doc in docs {
        let Some(Json::Arr(entries)) = field(doc, section) else {
            continue;
        };
        for e in entries {
            let Some(name) = name_of(e) else { continue };
            let v = num(e, key);
            match out.iter_mut().find(|(n, _, _)| n == name) {
                Some(slot) => {
                    slot.1 += v;
                    slot.2 += 1;
                }
                None => out.push((name.to_string(), v, 1)),
            }
        }
    }
    out
}

/// Aggregate per-host registry exports, panicking on a histogram shape
/// mismatch. Prefer [`try_rollup`] where an error can be propagated; a
/// mismatch means two hosts registered the same histogram name with
/// different layouts, which is a programming error, never data.
pub fn rollup(docs: &[Json]) -> Json {
    match try_rollup(docs) {
        Ok(doc) => doc,
        Err(e) => panic!("telemetry rollup failed: {e}"),
    }
}

/// Aggregate per-host registry exports (the JSON produced by
/// [`crate::Registry::export`]) into one fleet-level document:
///
/// ```json
/// {"hosts":N,
///  "counters":[{"name":..,"total":..},..],
///  "gauges":[{"name":..,"value":..},..],
///  "histograms":[{"name":..,"lo":..,"hi":..,"buckets":[..],
///                 "underflow":..,"overflow":..,"count":..},..]}
/// ```
///
/// Errors when same-named histograms disagree on `lo`/`hi`/bucket count
/// across documents (see the module docs).
pub fn try_rollup(docs: &[Json]) -> Result<Json, String> {
    let counters = sum_scalars(docs, "counters", "total")
        .into_iter()
        .map(|(name, total, _)| {
            Json::Obj(vec![
                ("name".into(), Json::from(name.as_str())),
                ("total".into(), Json::Num(total)),
            ])
        })
        .collect();
    let gauges = sum_scalars(docs, "gauges", "value")
        .into_iter()
        .map(|(name, value, _)| {
            Json::Obj(vec![
                ("name".into(), Json::from(name.as_str())),
                ("value".into(), Json::Num(value)),
            ])
        })
        .collect();

    // Histograms: bucket-wise sums, keyed by name; mismatched shapes are
    // an error rather than a silent mis-add.
    struct HistAcc {
        name: String,
        lo: f64,
        hi: f64,
        buckets: Vec<f64>,
        under: f64,
        over: f64,
        count: f64,
    }
    let mut hists: Vec<HistAcc> = Vec::new();
    for doc in docs {
        let Some(Json::Arr(entries)) = field(doc, "histograms") else {
            continue;
        };
        for e in entries {
            let Some(name) = name_of(e) else { continue };
            let (lo, hi) = (num(e, "lo"), num(e, "hi"));
            let buckets: Vec<f64> = match field(e, "buckets") {
                Some(Json::Arr(b)) => b.iter().filter_map(Json::as_f64).collect(),
                _ => Vec::new(),
            };
            let (under, over, count) = (num(e, "underflow"), num(e, "overflow"), num(e, "count"));
            match hists.iter_mut().find(|h| h.name == name) {
                Some(h) => {
                    if h.lo == lo && h.hi == hi && h.buckets.len() == buckets.len() {
                        for (acc, b) in h.buckets.iter_mut().zip(&buckets) {
                            *acc += b;
                        }
                        h.under += under;
                        h.over += over;
                        h.count += count;
                    } else {
                        return Err(format!(
                            "histogram '{name}' bucket layout mismatch across hosts: \
                             [{},{}]x{} vs [{lo},{hi}]x{}",
                            h.lo,
                            h.hi,
                            h.buckets.len(),
                            buckets.len()
                        ));
                    }
                }
                None => hists.push(HistAcc {
                    name: name.to_string(),
                    lo,
                    hi,
                    buckets,
                    under,
                    over,
                    count,
                }),
            }
        }
    }
    let histograms = hists
        .into_iter()
        .map(|h| {
            Json::Obj(vec![
                ("name".into(), Json::from(h.name.as_str())),
                ("lo".into(), Json::Num(h.lo)),
                ("hi".into(), Json::Num(h.hi)),
                (
                    "buckets".into(),
                    Json::Arr(h.buckets.into_iter().map(Json::Num).collect()),
                ),
                ("underflow".into(), Json::Num(h.under)),
                ("overflow".into(), Json::Num(h.over)),
                ("count".into(), Json::Num(h.count)),
            ])
        })
        .collect();

    Ok(Json::Obj(vec![
        ("hosts".into(), Json::from(docs.len())),
        ("counters".into(), Json::Arr(counters)),
        ("gauges".into(), Json::Arr(gauges)),
        ("histograms".into(), Json::Arr(histograms)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use sim_core::SimTime;

    fn export_of(vals: &[(u64, f64)]) -> Json {
        let mut r = Registry::new();
        r.set_enabled(true);
        let c = r.counter("steals");
        let h = r.histogram("lat", 0.0, 10.0, 5);
        for &(inc, obs) in vals {
            r.inc(c, inc);
            r.observe(h, obs);
        }
        r.snapshot(SimTime::from_micros(1_000_000));
        r.export().expect("enabled registry exports")
    }

    #[test]
    fn sums_counters_and_histograms_across_hosts() {
        let docs = vec![export_of(&[(3, 1.0)]), export_of(&[(4, 9.5)])];
        let roll = rollup(&docs);
        assert_eq!(roll.get("hosts").and_then(Json::as_u64), Some(2));
        let counters = match roll.get("counters") {
            Some(Json::Arr(v)) => v.clone(),
            _ => panic!("counters array"),
        };
        assert_eq!(counters[0].get("name").and_then(Json::as_str), Some("steals"));
        assert_eq!(counters[0].get("total").and_then(Json::as_u64), Some(7));
        let hists = match roll.get("histograms") {
            Some(Json::Arr(v)) => v.clone(),
            _ => panic!("histograms array"),
        };
        assert_eq!(hists[0].get("count").and_then(Json::as_u64), Some(2));
        let buckets = match hists[0].get("buckets") {
            Some(Json::Arr(b)) => b.iter().filter_map(Json::as_u64).collect::<Vec<_>>(),
            _ => panic!("buckets"),
        };
        // 1.0 falls in bucket 0, 9.5 in bucket 4 (width 2).
        assert_eq!(buckets, vec![1, 0, 0, 0, 1]);
    }

    #[test]
    fn empty_input_rolls_up_to_empty_sections() {
        let roll = rollup(&[]);
        assert_eq!(
            roll.to_string(),
            "{\"hosts\":0,\"counters\":[],\"gauges\":[],\"histograms\":[]}"
        );
    }

    #[test]
    fn rollup_is_deterministic() {
        let docs = vec![export_of(&[(1, 2.0)]), export_of(&[(2, 3.0)])];
        assert_eq!(rollup(&docs).to_string(), rollup(&docs).to_string());
    }

    /// A registry with no metrics registered still exports a document;
    /// rolling it up must yield empty sections, not a malformed doc.
    #[test]
    fn empty_registry_export_rolls_up_cleanly() {
        let mut r = Registry::new();
        r.set_enabled(true);
        r.snapshot(SimTime::from_micros(1));
        let doc = r.export().expect("enabled registry exports");
        let roll = try_rollup(&[doc]).unwrap();
        assert_eq!(roll.get("hosts").and_then(Json::as_u64), Some(1));
        assert_eq!(
            roll.get("counters").and_then(Json::as_array).map(<[Json]>::len),
            Some(0)
        );
        assert_eq!(
            roll.get("histograms")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(0)
        );
    }

    /// The single-host fleet degenerate case: the rollup's sums must
    /// equal that host's own export values exactly.
    #[test]
    fn single_host_rollup_preserves_values() {
        let doc = export_of(&[(5, 1.0), (2, 9.5)]);
        let roll = try_rollup(std::slice::from_ref(&doc)).unwrap();
        assert_eq!(roll.get("hosts").and_then(Json::as_u64), Some(1));
        let counters = roll.get("counters").and_then(Json::as_array).unwrap();
        assert_eq!(counters[0].get("total").and_then(Json::as_u64), Some(7));
        let hists = roll.get("histograms").and_then(Json::as_array).unwrap();
        assert_eq!(hists[0].get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(hists[0].get("lo").and_then(Json::as_f64), Some(0.0));
        assert_eq!(hists[0].get("hi").and_then(Json::as_f64), Some(10.0));
    }

    fn mismatched_docs() -> Vec<Json> {
        let mut a = Registry::new();
        a.set_enabled(true);
        let h = a.histogram("lat", 0.0, 10.0, 5);
        a.observe(h, 1.0);
        a.snapshot(SimTime::from_micros(1));

        let mut b = Registry::new();
        b.set_enabled(true);
        let h = b.histogram("lat", 0.0, 20.0, 8);
        b.observe(h, 1.0);
        b.snapshot(SimTime::from_micros(1));

        vec![a.export().unwrap(), b.export().unwrap()]
    }

    /// Same-named histograms with different bucket layouts are a
    /// registration bug; the rollup must refuse, not silently merge.
    #[test]
    fn mismatched_histogram_layouts_error() {
        let err = try_rollup(&mismatched_docs()).unwrap_err();
        assert!(err.contains("lat"), "error names the histogram: {err}");
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    #[should_panic(expected = "bucket layout mismatch")]
    fn rollup_panics_on_mismatched_layouts() {
        let _ = rollup(&mismatched_docs());
    }
}
