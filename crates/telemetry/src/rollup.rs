//! Fleet-level metric rollups: aggregate several [`crate::Registry`]
//! export documents (one per host) into one fleet document.
//!
//! Operating on the export JSON rather than live registries keeps the
//! rollup usable wherever exports are found — end-of-run reports, files on
//! disk, or hosts whose registries have since been rebuilt. Aggregation is
//! by metric name: counter totals and gauge values sum, histograms sum
//! bucket-wise (shapes must match — same `lo`/`hi`/bucket count — or the
//! histogram is skipped). Per-period series are intentionally dropped:
//! hosts snapshot on their own clocks, so pointwise sums are not
//! meaningful across them; the burn-rate series the fleet layer builds is
//! the cross-host time axis.
//!
//! Output key order follows first appearance across the input documents,
//! so a fixed host order yields byte-identical rollups.

use sim_core::Json;

fn field<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
    obj.get(key)
}

fn name_of(entry: &Json) -> Option<&str> {
    field(entry, "name").and_then(|n| n.as_str())
}

fn num(entry: &Json, key: &str) -> f64 {
    field(entry, key).and_then(|n| n.as_f64()).unwrap_or(0.0)
}

/// Sum `key`-valued scalars from `section` entries across all docs,
/// keyed by metric name in first-appearance order. Returns
/// `(name, sum, docs_seen)` triples.
fn sum_scalars(docs: &[Json], section: &str, key: &str) -> Vec<(String, f64, u64)> {
    let mut out: Vec<(String, f64, u64)> = Vec::new();
    for doc in docs {
        let Some(Json::Arr(entries)) = field(doc, section) else {
            continue;
        };
        for e in entries {
            let Some(name) = name_of(e) else { continue };
            let v = num(e, key);
            match out.iter_mut().find(|(n, _, _)| n == name) {
                Some(slot) => {
                    slot.1 += v;
                    slot.2 += 1;
                }
                None => out.push((name.to_string(), v, 1)),
            }
        }
    }
    out
}

/// Aggregate per-host registry exports (the JSON produced by
/// [`crate::Registry::export`]) into one fleet-level document:
///
/// ```json
/// {"hosts":N,
///  "counters":[{"name":..,"total":..},..],
///  "gauges":[{"name":..,"value":..},..],
///  "histograms":[{"name":..,"lo":..,"hi":..,"buckets":[..],
///                 "underflow":..,"overflow":..,"count":..},..]}
/// ```
pub fn rollup(docs: &[Json]) -> Json {
    let counters = sum_scalars(docs, "counters", "total")
        .into_iter()
        .map(|(name, total, _)| {
            Json::Obj(vec![
                ("name".into(), Json::from(name.as_str())),
                ("total".into(), Json::Num(total)),
            ])
        })
        .collect();
    let gauges = sum_scalars(docs, "gauges", "value")
        .into_iter()
        .map(|(name, value, _)| {
            Json::Obj(vec![
                ("name".into(), Json::from(name.as_str())),
                ("value".into(), Json::Num(value)),
            ])
        })
        .collect();

    // Histograms: bucket-wise sums, keyed by name; mismatched shapes are
    // dropped rather than silently mis-added.
    struct HistAcc {
        name: String,
        lo: f64,
        hi: f64,
        buckets: Vec<f64>,
        under: f64,
        over: f64,
        count: f64,
        poisoned: bool,
    }
    let mut hists: Vec<HistAcc> = Vec::new();
    for doc in docs {
        let Some(Json::Arr(entries)) = field(doc, "histograms") else {
            continue;
        };
        for e in entries {
            let Some(name) = name_of(e) else { continue };
            let (lo, hi) = (num(e, "lo"), num(e, "hi"));
            let buckets: Vec<f64> = match field(e, "buckets") {
                Some(Json::Arr(b)) => b.iter().filter_map(Json::as_f64).collect(),
                _ => Vec::new(),
            };
            let (under, over, count) = (num(e, "underflow"), num(e, "overflow"), num(e, "count"));
            match hists.iter_mut().find(|h| h.name == name) {
                Some(h) => {
                    if h.lo == lo && h.hi == hi && h.buckets.len() == buckets.len() {
                        for (acc, b) in h.buckets.iter_mut().zip(&buckets) {
                            *acc += b;
                        }
                        h.under += under;
                        h.over += over;
                        h.count += count;
                    } else {
                        h.poisoned = true; // shape mismatch: poison this name
                    }
                }
                None => hists.push(HistAcc {
                    name: name.to_string(),
                    lo,
                    hi,
                    buckets,
                    under,
                    over,
                    count,
                    poisoned: false,
                }),
            }
        }
    }
    let histograms = hists
        .into_iter()
        .filter(|h| !h.poisoned)
        .map(|h| {
            Json::Obj(vec![
                ("name".into(), Json::from(h.name.as_str())),
                ("lo".into(), Json::Num(h.lo)),
                ("hi".into(), Json::Num(h.hi)),
                (
                    "buckets".into(),
                    Json::Arr(h.buckets.into_iter().map(Json::Num).collect()),
                ),
                ("underflow".into(), Json::Num(h.under)),
                ("overflow".into(), Json::Num(h.over)),
                ("count".into(), Json::Num(h.count)),
            ])
        })
        .collect();

    Json::Obj(vec![
        ("hosts".into(), Json::from(docs.len())),
        ("counters".into(), Json::Arr(counters)),
        ("gauges".into(), Json::Arr(gauges)),
        ("histograms".into(), Json::Arr(histograms)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use sim_core::SimTime;

    fn export_of(vals: &[(u64, f64)]) -> Json {
        let mut r = Registry::new();
        r.set_enabled(true);
        let c = r.counter("steals");
        let h = r.histogram("lat", 0.0, 10.0, 5);
        for &(inc, obs) in vals {
            r.inc(c, inc);
            r.observe(h, obs);
        }
        r.snapshot(SimTime::from_micros(1_000_000));
        r.export().expect("enabled registry exports")
    }

    #[test]
    fn sums_counters_and_histograms_across_hosts() {
        let docs = vec![export_of(&[(3, 1.0)]), export_of(&[(4, 9.5)])];
        let roll = rollup(&docs);
        assert_eq!(roll.get("hosts").and_then(Json::as_u64), Some(2));
        let counters = match roll.get("counters") {
            Some(Json::Arr(v)) => v.clone(),
            _ => panic!("counters array"),
        };
        assert_eq!(counters[0].get("name").and_then(Json::as_str), Some("steals"));
        assert_eq!(counters[0].get("total").and_then(Json::as_u64), Some(7));
        let hists = match roll.get("histograms") {
            Some(Json::Arr(v)) => v.clone(),
            _ => panic!("histograms array"),
        };
        assert_eq!(hists[0].get("count").and_then(Json::as_u64), Some(2));
        let buckets = match hists[0].get("buckets") {
            Some(Json::Arr(b)) => b.iter().filter_map(Json::as_u64).collect::<Vec<_>>(),
            _ => panic!("buckets"),
        };
        // 1.0 falls in bucket 0, 9.5 in bucket 4 (width 2).
        assert_eq!(buckets, vec![1, 0, 0, 0, 1]);
    }

    #[test]
    fn empty_input_rolls_up_to_empty_sections() {
        let roll = rollup(&[]);
        assert_eq!(
            roll.to_string(),
            "{\"hosts\":0,\"counters\":[],\"gauges\":[],\"histograms\":[]}"
        );
    }

    #[test]
    fn rollup_is_deterministic() {
        let docs = vec![export_of(&[(1, 2.0)]), export_of(&[(2, 3.0)])];
        assert_eq!(rollup(&docs).to_string(), rollup(&docs).to_string());
    }
}
