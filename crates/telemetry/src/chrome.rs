//! Chrome Trace Event builder.
//!
//! Emits the JSON-array flavour of the Trace Event format, which Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing` open directly:
//!
//! ```json
//! {"traceEvents":[
//!   {"ph":"M","pid":0,"tid":0,"name":"thread_name","args":{"name":"pcpu0"}},
//!   {"ph":"X","pid":0,"tid":0,"ts":0,"dur":30000,"name":"vm0/v1"},
//!   {"ph":"i","pid":0,"tid":8,"ts":1000000,"name":"sample_period","s":"t"}
//! ],"displayTimeUnit":"ms"}
//! ```
//!
//! Timestamps and durations are microseconds (the format's native unit,
//! and the simulator's clock resolution). The builder is append-only and
//! serializes events in insertion order, so callers that insert in
//! deterministic order get byte-identical files.

use sim_core::Json;

/// Append-only builder for one Chrome Trace Event file.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<Json>,
}

impl ChromeTrace {
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Name a track (a `tid` under pid 0) via thread_name metadata.
    pub fn thread_name(&mut self, tid: u64, name: &str) {
        self.events.push(Json::Obj(vec![
            ("ph".into(), Json::from("M")),
            ("pid".into(), Json::from(0u64)),
            ("tid".into(), Json::from(tid)),
            ("name".into(), Json::from("thread_name")),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::from(name))]),
            ),
        ]));
    }

    /// A complete span (`ph:"X"`) on a track: `name` ran on `tid` from
    /// `ts_us` for `dur_us` microseconds.
    pub fn complete(&mut self, tid: u64, name: &str, ts_us: u64, dur_us: u64) {
        self.events.push(Json::Obj(vec![
            ("ph".into(), Json::from("X")),
            ("pid".into(), Json::from(0u64)),
            ("tid".into(), Json::from(tid)),
            ("ts".into(), Json::from(ts_us)),
            ("dur".into(), Json::from(dur_us)),
            ("name".into(), Json::from(name)),
        ]));
    }

    /// A thread-scoped instant event (`ph:"i"`), with optional `args`.
    pub fn instant(&mut self, tid: u64, name: &str, ts_us: u64, args: Vec<(String, Json)>) {
        let mut fields = vec![
            ("ph".into(), Json::from("i")),
            ("pid".into(), Json::from(0u64)),
            ("tid".into(), Json::from(tid)),
            ("ts".into(), Json::from(ts_us)),
            ("name".into(), Json::from(name)),
            ("s".into(), Json::from("t")),
        ];
        if !args.is_empty() {
            fields.push(("args".into(), Json::Obj(args)));
        }
        self.events.push(Json::Obj(fields));
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize as a complete trace file (compact, one line).
    pub fn to_json_string(&self) -> String {
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(self.events.clone())),
            ("displayTimeUnit".into(), Json::from("ms")),
        ])
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_trace_json() {
        let mut t = ChromeTrace::new();
        t.thread_name(0, "pcpu0");
        t.complete(0, "vm0/v1", 0, 30_000);
        t.instant(8, "sample_period", 1_000_000, vec![("periods".into(), Json::from(1u64))]);
        assert_eq!(t.len(), 3);
        let s = t.to_json_string();
        let doc = Json::parse(&s).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap();
        match events {
            Json::Arr(v) => assert_eq!(v.len(), 3),
            _ => panic!("traceEvents must be an array"),
        }
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn serialization_is_deterministic() {
        let build = || {
            let mut t = ChromeTrace::new();
            t.thread_name(1, "pcpu1");
            t.complete(1, "vm0/v0", 5, 10);
            t.to_json_string()
        };
        assert_eq!(build(), build());
    }
}
