//! Perf introspection primitives: deterministic work-avoidance counters
//! and explicitly non-deterministic wall-clock attribution.
//!
//! The simulator's optimization machinery (incremental memory engine,
//! macro-stepping, fleet sharding) is invisible from the outputs it is
//! required not to change. This module provides the two ingredients the
//! perf layer records with — kept strictly apart:
//!
//! * **Deterministic counters** ([`CounterSet`], [`BatchHistogram`],
//!   [`digest64`]): pure functions of the simulated execution. Two runs
//!   of the same seed produce bitwise-equal values at any `--jobs`, so
//!   their JSON export (and its digest) can be pinned by golden files
//!   exactly like CSVs.
//! * **Wall-clock attribution** ([`PhaseTimers`]): real `Instant` time
//!   per named phase. Non-deterministic by construction; it must only
//!   ever feed best-effort records (`BENCH_repro.json`,
//!   `BENCH_history.jsonl`) and never a deterministic artifact.
//!
//! Like the registry, everything here is ordered: counters and phases
//! export in first-touch order, so serialization is byte-stable.

use sim_core::Json;
use std::time::{Duration, Instant};

/// An ordered set of named `u64` counters with stable JSON export.
///
/// Names are registered implicitly on first touch and export in that
/// order. Merging follows the same rule, so summing per-host sets in
/// host index order is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    entries: Vec<(String, u64)>,
}

impl CounterSet {
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    /// Add `n` to `name`, creating the slot at the end on first touch.
    pub fn add(&mut self, name: &str, n: u64) {
        match self.entries.iter_mut().find(|(k, _)| k == name) {
            Some(slot) => slot.1 += n,
            None => self.entries.push((name.to_string(), n)),
        }
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Add every counter of `other` into `self` (first-touch order for
    /// names `self` has not seen).
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, v) in &other.entries {
            self.add(k, *v);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// `{"name": n, ...}` in first-touch order.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.entries
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v)))
                .collect(),
        )
    }
}

/// Number of log2 buckets in a [`BatchHistogram`] (lengths 1 .. 2^16+).
pub const BATCH_BUCKETS: usize = 17;

/// A log2-bucket histogram of batch lengths (macro-step batches, hosts
/// stepped per fleet epoch). Bucket `i` counts lengths in
/// `[2^i, 2^(i+1))`; the last bucket absorbs everything larger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchHistogram {
    buckets: [u64; BATCH_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for BatchHistogram {
    fn default() -> Self {
        BatchHistogram {
            buckets: [0; BATCH_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl BatchHistogram {
    pub fn new() -> BatchHistogram {
        BatchHistogram::default()
    }

    /// Record one batch of `len` quanta (0 is clamped to 1).
    pub fn observe(&mut self, len: u64) {
        let len = len.max(1);
        let idx = (63 - len.leading_zeros() as usize).min(BATCH_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(len);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean batch length (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn merge(&mut self, other: &BatchHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// `{"count":..,"sum":..,"buckets":[[lo,n],..]}` with only non-empty
    /// buckets listed (lo = 2^i), so small runs stay readable.
    pub fn to_json(&self) -> Json {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| Json::Arr(vec![Json::from(1u64 << i), Json::from(n)]))
            .collect();
        Json::Obj(vec![
            ("count".into(), Json::from(self.count)),
            ("sum".into(), Json::from(self.sum)),
            ("buckets".into(), Json::Arr(buckets)),
        ])
    }
}

/// FNV-1a 64-bit digest of a string, as 16 lowercase hex digits.
///
/// Used to pin a whole deterministic counter export with one short
/// token in `BENCH_history.jsonl` and the CI regression gate.
pub fn digest64(s: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Wall-clock attribution by named phase. **Non-deterministic**: values
/// come from [`Instant`] and differ run to run; callers must keep them
/// out of every deterministic artifact (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct PhaseTimers {
    phases: Vec<(String, Duration, u64)>,
}

impl PhaseTimers {
    pub fn new() -> PhaseTimers {
        PhaseTimers::default()
    }

    /// Time `f` and attribute its wall-clock to `phase`.
    pub fn time<T>(&mut self, phase: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record(phase, t0.elapsed());
        out
    }

    /// Attribute an externally measured duration to `phase`.
    pub fn record(&mut self, phase: &str, d: Duration) {
        match self.phases.iter_mut().find(|(k, _, _)| k == phase) {
            Some(slot) => {
                slot.1 += d;
                slot.2 += 1;
            }
            None => self.phases.push((phase.to_string(), d, 1)),
        }
    }

    /// Total attributed wall-clock across phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d, _)| *d).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// `{"phase":{"wall_s":..,"calls":..},..}`, seconds rounded to ms.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.phases
                .iter()
                .map(|(k, d, n)| {
                    let s = (d.as_secs_f64() * 1000.0).round() / 1000.0;
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("wall_s".into(), Json::Num(s)),
                            ("calls".into(), Json::from(*n)),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_set_orders_by_first_touch_and_merges() {
        let mut a = CounterSet::new();
        a.add("hits", 2);
        a.add("misses", 1);
        a.add("hits", 3);
        assert_eq!(a.get("hits"), 5);
        assert_eq!(a.get("unknown"), 0);

        let mut b = CounterSet::new();
        b.add("misses", 10);
        b.add("skips", 4);
        a.merge(&b);
        assert_eq!(a.get("misses"), 11);
        assert_eq!(
            a.to_json().to_string(),
            r#"{"hits":5,"misses":11,"skips":4}"#
        );
    }

    #[test]
    fn batch_histogram_buckets_by_log2() {
        let mut h = BatchHistogram::new();
        for len in [1, 1, 2, 3, 4, 1000, u64::MAX] {
            h.observe(len);
        }
        h.observe(0); // clamps to 1
        assert_eq!(h.count(), 8);
        let json = h.to_json().to_string();
        // 1 appears 3×, [2,4) 2×, 4 once, 1000 in [512,1024), MAX in top.
        assert!(json.contains("[1,3]"), "{json}");
        assert!(json.contains("[2,2]"), "{json}");
        assert!(json.contains("[512,1]"), "{json}");
        assert!(json.contains(&format!("[{},1]", 1u64 << 16)), "{json}");

        let mut other = BatchHistogram::new();
        other.observe(1);
        h.merge(&other);
        assert_eq!(h.count(), 9);
        assert!(h.mean() > 1.0);
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        assert_eq!(digest64(""), "cbf29ce484222325");
        assert_eq!(digest64("a"), digest64("a"));
        assert_ne!(digest64("a"), digest64("b"));
        assert_eq!(digest64("abc").len(), 16);
    }

    #[test]
    fn phase_timers_accumulate() {
        let mut t = PhaseTimers::new();
        let v = t.time("solve", || 42);
        assert_eq!(v, 42);
        t.record("solve", Duration::from_millis(5));
        t.record("io", Duration::from_millis(1));
        assert!(t.total() >= Duration::from_millis(6));
        let json = t.to_json().to_string();
        assert!(json.contains("\"solve\""));
        assert!(json.contains("\"calls\":2"));
    }
}
