//! Observability substrate: a deterministic metric registry and trace-export
//! builders.
//!
//! The simulator's golden-value discipline extends to its observability
//! layer: every metric is registered in a fixed order, sampled at
//! deterministic simulation times, and serialized with stable key order, so
//! two runs of the same seed produce byte-identical telemetry — and a run
//! with telemetry *disabled* produces byte-identical output to a build
//! without telemetry at all.
//!
//! * [`registry`] — counters, gauges, and fixed-bucket histograms, each
//!   snapshotted into a [`sim_core::TimeSeries`] at every sampling period
//!   and exported as one JSON block;
//! * [`chrome`] — a builder for the Chrome Trace Event format (the JSON
//!   flavour Perfetto and `chrome://tracing` open directly), used by
//!   `xen-sim` to render per-PCPU execution tracks;
//! * [`span`] — begin/end intervals with sim-time stamps, parent links,
//!   and annotations, used by the fleet layer for admission/evacuation
//!   lifecycles;
//! * [`rollup`] — per-host → fleet aggregation of registry export
//!   documents;
//! * [`perf`] — work-avoidance introspection: deterministic counter
//!   sets, batch-length histograms and digests, plus explicitly
//!   non-deterministic wall-clock phase timers that only ever feed
//!   best-effort bench records.
//!
//! This crate deliberately knows nothing about VCPUs or NUMA: the machine
//! layer decides *what* to record; this layer guarantees the recording is
//! deterministic, cheap when disabled, and stable on disk.

pub mod chrome;
pub mod perf;
pub mod registry;
pub mod rollup;
pub mod span;

pub use chrome::ChromeTrace;
pub use perf::{digest64, BatchHistogram, CounterSet, PhaseTimers};
pub use registry::{CounterId, GaugeId, HistogramId, Registry};
pub use rollup::{rollup, try_rollup};
pub use span::{Span, SpanLog};
