//! Deterministic span log: begin/end intervals with sim-time stamps,
//! parent links, and per-span key/value annotations.
//!
//! The registry answers "how much"; spans answer "how long and why".
//! A [`SpanLog`] follows the same discipline as the metric registry:
//! disabled it costs one branch per call and records nothing, enabled it
//! assigns sequential ids in call order so two runs of the same seed
//! produce byte-identical exports. Timestamps are simulation microseconds
//! supplied by the caller — the log never consults a wall clock.
//!
//! Spans may be closed out of insertion order (an evacuation that lands
//! epochs after later arrivals began), and a span may be left open; the
//! exporters render open spans with `end_us: null` (JSONL) or close them
//! at the supplied end-of-run timestamp (Chrome).

use crate::ChromeTrace;
use sim_core::Json;

/// One interval in a [`SpanLog`].
#[derive(Debug, Clone)]
pub struct Span {
    /// Sequential id, starting at 1 (0 is the "no span" sentinel).
    pub id: u64,
    pub name: String,
    /// Track the Chrome exporter renders this span on (e.g. a host index).
    pub track: u64,
    /// Enclosing span, if any.
    pub parent: Option<u64>,
    pub start_us: u64,
    /// `None` while the span is still open.
    pub end_us: Option<u64>,
    /// Annotations, in insertion order.
    pub args: Vec<(String, Json)>,
}

/// An append-only log of spans with deterministic sequential ids.
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    enabled: bool,
    spans: Vec<Span>,
}

impl SpanLog {
    /// A disabled log (records nothing, `begin` returns 0).
    pub fn disabled() -> Self {
        SpanLog::default()
    }

    /// An enabled log.
    pub fn enabled() -> Self {
        SpanLog {
            enabled: true,
            spans: Vec::new(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a span on `track` at `start_us`. Returns its id, or 0 when the
    /// log is disabled (every other method ignores id 0).
    pub fn begin(&mut self, name: &str, track: u64, start_us: u64, parent: Option<u64>) -> u64 {
        if !self.enabled {
            return 0;
        }
        let id = self.spans.len() as u64 + 1;
        self.spans.push(Span {
            id,
            name: name.to_string(),
            track,
            parent: parent.filter(|&p| p != 0),
            start_us,
            end_us: None,
            args: Vec::new(),
        });
        id
    }

    /// Close span `id` at `end_us`. No-op for id 0 or an already-closed span.
    pub fn end(&mut self, id: u64, end_us: u64) {
        if let Some(s) = self.get_mut(id) {
            if s.end_us.is_none() {
                s.end_us = Some(end_us.max(s.start_us));
            }
        }
    }

    /// Move span `id` to a different track (e.g. once an evacuation's
    /// destination host becomes known).
    pub fn set_track(&mut self, id: u64, track: u64) {
        if let Some(s) = self.get_mut(id) {
            s.track = track;
        }
    }

    /// Attach a key/value annotation to span `id`.
    pub fn annotate(&mut self, id: u64, key: &str, value: Json) {
        if let Some(s) = self.get_mut(id) {
            s.args.push((key.to_string(), value));
        }
    }

    fn get_mut(&mut self, id: u64) -> Option<&mut Span> {
        if !self.enabled || id == 0 {
            return None;
        }
        self.spans.get_mut(id as usize - 1)
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// Serialize as JSON Lines, one span per line in id order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let mut fields: Vec<(String, Json)> = vec![
                ("id".into(), Json::from(s.id)),
                ("name".into(), Json::from(s.name.as_str())),
                ("track".into(), Json::from(s.track)),
                (
                    "parent".into(),
                    s.parent.map(Json::from).unwrap_or(Json::Null),
                ),
                ("start_us".into(), Json::from(s.start_us)),
                (
                    "end_us".into(),
                    s.end_us.map(Json::from).unwrap_or(Json::Null),
                ),
            ];
            if !s.args.is_empty() {
                fields.push(("args".into(), Json::Obj(s.args.clone())));
            }
            out.push_str(&Json::Obj(fields).to_string());
            out.push('\n');
        }
        out
    }

    /// Render as a Chrome Trace Event file: one named track per entry of
    /// `tracks`, complete spans for every closed span, and spans still open
    /// closed at `end_us`.
    pub fn to_chrome(&self, tracks: &[(u64, String)], end_us: u64) -> String {
        let mut t = ChromeTrace::new();
        for (tid, name) in tracks {
            t.thread_name(*tid, name);
        }
        for s in &self.spans {
            let end = s.end_us.unwrap_or(end_us).max(s.start_us);
            t.complete(s.track, &s.name, s.start_us, end - s.start_us);
        }
        t.to_json_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = SpanLog::disabled();
        let id = log.begin("x", 0, 10, None);
        assert_eq!(id, 0);
        log.end(id, 20);
        log.annotate(id, "k", Json::from(1u64));
        assert!(log.is_empty());
        assert!(!log.is_enabled());
        assert_eq!(log.to_jsonl(), "");
    }

    #[test]
    fn ids_are_sequential_and_parents_link() {
        let mut log = SpanLog::enabled();
        let a = log.begin("evac vm3", 2, 100, None);
        let b = log.begin("retry#1", 2, 100, Some(a));
        assert_eq!((a, b), (1, 2));
        log.end(b, 200);
        log.end(a, 500);
        log.annotate(a, "dst_host", Json::from(4u64));
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"id\":1,\"name\":\"evac vm3\""));
        assert!(lines[0].contains("\"end_us\":500"));
        assert!(lines[0].contains("\"args\":{\"dst_host\":4}"));
        assert!(lines[1].contains("\"parent\":1"));
    }

    #[test]
    fn open_span_exports_null_end_and_closes_in_chrome() {
        let mut log = SpanLog::enabled();
        log.begin("open", 0, 50, None);
        assert!(log.to_jsonl().contains("\"end_us\":null"));
        let tracks = vec![(0u64, "host0".to_string())];
        let chrome = log.to_chrome(&tracks, 90);
        assert!(chrome.contains("\"ts\":50,\"dur\":40,\"name\":\"open\""));
    }

    #[test]
    fn double_end_keeps_first_close() {
        let mut log = SpanLog::enabled();
        let a = log.begin("x", 0, 10, None);
        log.end(a, 20);
        log.end(a, 99);
        assert!(log.to_jsonl().contains("\"end_us\":20"));
    }

    #[test]
    fn export_is_deterministic() {
        let build = || {
            let mut log = SpanLog::enabled();
            let a = log.begin("a", 1, 0, None);
            log.begin("b", 1, 5, Some(a));
            log.end(a, 9);
            log.to_jsonl()
        };
        assert_eq!(build(), build());
    }
}
