//! The memory engine alone on a replayed noisy per-quantum usage stream.
//!
//! The repro sweep's noisy runs (fig4–fig7) pin the macro-stepper's
//! horizon to one quantum, so their cost is dominated by per-quantum
//! engine solves. This bench replays the same shape of stream — 16
//! saturated slots on two sockets, per-slot intensity following the
//! machine's clamped Ornstein-Uhlenbeck process, occasional cold windows
//! and overhead spikes — through three engines:
//!
//! * `reference` — the frozen pre-rewrite per-struct engine;
//! * `soa_exact` — the incremental SoA engine in exact mode
//!   (byte-identical results, so any delta is pure data layout and
//!   dirty-tracking);
//! * `soa_approx` — the SoA engine with quantized intensity keys and a
//!   fixed-point tolerance (bounded model error, documented in
//!   DESIGN.md §15).
//!
//! The wall clocks and speedups are recorded in `BENCH_repro.json`
//! under `noisy_engine_16slots`.

use criterion::{criterion_group, Criterion};
use mem_model::{
    AccessProfile, ApproxParams, EngineMode, MemoryEngine, MissCurve, QuantumUsage,
    ReferenceEngine,
};
use numa_topo::{presets, NodeId};
use sim_core::{Json, SimDuration, SimRng};

const MB: u64 = 1024 * 1024;
const SLOTS: usize = 16;
/// Matches the machine's defaults: 1 ms quantum, 250 ms noise correlation,
/// 0.18 stationary relative sd.
const NOISE_SD: f64 = 0.18;
const NOISE_THETA: f64 = 1.0 / 250.0;

/// Per-socket mix mirroring the repro sweep's noisy machine: LLC-fitting
/// solvers, LLC-thrashing co-runners, and CPU-only hungry loops.
fn profiles() -> Vec<AccessProfile> {
    vec![
        // lu-like: fits the LLC when alone, mostly local.
        AccessProfile {
            rpti: 18.0,
            base_cpi: 1.1,
            miss_curve: MissCurve::new(0.05, 0.6, 10 * MB),
            mlp: 2.0,
            node_access_dist: vec![0.7, 0.3],
        },
        // Thrasher: working set far beyond the LLC, mostly remote.
        AccessProfile {
            rpti: 26.0,
            base_cpi: 0.9,
            miss_curve: MissCurve::new(0.4, 0.7, 64 * MB),
            mlp: 4.0,
            node_access_dist: vec![0.2, 0.8],
        },
        AccessProfile::cpu_only(1.0, 2),
    ]
}

/// Slot -> profile index: per socket, 4 fitting + 2 thrashers + 2 hungry.
fn slot_profile(slot: usize) -> usize {
    match slot % 8 {
        0..=3 => 0,
        4 | 5 => 1,
        _ => 2,
    }
}

/// Precomputed per-step, per-slot intensity factors: the machine's
/// discrete OU process (`update_intensity_noise`) replayed verbatim.
fn make_scales(steps: usize) -> Vec<f64> {
    let mut rng = SimRng::seed_from(42);
    let step_sd = NOISE_SD * (NOISE_THETA * (2.0 - NOISE_THETA)).sqrt();
    let mut state = vec![1.0f64; SLOTS];
    let mut out = Vec::with_capacity(steps * SLOTS);
    for _ in 0..steps {
        for x in &mut state {
            let eps = rng.normal_clamped(0.0, 1.0, -3.0, 3.0);
            *x = (*x + NOISE_THETA * (1.0 - *x) + step_sd * eps).clamp(0.4, 1.8);
            out.push(*x);
        }
    }
    out
}

fn build_usages<'a>(
    usages: &mut Vec<QuantumUsage<'a>>,
    profs: &'a [AccessProfile],
    scales: &[f64],
    step: usize,
) {
    usages.clear();
    for slot in 0..SLOTS {
        // A cold window (cross-node migration refill) and an overhead
        // spike (partitioning work) wander across the slots so the dirty
        // tracking sees realistic non-intensity churn too.
        let cold = (step + slot * 131) % 997 < 4;
        let spike = (step + slot * 59).is_multiple_of(499);
        usages.push(QuantumUsage {
            key: slot as u64 + 1,
            node: NodeId::new((slot / 8) as u16),
            runtime_share: 1.0,
            profile: &profs[slot_profile(slot)],
            rpti_scale: scales[step * SLOTS + slot],
            cold_miss_boost: if cold { 3.0 } else { 1.0 },
            overhead_us: if spike { 24.0 } else { 0.0 },
        });
    }
}

/// Replay `steps` quanta through `step`, returning a checksum so the work
/// cannot be optimized away.
fn replay<E>(steps: usize, scales: &[f64], profs: &[AccessProfile], mut step: E) -> u64
where
    E: FnMut(SimDuration, &[QuantumUsage]) -> u64,
{
    let quantum = SimDuration::from_millis(1);
    let mut usages = Vec::with_capacity(SLOTS);
    let mut sum = 0u64;
    for s in 0..steps {
        build_usages(&mut usages, profs, scales, s);
        sum = sum.wrapping_add(step(quantum, &usages));
    }
    sum
}

fn run_reference(steps: usize, scales: &[f64], profs: &[AccessProfile]) -> u64 {
    let mut engine = ReferenceEngine::new(&presets::xeon_e5620());
    replay(steps, scales, profs, |q, u| {
        engine.step_ref(q, u).iter().map(|r| r.instructions).sum()
    })
}

fn run_soa(mode: EngineMode, steps: usize, scales: &[f64], profs: &[AccessProfile]) -> u64 {
    let mut engine = MemoryEngine::with_mode(&presets::xeon_e5620(), mode);
    replay(steps, scales, profs, |q, u| {
        engine.step_ref(q, u).iter().map(|r| r.instructions).sum()
    })
}

const BENCH_STEPS: usize = 2_000;

fn noisy_engine(c: &mut Criterion) {
    let profs = profiles();
    let scales = make_scales(BENCH_STEPS);
    c.bench_function("noisy_engine/reference", |b| {
        b.iter(|| run_reference(BENCH_STEPS, &scales, &profs))
    });
    c.bench_function("noisy_engine/soa_exact", |b| {
        b.iter(|| run_soa(EngineMode::Exact, BENCH_STEPS, &scales, &profs))
    });
    c.bench_function("noisy_engine/soa_approx", |b| {
        b.iter(|| {
            run_soa(
                EngineMode::Approx(ApproxParams::default()),
                BENCH_STEPS,
                &scales,
                &profs,
            )
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = noisy_engine
}

/// Median-of-3 wall clock of one long replay.
fn timed_ms(mut f: impl FnMut() -> u64) -> f64 {
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let t = std::time::Instant::now();
            let sum = f();
            let ms = t.elapsed().as_secs_f64() * 1000.0;
            std::hint::black_box(sum);
            ms
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[1]
}

/// Merge the engine wall clocks into the repo-root `BENCH_repro.json`.
fn record_bench() {
    const RECORD_STEPS: usize = 10_000;
    let profs = profiles();
    let scales = make_scales(RECORD_STEPS);
    let reference = timed_ms(|| run_reference(RECORD_STEPS, &scales, &profs));
    let exact = timed_ms(|| run_soa(EngineMode::Exact, RECORD_STEPS, &scales, &profs));
    let approx = timed_ms(|| {
        run_soa(
            EngineMode::Approx(ApproxParams::default()),
            RECORD_STEPS,
            &scales,
            &profs,
        )
    });
    let round3 = |x: f64| (x * 1000.0).round() / 1000.0;
    let entry = Json::Obj(vec![
        ("steps".into(), Json::from(RECORD_STEPS)),
        ("reference_wall_ms".into(), Json::Num(round3(reference))),
        ("soa_exact_wall_ms".into(), Json::Num(round3(exact))),
        ("soa_approx_wall_ms".into(), Json::Num(round3(approx))),
        (
            "speedup_exact".into(),
            Json::Num(round3(reference / exact.max(f64::MIN_POSITIVE))),
        ),
        (
            "speedup_approx".into(),
            Json::Num(round3(reference / approx.max(f64::MIN_POSITIVE))),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repro.json");
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| Json::parse(&t).ok())
        .and_then(|j| match j {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        })
        .unwrap_or_default();
    let key = "noisy_engine_16slots".to_string();
    match doc.iter_mut().find(|(k, _)| *k == key) {
        Some(slot) => slot.1 = entry,
        None => doc.push((key, entry)),
    }
    if let Err(e) = std::fs::write(path, Json::Obj(doc).to_string_pretty()) {
        eprintln!("warning: cannot write {path}: {e}");
    } else {
        eprintln!("recorded noisy-engine wall clocks in {path}");
    }
}

fn main() {
    benches();
    record_bench();
}
