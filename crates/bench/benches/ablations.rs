//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **hard vs soft partitioning** — the paper's partitioning is a
//!   one-shot migration; pinning until the next period is the obvious
//!   alternative;
//! * **victim choice** — Algorithm 2 steals the *smallest*-pressure VCPU;
//!   the inverse (largest) is the natural straw man;
//! * **α sensitivity** — Eq. 2's scale constant moves the classification
//!   bounds with it, so misconfigured α must degrade gracefully;
//! * **dynamic bounds** (§VI future work) vs the static 3/20.
//!
//! Each target prints the comparison it measured so `cargo bench` output
//! documents the ablation, then times the winning configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::runner::{build_machine, RunOptions, Scheduler, SetupKind};
use numa_topo::{PcpuId, VcpuId};
use sim_core::SimDuration;
use vprobe::{variants, Bounds, VProbePolicy};
use vprobe_bench::{bench_opts, print_once};
use workloads::speccpu;
use xen_sim::{AnalyzerView, PartitionPlan, SchedPolicy, StealContext};

/// vProbe with a hard (pin-until-next-period) partitioning plan.
struct HardPinVProbe(VProbePolicy);

impl SchedPolicy for HardPinVProbe {
    fn name(&self) -> &str {
        "vprobe-hardpin"
    }
    fn on_sample(&mut self, view: AnalyzerView<'_>) -> PartitionPlan {
        let mut plan = self.0.on_sample(view);
        plan.hard = true;
        plan
    }
    fn steal(&mut self, ctx: StealContext<'_>) -> Option<(PcpuId, VcpuId)> {
        self.0.steal(ctx)
    }
}

/// Measure VM1's instruction rate for an arbitrary policy on the mix
/// workload (warm start under Credit, like the experiments runner).
fn rate_with(policy: Box<dyn SchedPolicy>, opts: &RunOptions) -> f64 {
    let mut machine = build_machine(
        Scheduler::Credit,
        SetupKind::PaperEval,
        speccpu::mix(),
        speccpu::mix(),
        opts,
    )
    .unwrap();
    machine.run(opts.warmup);
    machine.set_policy(policy);
    machine.reset_metrics();
    machine.run(opts.duration);
    let m = machine.metrics();
    m.per_vm[0].instr_per_second(m.elapsed)
}

fn hard_vs_soft(c: &mut Criterion) {
    let opts = bench_opts();
    let soft = rate_with(Box::new(variants::vprobe(2, Bounds::default())), &opts);
    let hard = rate_with(
        Box::new(HardPinVProbe(variants::vprobe(2, Bounds::default()))),
        &opts,
    );
    print_once(
        "Ablation: partitioning persistence",
        &format!("soft (paper): {soft:.3e} instr/s\nhard pin    : {hard:.3e} instr/s"),
    );
    c.bench_function("ablation/soft_partitioning", |b| {
        b.iter(|| rate_with(Box::new(variants::vprobe(2, Bounds::default())), &opts))
    });
}

fn alpha_sensitivity(c: &mut Criterion) {
    let opts = bench_opts();
    let mut lines = String::new();
    for (label, bounds) in [
        ("alpha x0.5 (bounds 1.5/10)", Bounds::new(1.5, 10.0)),
        ("paper (3/20)", Bounds::default()),
        ("alpha x2 (bounds 6/40)", Bounds::new(6.0, 40.0)),
    ] {
        let rate = rate_with(Box::new(variants::vprobe(2, bounds)), &opts);
        lines.push_str(&format!("{label:28} {rate:.3e} instr/s\n"));
    }
    print_once("Ablation: bound/alpha sensitivity", &lines);
    c.bench_function("ablation/paper_bounds", |b| {
        b.iter(|| rate_with(Box::new(variants::vprobe(2, Bounds::default())), &opts))
    });
}

fn dynamic_bounds(c: &mut Criterion) {
    let opts = bench_opts();
    let static_rate = rate_with(Box::new(variants::vprobe(2, Bounds::default())), &opts);
    let dyn_rate = rate_with(
        Box::new(VProbePolicy::new(2, Bounds::default()).with_dynamic_bounds()),
        &opts,
    );
    print_once(
        "Ablation: static vs dynamic bounds (§VI)",
        &format!("static 3/20 : {static_rate:.3e} instr/s\ndynamic     : {dyn_rate:.3e} instr/s"),
    );
    c.bench_function("ablation/dynamic_bounds", |b| {
        b.iter(|| {
            rate_with(
                Box::new(VProbePolicy::new(2, Bounds::default()).with_dynamic_bounds()),
                &opts,
            )
        })
    });
}

fn page_migration(c: &mut Criterion) {
    let opts = bench_opts();
    let rows = experiments::extensions::run_page_migration(&opts).expect("pagemig");
    let body: String = rows
        .iter()
        .map(|r| {
            format!(
                "{:10} {:.3e} instr/s  remote {:4.1}%  moved {:.0} MB\n",
                r.policy,
                r.instr_rate,
                r.remote_ratio * 100.0,
                r.migrated_mb
            )
        })
        .collect();
    print_once("Ablation: §VI page migration", &body);
    c.bench_function("ablation/page_migration", |b| {
        b.iter(|| experiments::extensions::run_page_migration(&opts).unwrap().len())
    });
}

fn sampling_cost(c: &mut Criterion) {
    // How much wall time does one simulated second cost, per scheduler?
    let mut opts = bench_opts();
    opts.duration = SimDuration::from_secs(2);
    opts.warmup = SimDuration::ZERO;
    let mut group = c.benchmark_group("ablation/sim_cost_per_policy");
    for sched in [Scheduler::Credit, Scheduler::VProbe, Scheduler::Brm] {
        group.bench_function(sched.name(), |b| {
            b.iter(|| {
                let mut machine = build_machine(
                    sched,
                    SetupKind::PaperEval,
                    speccpu::mix(),
                    speccpu::mix(),
                    &opts,
                )
                .unwrap();
                machine.run(opts.duration);
                machine.metrics().per_vm[0].instructions
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(10))
        .warm_up_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = ablations;
    config = config();
    targets = hard_vs_soft, alpha_sensitivity, dynamic_bounds, page_migration, sampling_cost
}
criterion_main!(ablations);
