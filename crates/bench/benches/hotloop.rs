//! Simulator hot-loop benchmarks at three granularities: one quantum of
//! `Machine::run`, a full 30-second simulated run, and a whole-scheduler
//! sweep through the experiment runner. Together they track the cost of
//! the per-quantum path (profile lookup, credit bookkeeping, memory-engine
//! resolution) and how it compounds into experiment wall-clock time.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::runner::{run_all_schedulers, SetupKind};
use mem_model::AllocPolicy;
use numa_topo::presets;
use sim_core::SimDuration;
use vprobe_bench::bench_opts;
use workloads::{hungry, npb};
use xen_sim::{CreditPolicy, Machine, MachineBuilder, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

/// The oversubscribed three-VM setup the simulator unit tests pin their
/// golden trajectory on: 16 worker VCPUs plus 8 timer idlers on 8 PCPUs.
fn machine() -> Machine {
    MachineBuilder::new(presets::xeon_e5620())
        .policy(Box::new(CreditPolicy::new()))
        .add_vm(VmConfig::new("vm1", 8, 8 * GB, AllocPolicy::MostFree, vec![npb::lu()]))
        .add_vm(VmConfig::new("vm2", 8, 5 * GB, AllocPolicy::MostFree, vec![npb::lu()]))
        .add_vm(VmConfig::new(
            "vm3",
            8,
            GB,
            AllocPolicy::MostFree,
            vec![hungry::hungry_loop(); 8],
        ))
        .build()
        .unwrap()
}

fn step_quantum(c: &mut Criterion) {
    // One 1 ms quantum per iteration on a warmed machine; simulated time
    // keeps advancing across iterations, which is what the steady-state
    // hot loop looks like.
    let mut m = machine();
    m.run(SimDuration::from_secs(1));
    c.bench_function("hotloop/step_quantum", |b| {
        b.iter(|| m.run(SimDuration::from_millis(1)).elapsed)
    });
}

fn run_30s(c: &mut Criterion) {
    c.bench_function("hotloop/run_30s_sim", |b| {
        b.iter(|| {
            let mut m = machine();
            m.run(SimDuration::from_secs(30));
            m.metrics().per_vm[0].instructions
        })
    });
}

fn full_sweep(c: &mut Criterion) {
    // One scheduler sweep (Credit, BRM, vProbe over the same workload)
    // through the same runner the repro binary uses; honors the parallel
    // fan-out, so on a multi-core host this also exercises `--jobs`.
    let opts = bench_opts();
    c.bench_function("hotloop/full_scheduler_sweep", |b| {
        b.iter(|| {
            run_all_schedulers(
                SetupKind::PaperEval,
                vec![npb::sp()],
                vec![npb::sp()],
                &opts,
            )
            .unwrap()
            .len()
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(10))
        .warm_up_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = hotloop;
    config = config();
    targets = step_quantum, run_30s, full_sweep
}
criterion_main!(hotloop);
