//! Micro-benchmarks of the hot kernels: the analyzer, Algorithm 1,
//! Algorithm 2's selection, and the memory engine's quantum resolution.
//! These are the operations a production hypervisor would run on the
//! scheduler fast path, so their absolute cost matters independently of
//! simulation throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mem_model::{AccessProfile, MemoryEngine, MissCurve, QuantumUsage};
use numa_topo::{presets, NodeId, PcpuId, VcpuId};
use pmu::PmuSample;
use sim_core::SimDuration;
use vprobe::{
    numa_aware_steal, partition_vcpus, Bounds, PartitionInput, PmuDataAnalyzer, VcpuType,
};
use xen_sim::StealContext;

fn analyzer_bench(c: &mut Criterion) {
    let analyzer = PmuDataAnalyzer::new(Bounds::default());
    let samples: Vec<PmuSample> = (0..64)
        .map(|i| PmuSample {
            instructions: 1_000_000 + i,
            llc_refs: 20_000,
            llc_misses: 9_000,
            local_accesses: 5_000,
            remote_accesses: 4_000,
            node_accesses: vec![5_000, 4_000],
        })
        .collect();
    c.bench_function("micro/analyze_64_vcpus", |b| {
        b.iter(|| analyzer.analyze(black_box(&samples)))
    });
}

fn partition_bench(c: &mut Criterion) {
    let inputs: Vec<PartitionInput> = (0..64)
        .map(|i| PartitionInput {
            vcpu: VcpuId::new(i),
            vcpu_type: if i % 3 == 0 {
                VcpuType::Thrashing
            } else {
                VcpuType::Fitting
            },
            affinity: Some(NodeId::new((i % 4) as u16)),
        })
        .collect();
    c.bench_function("micro/algorithm1_64_vcpus_4_nodes", |b| {
        b.iter(|| partition_vcpus(black_box(&inputs), 4))
    });
}

fn steal_bench(c: &mut Criterion) {
    let topo = presets::xeon_e5620();
    let victims: Vec<(PcpuId, usize, Vec<VcpuId>)> = (1..8)
        .map(|p| {
            let cands: Vec<VcpuId> = (0..4).map(|i| VcpuId::new(p as u32 * 8 + i)).collect();
            (PcpuId::new(p), 4, cands)
        })
        .collect();
    let pressure: Vec<f64> = (0..64).map(|i| (i % 23) as f64).collect();
    c.bench_function("micro/algorithm2_selection", |b| {
        b.iter(|| {
            numa_aware_steal(black_box(&StealContext {
                topo: &topo,
                idle_pcpu: PcpuId::new(0),
                victims: &victims,
                pressure: &pressure,
                would_idle: true,
            }))
        })
    });
}

fn engine_bench(c: &mut Criterion) {
    let topo = presets::xeon_e5620();
    let mut engine = MemoryEngine::new(&topo);
    let profile = AccessProfile {
        rpti: 20.0,
        base_cpi: 1.0,
        miss_curve: MissCurve::new(0.1, 0.8, 16 * 1024 * 1024),
        mlp: 3.0,
        node_access_dist: vec![0.6, 0.4],
    };
    let usages: Vec<QuantumUsage> = (0..8)
        .map(|i| QuantumUsage {
            key: i,
            node: NodeId::new((i % 2) as u16),
            runtime_share: 1.0,
            profile: &profile,
            rpti_scale: 1.0,
            cold_miss_boost: 1.0,
            overhead_us: 0.0,
        })
        .collect();
    c.bench_function("micro/engine_quantum_8_pcpus", |b| {
        b.iter(|| engine.step(SimDuration::from_millis(1), black_box(&usages)))
    });
}

criterion_group!(micro, analyzer_bench, partition_bench, steal_bench, engine_bench);
criterion_main!(micro);
