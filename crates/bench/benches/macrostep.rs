//! Event-horizon macro-stepping versus the reference per-quantum stepper.
//!
//! Two machine shapes bracket the optimization: a *quiescent* machine
//! (noise-free, saturated, single-phase — the macro-stepper's best case,
//! where whole credit-accounting windows collapse into one engine solve)
//! and the repro sweep's *noisy* machine (default intensity noise pins the
//! horizon to one quantum, so both steppers should cost the same). Each is
//! benchmarked with the flag on and off; outputs are byte-identical either
//! way, so the delta is pure execution-strategy overhead or win.

use criterion::{criterion_group, Criterion};
use mem_model::AllocPolicy;
use numa_topo::presets;
use sim_core::{Json, SimDuration};
use workloads::{hungry, npb};
use xen_sim::{CreditPolicy, Machine, MachineBuilder, MachineConfig, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

fn quiescent_machine(macro_step: bool) -> Machine {
    let cfg = MachineConfig {
        intensity_noise_sd: 0.0,
        macro_step,
        ..MachineConfig::default()
    };
    MachineBuilder::new(presets::xeon_e5620())
        .config(cfg)
        .policy(Box::new(CreditPolicy::new()))
        .add_vm(VmConfig::new(
            "vm",
            8,
            8 * GB,
            AllocPolicy::MostFree,
            vec![hungry::hungry_loop(); 8],
        ))
        .build()
        .unwrap()
}

fn noisy_machine(macro_step: bool) -> Machine {
    let cfg = MachineConfig {
        macro_step,
        ..MachineConfig::default()
    };
    MachineBuilder::new(presets::xeon_e5620())
        .config(cfg)
        .policy(Box::new(CreditPolicy::new()))
        .add_vm(VmConfig::new("vm1", 8, 8 * GB, AllocPolicy::MostFree, vec![npb::lu()]))
        .add_vm(VmConfig::new("vm2", 8, 5 * GB, AllocPolicy::MostFree, vec![npb::lu()]))
        .add_vm(VmConfig::new(
            "vm3",
            8,
            GB,
            AllocPolicy::MostFree,
            vec![hungry::hungry_loop(); 8],
        ))
        .build()
        .unwrap()
}

fn bench_pair(c: &mut Criterion, label: &str, build: fn(bool) -> Machine) {
    for (mode, macro_step) in [("macro", true), ("per_quantum", false)] {
        c.bench_function(&format!("macrostep/{label}/{mode}"), |b| {
            b.iter(|| {
                let mut m = build(macro_step);
                m.run(SimDuration::from_secs(10));
                m.metrics().per_vm[0].instructions
            })
        });
    }
}

fn quiescent(c: &mut Criterion) {
    bench_pair(c, "quiescent_10s", quiescent_machine);
}

fn noisy(c: &mut Criterion) {
    bench_pair(c, "noisy_10s", noisy_machine);
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(10))
        .warm_up_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = macrostep;
    config = config();
    targets = quiescent, noisy
}

/// Median-of-3 wall clock of a 10 s simulated run.
fn timed_s(build: fn(bool) -> Machine, macro_step: bool) -> f64 {
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let mut m = build(macro_step);
            let t = std::time::Instant::now();
            m.run(SimDuration::from_secs(10));
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[1]
}

/// Merge the quiescent macro-vs-reference wall clocks into the repo-root
/// `BENCH_repro.json`, alongside the repro binary's sweep timings.
fn record_bench() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repro.json");
    let macro_s = timed_s(quiescent_machine, true);
    let per_quantum_s = timed_s(quiescent_machine, false);
    let round3 = |s: f64| (s * 1000.0).round() / 1000.0;
    let entry = Json::Obj(vec![
        ("macro_wall_ms".into(), Json::Num(round3(macro_s * 1000.0))),
        (
            "per_quantum_wall_ms".into(),
            Json::Num(round3(per_quantum_s * 1000.0)),
        ),
        (
            "speedup".into(),
            Json::Num(round3(per_quantum_s / macro_s.max(f64::MIN_POSITIVE))),
        ),
    ]);
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| Json::parse(&t).ok())
        .and_then(|j| match j {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        })
        .unwrap_or_default();
    let key = "macrostep_quiescent_10s".to_string();
    match doc.iter_mut().find(|(k, _)| *k == key) {
        Some(slot) => slot.1 = entry,
        None => doc.push((key, entry)),
    }
    if let Err(e) = std::fs::write(path, Json::Obj(doc).to_string_pretty()) {
        eprintln!("warning: cannot write {path}: {e}");
    } else {
        eprintln!("recorded macro-step wall clocks in {path}");
    }
}

fn main() {
    macrostep();
    record_bench();
}
