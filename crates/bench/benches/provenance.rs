//! Cost of decision provenance: disabled (the default every sweep runs
//! with) versus enabled (a `DecisionRecord` per placement/steal/
//! partition/page-migration/degrade decision), and enabled on top of
//! telemetry + trace (what the `trace` binary runs).
//!
//! The disabled path is the pinned claim: every recording site is one
//! branch on the enabled flag, so a provenance-disabled run must be
//! indistinguishable from the pre-provenance simulator. The recorded
//! numbers in `BENCH_repro.json` are the audit trail for that claim,
//! next to the matching `telemetry_noisy_10s` entry.

use criterion::{criterion_group, Criterion};
use mem_model::AllocPolicy;
use numa_topo::presets;
use sim_core::{Json, SimDuration};
use vprobe::{Bounds, VProbePolicy};
use workloads::{hungry, npb};
use xen_sim::{Machine, MachineBuilder, MachineConfig, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

/// Provenance instrumentation to apply to a run.
#[derive(Clone, Copy)]
enum Mode {
    Disabled,
    Enabled,
    EnabledFullObservability,
}

/// The telemetry bench's noisy machine shape, but under vProbe so the
/// partition/steal decision sites (the instrumented hot paths) all fire.
fn noisy_machine(mode: Mode) -> Machine {
    let topo = presets::xeon_e5620();
    let num_nodes = topo.num_nodes();
    let mut m = MachineBuilder::new(topo)
        .config(MachineConfig::default())
        .policy(Box::new(
            VProbePolicy::new(num_nodes, Bounds::default()).with_dynamic_bounds(),
        ))
        .add_vm(VmConfig::new("vm1", 8, 8 * GB, AllocPolicy::MostFree, vec![npb::lu()]))
        .add_vm(VmConfig::new("vm2", 8, 5 * GB, AllocPolicy::MostFree, vec![npb::lu()]))
        .add_vm(VmConfig::new(
            "vm3",
            8,
            GB,
            AllocPolicy::MostFree,
            vec![hungry::hungry_loop(); 8],
        ))
        .build()
        .unwrap();
    match mode {
        Mode::Disabled => {}
        Mode::Enabled => m.enable_provenance(2_000_000),
        Mode::EnabledFullObservability => {
            m.enable_provenance(2_000_000);
            m.enable_telemetry();
            m.enable_trace(2_000_000);
        }
    }
    m
}

fn modes(c: &mut Criterion) {
    for (label, mode) in [
        ("disabled", Mode::Disabled),
        ("enabled", Mode::Enabled),
        ("enabled_full", Mode::EnabledFullObservability),
    ] {
        c.bench_function(&format!("provenance/noisy_10s/{label}"), |b| {
            b.iter(|| {
                let mut m = noisy_machine(mode);
                m.run(SimDuration::from_secs(10));
                m.metrics().steals
            })
        });
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(10))
        .warm_up_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = provenance;
    config = config();
    targets = modes
}

/// Median-of-3 wall clock of a 10 s simulated run.
fn timed_s(mode: Mode) -> f64 {
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let mut m = noisy_machine(mode);
            let t = std::time::Instant::now();
            m.run(SimDuration::from_secs(10));
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[1]
}

/// Merge the disabled/enabled/full wall clocks into the repo-root
/// `BENCH_repro.json`.
fn record_bench() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repro.json");
    let disabled_s = timed_s(Mode::Disabled);
    let enabled_s = timed_s(Mode::Enabled);
    let full_s = timed_s(Mode::EnabledFullObservability);
    let round3 = |s: f64| (s * 1000.0).round() / 1000.0;
    let entry = Json::Obj(vec![
        ("disabled_wall_ms".into(), Json::Num(round3(disabled_s * 1000.0))),
        ("enabled_wall_ms".into(), Json::Num(round3(enabled_s * 1000.0))),
        ("enabled_full_wall_ms".into(), Json::Num(round3(full_s * 1000.0))),
        (
            "enabled_overhead_pct".into(),
            Json::Num(round3(
                (enabled_s / disabled_s.max(f64::MIN_POSITIVE) - 1.0) * 100.0,
            )),
        ),
    ]);
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| Json::parse(&t).ok())
        .and_then(|j| match j {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        })
        .unwrap_or_default();
    let key = "provenance_noisy_10s".to_string();
    match doc.iter_mut().find(|(k, _)| *k == key) {
        Some(slot) => slot.1 = entry,
        None => doc.push((key, entry)),
    }
    if let Err(e) = std::fs::write(path, Json::Obj(doc).to_string_pretty()) {
        eprintln!("warning: cannot write {path}: {e}");
    } else {
        eprintln!("recorded provenance wall clocks in {path}");
    }
}

fn main() {
    provenance();
    record_bench();
}
