//! One benchmark group per paper artifact. Each group first regenerates
//! the artifact's rows (printed into the bench log, so `cargo bench`
//! doubles as the reproduction run) and then times a representative slice
//! of the experiment as the measured kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::runner::{run_workload, Scheduler, SetupKind};
use experiments::{
    fig1_remote_ratio, fig3_bounds, fig4_spec, fig5_npb, fig6_memcached, fig7_redis, fig8_period,
    table3_overhead,
};
use vprobe_bench::{bench_opts, print_once};
use workloads::{npb, speccpu};

fn fig1(c: &mut Criterion) {
    let opts = bench_opts();
    let rows = fig1_remote_ratio::run(&opts).expect("fig1");
    print_once("Fig. 1", &fig1_remote_ratio::render(&rows).to_text());
    c.bench_function("fig1/credit_remote_ratio_librq", |b| {
        b.iter(|| {
            run_workload(
                Scheduler::Credit,
                SetupKind::Motivation,
                vec![speccpu::libquantum(); 4],
                vec![speccpu::libquantum(); 4],
                &opts,
            )
            .unwrap()
            .remote_ratio
        })
    });
}

fn fig3(c: &mut Criterion) {
    let opts = bench_opts();
    let rows = fig3_bounds::run(&opts).expect("fig3");
    assert!(fig3_bounds::bounds_consistent(&rows, vprobe::Bounds::default()));
    print_once("Fig. 3", &fig3_bounds::render(&rows).to_text());
    let lu = npb::lu();
    c.bench_function("fig3/solo_pinned_lu", |b| {
        b.iter(|| fig3_bounds::run_one(&lu, &opts).unwrap().rpti)
    });
}

fn fig4(c: &mut Criterion) {
    let opts = bench_opts();
    let results = fig4_spec::run(&opts).expect("fig4");
    print_once("Fig. 4", &fig4_spec::render(&results, "Fig. 4").to_text());
    c.bench_function("fig4/vprobe_on_soplex", |b| {
        b.iter(|| {
            run_workload(
                Scheduler::VProbe,
                SetupKind::PaperEval,
                vec![speccpu::soplex(); 4],
                vec![speccpu::soplex(); 4],
                &opts,
            )
            .unwrap()
            .instr_rate
        })
    });
}

fn fig5(c: &mut Criterion) {
    let opts = bench_opts();
    let results = fig5_npb::run(&opts).expect("fig5");
    print_once("Fig. 5", &fig5_npb::render(&results).to_text());
    c.bench_function("fig5/vprobe_on_sp", |b| {
        b.iter(|| {
            run_workload(
                Scheduler::VProbe,
                SetupKind::PaperEval,
                vec![npb::sp()],
                vec![npb::sp()],
                &opts,
            )
            .unwrap()
            .instr_rate
        })
    });
}

fn fig6(c: &mut Criterion) {
    let opts = bench_opts();
    let pts = fig6_memcached::run_levels(&[16, 48, 80, 112], &opts).expect("fig6");
    print_once("Fig. 6 (subset)", &fig6_memcached::render(&pts).to_text());
    c.bench_function("fig6/memcached_c80_sweep", |b| {
        b.iter(|| fig6_memcached::run_levels(&[80], &opts).unwrap().len())
    });
}

fn fig7(c: &mut Criterion) {
    let opts = bench_opts();
    let pts = fig7_redis::run_levels(&[2_000, 6_000, 10_000], &opts).expect("fig7");
    print_once("Fig. 7 (subset)", &fig7_redis::render(&pts).to_text());
    c.bench_function("fig7/redis_k2000_sweep", |b| {
        b.iter(|| fig7_redis::run_levels(&[2_000], &opts).unwrap().len())
    });
}

fn table3(c: &mut Criterion) {
    let opts = bench_opts();
    let rows = table3_overhead::run(&opts).expect("table3");
    assert!(table3_overhead::shape_holds(&rows), "{rows:?}");
    print_once("Table III", &table3_overhead::render(&rows).to_text());
    c.bench_function("table3/overhead_4vms", |b| {
        b.iter(|| table3_overhead::run_one(4, &opts).unwrap().overhead_percent)
    });
}

fn fig8(c: &mut Criterion) {
    let opts = bench_opts();
    let pts = fig8_period::run_periods(&[0.1, 0.5, 1.0, 2.0, 10.0], &opts).expect("fig8");
    print_once("Fig. 8 (subset)", &fig8_period::render(&pts).to_text());
    c.bench_function("fig8/mix_at_1s_period", |b| {
        b.iter(|| {
            run_workload(
                Scheduler::VProbe,
                SetupKind::PaperEval,
                speccpu::mix(),
                speccpu::mix(),
                &opts,
            )
            .unwrap()
            .instr_rate
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(12))
        .warm_up_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = figures;
    config = config();
    targets = fig1, fig3, fig4, fig5, fig6, fig7, table3, fig8
}
criterion_main!(figures);
