//! Shared helpers for the benchmark targets.

use experiments::runner::RunOptions;
use sim_core::SimDuration;

/// Window sizes used inside Criterion iterations: long enough to cross
/// several sampling periods (so every scheduler mechanism fires), short
/// enough that a benchmark run stays interactive.
pub fn bench_opts() -> RunOptions {
    RunOptions {
        duration: SimDuration::from_secs(6),
        warmup: SimDuration::from_secs(3),
        ..RunOptions::default()
    }
}

/// Print a regenerated artifact once per bench target so `cargo bench`
/// output contains the paper's rows next to the timing numbers.
pub fn print_once(title: &str, body: &str) {
    println!("\n================ {title} ================");
    println!("{body}");
}
