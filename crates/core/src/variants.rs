//! The paper's evaluated scheduler set (§V-A2).
//!
//! * **vProbe** — analyzer + partitioning + NUMA-aware load balance;
//! * **VCPU-P** — partitioning only (stock Credit stealing), used to show
//!   that ignoring the load-balance strategy leaves performance behind;
//! * **LB** — NUMA-aware stealing only (no partitioning), used to show
//!   that ignoring balanced LLC contention leaves performance behind;
//! * Credit lives in `xen_sim::CreditPolicy`; BRM in [`crate::brm`].

use crate::bounds::Bounds;
use crate::degrade::DegradeConfig;
use crate::scheduler::VProbePolicy;

/// The full vProbe scheduler.
pub fn vprobe(num_nodes: usize, bounds: Bounds) -> VProbePolicy {
    VProbePolicy::with_mechanisms(num_nodes, bounds, true, true, "vprobe")
}

/// VCPU periodical partitioning only.
pub fn vcpu_p(num_nodes: usize, bounds: Bounds) -> VProbePolicy {
    VProbePolicy::with_mechanisms(num_nodes, bounds, true, false, "vcpu-p")
}

/// NUMA-aware load balance only.
pub fn lb_only(num_nodes: usize, bounds: Bounds) -> VProbePolicy {
    VProbePolicy::with_mechanisms(num_nodes, bounds, false, true, "lb")
}

/// vProbe hardened with the graceful-degradation layer (robustness
/// extension): confidence-gated partitioning, Credit fallback on PMU
/// outage, bounded migration retries. Identical to [`vprobe`] on clean
/// input.
pub fn vprobe_gd(num_nodes: usize, bounds: Bounds) -> VProbePolicy {
    vprobe(num_nodes, bounds).with_degradation(DegradeConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xen_sim::SchedPolicy;

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(vprobe(2, Bounds::default()).name(), "vprobe");
        assert_eq!(vcpu_p(2, Bounds::default()).name(), "vcpu-p");
        assert_eq!(lb_only(2, Bounds::default()).name(), "lb");
        assert_eq!(vprobe_gd(2, Bounds::default()).name(), "vprobe-gd");
    }
}
