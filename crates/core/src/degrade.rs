//! Graceful degradation under unreliable PMU data and flaky migrations.
//!
//! The paper's vProbe trusts its analyzer inputs unconditionally; this
//! module adds the defensive layer a production scheduler needs when the
//! counter pipeline loses samples or the hypervisor fails migrations:
//!
//! * **confidence gating** — a period whose mean sample validity falls
//!   below a threshold is skipped outright, and individual VCPUs with
//!   invalid samples are dampened (excluded from partitioning, their
//!   existing pins left untouched) even in accepted periods;
//! * **Credit fallback** — after N consecutive low-validity periods the
//!   policy stops partitioning and steals like stock Credit until the PMU
//!   stream recovers;
//! * **bounded retry with backoff** — migrations the machine reports as
//!   failed are re-requested after an exponentially growing number of
//!   periods, up to a retry cap.
//!
//! [`DegradeState`] is pure bookkeeping driven by
//! [`xen_sim::PeriodFeedback`]; it draws no randomness, so a policy with
//! degradation enabled stays bit-deterministic.

use numa_topo::{NodeId, VcpuId};
use xen_sim::PeriodFeedback;

/// Tunables for the degradation layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeConfig {
    /// Minimum mean sample validity for a period to be acted on; also the
    /// per-VCPU validity cutoff for dampening.
    pub validity_threshold: f64,
    /// Consecutive below-threshold periods before falling back to plain
    /// Credit behaviour.
    pub dark_periods_to_fallback: u32,
    /// Retry attempts per failed migration before giving up.
    pub max_retries: u32,
    /// Backoff before the first retry, in sampling periods; doubles with
    /// every further attempt.
    pub backoff_periods: u32,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            validity_threshold: 0.5,
            dark_periods_to_fallback: 3,
            max_retries: 3,
            backoff_periods: 1,
        }
    }
}

#[derive(Debug, Clone)]
struct RetryEntry {
    vcpu: VcpuId,
    node: NodeId,
    attempts: u32,
    /// Period number at which the next attempt is due.
    due: u64,
    /// True while a retry has been issued and its outcome is unknown.
    in_flight: bool,
}

/// Degradation bookkeeping fed by per-period health signals.
#[derive(Debug, Clone)]
pub struct DegradeState {
    cfg: DegradeConfig,
    /// Periods observed so far (the retry clock).
    period: u64,
    dark_streak: u32,
    in_fallback: bool,
    entered_this_period: bool,
    mean_validity: f64,
    validity: Vec<f64>,
    retries: Vec<RetryEntry>,
}

impl DegradeState {
    pub fn new(cfg: DegradeConfig) -> Self {
        DegradeState {
            cfg,
            period: 0,
            dark_streak: 0,
            in_fallback: false,
            entered_this_period: false,
            mean_validity: 1.0,
            validity: Vec::new(),
            retries: Vec::new(),
        }
    }

    pub fn config(&self) -> &DegradeConfig {
        &self.cfg
    }

    /// Currently degraded to plain-Credit behaviour?
    pub fn in_fallback(&self) -> bool {
        self.in_fallback
    }

    /// Did this period's feedback trigger the fallback transition?
    pub fn entered_this_period(&self) -> bool {
        self.entered_this_period
    }

    /// Mean sample validity of the period just ended (1.0 before the
    /// first feedback).
    pub fn mean_validity(&self) -> f64 {
        self.mean_validity
    }

    /// Should this period's analysis be skipped entirely?
    pub fn period_invalid(&self) -> bool {
        self.mean_validity < self.cfg.validity_threshold
    }

    /// Is this VCPU's latest sample trustworthy? (Unknown VCPUs are
    /// trusted — degradation must never disable a policy by default.)
    pub fn vcpu_valid(&self, vcpu: usize) -> bool {
        self.validity
            .get(vcpu)
            .is_none_or(|&v| v >= self.cfg.validity_threshold)
    }

    /// Ingest one period's health signals: update validity and the
    /// fallback state machine, then fold failed migrations into the retry
    /// ledger (success removes an in-flight entry, failure re-arms it
    /// with doubled backoff, exhaustion drops it).
    pub fn on_feedback(&mut self, fb: &PeriodFeedback<'_>) {
        self.period += 1;
        self.validity.clear();
        self.validity.extend_from_slice(fb.sample_validity);
        self.mean_validity = if self.validity.is_empty() {
            1.0
        } else {
            self.validity.iter().sum::<f64>() / self.validity.len() as f64
        };

        self.entered_this_period = false;
        if self.period_invalid() {
            self.dark_streak += 1;
            if !self.in_fallback && self.dark_streak >= self.cfg.dark_periods_to_fallback {
                self.in_fallback = true;
                self.entered_this_period = true;
            }
        } else {
            self.dark_streak = 0;
            self.in_fallback = false;
        }

        // In-flight retries that did not fail again succeeded.
        let failed = fb.failed_migrations;
        self.retries
            .retain(|e| !e.in_flight || failed.iter().any(|&(v, _)| v == e.vcpu));
        let period = self.period;
        let max_retries = self.cfg.max_retries;
        let backoff_base = self.cfg.backoff_periods;
        let backoff = |attempts: u32| u64::from(backoff_base) << (attempts - 1).min(16);
        for &(vcpu, node) in failed {
            match self.retries.iter_mut().find(|e| e.vcpu == vcpu) {
                Some(e) => {
                    e.attempts += 1;
                    e.in_flight = false;
                    if e.attempts > max_retries {
                        self.retries.retain(|x| x.vcpu != vcpu);
                    } else {
                        e.node = node;
                        e.due = period + backoff(e.attempts);
                    }
                }
                None => {
                    let due = period + backoff(1);
                    self.retries.push(RetryEntry {
                        vcpu,
                        node,
                        attempts: 1,
                        due,
                        in_flight: false,
                    });
                }
            }
        }
    }

    /// Retries whose backoff has elapsed; each is marked in-flight until
    /// the next feedback resolves it.
    pub fn take_due_retries(&mut self) -> Vec<(VcpuId, NodeId)> {
        let period = self.period;
        self.retries
            .iter_mut()
            .filter(|e| !e.in_flight && e.due <= period)
            .map(|e| {
                e.in_flight = true;
                (e.vcpu, e.node)
            })
            .collect()
    }

    /// Failed migrations currently awaiting a retry.
    pub fn pending_retries(&self) -> usize {
        self.retries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feedback(state: &mut DegradeState, validity: &[f64], failed: &[(VcpuId, NodeId)]) {
        state.on_feedback(&PeriodFeedback {
            sample_validity: validity,
            failed_migrations: failed,
        });
    }

    #[test]
    fn clean_periods_never_degrade() {
        let mut d = DegradeState::new(DegradeConfig::default());
        for _ in 0..10 {
            feedback(&mut d, &[1.0, 1.0, 1.0], &[]);
            assert!(!d.period_invalid());
            assert!(!d.in_fallback());
            assert!(d.vcpu_valid(0));
        }
        assert_eq!(d.pending_retries(), 0);
    }

    #[test]
    fn low_validity_skips_then_falls_back() {
        let mut d = DegradeState::new(DegradeConfig::default());
        feedback(&mut d, &[0.0, 0.0], &[]);
        assert!(d.period_invalid(), "first dark period is skipped");
        assert!(!d.in_fallback(), "one dark period is not an outage");
        feedback(&mut d, &[0.0, 0.0], &[]);
        assert!(!d.in_fallback());
        feedback(&mut d, &[0.0, 0.0], &[]);
        assert!(d.in_fallback(), "third consecutive dark period");
        assert!(d.entered_this_period());
        feedback(&mut d, &[0.0, 0.0], &[]);
        assert!(d.in_fallback());
        assert!(!d.entered_this_period(), "entry flag is one-shot");
        // Stream recovers: fallback exits immediately.
        feedback(&mut d, &[1.0, 1.0], &[]);
        assert!(!d.in_fallback());
        assert!(!d.period_invalid());
    }

    #[test]
    fn per_vcpu_dampening_tracks_validity() {
        let mut d = DegradeState::new(DegradeConfig::default());
        feedback(&mut d, &[1.0, 0.0, 1.0], &[]);
        assert!(!d.period_invalid(), "2/3 valid is above threshold");
        assert!(d.vcpu_valid(0));
        assert!(!d.vcpu_valid(1));
        assert!(d.vcpu_valid(2));
        assert!(d.vcpu_valid(99), "unknown VCPUs are trusted");
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let cfg = DegradeConfig {
            max_retries: 3,
            backoff_periods: 1,
            ..DegradeConfig::default()
        };
        let mut d = DegradeState::new(cfg);
        let vcpu = VcpuId::new(4);
        let node = NodeId::new(1);

        // Attempt 1: fails at period 1, due at period 2.
        feedback(&mut d, &[1.0], &[(vcpu, node)]);
        assert_eq!(d.pending_retries(), 1);
        assert!(d.take_due_retries().is_empty(), "backoff not yet elapsed");
        feedback(&mut d, &[1.0], &[]);
        assert_eq!(d.take_due_retries(), vec![(vcpu, node)]);

        // The retry fails again: attempt 2, backoff doubles to 2 periods.
        feedback(&mut d, &[1.0], &[(vcpu, node)]);
        feedback(&mut d, &[1.0], &[]);
        assert!(d.take_due_retries().is_empty());
        feedback(&mut d, &[1.0], &[]);
        assert_eq!(d.take_due_retries(), vec![(vcpu, node)]);

        // Fails a third time (attempt 3), then a fourth failure exhausts
        // the cap and the entry is dropped.
        feedback(&mut d, &[1.0], &[(vcpu, node)]);
        assert_eq!(d.pending_retries(), 1);
        for _ in 0..4 {
            feedback(&mut d, &[1.0], &[]);
        }
        assert_eq!(d.take_due_retries(), vec![(vcpu, node)]);
        feedback(&mut d, &[1.0], &[(vcpu, node)]);
        assert_eq!(d.pending_retries(), 0, "retry budget exhausted");
    }

    #[test]
    fn successful_retry_clears_the_entry() {
        let mut d = DegradeState::new(DegradeConfig::default());
        let vcpu = VcpuId::new(2);
        let node = NodeId::new(0);
        feedback(&mut d, &[1.0], &[(vcpu, node)]);
        feedback(&mut d, &[1.0], &[]);
        assert_eq!(d.take_due_retries(), vec![(vcpu, node)]);
        // Next feedback reports no failure: the in-flight retry landed.
        feedback(&mut d, &[1.0], &[]);
        assert_eq!(d.pending_retries(), 0);
        assert!(d.take_due_retries().is_empty());
    }

    #[test]
    fn empty_validity_means_trusted() {
        let mut d = DegradeState::new(DegradeConfig::default());
        feedback(&mut d, &[], &[]);
        assert_eq!(d.mean_validity(), 1.0);
        assert!(!d.period_invalid());
    }

    #[test]
    fn validity_exactly_at_threshold_is_trusted() {
        // The gate is strict `<`: a period sitting exactly on the
        // threshold is acted on, and a VCPU exactly at the threshold is
        // not dampened. The boundary must not flap.
        let cfg = DegradeConfig::default();
        let mut d = DegradeState::new(cfg);
        feedback(&mut d, &[cfg.validity_threshold, cfg.validity_threshold], &[]);
        assert_eq!(d.mean_validity(), cfg.validity_threshold);
        assert!(!d.period_invalid());
        assert!(d.vcpu_valid(0));
        // Nudge one sample below: that VCPU is dampened but the period
        // mean may still pass.
        feedback(
            &mut d,
            &[cfg.validity_threshold - 1e-9, 1.0],
            &[],
        );
        assert!(!d.vcpu_valid(0));
        assert!(d.vcpu_valid(1));
        assert!(!d.period_invalid());
    }

    #[test]
    fn interrupted_dark_streak_never_falls_back() {
        // dark_periods_to_fallback - 1 dark periods, one clean period,
        // then more darkness: the streak restarts from zero, so fallback
        // needs the full consecutive run again.
        let cfg = DegradeConfig::default();
        assert_eq!(cfg.dark_periods_to_fallback, 3);
        let mut d = DegradeState::new(cfg);
        feedback(&mut d, &[0.0], &[]);
        feedback(&mut d, &[0.0], &[]);
        assert!(!d.in_fallback(), "streak of 2 is below the bar");
        feedback(&mut d, &[1.0], &[]);
        assert!(!d.in_fallback());
        feedback(&mut d, &[0.0], &[]);
        feedback(&mut d, &[0.0], &[]);
        assert!(!d.in_fallback(), "clean period reset the streak");
        feedback(&mut d, &[0.0], &[]);
        assert!(d.in_fallback(), "third consecutive dark period after reset");
    }

    #[test]
    fn recovery_immediately_followed_by_new_outage_restarts_hysteresis() {
        let cfg = DegradeConfig::default();
        let mut d = DegradeState::new(cfg);
        for _ in 0..3 {
            feedback(&mut d, &[0.0], &[]);
        }
        assert!(d.in_fallback());
        // One good period exits fallback...
        feedback(&mut d, &[1.0], &[]);
        assert!(!d.in_fallback());
        // ...and the very next dark period must NOT re-enter instantly:
        // the streak counter restarted, so the outage has to prove itself
        // again before partitioning is surrendered.
        feedback(&mut d, &[0.0], &[]);
        assert!(d.period_invalid(), "the dark period itself is still skipped");
        assert!(!d.in_fallback());
        feedback(&mut d, &[0.0], &[]);
        assert!(!d.in_fallback());
        feedback(&mut d, &[0.0], &[]);
        assert!(d.in_fallback());
        assert!(d.entered_this_period(), "fresh transition, fresh entry flag");
    }

    #[test]
    fn exhausted_vcpu_can_open_a_fresh_retry_ledger() {
        // Burn through the whole retry budget for one VCPU, then report a
        // brand-new failure for it: the old exhausted state must not leak
        // into the new fault — it gets a full budget again.
        let cfg = DegradeConfig {
            max_retries: 1,
            backoff_periods: 1,
            ..DegradeConfig::default()
        };
        let mut d = DegradeState::new(cfg);
        let vcpu = VcpuId::new(0);
        let node = NodeId::new(1);
        feedback(&mut d, &[1.0], &[(vcpu, node)]);
        feedback(&mut d, &[1.0], &[]);
        assert_eq!(d.take_due_retries(), vec![(vcpu, node)]);
        // The single allowed retry fails: entry dropped.
        feedback(&mut d, &[1.0], &[(vcpu, node)]);
        assert_eq!(d.pending_retries(), 0, "budget exhausted");
        // A new failure (e.g. after fleet-level churn re-pinned the VCPU)
        // opens a fresh entry with a fresh budget.
        let node2 = NodeId::new(0);
        feedback(&mut d, &[1.0], &[(vcpu, node2)]);
        assert_eq!(d.pending_retries(), 1);
        feedback(&mut d, &[1.0], &[]);
        assert_eq!(d.take_due_retries(), vec![(vcpu, node2)]);
    }

    #[test]
    fn fallback_exit_does_not_disturb_pending_retries() {
        // A migration failure recorded before an outage survives the
        // fallback round-trip and still fires once its backoff elapses.
        let mut d = DegradeState::new(DegradeConfig::default());
        let vcpu = VcpuId::new(3);
        let node = NodeId::new(1);
        feedback(&mut d, &[1.0], &[(vcpu, node)]);
        assert_eq!(d.pending_retries(), 1);
        for _ in 0..3 {
            feedback(&mut d, &[0.0], &[]);
        }
        assert!(d.in_fallback());
        assert_eq!(d.pending_retries(), 1, "outage does not drop the ledger");
        feedback(&mut d, &[1.0], &[]);
        assert!(!d.in_fallback());
        assert_eq!(d.take_due_retries(), vec![(vcpu, node)]);
    }
}
