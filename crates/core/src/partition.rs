//! VCPU periodical partitioning (paper §III-C, Algorithm 1).
//!
//! At the end of each sampling period, every memory-intensive VCPU
//! (LLC-thrashing or LLC-fitting) is reassigned to a node:
//!
//! 1. repeatedly pick **MIN-NODE**, the node with the fewest VCPUs
//!    reassigned so far (balancing LLC contention);
//! 2. prefer an unassigned **LLC-T** VCPU while any remain, then LLC-FI
//!    (the heaviest cache users get spread first);
//! 3. prefer a VCPU whose **memory node affinity is MIN-NODE** (avoiding
//!    remote accesses); if none, take from the *largest* remaining
//!    affinity group, which minimizes the size differences of the groups
//!    and so maximizes the chance later VCPUs land on their local node.
//!
//! LLC-friendly VCPUs are left to the default load balancer.

use crate::analyzer::VcpuType;
use numa_topo::{NodeId, VcpuId};
use std::collections::VecDeque;
use xen_sim::PartitionNote;

/// One memory-intensive VCPU to place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionInput {
    pub vcpu: VcpuId,
    pub vcpu_type: VcpuType,
    /// Eq. 1 affinity. `None` (no accesses this period) is treated as
    /// node 0, which only occurs for freshly-woken VCPUs.
    pub affinity: Option<NodeId>,
}

/// Algorithm 1. Returns `(vcpu, node)` in assignment order.
///
/// With `num_nodes == 0` there is nowhere to place anything, so the
/// result is empty. LLC-friendly inputs are ignored (callers normally
/// pre-filter, but robustness matters more than strictness here).
pub fn partition_vcpus(inputs: &[PartitionInput], num_nodes: usize) -> Vec<(VcpuId, NodeId)> {
    partition_vcpus_explained(inputs, num_nodes, false).0
}

/// Algorithm 1 with optional provenance: when `explain` is true, each
/// assignment also yields a [`PartitionNote`] naming the rule that placed
/// the VCPU ("min-load-local-group" when MIN-NODE still had a local
/// candidate of the preferred type, "min-load-displaced-max-group" when
/// the largest remaining affinity group was drained instead) and the
/// per-node load snapshot at decision time. The assignment sequence is
/// identical either way — notes are observation, not input.
pub fn partition_vcpus_explained(
    inputs: &[PartitionInput],
    num_nodes: usize,
    explain: bool,
) -> (Vec<(VcpuId, NodeId)>, Vec<PartitionNote>) {
    if num_nodes == 0 || inputs.is_empty() {
        return (Vec::new(), Vec::new());
    }
    // groupOfVc(c, p): FIFO per (type, affinity-node).
    let mut groups: Vec<Vec<VecDeque<VcpuId>>> =
        vec![vec![VecDeque::new(); num_nodes]; 2];
    let type_index = |t: VcpuType| match t {
        VcpuType::Thrashing => Some(0),
        VcpuType::Fitting => Some(1),
        VcpuType::Friendly => None,
    };
    let mut remaining = [0usize; 2];
    for inp in inputs {
        let Some(ti) = type_index(inp.vcpu_type) else {
            continue;
        };
        let node = inp.affinity.map(|n| n.index()).unwrap_or(0).min(num_nodes - 1);
        groups[ti][node].push_back(inp.vcpu);
        remaining[ti] += 1;
    }

    let mut load = vec![0usize; num_nodes];
    let mut out = Vec::with_capacity(remaining[0] + remaining[1]);
    let mut notes = Vec::new();
    while remaining[0] + remaining[1] > 0 {
        // Prefer LLC-T while any remain.
        let ti = if remaining[0] > 0 { 0 } else { 1 };
        // MIN-NODE: fewest reassigned VCPUs. The paper leaves the
        // tie-break unspecified; breaking ties toward a node that still
        // has *local* candidates of the current type serves the stated
        // goal ("preferentially allocating them to their local nodes")
        // without ever violating the balance property. Final tie: lowest
        // node id, for determinism.
        let min_node = (0..num_nodes)
            .min_by_key(|&n| (load[n], groups[ti][n].is_empty(), n))
            .expect("num_nodes > 0");
        // Prefer the group local to MIN-NODE; else the largest group.
        let source = if !groups[ti][min_node].is_empty() {
            min_node
        } else {
            (0..num_nodes)
                .max_by_key(|&n| (groups[ti][n].len(), std::cmp::Reverse(n)))
                .expect("num_nodes > 0")
        };
        let vcpu = groups[ti][source]
            .pop_front()
            .expect("chosen group is non-empty");
        if explain {
            notes.push(PartitionNote {
                vcpu,
                node: Some(NodeId::from_index(min_node)),
                rule: if source == min_node {
                    "min-load-local-group"
                } else {
                    "min-load-displaced-max-group"
                },
                candidates: (0..num_nodes).map(|n| (n, load[n] as u64)).collect(),
            });
        }
        remaining[ti] -= 1;
        load[min_node] += 1;
        out.push((vcpu, NodeId::from_index(min_node)));
    }
    (out, notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inp(id: u32, t: VcpuType, node: Option<u16>) -> PartitionInput {
        PartitionInput {
            vcpu: VcpuId::new(id),
            vcpu_type: t,
            affinity: node.map(NodeId::new),
        }
    }

    fn loads(assignments: &[(VcpuId, NodeId)], n: usize) -> Vec<usize> {
        let mut v = vec![0; n];
        for &(_, node) in assignments {
            v[node.index()] += 1;
        }
        v
    }

    #[test]
    fn zero_nodes_places_nothing() {
        let inputs = vec![inp(0, VcpuType::Thrashing, Some(0))];
        assert!(partition_vcpus(&inputs, 0).is_empty());
        assert!(partition_vcpus(&[], 2).is_empty());
    }

    #[test]
    fn every_vcpu_assigned_exactly_once() {
        let inputs: Vec<_> = (0..7)
            .map(|i| inp(i, VcpuType::Thrashing, Some((i % 2) as u16)))
            .collect();
        let got = partition_vcpus(&inputs, 2);
        assert_eq!(got.len(), 7);
        let mut ids: Vec<u32> = got.iter().map(|(v, _)| v.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn loads_are_balanced_within_one() {
        let inputs: Vec<_> = (0..9)
            .map(|i| inp(i, VcpuType::Fitting, Some(0)))
            .collect();
        let got = partition_vcpus(&inputs, 2);
        let l = loads(&got, 2);
        assert_eq!(l.iter().sum::<usize>(), 9);
        assert!(l.iter().max().unwrap() - l.iter().min().unwrap() <= 1, "{l:?}");
    }

    #[test]
    fn affinity_honored_when_balanced() {
        // Two VCPUs per node, affinities split: everyone should land local.
        let inputs = vec![
            inp(0, VcpuType::Thrashing, Some(0)),
            inp(1, VcpuType::Thrashing, Some(1)),
            inp(2, VcpuType::Fitting, Some(0)),
            inp(3, VcpuType::Fitting, Some(1)),
        ];
        let got = partition_vcpus(&inputs, 2);
        for (v, n) in got {
            let want = v.raw() % 2;
            assert_eq!(n.index() as u32, want, "vcpu {v} should be local");
        }
    }

    #[test]
    fn thrashing_assigned_before_fitting() {
        let inputs = vec![
            inp(0, VcpuType::Fitting, Some(0)),
            inp(1, VcpuType::Thrashing, Some(0)),
            inp(2, VcpuType::Fitting, Some(0)),
            inp(3, VcpuType::Thrashing, Some(0)),
        ];
        let got = partition_vcpus(&inputs, 2);
        let order: Vec<u32> = got.iter().map(|(v, _)| v.raw()).collect();
        // The two thrashers (1, 3) come first in assignment order.
        assert_eq!(&order[..2], &[1, 3]);
    }

    #[test]
    fn thrashers_spread_across_nodes_even_with_common_affinity() {
        // Four thrashers all local to node 0: balance forces two to node 1
        // (LLC balance beats locality, as in the paper).
        let inputs: Vec<_> = (0..4)
            .map(|i| inp(i, VcpuType::Thrashing, Some(0)))
            .collect();
        let got = partition_vcpus(&inputs, 2);
        assert_eq!(loads(&got, 2), vec![2, 2]);
    }

    #[test]
    fn friendly_vcpus_ignored() {
        let inputs = vec![
            inp(0, VcpuType::Friendly, Some(0)),
            inp(1, VcpuType::Thrashing, Some(1)),
        ];
        let got = partition_vcpus(&inputs, 2);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, VcpuId::new(1));
    }

    #[test]
    fn missing_affinity_defaults_to_node_zero_group() {
        let got = partition_vcpus(&[inp(0, VcpuType::Fitting, None)], 2);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, NodeId::new(0));
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(partition_vcpus(&[], 2).is_empty());
    }

    #[test]
    fn single_node_machine_pins_everything_there() {
        let inputs: Vec<_> = (0..3)
            .map(|i| inp(i, VcpuType::Thrashing, Some(0)))
            .collect();
        let got = partition_vcpus(&inputs, 1);
        assert!(got.iter().all(|&(_, n)| n == NodeId::new(0)));
    }

    #[test]
    fn explained_matches_plain_and_names_rules() {
        // Same scenario as max_group_source_when_min_node_group_empty:
        // assignments must be identical with explain on, and the displaced
        // VCPU gets the displaced rule.
        let inputs = vec![
            inp(0, VcpuType::Thrashing, Some(1)),
            inp(1, VcpuType::Thrashing, Some(1)),
            inp(2, VcpuType::Thrashing, Some(1)),
        ];
        let plain = partition_vcpus(&inputs, 2);
        let (explained, notes) = partition_vcpus_explained(&inputs, 2, true);
        assert_eq!(plain, explained);
        assert_eq!(notes.len(), 3);
        assert_eq!(notes[0].rule, "min-load-local-group");
        assert_eq!(notes[1].rule, "min-load-displaced-max-group");
        assert_eq!(notes[2].rule, "min-load-local-group");
        // Candidate loads snapshot decision time: second pick sees node 1
        // already holding one VCPU.
        assert_eq!(notes[1].candidates, vec![(0, 0), (1, 1)]);
        // Explain off yields no notes.
        let (_, none) = partition_vcpus_explained(&inputs, 2, false);
        assert!(none.is_empty());
    }

    #[test]
    fn max_group_source_when_min_node_group_empty() {
        // Three thrashers, all local to node 1. The tie-break sends
        // MIN-NODE to node 1 first (it has local candidates), then balance
        // forces one VCPU across to node 0.
        let inputs = vec![
            inp(0, VcpuType::Thrashing, Some(1)),
            inp(1, VcpuType::Thrashing, Some(1)),
            inp(2, VcpuType::Thrashing, Some(1)),
        ];
        let got = partition_vcpus(&inputs, 2);
        // First: MIN-NODE = node 1 (tie broken toward local candidates),
        // FIFO gives vcpu 0, kept local.
        assert_eq!(got[0], (VcpuId::new(0), NodeId::new(1)));
        // Second: MIN-NODE = node 0 (load 0 < 1); its group is empty, so
        // the max group (node 1's) is drained: vcpu 1 is displaced.
        assert_eq!(got[1], (VcpuId::new(1), NodeId::new(0)));
        // Third: tie at load 1 each; node 1 still has a local candidate.
        assert_eq!(got[2], (VcpuId::new(2), NodeId::new(1)));
        assert_eq!(loads(&got, 2), vec![1, 2]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_inputs() -> impl Strategy<Value = (Vec<PartitionInput>, usize)> {
        (1usize..5).prop_flat_map(|nodes| {
            let inputs = prop::collection::vec(
                (0u32..64, 0u8..2, 0u16..nodes as u16).prop_map(|(id, t, n)| PartitionInput {
                    vcpu: VcpuId::new(id),
                    vcpu_type: if t == 0 {
                        VcpuType::Thrashing
                    } else {
                        VcpuType::Fitting
                    },
                    affinity: Some(NodeId::new(n)),
                }),
                0..32,
            );
            (inputs, Just(nodes))
        })
    }

    proptest! {
        #[test]
        fn all_assigned_and_balanced((inputs, nodes) in arb_inputs()) {
            let got = partition_vcpus(&inputs, nodes);
            prop_assert_eq!(got.len(), inputs.len());
            let mut loads = vec![0usize; nodes];
            for &(_, n) in &got {
                prop_assert!(n.index() < nodes);
                loads[n.index()] += 1;
            }
            if !got.is_empty() {
                let max = *loads.iter().max().unwrap();
                let min = *loads.iter().min().unwrap();
                prop_assert!(max - min <= 1, "unbalanced: {:?}", loads);
            }
        }

        #[test]
        fn local_assignment_when_affinities_already_balanced(nodes in 1usize..4, per_node in 1usize..4) {
            // k VCPUs with affinity n for every node n: Algorithm 1 must
            // keep each one local.
            let mut inputs = Vec::new();
            let mut id = 0u32;
            for n in 0..nodes {
                for _ in 0..per_node {
                    inputs.push(PartitionInput {
                        vcpu: VcpuId::new(id),
                        vcpu_type: VcpuType::Thrashing,
                        affinity: Some(NodeId::new(n as u16)),
                    });
                    id += 1;
                }
            }
            let got = partition_vcpus(&inputs, nodes);
            for (v, assigned) in got {
                let want = (v.raw() as usize) / per_node;
                prop_assert_eq!(assigned.index(), want, "vcpu {} displaced", v);
            }
        }
    }
}
