//! The composed vProbe policy (and its single-mechanism variants).

use crate::analyzer::PmuDataAnalyzer;
use crate::balance::numa_aware_steal;
use crate::bounds::{Bounds, DynamicBounds};
use crate::degrade::{DegradeConfig, DegradeState};
use crate::partition::{partition_vcpus_explained, PartitionInput};
use numa_topo::{PcpuId, VcpuId};
use xen_sim::{
    AnalyzerView, DegradeReport, PageMigration, PartitionNote, PartitionPlan, PeriodFeedback,
    SchedPolicy, StealContext, VcpuAssignment,
};

/// vProbe: PMU data analyzer + VCPU periodical partitioning + NUMA-aware
/// load balance. Disabling one mechanism yields the paper's ablation
/// baselines VCPU-P and LB (see [`crate::variants`]).
pub struct VProbePolicy {
    analyzer: PmuDataAnalyzer,
    num_nodes: usize,
    partition_enabled: bool,
    numa_lb_enabled: bool,
    dynamic_bounds: Option<DynamicBounds>,
    /// §VI extension: per-period per-VCPU page-migration budget in bytes.
    page_migration_budget: Option<u64>,
    /// Graceful-degradation layer (confidence gating, Credit fallback,
    /// migration retries); `None` reproduces the paper's trusting vProbe.
    degrade: Option<DegradeState>,
    /// Explain mode: fill [`PartitionPlan::notes`] and answer
    /// [`SchedPolicy::explain_steal`]. Never alters any decision.
    explain: bool,
    name: String,
}

impl VProbePolicy {
    /// Full vProbe with static bounds.
    pub fn new(num_nodes: usize, bounds: Bounds) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        VProbePolicy {
            analyzer: PmuDataAnalyzer::new(bounds),
            num_nodes,
            partition_enabled: true,
            numa_lb_enabled: true,
            dynamic_bounds: None,
            page_migration_budget: None,
            degrade: None,
            explain: false,
            name: "vprobe".into(),
        }
    }

    pub(crate) fn with_mechanisms(
        num_nodes: usize,
        bounds: Bounds,
        partition: bool,
        numa_lb: bool,
        name: &str,
    ) -> Self {
        let mut p = VProbePolicy::new(num_nodes, bounds);
        p.partition_enabled = partition;
        p.numa_lb_enabled = numa_lb;
        p.name = name.into();
        p
    }

    /// Enable the §VI future-work page-migration extension: at each
    /// period, up to `bytes_per_period` of a misplaced memory-intensive
    /// VCPU's working memory is migrated toward its assigned node, so
    /// VCPUs that *must* run away from their memory (for LLC balance)
    /// gradually become local anyway.
    pub fn with_page_migration(mut self, bytes_per_period: u64) -> Self {
        self.page_migration_budget = Some(bytes_per_period);
        self.name = format!("{}-pm", self.name);
        self
    }

    /// Enable the §VI future-work dynamic-bounds extension.
    pub fn with_dynamic_bounds(mut self) -> Self {
        self.dynamic_bounds = Some(DynamicBounds::new(self.analyzer.bounds()));
        self.name = format!("{}-dyn", self.name);
        self
    }

    /// Enable graceful degradation: confidence-gated partitioning, plain
    /// Credit fallback after consecutive dark periods, and bounded
    /// retry-with-backoff for failed migrations.
    pub fn with_degradation(mut self, cfg: DegradeConfig) -> Self {
        self.degrade = Some(DegradeState::new(cfg));
        self.name = format!("{}-gd", self.name);
        self
    }

    pub fn bounds(&self) -> Bounds {
        self.analyzer.bounds()
    }
}

impl SchedPolicy for VProbePolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_sample(&mut self, view: AnalyzerView<'_>) -> PartitionPlan {
        // Degradation gates: a dark PMU stream drops us to plain Credit,
        // and a low-confidence period is skipped rather than acted on —
        // partitioning on lost samples would scatter VCPUs at random.
        let mut report = DegradeReport::default();
        if let Some(d) = &self.degrade {
            if d.in_fallback() {
                report.fallback_active = true;
                report.fallback_entered = d.entered_this_period();
                return PartitionPlan {
                    report,
                    ..PartitionPlan::default()
                };
            }
            if d.period_invalid() {
                report.period_skipped = true;
                return PartitionPlan {
                    report,
                    ..PartitionPlan::default()
                };
            }
        }
        let metas = self.analyzer.analyze(view.samples);
        if let Some(dyn_bounds) = &mut self.dynamic_bounds {
            let pressures: Vec<f64> = metas.iter().map(|m| m.pressure).collect();
            let updated = dyn_bounds.observe(&pressures);
            self.analyzer.set_bounds(updated);
        }
        if !self.partition_enabled {
            return PartitionPlan::none();
        }
        // Memory-intensive VCPUs go through Algorithm 1; friendly ones are
        // released to the default balancer. Dampening: VCPUs whose sample
        // this period is invalid are left wherever they are — neither
        // partitioned nor released on the strength of bad data.
        let vcpu_valid =
            |i: usize| -> bool { self.degrade.as_ref().is_none_or(|d| d.vcpu_valid(i)) };
        let inputs: Vec<PartitionInput> = metas
            .iter()
            .enumerate()
            .filter(|(i, m)| m.vcpu_type.is_memory_intensive() && vcpu_valid(*i))
            .map(|(i, m)| PartitionInput {
                vcpu: VcpuId::new(i as u32),
                vcpu_type: m.vcpu_type,
                affinity: m.affinity,
            })
            .collect();
        let (placed, mut notes) =
            partition_vcpus_explained(&inputs, self.num_nodes, self.explain);
        // §VI extension: when a memory-intensive VCPU is assigned a node
        // other than its memory's, move its pages toward the assignment
        // instead of leaving it remote forever.
        let mut page_migrations = Vec::new();
        if let Some(budget) = self.page_migration_budget {
            for &(vcpu, node) in &placed {
                let affinity = metas[vcpu.index()].affinity;
                if affinity.is_some() && affinity != Some(node) {
                    page_migrations.push(PageMigration {
                        vcpu,
                        to_node: node,
                        max_bytes: budget,
                    });
                }
            }
        }
        let mut assignments: Vec<VcpuAssignment> = placed
            .into_iter()
            .map(|(vcpu, node)| VcpuAssignment {
                vcpu,
                node: Some(node),
            })
            .collect();
        for (i, m) in metas.iter().enumerate() {
            if !m.vcpu_type.is_memory_intensive() && vcpu_valid(i) {
                let vcpu = VcpuId::new(i as u32);
                if view.vcpus[i].assigned_node.is_some() {
                    assignments.push(VcpuAssignment { vcpu, node: None });
                    if self.explain {
                        notes.push(PartitionNote {
                            vcpu,
                            node: None,
                            rule: "friendly-released",
                            candidates: Vec::new(),
                        });
                    }
                }
            }
        }
        // Re-request failed migrations whose backoff has elapsed, unless
        // this period's partitioning already re-placed the VCPU.
        if let Some(d) = &mut self.degrade {
            for (vcpu, node) in d.take_due_retries() {
                if !assignments.iter().any(|a| a.vcpu == vcpu) {
                    assignments.push(VcpuAssignment {
                        vcpu,
                        node: Some(node),
                    });
                    if self.explain {
                        notes.push(PartitionNote {
                            vcpu,
                            node: Some(node),
                            rule: "retry-after-backoff",
                            candidates: Vec::new(),
                        });
                    }
                }
                report.migration_retries += 1;
            }
        }
        // The paper's partitioning is a one-shot migration (soft): its
        // persistence across the period depends on the load-balance side
        // not dragging memory-intensive VCPUs back across nodes — exactly
        // the interplay the VCPU-P/LB ablation exposes.
        PartitionPlan {
            assignments,
            hard: false,
            page_migrations,
            report,
            notes,
        }
    }

    fn steal(&mut self, ctx: StealContext<'_>) -> Option<(PcpuId, VcpuId)> {
        // In fallback the NUMA-aware policy is suspended too: its inputs
        // (per-VCPU pressures) come from the same dark PMU stream.
        let fallback = self.degrade.as_ref().is_some_and(DegradeState::in_fallback);
        if self.numa_lb_enabled && !fallback {
            numa_aware_steal(&ctx)
        } else {
            // Stock Credit behaviour: first candidate in PCPU id order.
            for (pcpu, _, candidates) in ctx.victims {
                if let Some(&vcpu) = candidates.first() {
                    return Some((*pcpu, vcpu));
                }
            }
            None
        }
    }

    fn on_period_feedback(&mut self, fb: &PeriodFeedback<'_>) {
        if let Some(d) = &mut self.degrade {
            d.on_feedback(fb);
        }
    }

    fn uses_pmu(&self) -> bool {
        true
    }

    fn set_explain(&mut self, on: bool) {
        self.explain = on;
    }

    fn explain_steal(
        &self,
        ctx: &StealContext<'_>,
        choice: &Option<(PcpuId, VcpuId)>,
    ) -> &'static str {
        let fallback = self.degrade.as_ref().is_some_and(DegradeState::in_fallback);
        if !self.numa_lb_enabled || fallback {
            // Stock Credit path: first candidate in PCPU id order won.
            return "credit-first-fit";
        }
        match choice {
            None => "no-candidates",
            Some((victim, _)) => {
                let thief_node = ctx.topo.node_of_pcpu(ctx.idle_pcpu);
                if ctx.topo.node_of_pcpu(*victim) == thief_node {
                    // Algorithm 2 stage 1: heaviest local queue, then the
                    // VCPU with the smallest LLC pressure.
                    "local-heaviest-min-pressure"
                } else {
                    // Stage 2: only reached when the PCPU would otherwise
                    // idle; nearest remote node by distance.
                    "remote-would-idle"
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topo::{presets, NodeId};
    use pmu::PmuSample;
    use xen_sim::VcpuView;

    fn sample(instr: u64, refs: u64, node_accesses: Vec<u64>) -> PmuSample {
        let local = node_accesses.first().copied().unwrap_or(0);
        let remote: u64 = node_accesses.iter().skip(1).sum();
        PmuSample {
            instructions: instr,
            llc_refs: refs,
            llc_misses: refs / 2,
            local_accesses: local,
            remote_accesses: remote,
            node_accesses,
        }
    }

    fn views(n: usize) -> Vec<VcpuView> {
        (0..n)
            .map(|i| VcpuView {
                id: VcpuId::new(i as u32),
                vm: numa_topo::VmId::new(0),
                assigned_node: None,
            })
            .collect()
    }

    #[test]
    fn partitioning_pins_memory_intensive_vcpus() {
        let topo = presets::xeon_e5620();
        let mut p = VProbePolicy::new(2, Bounds::default());
        // vcpu0: thrashing, affinity node1; vcpu1: friendly; vcpu2:
        // fitting, affinity node0.
        let samples = vec![
            sample(1_000_000, 25_000, vec![100, 900]),
            sample(1_000_000, 500, vec![10, 0]),
            sample(1_000_000, 15_000, vec![800, 200]),
        ];
        let vs = views(3);
        let plan = p.on_sample(AnalyzerView {
            topo: &topo,
            samples: &samples,
            vcpus: &vs,
        });
        let a: std::collections::HashMap<u32, Option<NodeId>> = plan
            .assignments
            .iter()
            .map(|x| (x.vcpu.raw(), x.node))
            .collect();
        assert_eq!(a[&0], Some(NodeId::new(1)), "thrasher to its affinity node");
        assert_eq!(a[&2], Some(NodeId::new(0)), "fitting vcpu to its affinity node");
        assert!(!a.contains_key(&1), "friendly vcpu untouched");
    }

    #[test]
    fn friendly_vcpu_released_if_previously_pinned() {
        let topo = presets::xeon_e5620();
        let mut p = VProbePolicy::new(2, Bounds::default());
        let samples = vec![sample(1_000_000, 500, vec![10, 0])];
        let mut vs = views(1);
        vs[0].assigned_node = Some(NodeId::new(1));
        let plan = p.on_sample(AnalyzerView {
            topo: &topo,
            samples: &samples,
            vcpus: &vs,
        });
        assert_eq!(plan.assignments.len(), 1);
        assert_eq!(plan.assignments[0].node, None);
    }

    #[test]
    fn vcpu_p_variant_partitions_but_steals_like_credit() {
        let topo = presets::xeon_e5620();
        let mut p = crate::variants::vcpu_p(2, Bounds::default());
        assert_eq!(p.name(), "vcpu-p");
        // Steal picks the first candidate in PCPU order (Credit style),
        // ignoring pressure.
        let victims = vec![
            (PcpuId::new(1), 2, vec![VcpuId::new(5)]),
            (PcpuId::new(6), 9, vec![VcpuId::new(6)]),
        ];
        let mut pressure = vec![0.0; 8];
        pressure[5] = 100.0;
        let got = p.steal(StealContext {
            topo: &topo,
            idle_pcpu: PcpuId::new(7),
            victims: &victims,
            pressure: &pressure,
            would_idle: true,
        });
        assert_eq!(got, Some((PcpuId::new(1), VcpuId::new(5))));
    }

    #[test]
    fn lb_variant_never_partitions() {
        let topo = presets::xeon_e5620();
        let mut p = crate::variants::lb_only(2, Bounds::default());
        assert_eq!(p.name(), "lb");
        let samples = vec![sample(1_000_000, 25_000, vec![0, 100])];
        let vs = views(1);
        let plan = p.on_sample(AnalyzerView {
            topo: &topo,
            samples: &samples,
            vcpus: &vs,
        });
        assert!(plan.assignments.is_empty());
    }

    #[test]
    fn full_vprobe_steals_numa_aware() {
        let topo = presets::xeon_e5620();
        let mut p = crate::variants::vprobe(2, Bounds::default());
        assert_eq!(p.name(), "vprobe");
        // Local node (idle PCPU 0 = node0) candidate on PCPU 3 must win
        // over an earlier-id remote victim.
        let victims = vec![
            (PcpuId::new(5), 9, vec![VcpuId::new(1)]),
            (PcpuId::new(3), 2, vec![VcpuId::new(2)]),
        ];
        let pressure = vec![0.0; 8];
        let got = p.steal(StealContext {
            topo: &topo,
            idle_pcpu: PcpuId::new(0),
            victims: &victims,
            pressure: &pressure,
            would_idle: true,
        });
        assert_eq!(got, Some((PcpuId::new(3), VcpuId::new(2))));
    }

    #[test]
    fn dynamic_bounds_variant_adapts() {
        let topo = presets::xeon_e5620();
        let mut p = VProbePolicy::new(2, Bounds::default()).with_dynamic_bounds();
        assert_eq!(p.name(), "vprobe-dyn");
        let before = p.bounds();
        // Feed several periods of uniformly heavy pressure.
        for _ in 0..30 {
            let samples: Vec<PmuSample> = (0..6)
                .map(|_| sample(1_000_000, 30_000, vec![50, 50]))
                .collect();
            let vs = views(6);
            p.on_sample(AnalyzerView {
                topo: &topo,
                samples: &samples,
                vcpus: &vs,
            });
        }
        assert!(p.bounds().low > before.low);
    }

    #[test]
    fn uses_pmu_true_for_all_variants() {
        assert!(crate::variants::vprobe(2, Bounds::default()).uses_pmu());
        assert!(crate::variants::vcpu_p(2, Bounds::default()).uses_pmu());
        assert!(crate::variants::lb_only(2, Bounds::default()).uses_pmu());
        assert!(crate::variants::vprobe_gd(2, Bounds::default()).uses_pmu());
    }

    fn dark_feedback(p: &mut VProbePolicy, periods: usize) {
        for _ in 0..periods {
            p.on_period_feedback(&PeriodFeedback {
                sample_validity: &[0.0, 0.0],
                failed_migrations: &[],
            });
        }
    }

    #[test]
    fn single_dark_period_is_skipped_not_fallback() {
        let topo = presets::xeon_e5620();
        let mut p = crate::variants::vprobe_gd(2, Bounds::default());
        dark_feedback(&mut p, 1);
        let samples = vec![sample(1_000_000, 25_000, vec![100, 900])];
        let vs = views(1);
        let plan = p.on_sample(AnalyzerView {
            topo: &topo,
            samples: &samples,
            vcpus: &vs,
        });
        assert!(plan.assignments.is_empty());
        assert!(plan.report.period_skipped);
        assert!(!plan.report.fallback_active);
    }

    #[test]
    fn dark_streak_falls_back_to_credit_and_recovers() {
        let topo = presets::xeon_e5620();
        let mut p = crate::variants::vprobe_gd(2, Bounds::default());
        dark_feedback(&mut p, 3);
        let samples = vec![sample(1_000_000, 25_000, vec![100, 900])];
        let vs = views(1);
        let plan = p.on_sample(AnalyzerView {
            topo: &topo,
            samples: &samples,
            vcpus: &vs,
        });
        assert!(plan.assignments.is_empty());
        assert!(plan.report.fallback_active);
        assert!(plan.report.fallback_entered);
        // In fallback the steal path degrades to Credit's first-candidate
        // pick, ignoring NUMA locality.
        let victims = vec![
            (PcpuId::new(5), 9, vec![VcpuId::new(1)]),
            (PcpuId::new(3), 2, vec![VcpuId::new(2)]),
        ];
        let pressure = vec![0.0; 8];
        let got = p.steal(StealContext {
            topo: &topo,
            idle_pcpu: PcpuId::new(0),
            victims: &victims,
            pressure: &pressure,
            would_idle: true,
        });
        assert_eq!(got, Some((PcpuId::new(5), VcpuId::new(1))));
        // One healthy period exits fallback and partitioning resumes.
        p.on_period_feedback(&PeriodFeedback {
            sample_validity: &[1.0],
            failed_migrations: &[],
        });
        let plan = p.on_sample(AnalyzerView {
            topo: &topo,
            samples: &samples,
            vcpus: &vs,
        });
        assert!(!plan.report.fallback_active);
        assert_eq!(plan.assignments.len(), 1);
        assert_eq!(plan.assignments[0].node, Some(NodeId::new(1)));
    }

    #[test]
    fn invalid_vcpu_is_dampened_in_valid_period() {
        let topo = presets::xeon_e5620();
        let mut p = crate::variants::vprobe_gd(2, Bounds::default());
        // vcpu1's sample was lost; the period overall stays trusted.
        p.on_period_feedback(&PeriodFeedback {
            sample_validity: &[1.0, 0.0, 1.0],
            failed_migrations: &[],
        });
        // All three look thrashing, but vcpu1's data is known-bad.
        let samples = vec![
            sample(1_000_000, 25_000, vec![100, 900]),
            sample(1_000_000, 25_000, vec![900, 100]),
            sample(1_000_000, 25_000, vec![800, 200]),
        ];
        let vs = views(3);
        let plan = p.on_sample(AnalyzerView {
            topo: &topo,
            samples: &samples,
            vcpus: &vs,
        });
        assert!(!plan.report.period_skipped);
        assert!(plan.assignments.iter().any(|a| a.vcpu.raw() == 0));
        assert!(
            !plan.assignments.iter().any(|a| a.vcpu.raw() == 1),
            "vcpu with invalid sample must not be re-placed"
        );
        assert!(plan.assignments.iter().any(|a| a.vcpu.raw() == 2));
    }

    #[test]
    fn failed_migration_is_retried_after_backoff() {
        let topo = presets::xeon_e5620();
        let mut p = crate::variants::vprobe_gd(2, Bounds::default());
        let vcpu = VcpuId::new(0);
        let node = NodeId::new(1);
        p.on_period_feedback(&PeriodFeedback {
            sample_validity: &[1.0],
            failed_migrations: &[(vcpu, node)],
        });
        p.on_period_feedback(&PeriodFeedback {
            sample_validity: &[1.0],
            failed_migrations: &[],
        });
        // A friendly, unpinned VCPU: partitioning itself requests nothing,
        // so the only assignment is the retry.
        let samples = vec![sample(1_000_000, 500, vec![10, 0])];
        let vs = views(1);
        let plan = p.on_sample(AnalyzerView {
            topo: &topo,
            samples: &samples,
            vcpus: &vs,
        });
        assert_eq!(plan.report.migration_retries, 1);
        assert_eq!(plan.assignments.len(), 1);
        assert_eq!(plan.assignments[0].vcpu, vcpu);
        assert_eq!(plan.assignments[0].node, Some(node));
    }
}
