//! NUMA-aware load balance (paper §III-D, Algorithm 2).
//!
//! When a PCPU looks for work to steal it should disturb the LLC balance
//! as little as possible and avoid creating remote accesses:
//!
//! 1. check PCPUs of the **local node first**, then remote nodes in
//!    distance order (`nextNode()`);
//! 2. within a node, check the PCPU with the **heaviest workload** first
//!    (fewer context switches, keeps load even);
//! 3. from that run queue take the runnable VCPU with the **smallest LLC
//!    access pressure** — the one whose move perturbs LLC contention the
//!    least.

use numa_topo::{NodeId, PcpuId, VcpuId};
use xen_sim::StealContext;

/// Algorithm 2's selection: returns `(victim PCPU, VCPU)` or `None`.
///
/// `ctx.victims` already contains only stealable candidates; `ctx.pressure`
/// holds the last sampled LLC access pressure per VCPU.
pub fn numa_aware_steal(ctx: &StealContext<'_>) -> Option<(PcpuId, VcpuId)> {
    let local = ctx.topo.node_of_pcpu(ctx.idle_pcpu);
    let mut node_order: Vec<NodeId> = vec![local];
    // Remote nodes are only consulted when the PCPU would otherwise idle:
    // dragging a memory-intensive VCPU across the interconnect to serve a
    // mere priority upgrade is exactly the Credit behaviour vProbe exists
    // to avoid ("if there are no runnable VCPUs on the local node, it
    // steals ... to utilize available CPU resources").
    if ctx.would_idle {
        node_order.extend(ctx.topo.remote_nodes_by_distance(local));
    }

    for node in node_order {
        // PCPUs of this node, heaviest workload first (the paper's
        // loadList), ties to the lowest id for determinism.
        let mut members: Vec<&(PcpuId, usize, Vec<VcpuId>)> = ctx
            .victims
            .iter()
            .filter(|(p, _, _)| ctx.topo.node_of_pcpu(*p) == node)
            .collect();
        members.sort_by_key(|(p, workload, _)| (std::cmp::Reverse(*workload), p.index()));
        for (pcpu, _, candidates) in members {
            // Smallest LLC access pressure; queue order breaks ties.
            let best = candidates
                .iter()
                .copied()
                .enumerate()
                .min_by(|(i, a), (j, b)| {
                    ctx.pressure[a.index()]
                        .total_cmp(&ctx.pressure[b.index()])
                        .then(i.cmp(j))
                })
                .map(|(_, v)| v);
            if let Some(v) = best {
                return Some((*pcpu, v));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topo::presets;

    fn ctx<'a>(
        topo: &'a numa_topo::Topology,
        idle: u16,
        victims: &'a [(PcpuId, usize, Vec<VcpuId>)],
        pressure: &'a [f64],
    ) -> StealContext<'a> {
        StealContext {
            topo,
            idle_pcpu: PcpuId::new(idle),
            victims,
            pressure,
            would_idle: true,
        }
    }

    fn v(i: u32) -> VcpuId {
        VcpuId::new(i)
    }

    #[test]
    fn prefers_local_node_even_with_heavier_remote_queues() {
        let topo = presets::xeon_e5620();
        // Idle PCPU 0 (node0). PCPU 6 (node1) is much heavier, but PCPU 2
        // (node0) has a candidate — local wins.
        let victims = vec![
            (PcpuId::new(2), 2, vec![v(1)]),
            (PcpuId::new(6), 9, vec![v(2)]),
        ];
        let pressure = vec![0.0; 8];
        let got = numa_aware_steal(&ctx(&topo, 0, &victims, &pressure));
        assert_eq!(got, Some((PcpuId::new(2), v(1))));
    }

    #[test]
    fn heaviest_local_pcpu_checked_first() {
        let topo = presets::xeon_e5620();
        let victims = vec![
            (PcpuId::new(1), 2, vec![v(1)]),
            (PcpuId::new(2), 5, vec![v(2)]),
            (PcpuId::new(3), 3, vec![v(3)]),
        ];
        let pressure = vec![0.0; 8];
        let got = numa_aware_steal(&ctx(&topo, 0, &victims, &pressure));
        assert_eq!(got, Some((PcpuId::new(2), v(2))));
    }

    #[test]
    fn smallest_pressure_vcpu_stolen() {
        let topo = presets::xeon_e5620();
        let victims = vec![(PcpuId::new(1), 3, vec![v(0), v(1), v(2)])];
        let mut pressure = vec![0.0; 8];
        pressure[0] = 22.0;
        pressure[1] = 3.0;
        pressure[2] = 15.0;
        let got = numa_aware_steal(&ctx(&topo, 0, &victims, &pressure));
        assert_eq!(got, Some((PcpuId::new(1), v(1))));
    }

    #[test]
    fn falls_back_to_remote_node_when_local_empty() {
        let topo = presets::xeon_e5620();
        let victims = vec![
            (PcpuId::new(1), 4, vec![]),
            (PcpuId::new(5), 2, vec![v(9)]),
        ];
        let pressure = vec![0.0; 16];
        let got = numa_aware_steal(&ctx(&topo, 0, &victims, &pressure));
        assert_eq!(got, Some((PcpuId::new(5), v(9))));
    }

    #[test]
    fn nothing_to_steal_returns_none() {
        let topo = presets::xeon_e5620();
        let victims = vec![(PcpuId::new(1), 0, vec![]), (PcpuId::new(5), 0, vec![])];
        let got = numa_aware_steal(&ctx(&topo, 0, &victims, &[]));
        assert_eq!(got, None);
    }

    #[test]
    fn upgrade_steals_never_cross_nodes() {
        // A PCPU that still holds OVER work (would_idle = false) must not
        // steal from a remote node even if that is the only candidate.
        let topo = presets::xeon_e5620();
        let victims = vec![(PcpuId::new(5), 2, vec![v(9)])];
        let pressure = vec![0.0; 16];
        let mut c = ctx(&topo, 0, &victims, &pressure);
        c.would_idle = false;
        assert_eq!(numa_aware_steal(&c), None);
        c.would_idle = true;
        assert_eq!(numa_aware_steal(&c), Some((PcpuId::new(5), v(9))));
    }

    #[test]
    fn remote_steal_also_picks_smallest_pressure() {
        let topo = presets::xeon_e5620();
        let victims = vec![(PcpuId::new(6), 3, vec![v(3), v(4)])];
        let mut pressure = vec![0.0; 8];
        pressure[3] = 25.0;
        pressure[4] = 1.0;
        // Idle PCPU 1 is node0; only node1 offers work.
        let got = numa_aware_steal(&ctx(&topo, 1, &victims, &pressure));
        assert_eq!(got, Some((PcpuId::new(6), v(4))));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use numa_topo::presets;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn choice_is_always_a_listed_candidate(
            candidate_sets in prop::collection::vec(
                (0u16..8, prop::collection::vec(0u32..64, 0..4)),
                0..8,
            ),
            idle in 0u16..8,
            would_idle in any::<bool>(),
        ) {
            let topo = presets::xeon_e5620();
            // One victim entry per PCPU, as the machine guarantees.
            let mut seen = std::collections::HashSet::new();
            let victims: Vec<(PcpuId, usize, Vec<VcpuId>)> = candidate_sets
                .iter()
                .filter(|(p, _)| seen.insert(*p))
                .map(|(p, cs)| {
                    (
                        PcpuId::new(*p),
                        cs.len(),
                        cs.iter().map(|&c| VcpuId::new(c)).collect(),
                    )
                })
                .collect();
            let pressure = vec![1.0; 64];
            let ctx = StealContext {
                topo: &topo,
                idle_pcpu: PcpuId::new(idle),
                victims: &victims,
                pressure: &pressure,
                would_idle,
            };
            if let Some((victim, vcpu)) = numa_aware_steal(&ctx) {
                let set = victims.iter().find(|(p, _, _)| *p == victim);
                prop_assert!(set.is_some(), "victim must be listed");
                prop_assert!(set.unwrap().2.contains(&vcpu), "vcpu must be a candidate");
                // Upgrade steals never leave the local node.
                if !would_idle {
                    prop_assert_eq!(
                        topo.node_of_pcpu(victim),
                        topo.node_of_pcpu(PcpuId::new(idle))
                    );
                }
            } else if would_idle {
                // None only when every candidate list is empty.
                prop_assert!(victims.iter().all(|(_, _, c)| c.is_empty()));
            }
        }

        #[test]
        fn local_minimum_pressure_is_selected(
            pressures in prop::collection::vec(0.0f64..40.0, 4),
        ) {
            let topo = presets::xeon_e5620();
            let cands: Vec<VcpuId> = (0..4).map(VcpuId::new).collect();
            let victims = vec![(PcpuId::new(1), 4, cands)];
            let ctx = StealContext {
                topo: &topo,
                idle_pcpu: PcpuId::new(0),
                victims: &victims,
                pressure: &pressures,
                would_idle: false,
            };
            let (_, chosen) = numa_aware_steal(&ctx).expect("candidates exist");
            let min = pressures
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
            prop_assert!((pressures[chosen.index()] - min).abs() < 1e-12);
        }
    }
}
