//! Classification bounds for VCPU types (Eq. 3).
//!
//! The paper determines `low = 3` and `high = 20` empirically (§IV-A,
//! Fig. 3): LLC-friendly programs measured below 3 LLC references per
//! thousand instructions (povray 0.48, ep 2.01), LLC-fitting ones between
//! (lu 15.38, mg 16.33), and LLC-thrashing ones above 20 (milc 21.68,
//! libquantum 22.41). §VI lists *dynamic* bounds as future work; a
//! quantile-tracking implementation is provided here as [`DynamicBounds`].


/// Static classification bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Below: LLC-friendly. The paper's value is 3.
    pub low: f64,
    /// At or above: LLC-thrashing. The paper's value is 20.
    pub high: f64,
    /// Eq. 2's α scale (the paper uses 1000, making the pressure an RPTI).
    pub alpha: f64,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            low: 3.0,
            high: 20.0,
            alpha: 1_000.0,
        }
    }
}

impl Bounds {
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low >= 0.0 && high >= low, "need 0 <= low <= high");
        Bounds {
            low,
            high,
            alpha: 1_000.0,
        }
    }
}

/// Future-work extension (§VI): adapt `low`/`high` to the running workload
/// by tracking the observed pressure distribution and placing the bounds at
/// fixed quantiles, clamped to sane floors so an all-friendly machine does
/// not classify noise as thrashing.
#[derive(Debug, Clone)]
pub struct DynamicBounds {
    /// Quantile targeted by `low` (default 0.2).
    pub low_quantile: f64,
    /// Quantile targeted by `high` (default 0.6).
    pub high_quantile: f64,
    /// Exponential smoothing factor for bound updates.
    pub smoothing: f64,
    current: Bounds,
}

impl DynamicBounds {
    pub fn new(initial: Bounds) -> Self {
        DynamicBounds {
            low_quantile: 0.2,
            high_quantile: 0.6,
            smoothing: 0.3,
            current: initial,
        }
    }

    pub fn current(&self) -> Bounds {
        self.current
    }

    /// Update the bounds from this period's nonzero pressures.
    pub fn observe(&mut self, pressures: &[f64]) -> Bounds {
        let mut busy: Vec<f64> = pressures.iter().copied().filter(|&p| p > 0.0).collect();
        if busy.len() < 4 {
            return self.current; // not enough signal to adapt
        }
        busy.sort_by(f64::total_cmp);
        let q = |f: f64| {
            let idx = ((busy.len() - 1) as f64 * f).round() as usize;
            busy[idx]
        };
        // Floors keep the bounds meaningful on homogeneous workloads.
        let target_low = q(self.low_quantile).max(1.0);
        let target_high = q(self.high_quantile).max(target_low + 1.0);
        let s = self.smoothing;
        self.current.low = (1.0 - s) * self.current.low + s * target_low;
        self.current.high = (1.0 - s) * self.current.high + s * target_high;
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let b = Bounds::default();
        assert_eq!(b.low, 3.0);
        assert_eq!(b.high, 20.0);
        assert_eq!(b.alpha, 1_000.0);
    }

    #[test]
    #[should_panic(expected = "low <= high")]
    fn rejects_inverted_bounds() {
        Bounds::new(10.0, 5.0);
    }

    #[test]
    fn dynamic_bounds_track_distribution() {
        let mut d = DynamicBounds::new(Bounds::default());
        // A machine full of heavy workloads: bounds should drift upward.
        let pressures = vec![25.0, 28.0, 30.0, 35.0, 40.0, 45.0];
        for _ in 0..50 {
            d.observe(&pressures);
        }
        let b = d.current();
        assert!(b.low > 20.0, "low should adapt upward: {}", b.low);
        assert!(b.high > b.low);
    }

    #[test]
    fn dynamic_bounds_ignore_sparse_signal() {
        let mut d = DynamicBounds::new(Bounds::default());
        let before = d.current();
        d.observe(&[10.0, 0.0, 0.0]);
        assert_eq!(d.current(), before);
    }

    #[test]
    fn dynamic_bounds_ignore_idle_vcpus() {
        let mut d = DynamicBounds::new(Bounds::default());
        // Many idle VCPUs plus a few busy ones: zeros must not drag the
        // quantiles to zero.
        let pressures = vec![0.0, 0.0, 0.0, 0.0, 15.0, 16.0, 22.0, 24.0];
        for _ in 0..50 {
            d.observe(&pressures);
        }
        assert!(d.current().low >= 1.0);
    }
}
