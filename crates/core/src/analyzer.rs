//! The PMU data analyzer (paper §III-B).
//!
//! At the end of every sampling period the analyzer turns each VCPU's raw
//! counter window into the three quantities the scheduler acts on:
//!
//! * **memory node affinity** (Eq. 1): `argmax_i N(vc, i)` — the node
//!   holding the most pages the VCPU accessed this period;
//! * **LLC access pressure** (Eq. 2): `LLC_refs / instructions · α`;
//! * **VCPU type** (Eq. 3): friendly / fitting / thrashing by the
//!   `low`/`high` bounds.

use crate::bounds::Bounds;
use numa_topo::NodeId;
use pmu::PmuSample;

/// The paper's VCPU taxonomy (LLC-FR / LLC-FI / LLC-T).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VcpuType {
    Friendly,
    Fitting,
    Thrashing,
}

impl VcpuType {
    /// Memory-intensive VCPUs are the ones the partitioning pass places.
    pub fn is_memory_intensive(self) -> bool {
        matches!(self, VcpuType::Fitting | VcpuType::Thrashing)
    }
}

/// Analyzer output for one VCPU for one period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcpuMeta {
    pub pressure: f64,
    pub vcpu_type: VcpuType,
    /// `None` when the VCPU touched no memory this period.
    pub affinity: Option<NodeId>,
}

/// Stateless per-period analysis (the paper's analyzer state lives in the
/// `csched_vcpu` fields; here the policy owns the resulting `VcpuMeta`s).
#[derive(Debug, Clone)]
pub struct PmuDataAnalyzer {
    bounds: Bounds,
}

impl PmuDataAnalyzer {
    pub fn new(bounds: Bounds) -> Self {
        PmuDataAnalyzer { bounds }
    }

    pub fn bounds(&self) -> Bounds {
        self.bounds
    }

    pub fn set_bounds(&mut self, bounds: Bounds) {
        self.bounds = bounds;
    }

    /// Eq. 3.
    pub fn classify(&self, pressure: f64) -> VcpuType {
        if pressure < self.bounds.low {
            VcpuType::Friendly
        } else if pressure < self.bounds.high {
            VcpuType::Fitting
        } else {
            VcpuType::Thrashing
        }
    }

    /// Analyze one VCPU's period window.
    pub fn analyze_one(&self, sample: &PmuSample) -> VcpuMeta {
        let pressure = sample.llc_access_pressure(self.bounds.alpha);
        VcpuMeta {
            pressure,
            vcpu_type: self.classify(pressure),
            affinity: sample.memory_node_affinity().map(NodeId::from_index),
        }
    }

    /// Analyze every VCPU's window.
    pub fn analyze(&self, samples: &[PmuSample]) -> Vec<VcpuMeta> {
        samples.iter().map(|s| self.analyze_one(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(instr: u64, refs: u64, node_accesses: Vec<u64>) -> PmuSample {
        let local = node_accesses.first().copied().unwrap_or(0);
        let remote: u64 = node_accesses.iter().skip(1).sum();
        PmuSample {
            instructions: instr,
            llc_refs: refs,
            llc_misses: refs / 2,
            local_accesses: local,
            remote_accesses: remote,
            node_accesses,
        }
    }

    fn analyzer() -> PmuDataAnalyzer {
        PmuDataAnalyzer::new(Bounds::default())
    }

    #[test]
    fn classification_matches_eq3() {
        let a = analyzer();
        assert_eq!(a.classify(0.48), VcpuType::Friendly);
        assert_eq!(a.classify(2.99), VcpuType::Friendly);
        assert_eq!(a.classify(3.0), VcpuType::Fitting);
        assert_eq!(a.classify(15.38), VcpuType::Fitting);
        assert_eq!(a.classify(19.99), VcpuType::Fitting);
        assert_eq!(a.classify(20.0), VcpuType::Thrashing);
        assert_eq!(a.classify(22.41), VcpuType::Thrashing);
    }

    #[test]
    fn pressure_is_rpti() {
        let a = analyzer();
        let m = a.analyze_one(&sample(1_000_000, 20_000, vec![100, 50]));
        assert!((m.pressure - 20.0).abs() < 1e-9);
        assert_eq!(m.vcpu_type, VcpuType::Thrashing);
    }

    #[test]
    fn affinity_is_argmax_node() {
        let a = analyzer();
        let m = a.analyze_one(&sample(1_000, 10, vec![5, 20]));
        assert_eq!(m.affinity, Some(NodeId::new(1)));
    }

    #[test]
    fn idle_vcpu_is_friendly_with_no_affinity() {
        let a = analyzer();
        let m = a.analyze_one(&sample(0, 0, vec![0, 0]));
        assert_eq!(m.pressure, 0.0);
        assert_eq!(m.vcpu_type, VcpuType::Friendly);
        assert_eq!(m.affinity, None);
    }

    #[test]
    fn memory_intensive_covers_fitting_and_thrashing() {
        assert!(!VcpuType::Friendly.is_memory_intensive());
        assert!(VcpuType::Fitting.is_memory_intensive());
        assert!(VcpuType::Thrashing.is_memory_intensive());
    }

    #[test]
    fn analyze_batch_preserves_order() {
        let a = analyzer();
        let metas = a.analyze(&[
            sample(1_000_000, 500, vec![1, 0]),
            sample(1_000_000, 25_000, vec![0, 9]),
        ]);
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].vcpu_type, VcpuType::Friendly);
        assert_eq!(metas[1].vcpu_type, VcpuType::Thrashing);
        assert_eq!(metas[1].affinity, Some(NodeId::new(1)));
    }

    #[test]
    fn bounds_are_adjustable() {
        let mut a = analyzer();
        a.set_bounds(Bounds::new(1.0, 5.0));
        assert_eq!(a.classify(4.0), VcpuType::Fitting);
        assert_eq!(a.classify(6.0), VcpuType::Thrashing);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::bounds::Bounds;
    use proptest::prelude::*;

    fn arb_sample() -> impl Strategy<Value = PmuSample> {
        (
            0u64..10_000_000,
            0u64..200_000,
            prop::collection::vec(0u64..100_000, 1..5),
        )
            .prop_map(|(instr, refs, node_accesses)| {
                let local = node_accesses[0];
                let remote: u64 = node_accesses.iter().skip(1).sum();
                PmuSample {
                    instructions: instr,
                    llc_refs: refs,
                    llc_misses: refs / 2,
                    local_accesses: local,
                    remote_accesses: remote,
                    node_accesses,
                }
            })
    }

    proptest! {
        #[test]
        fn classification_is_total_and_ordered(pressure in 0.0f64..200.0) {
            let a = PmuDataAnalyzer::new(Bounds::default());
            let t = a.classify(pressure);
            // The classes tile the pressure axis.
            match t {
                VcpuType::Friendly => prop_assert!(pressure < 3.0),
                VcpuType::Fitting => prop_assert!((3.0..20.0).contains(&pressure)),
                VcpuType::Thrashing => prop_assert!(pressure >= 20.0),
            }
        }

        #[test]
        fn analyze_is_consistent_with_classify(s in arb_sample()) {
            let a = PmuDataAnalyzer::new(Bounds::default());
            let m = a.analyze_one(&s);
            prop_assert_eq!(m.vcpu_type, a.classify(m.pressure));
            prop_assert!(m.pressure >= 0.0);
            // Affinity, when present, names the (first) argmax node.
            if let Some(n) = m.affinity {
                let max = *s.node_accesses.iter().max().unwrap();
                prop_assert!(max > 0);
                prop_assert_eq!(s.node_accesses[n.index()], max);
                prop_assert!(s.node_accesses[..n.index()].iter().all(|&c| c < max));
            } else {
                prop_assert!(s.node_accesses.iter().all(|&c| c == 0));
            }
        }

        #[test]
        fn widening_bounds_never_upgrades_class(
            s in arb_sample(),
            low in 0.0f64..10.0,
            extra in 0.0f64..40.0,
        ) {
            // With a higher `high`, a VCPU can only move down the taxonomy.
            let narrow = PmuDataAnalyzer::new(Bounds::new(low, low + 1.0));
            let wide = PmuDataAnalyzer::new(Bounds::new(low, low + 1.0 + extra));
            let rank = |t: VcpuType| match t {
                VcpuType::Friendly => 0,
                VcpuType::Fitting => 1,
                VcpuType::Thrashing => 2,
            };
            prop_assert!(
                rank(wide.analyze_one(&s).vcpu_type) <= rank(narrow.analyze_one(&s).vcpu_type)
            );
        }
    }
}
