//! BRM — Bias Random vCPU Migration (Rao et al., HPCA 2013), the related
//! NUMA-aware scheduler the paper compares against.
//!
//! BRM estimates a per-VCPU *uncore penalty* — a single scalar combining
//! remote-access and cache/contention symptoms, "all performance-degrading
//! factors treated equally" — and migrates VCPUs with a bias toward moves
//! that reduce the system-wide penalty. Crucially for the comparison, the
//! implementation serializes penalty updates behind one **system-wide
//! lock**; the vProbe paper attributes BRM's losses with more than 8
//! runnable VCPUs to contention on that lock, so the model charges each
//! balance decision a serialization cost that grows with the number of
//! runnable VCPUs.

use numa_topo::{PcpuId, VcpuId};
use pmu::PmuSample;
use sim_core::SimRng;
use xen_sim::{AnalyzerView, PartitionPlan, SchedPolicy, StealContext};

/// Tunables for the BRM model.
#[derive(Debug, Clone, Copy)]
pub struct BrmConfig {
    /// Probability of taking the penalty-minimizing candidate (vs a
    /// uniformly random one) — the "bias" in bias-random.
    pub bias: f64,
    /// Runnable-VCPU count at which lock contention starts to bite.
    pub lock_free_threshold: usize,
    /// Serialization cost per additional contender, microseconds.
    pub lock_cost_per_vcpu_us: f64,
}

impl Default for BrmConfig {
    fn default() -> Self {
        BrmConfig {
            bias: 0.75,
            lock_free_threshold: 8,
            lock_cost_per_vcpu_us: 32.0,
        }
    }
}

/// The BRM policy.
pub struct BrmPolicy {
    cfg: BrmConfig,
    rng: SimRng,
    /// Per-VCPU node-access fractions from the last period (the penalty
    /// estimator's inputs).
    node_frac: Vec<Vec<f64>>,
}

impl BrmPolicy {
    pub fn new(seed: u64) -> Self {
        BrmPolicy {
            cfg: BrmConfig::default(),
            rng: SimRng::seed_from(seed),
            node_frac: Vec::new(),
        }
    }

    pub fn with_config(mut self, cfg: BrmConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Fraction of a VCPU's accesses that would be *local* on `node` —
    /// the uncore-penalty reduction proxy for migrating it there.
    fn local_gain(&self, vcpu: VcpuId, node: usize) -> f64 {
        self.node_frac
            .get(vcpu.index())
            .and_then(|f| f.get(node))
            .copied()
            .unwrap_or(0.0)
    }

    fn update_penalties(&mut self, samples: &[PmuSample]) {
        self.node_frac = samples
            .iter()
            .map(|s| {
                let total: u64 = s.node_accesses.iter().sum();
                if total == 0 {
                    vec![0.0; s.node_accesses.len()]
                } else {
                    s.node_accesses
                        .iter()
                        .map(|&c| c as f64 / total as f64)
                        .collect()
                }
            })
            .collect();
    }
}

impl SchedPolicy for BrmPolicy {
    fn name(&self) -> &str {
        "brm"
    }

    fn on_sample(&mut self, view: AnalyzerView<'_>) -> PartitionPlan {
        self.update_penalties(view.samples);
        PartitionPlan::none()
    }

    fn steal(&mut self, ctx: StealContext<'_>) -> Option<(PcpuId, VcpuId)> {
        let thief_node = ctx.topo.node_of_pcpu(ctx.idle_pcpu).index();
        let all: Vec<(PcpuId, VcpuId)> = ctx
            .victims
            .iter()
            .flat_map(|(p, _, cands)| cands.iter().map(move |&v| (*p, v)))
            .collect();
        if all.is_empty() {
            return None;
        }
        if self.rng.chance(self.cfg.bias) {
            // Biased move: the candidate gaining the most locality here.
            all.iter()
                .copied()
                .max_by(|(_, a), (_, b)| {
                    self.local_gain(*a, thief_node)
                        .total_cmp(&self.local_gain(*b, thief_node))
                })
        } else {
            // Random move keeps the estimator exploring.
            let idx = self.rng.index(all.len())?;
            Some(all[idx])
        }
    }

    fn uses_pmu(&self) -> bool {
        true
    }

    /// The system-wide lock: each balance decision serializes against
    /// every runnable VCPU's penalty updates.
    fn decision_overhead_us(&self, runnable_vcpus: usize) -> f64 {
        let over = runnable_vcpus.saturating_sub(self.cfg.lock_free_threshold);
        over as f64 * self.cfg.lock_cost_per_vcpu_us
    }

    /// Every 10 ms penalty update also takes the global lock and waits
    /// behind the other runnable VCPUs' updates.
    fn tick_overhead_us(&self, runnable_vcpus: usize) -> f64 {
        let over = runnable_vcpus.saturating_sub(self.cfg.lock_free_threshold);
        over as f64 * self.cfg.lock_cost_per_vcpu_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topo::presets;

    fn sample(node_accesses: Vec<u64>) -> PmuSample {
        let local = node_accesses.first().copied().unwrap_or(0);
        let remote: u64 = node_accesses.iter().skip(1).sum();
        PmuSample {
            instructions: 1_000_000,
            llc_refs: 10_000,
            llc_misses: 5_000,
            local_accesses: local,
            remote_accesses: remote,
            node_accesses,
        }
    }

    #[test]
    fn lock_cost_grows_past_threshold() {
        let p = BrmPolicy::new(1);
        assert_eq!(p.decision_overhead_us(4), 0.0);
        assert_eq!(p.decision_overhead_us(8), 0.0);
        assert!((p.decision_overhead_us(24) - 512.0).abs() < 1e-9);
    }

    #[test]
    fn biased_steal_prefers_locality_gain() {
        let topo = presets::xeon_e5620();
        let mut p = BrmPolicy::new(1).with_config(BrmConfig {
            bias: 1.0, // always take the best
            ..BrmConfig::default()
        });
        // vcpu0's memory is on node1, vcpu1's on node0.
        let samples = vec![sample(vec![0, 100]), sample(vec![100, 0])];
        let views: Vec<xen_sim::VcpuView> = (0..2)
            .map(|i| xen_sim::VcpuView {
                id: VcpuId::new(i),
                vm: numa_topo::VmId::new(0),
                assigned_node: None,
            })
            .collect();
        p.on_sample(AnalyzerView {
            topo: &topo,
            samples: &samples,
            vcpus: &views,
        });
        // A node1 thief (pcpu 5) should pick vcpu0.
        let victims = vec![(PcpuId::new(0), 2, vec![VcpuId::new(0), VcpuId::new(1)])];
        let got = p.steal(StealContext {
            topo: &topo,
            idle_pcpu: PcpuId::new(5),
            victims: &victims,
            pressure: &[0.0, 0.0],
            would_idle: true,
        });
        assert_eq!(got, Some((PcpuId::new(0), VcpuId::new(0))));
    }

    #[test]
    fn steal_with_no_candidates_is_none() {
        let topo = presets::xeon_e5620();
        let mut p = BrmPolicy::new(1);
        let victims = vec![(PcpuId::new(0), 0, vec![])];
        assert_eq!(
            p.steal(StealContext {
                topo: &topo,
                idle_pcpu: PcpuId::new(1),
                victims: &victims,
                pressure: &[],
                would_idle: true,
            }),
            None
        );
    }

    #[test]
    fn random_arm_still_returns_some_candidate() {
        let topo = presets::xeon_e5620();
        let mut p = BrmPolicy::new(7).with_config(BrmConfig {
            bias: 0.0, // always random
            ..BrmConfig::default()
        });
        let victims = vec![(PcpuId::new(0), 2, vec![VcpuId::new(0), VcpuId::new(1)])];
        for _ in 0..10 {
            let got = p.steal(StealContext {
                topo: &topo,
                idle_pcpu: PcpuId::new(5),
                victims: &victims,
                pressure: &[0.0, 0.0],
                would_idle: true,
            });
            assert!(got.is_some());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = presets::xeon_e5620();
        let victims = vec![(PcpuId::new(0), 2, vec![VcpuId::new(0), VcpuId::new(1)])];
        let run = |seed| {
            let mut p = BrmPolicy::new(seed);
            (0..20)
                .map(|_| {
                    p.steal(StealContext {
                        topo: &topo,
                        idle_pcpu: PcpuId::new(5),
                        victims: &victims,
                        pressure: &[0.0, 0.0],
                        would_idle: true,
                    })
                    .map(|(_, v)| v.raw())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn never_partitions() {
        let topo = presets::xeon_e5620();
        let mut p = BrmPolicy::new(1);
        let plan = p.on_sample(AnalyzerView {
            topo: &topo,
            samples: &[sample(vec![5, 5])],
            vcpus: &[xen_sim::VcpuView {
                id: VcpuId::new(0),
                vm: numa_topo::VmId::new(0),
                assigned_node: None,
            }],
        });
        assert!(plan.assignments.is_empty());
    }
}
