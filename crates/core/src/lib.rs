//! vProbe: a NUMA-aware VCPU scheduler (Wu et al., IEEE CLUSTER 2016).
//!
//! vProbe improves the performance of memory-intensive applications on
//! virtualized NUMA servers *without* modifying the guest OS, by driving
//! VCPU placement from hypervisor-level PMU data. It has three parts:
//!
//! * the **PMU data analyzer** ([`analyzer`]) computes, per VCPU and per
//!   sampling period, its *memory node affinity* (Eq. 1: the node holding
//!   most of its accessed pages), its *LLC access pressure* (Eq. 2: LLC
//!   references per thousand instructions), and its *type* (Eq. 3:
//!   LLC-friendly / LLC-fitting / LLC-thrashing against `low`/`high`
//!   bounds);
//! * **VCPU periodical partitioning** ([`partition`], Algorithm 1)
//!   reassigns all memory-intensive (thrashing + fitting) VCPUs evenly
//!   across nodes, preferring each VCPU's affinity node, balancing LLC
//!   contention while minimizing remote accesses;
//! * the **NUMA-aware load balance** ([`balance`], Algorithm 2) makes an
//!   idle PCPU steal from its own node first — heaviest-loaded PCPU first,
//!   smallest-LLC-pressure VCPU first — and only then from remote nodes.
//!
//! [`VProbePolicy`] composes the three into an `xen_sim::SchedPolicy`. The
//! paper's ablation baselines are provided as variants — [`vcpu_p`]
//! (partitioning only) and [`lb_only`] (NUMA-aware stealing only) — and
//! the comparison scheduler BRM (Rao et al., HPCA 2013) is implemented in
//! [`brm`], including the global-lock serialization the paper blames for
//! its poor scaling.
//!
//! # Quick start
//!
//! ```
//! use vprobe::{VProbePolicy, Bounds};
//! use xen_sim::{MachineBuilder, VmConfig};
//! use mem_model::AllocPolicy;
//! use numa_topo::presets;
//! use sim_core::SimDuration;
//!
//! let mut machine = MachineBuilder::new(presets::xeon_e5620())
//!     .policy(Box::new(VProbePolicy::new(2, Bounds::default())))
//!     .add_vm(VmConfig::new(
//!         "vm1", 8, 8 << 30, AllocPolicy::SplitEven,
//!         vec![workloads::npb::lu()],
//!     ))
//!     .build()
//!     .unwrap();
//! machine.run(SimDuration::from_secs(5));
//! assert!(machine.metrics().per_vm[0].instructions > 0);
//! ```

pub mod analyzer;
pub mod balance;
pub mod bounds;
pub mod brm;
pub mod degrade;
pub mod partition;
pub mod scheduler;
pub mod variants;

pub use analyzer::{PmuDataAnalyzer, VcpuMeta, VcpuType};
pub use balance::numa_aware_steal;
pub use bounds::{Bounds, DynamicBounds};
pub use brm::BrmPolicy;
pub use degrade::{DegradeConfig, DegradeState};
pub use partition::{partition_vcpus, PartitionInput};
pub use scheduler::VProbePolicy;
pub use variants::{lb_only, vcpu_p, vprobe, vprobe_gd};
