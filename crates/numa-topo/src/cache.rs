//! Cache descriptions.


/// Configuration of one cache level.
///
/// The contention model only needs the shared LLC (size and line size); L1
/// and L2 are carried for documentation/reporting fidelity with Table I and
/// folded into each workload's base CPI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache level (1, 2, 3, …).
    pub level: u8,
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Cache line size in bytes (64 on the paper's machine).
    pub line_bytes: u32,
    /// Number of cores sharing this cache (4 for the E5620 L3).
    pub shared_by: u16,
}

impl CacheConfig {
    /// The Table I L3: 12 MB unified, shared by 4 cores.
    pub fn e5620_l3() -> Self {
        CacheConfig {
            level: 3,
            size_bytes: 12 * 1024 * 1024,
            line_bytes: 64,
            shared_by: 4,
        }
    }

    /// The Table I L2: 256 KB unified, private.
    pub fn e5620_l2() -> Self {
        CacheConfig {
            level: 2,
            size_bytes: 256 * 1024,
            line_bytes: 64,
            shared_by: 1,
        }
    }

    /// The Table I L1D: 32 KB, private.
    pub fn e5620_l1d() -> Self {
        CacheConfig {
            level: 1,
            size_bytes: 32 * 1024,
            line_bytes: 64,
            shared_by: 1,
        }
    }

    /// Number of cache lines this cache holds.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5620_presets_match_table1() {
        let l3 = CacheConfig::e5620_l3();
        assert_eq!(l3.size_bytes, 12 * 1024 * 1024);
        assert_eq!(l3.shared_by, 4);
        assert_eq!(CacheConfig::e5620_l2().size_bytes, 256 * 1024);
        assert_eq!(CacheConfig::e5620_l1d().size_bytes, 32 * 1024);
    }

    #[test]
    fn num_lines() {
        let l3 = CacheConfig::e5620_l3();
        assert_eq!(l3.num_lines(), 12 * 1024 * 1024 / 64);
    }
}
