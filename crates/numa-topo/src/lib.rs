//! NUMA hardware topology description.
//!
//! A [`Topology`] is the static hardware picture the rest of the simulator
//! works against: NUMA nodes with their memory and integrated memory
//! controller, physical CPUs (PCPUs) grouped by node, a shared last-level
//! cache per node/socket, and the interconnect links (QPI in the paper's
//! testbed) joining nodes.
//!
//! The paper's machine (Table I: two quad-core Intel Xeon E5620 sockets,
//! 12 MB shared L3 per socket, 12 GB per node, 25.6 GB/s IMC, two 5.86 GT/s
//! QPI links) is available as [`presets::xeon_e5620`]; arbitrary machines
//! can be described through [`TopologyBuilder`].

pub mod builder;
pub mod cache;
pub mod distance;
pub mod ids;
pub mod interconnect;
pub mod node;
pub mod presets;

pub use builder::TopologyBuilder;
pub use cache::CacheConfig;
pub use distance::DistanceMatrix;
pub use ids::{NodeId, PcpuId, VcpuId, VmId};
pub use interconnect::InterconnectLink;
pub use node::NodeConfig;

use sim_core::SimError;

/// A complete, validated machine description.
///
/// Construct via [`TopologyBuilder`] (which validates) or a preset.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeConfig>,
    /// `pcpu_node[p]` = NUMA node of PCPU `p`. PCPU ids are dense `0..n`.
    pcpu_node: Vec<NodeId>,
    links: Vec<InterconnectLink>,
    distance: DistanceMatrix,
    /// Per-core clock frequency in MHz (uniform across the machine).
    freq_mhz: u32,
}

impl Topology {
    pub(crate) fn from_parts(
        nodes: Vec<NodeConfig>,
        pcpu_node: Vec<NodeId>,
        links: Vec<InterconnectLink>,
        distance: DistanceMatrix,
        freq_mhz: u32,
    ) -> Self {
        Topology {
            nodes,
            pcpu_node,
            links,
            distance,
            freq_mhz,
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_pcpus(&self) -> usize {
        self.pcpu_node.len()
    }

    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId::new(i as u16))
    }

    pub fn pcpus(&self) -> impl Iterator<Item = PcpuId> + '_ {
        (0..self.pcpu_node.len()).map(|i| PcpuId::new(i as u16))
    }

    pub fn node_config(&self, node: NodeId) -> &NodeConfig {
        &self.nodes[node.index()]
    }

    /// The NUMA node a PCPU belongs to (the paper's `pcpu_to_node`).
    pub fn node_of_pcpu(&self, pcpu: PcpuId) -> NodeId {
        self.pcpu_node[pcpu.index()]
    }

    /// All PCPUs of `node`, in id order.
    pub fn pcpus_of_node(&self, node: NodeId) -> Vec<PcpuId> {
        self.pcpus()
            .filter(|&p| self.node_of_pcpu(p) == node)
            .collect()
    }

    /// Nodes other than `node`, ordered by increasing distance then id —
    /// the order `nextNode()` walks in the paper's Algorithm 2.
    pub fn remote_nodes_by_distance(&self, node: NodeId) -> Vec<NodeId> {
        let mut others: Vec<NodeId> = self.nodes().filter(|&n| n != node).collect();
        others.sort_by_key(|&n| (self.distance.get(node, n), n.index()));
        others
    }

    pub fn links(&self) -> &[InterconnectLink] {
        &self.links
    }

    /// The link connecting two distinct nodes, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<&InterconnectLink> {
        self.links.iter().find(|l| l.connects(a, b))
    }

    pub fn distance(&self) -> &DistanceMatrix {
        &self.distance
    }

    pub fn freq_mhz(&self) -> u32 {
        self.freq_mhz
    }

    /// Cycles executed per microsecond at the machine clock.
    pub fn cycles_per_us(&self) -> f64 {
        self.freq_mhz as f64
    }

    /// Total machine memory in bytes.
    pub fn total_mem_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.mem_bytes).sum()
    }

    /// Validate internal consistency; used by the builder and by tests that
    /// construct exotic machines.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.nodes.is_empty() {
            return Err(SimError::InvalidTopology("machine has no NUMA nodes".into()));
        }
        if self.pcpu_node.is_empty() {
            return Err(SimError::InvalidTopology("machine has no PCPUs".into()));
        }
        if self.freq_mhz == 0 {
            return Err(SimError::InvalidTopology("clock frequency is zero".into()));
        }
        for (p, &n) in self.pcpu_node.iter().enumerate() {
            if n.index() >= self.nodes.len() {
                return Err(SimError::InvalidTopology(format!(
                    "pcpu {p} maps to nonexistent node {n}"
                )));
            }
        }
        for node in self.nodes() {
            if self.pcpus_of_node(node).is_empty() {
                return Err(SimError::InvalidTopology(format!("node {node} has no PCPUs")));
            }
            let cfg = self.node_config(node);
            if cfg.mem_bytes == 0 {
                return Err(SimError::InvalidTopology(format!("node {node} has no memory")));
            }
            if cfg.llc.size_bytes == 0 {
                return Err(SimError::InvalidTopology(format!("node {node} has no LLC")));
            }
            if cfg.imc_bandwidth_bytes_per_s == 0 {
                return Err(SimError::InvalidTopology(format!(
                    "node {node} IMC bandwidth is zero"
                )));
            }
        }
        if self.distance.size() != self.nodes.len() {
            return Err(SimError::InvalidTopology(
                "distance matrix size mismatch".into(),
            ));
        }
        for l in &self.links {
            if l.a == l.b {
                return Err(SimError::InvalidTopology(format!(
                    "link {} connects node {} to itself",
                    l.name, l.a
                )));
            }
            if l.a.index() >= self.nodes.len() || l.b.index() >= self.nodes.len() {
                return Err(SimError::InvalidTopology(format!(
                    "link {} references nonexistent node",
                    l.name
                )));
            }
        }
        // Multi-node machines must be connected so remote accesses have a path.
        if self.nodes.len() > 1 {
            for a in self.nodes() {
                for b in self.nodes() {
                    if a != b && self.link_between(a, b).is_none() {
                        return Err(SimError::InvalidTopology(format!(
                            "no interconnect link between nodes {a} and {b}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_validates_and_matches_table1() {
        let t = presets::xeon_e5620();
        t.validate().unwrap();
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.num_pcpus(), 8);
        assert_eq!(t.freq_mhz(), 2400);
        for n in t.nodes() {
            let cfg = t.node_config(n);
            assert_eq!(cfg.llc.size_bytes, 12 * 1024 * 1024);
            assert_eq!(cfg.mem_bytes, 12 * 1024 * 1024 * 1024);
            assert_eq!(t.pcpus_of_node(n).len(), 4);
        }
        assert_eq!(t.links().len(), 2);
    }

    #[test]
    fn node_of_pcpu_partitions_cores() {
        let t = presets::xeon_e5620();
        for p in t.pcpus() {
            let expected = if p.index() < 4 { 0 } else { 1 };
            assert_eq!(t.node_of_pcpu(p).index(), expected);
        }
    }

    #[test]
    fn remote_nodes_excludes_self() {
        let t = presets::xeon_e5620();
        let n0 = NodeId::new(0);
        let remote = t.remote_nodes_by_distance(n0);
        assert_eq!(remote, vec![NodeId::new(1)]);
    }

    #[test]
    fn link_between_is_symmetric() {
        let t = presets::xeon_e5620();
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        assert!(t.link_between(a, b).is_some());
        assert!(t.link_between(b, a).is_some());
        assert!(t.link_between(a, a).is_none());
    }

    #[test]
    fn total_memory_sums_nodes() {
        let t = presets::xeon_e5620();
        assert_eq!(t.total_mem_bytes(), 24 * 1024 * 1024 * 1024);
    }
}
