//! NUMA distance matrix (ACPI SLIT-style relative distances).

use crate::ids::NodeId;

/// Square matrix of relative access distances between nodes.
///
/// Follows the ACPI SLIT convention: local distance is 10, a one-hop remote
/// node is typically 20–21. Only relative order matters to the schedulers
/// (which walk remote nodes nearest-first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major `n*n` entries.
    d: Vec<u32>,
}

impl DistanceMatrix {
    /// Uniform two-level matrix: `local` on the diagonal, `remote` elsewhere.
    /// Panics if `n == 0` or `remote < local`.
    pub fn uniform(n: usize, local: u32, remote: u32) -> Self {
        assert!(n > 0, "empty distance matrix");
        assert!(remote >= local, "remote distance below local");
        let mut d = vec![remote; n * n];
        for i in 0..n {
            d[i * n + i] = local;
        }
        DistanceMatrix { n, d }
    }

    /// Build from explicit row-major entries. Panics on size mismatch.
    pub fn from_rows(n: usize, entries: Vec<u32>) -> Self {
        assert_eq!(entries.len(), n * n, "distance matrix size mismatch");
        DistanceMatrix { n, d: entries }
    }

    pub fn size(&self) -> usize {
        self.n
    }

    pub fn get(&self, from: NodeId, to: NodeId) -> u32 {
        self.d[from.index() * self.n + to.index()]
    }

    /// Whether every off-diagonal entry is strictly greater than the
    /// corresponding diagonal ones (sanity check for NUMA-ness).
    pub fn is_numa(&self) -> bool {
        (0..self.n).any(|i| {
            (0..self.n).any(|j| i != j && self.d[i * self.n + j] > self.d[i * self.n + i])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matrix() {
        let m = DistanceMatrix::uniform(2, 10, 21);
        assert_eq!(m.get(NodeId::new(0), NodeId::new(0)), 10);
        assert_eq!(m.get(NodeId::new(0), NodeId::new(1)), 21);
        assert_eq!(m.get(NodeId::new(1), NodeId::new(0)), 21);
        assert!(m.is_numa());
    }

    #[test]
    fn uma_machine_is_not_numa() {
        let m = DistanceMatrix::uniform(1, 10, 10);
        assert!(!m.is_numa());
    }

    #[test]
    fn from_rows_round_trips() {
        let m = DistanceMatrix::from_rows(2, vec![10, 20, 20, 10]);
        assert_eq!(m.size(), 2);
        assert_eq!(m.get(NodeId::new(1), NodeId::new(0)), 20);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_rows_validates_len() {
        DistanceMatrix::from_rows(2, vec![10, 20, 20]);
    }

    #[test]
    #[should_panic(expected = "remote distance below local")]
    fn uniform_rejects_inverted_distances() {
        DistanceMatrix::uniform(2, 20, 10);
    }
}
