//! Strongly typed identifiers.
//!
//! The simulator juggles four id spaces — NUMA nodes, physical CPUs,
//! virtual machines, and virtual CPUs — that are all small dense integers.
//! Newtypes keep them from being mixed up at compile time; all are `u16`
//! (or `u32` for VCPUs) to keep hot scheduler structures small.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name($repr);

        impl $name {
            pub const fn new(raw: $repr) -> Self {
                $name(raw)
            }

            pub const fn raw(self) -> $repr {
                self.0
            }

            /// Index into dense per-entity arrays.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            pub fn from_index(i: usize) -> Self {
                $name(i as $repr)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// A NUMA node (socket, in the paper's two-socket testbed).
    NodeId,
    u16,
    "node"
);
define_id!(
    /// A physical CPU core.
    PcpuId,
    u16,
    "pcpu"
);
define_id!(
    /// A virtual machine (Xen domain).
    VmId,
    u16,
    "vm"
);
define_id!(
    /// A virtual CPU, unique across all VMs.
    VcpuId,
    u32,
    "vcpu"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_trip_raw_and_index() {
        let n = NodeId::new(3);
        assert_eq!(n.raw(), 3);
        assert_eq!(n.index(), 3);
        assert_eq!(NodeId::from_index(3), n);
        let v = VcpuId::new(100_000);
        assert_eq!(v.index(), 100_000);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId::new(1).to_string(), "node1");
        assert_eq!(PcpuId::new(7).to_string(), "pcpu7");
        assert_eq!(VmId::new(2).to_string(), "vm2");
        assert_eq!(VcpuId::new(9).to_string(), "vcpu9");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let set: HashSet<PcpuId> = (0..4).map(PcpuId::new).collect();
        assert_eq!(set.len(), 4);
        assert!(PcpuId::new(1) < PcpuId::new(2));
    }
}
