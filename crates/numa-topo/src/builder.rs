//! Fluent construction of validated topologies.

use crate::distance::DistanceMatrix;
use crate::ids::NodeId;
use crate::interconnect::InterconnectLink;
use crate::node::NodeConfig;
use crate::Topology;
use sim_core::SimError;

/// Builder for [`Topology`]. Nodes are added in id order; PCPU ids are
/// assigned densely in the order nodes are added.
///
/// ```
/// use numa_topo::{TopologyBuilder, NodeConfig};
///
/// let topo = TopologyBuilder::new(2_400)
///     .add_node(NodeConfig::e5620_node(), 4)
///     .add_node(NodeConfig::e5620_node(), 4)
///     .fully_connected_qpi()
///     .build()
///     .unwrap();
/// assert_eq!(topo.num_pcpus(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    freq_mhz: u32,
    nodes: Vec<(NodeConfig, u16)>,
    links: Vec<InterconnectLink>,
    distance: Option<DistanceMatrix>,
}

impl TopologyBuilder {
    pub fn new(freq_mhz: u32) -> Self {
        TopologyBuilder {
            freq_mhz,
            nodes: Vec::new(),
            links: Vec::new(),
            distance: None,
        }
    }

    /// Add a node with `cores` PCPUs.
    pub fn add_node(mut self, cfg: NodeConfig, cores: u16) -> Self {
        self.nodes.push((cfg, cores));
        self
    }

    /// Add `n` identical nodes.
    pub fn add_nodes(mut self, cfg: NodeConfig, cores: u16, n: usize) -> Self {
        for _ in 0..n {
            self.nodes.push((cfg.clone(), cores));
        }
        self
    }

    /// Add an explicit interconnect link.
    pub fn add_link(mut self, link: InterconnectLink) -> Self {
        self.links.push(link);
        self
    }

    /// Connect every node pair with a Table I-class QPI link.
    pub fn fully_connected_qpi(mut self) -> Self {
        let n = self.nodes.len();
        for a in 0..n {
            for b in (a + 1)..n {
                self.links.push(InterconnectLink::qpi_5_86(
                    format!("qpi{a}-{b}"),
                    NodeId::from_index(a),
                    NodeId::from_index(b),
                ));
            }
        }
        self
    }

    /// Override the default uniform(10, 21) distance matrix.
    pub fn distance(mut self, d: DistanceMatrix) -> Self {
        self.distance = Some(d);
        self
    }

    /// Finish and validate.
    pub fn build(self) -> Result<Topology, SimError> {
        if self.nodes.is_empty() {
            return Err(SimError::InvalidTopology("no nodes added".into()));
        }
        let mut pcpu_node = Vec::new();
        for (i, &(_, cores)) in self.nodes.iter().enumerate() {
            if cores == 0 {
                return Err(SimError::InvalidTopology(format!("node {i} has zero cores")));
            }
            for _ in 0..cores {
                pcpu_node.push(NodeId::from_index(i));
            }
        }
        let n = self.nodes.len();
        let distance = self
            .distance
            .unwrap_or_else(|| DistanceMatrix::uniform(n, 10, 21));
        let topo = Topology::from_parts(
            self.nodes.into_iter().map(|(c, _)| c).collect(),
            pcpu_node,
            self.links,
            distance,
            self.freq_mhz,
        );
        topo.validate()?;
        Ok(topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_two_socket_machine() {
        let t = TopologyBuilder::new(2_400)
            .add_nodes(NodeConfig::e5620_node(), 4, 2)
            .fully_connected_qpi()
            .build()
            .unwrap();
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.num_pcpus(), 8);
        assert_eq!(t.links().len(), 1);
    }

    #[test]
    fn builds_four_socket_machine() {
        let t = TopologyBuilder::new(2_000)
            .add_nodes(NodeConfig::e5620_node(), 6, 4)
            .fully_connected_qpi()
            .build()
            .unwrap();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_pcpus(), 24);
        // 4 choose 2 links.
        assert_eq!(t.links().len(), 6);
        // Every pair reachable.
        for a in t.nodes() {
            for b in t.nodes() {
                if a != b {
                    assert!(t.link_between(a, b).is_some());
                }
            }
        }
    }

    #[test]
    fn rejects_empty_machine() {
        assert!(TopologyBuilder::new(2_400).build().is_err());
    }

    #[test]
    fn rejects_zero_core_node() {
        let err = TopologyBuilder::new(2_400)
            .add_node(NodeConfig::e5620_node(), 0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("zero cores"));
    }

    #[test]
    fn rejects_disconnected_multinode() {
        let err = TopologyBuilder::new(2_400)
            .add_nodes(NodeConfig::e5620_node(), 4, 2)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("interconnect"));
    }

    #[test]
    fn rejects_zero_frequency() {
        let err = TopologyBuilder::new(0)
            .add_node(NodeConfig::e5620_node(), 4)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("frequency"));
    }

    #[test]
    fn single_node_needs_no_links() {
        let t = TopologyBuilder::new(2_400)
            .add_node(NodeConfig::e5620_node(), 4)
            .build()
            .unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert!(t.remote_nodes_by_distance(NodeId::new(0)).is_empty());
    }

    #[test]
    fn custom_distance_matrix_is_used() {
        let d = DistanceMatrix::from_rows(2, vec![10, 31, 31, 10]);
        let t = TopologyBuilder::new(2_400)
            .add_nodes(NodeConfig::e5620_node(), 4, 2)
            .fully_connected_qpi()
            .distance(d)
            .build()
            .unwrap();
        assert_eq!(t.distance().get(NodeId::new(0), NodeId::new(1)), 31);
    }
}
