//! Per-node hardware configuration.

use crate::cache::CacheConfig;

/// Static configuration of one NUMA node: its memory, integrated memory
/// controller (IMC), and the last-level cache shared by its cores.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// Local DRAM capacity in bytes.
    pub mem_bytes: u64,
    /// Peak IMC bandwidth in bytes/second (25.6 GB/s in Table I).
    pub imc_bandwidth_bytes_per_s: u64,
    /// The node's shared LLC.
    pub llc: CacheConfig,
    /// Load-to-use latency of a local DRAM access, in nanoseconds, with an
    /// idle memory system. Contention multiplies this.
    pub local_latency_ns: f64,
}

impl NodeConfig {
    /// One node of the Table I machine: 12 GB DRAM, 25.6 GB/s IMC, 12 MB L3.
    pub fn e5620_node() -> Self {
        NodeConfig {
            mem_bytes: 12 * 1024 * 1024 * 1024,
            imc_bandwidth_bytes_per_s: 25_600_000_000,
            llc: CacheConfig::e5620_l3(),
            // Typical measured local load latency on Nehalem-EP class parts.
            local_latency_ns: 65.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5620_node_matches_table1() {
        let n = NodeConfig::e5620_node();
        assert_eq!(n.mem_bytes, 12 << 30);
        assert_eq!(n.imc_bandwidth_bytes_per_s, 25_600_000_000);
        assert_eq!(n.llc.level, 3);
        assert!(n.local_latency_ns > 0.0);
    }
}
