//! Inter-node interconnect links (QPI on the paper's machine).

use crate::ids::NodeId;

/// A bidirectional point-to-point link between two NUMA nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct InterconnectLink {
    pub name: String,
    pub a: NodeId,
    pub b: NodeId,
    /// Usable bandwidth in bytes/second per direction.
    pub bandwidth_bytes_per_s: u64,
    /// Extra latency a remote access pays for crossing this link, in
    /// nanoseconds, with an idle link. Contention multiplies this.
    pub hop_latency_ns: f64,
}

impl InterconnectLink {
    /// A Table I QPI link: 5.86 GT/s. QPI moves 2 bytes per transfer per
    /// direction, so usable data bandwidth is ~11.72 GB/s per direction.
    pub fn qpi_5_86(name: impl Into<String>, a: NodeId, b: NodeId) -> Self {
        InterconnectLink {
            name: name.into(),
            a,
            b,
            bandwidth_bytes_per_s: 11_720_000_000,
            // Measured remote-minus-local latency on Nehalem-EP class
            // parts makes remote ~2x local (65 ns local vs ~130 ns remote).
            hop_latency_ns: 75.0,
        }
    }

    /// Whether this link joins the (unordered) pair `{x, y}`.
    pub fn connects(&self, x: NodeId, y: NodeId) -> bool {
        x != y && ((self.a == x && self.b == y) || (self.a == y && self.b == x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qpi_preset_bandwidth() {
        let l = InterconnectLink::qpi_5_86("qpi0", NodeId::new(0), NodeId::new(1));
        assert_eq!(l.bandwidth_bytes_per_s, 11_720_000_000);
        assert!(l.hop_latency_ns > 0.0);
    }

    #[test]
    fn connects_is_unordered_and_irreflexive() {
        let l = InterconnectLink::qpi_5_86("qpi0", NodeId::new(0), NodeId::new(1));
        assert!(l.connects(NodeId::new(0), NodeId::new(1)));
        assert!(l.connects(NodeId::new(1), NodeId::new(0)));
        assert!(!l.connects(NodeId::new(0), NodeId::new(0)));
        assert!(!l.connects(NodeId::new(0), NodeId::new(2)));
    }
}
