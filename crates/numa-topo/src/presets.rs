//! Ready-made machine descriptions.

use crate::builder::TopologyBuilder;
use crate::node::NodeConfig;
use crate::Topology;

/// The paper's evaluation machine (Table I):
///
/// * 2 sockets × 4 cores Intel Xeon E5620 @ 2.40 GHz
/// * 32 KB L1I + 32 KB L1D, 256 KB L2 per core
/// * 12 MB L3 shared by the 4 cores of a socket
/// * one IMC per socket, 25.6 GB/s, 12 GB of DRAM per node
/// * 2 QPI links at 5.86 GT/s
pub fn xeon_e5620() -> Topology {
    let base = TopologyBuilder::new(2_400)
        .add_nodes(NodeConfig::e5620_node(), 4, 2);
    // Table I lists two QPI links; model both so link contention is split
    // across them as on the real part (one link also carries I/O traffic,
    // which we fold into the same capacity).
    let n0 = crate::NodeId::new(0);
    let n1 = crate::NodeId::new(1);
    base.add_link(crate::InterconnectLink::qpi_5_86("qpi0", n0, n1))
        .add_link(crate::InterconnectLink::qpi_5_86("qpi1", n0, n1))
        .build()
        .expect("Table I preset must be valid")
}

/// A larger hypothetical machine used by scaling tests and ablations:
/// 4 sockets × 8 cores, 16 GB per node, fully connected.
pub fn four_socket_32core() -> Topology {
    let node = NodeConfig {
        mem_bytes: 16 * 1024 * 1024 * 1024,
        imc_bandwidth_bytes_per_s: 40_000_000_000,
        llc: crate::CacheConfig {
            level: 3,
            size_bytes: 20 * 1024 * 1024,
            line_bytes: 64,
            shared_by: 8,
        },
        local_latency_ns: 70.0,
    };
    TopologyBuilder::new(2_600)
        .add_nodes(node, 8, 4)
        .fully_connected_qpi()
        .build()
        .expect("four-socket preset must be valid")
}

/// A single-node UMA box, used as a degenerate control in tests: NUMA-aware
/// policies must not crash or change behaviour on it.
pub fn uma_quad() -> Topology {
    TopologyBuilder::new(2_400)
        .add_node(NodeConfig::e5620_node(), 4)
        .build()
        .expect("UMA preset must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        xeon_e5620().validate().unwrap();
        four_socket_32core().validate().unwrap();
        uma_quad().validate().unwrap();
    }

    #[test]
    fn four_socket_shape() {
        let t = four_socket_32core();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_pcpus(), 32);
    }

    #[test]
    fn uma_shape() {
        let t = uma_quad();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_pcpus(), 4);
    }
}
