//! Per-VCPU hardware counter state.

use sim_core::Counter;

/// The counter set vProbe reads for one VCPU.
///
/// `node_accesses[i]` is the number of memory accesses served by node `i`
/// — the simulation stand-in for the paper's `N(vc, i)` "pages accessed in
/// the i-th node" (an access count over a period is proportional to touched
/// pages for the steady workloads evaluated).
#[derive(Debug, Clone, Default)]
pub struct VcpuPmu {
    instructions: Counter,
    llc_refs: Counter,
    llc_misses: Counter,
    local_accesses: Counter,
    remote_accesses: Counter,
    node_accesses: Vec<Counter>,
}

/// A windowed reading taken at the end of a sampling period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PmuSample {
    pub instructions: u64,
    pub llc_refs: u64,
    pub llc_misses: u64,
    pub local_accesses: u64,
    pub remote_accesses: u64,
    pub node_accesses: Vec<u64>,
}

impl PmuSample {
    /// An all-zero sample, standing in for a reading lost to counter
    /// overflow or a missed Perfctr interrupt.
    pub fn zeroed(num_nodes: usize) -> Self {
        PmuSample {
            instructions: 0,
            llc_refs: 0,
            llc_misses: 0,
            local_accesses: 0,
            remote_accesses: 0,
            node_accesses: vec![0; num_nodes],
        }
    }

    /// Scale the LLC counters by a multiplexing-noise factor, keeping
    /// misses bounded by references. Instructions are left alone: noise
    /// from time-multiplexed counters perturbs event counts, not the
    /// retired-instruction fixed counter.
    pub fn scale_llc(&mut self, factor: f64) {
        let scale = |v: u64| (v as f64 * factor).round().max(0.0) as u64;
        self.llc_refs = scale(self.llc_refs);
        self.llc_misses = scale(self.llc_misses).min(self.llc_refs);
    }

    /// Rotate the node-access histogram by `k` slots, modelling a stale or
    /// corrupted affinity reading: totals are preserved but Eq. (1) now
    /// points at the wrong node.
    pub fn rotate_node_accesses(&mut self, k: usize) {
        if self.node_accesses.len() > 1 {
            let k = k % self.node_accesses.len();
            self.node_accesses.rotate_right(k);
        }
    }

    /// LLC references per thousand instructions — the paper's Eq. (2) with
    /// α = 1000. Returns 0 for an idle window.
    pub fn llc_access_pressure(&self, alpha: f64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_refs as f64 / self.instructions as f64 * alpha
        }
    }

    /// The node holding the most accessed pages — the paper's Eq. (1)
    /// memory node affinity. Ties break toward the lower node id; returns
    /// `None` if the VCPU touched no memory this period.
    pub fn memory_node_affinity(&self) -> Option<usize> {
        let max = *self.node_accesses.iter().max()?;
        if max == 0 {
            return None;
        }
        self.node_accesses.iter().position(|&c| c == max)
    }

    /// Fraction of accesses that were remote; 0 for an idle window.
    pub fn remote_ratio(&self) -> f64 {
        let total = self.local_accesses + self.remote_accesses;
        if total == 0 {
            0.0
        } else {
            self.remote_accesses as f64 / total as f64
        }
    }

    /// LLC miss rate over the window; 0 if there were no references.
    pub fn miss_rate(&self) -> f64 {
        if self.llc_refs == 0 {
            0.0
        } else {
            self.llc_misses as f64 / self.llc_refs as f64
        }
    }
}

impl VcpuPmu {
    pub fn new(num_nodes: usize) -> Self {
        VcpuPmu {
            node_accesses: vec![Counter::new(); num_nodes],
            ..Default::default()
        }
    }

    /// Record one quantum's execution results.
    pub fn record(
        &mut self,
        instructions: u64,
        llc_refs: u64,
        llc_misses: u64,
        local: u64,
        remote: u64,
        node_accesses: &[u64],
    ) {
        debug_assert_eq!(node_accesses.len(), self.node_accesses.len());
        self.instructions.add(instructions);
        self.llc_refs.add(llc_refs);
        self.llc_misses.add(llc_misses);
        self.local_accesses.add(local);
        self.remote_accesses.add(remote);
        for (c, &n) in self.node_accesses.iter_mut().zip(node_accesses) {
            c.add(n);
        }
    }

    /// Record the same quantum result `times` times at once. Counter
    /// addition is exact u64 arithmetic, so multiplying first is identical
    /// to `times` separate [`VcpuPmu::record`] calls.
    #[allow(clippy::too_many_arguments)]
    pub fn record_scaled(
        &mut self,
        instructions: u64,
        llc_refs: u64,
        llc_misses: u64,
        local: u64,
        remote: u64,
        node_accesses: &[u64],
        times: u64,
    ) {
        debug_assert_eq!(node_accesses.len(), self.node_accesses.len());
        self.instructions.add(instructions * times);
        self.llc_refs.add(llc_refs * times);
        self.llc_misses.add(llc_misses * times);
        self.local_accesses.add(local * times);
        self.remote_accesses.add(remote * times);
        for (c, &n) in self.node_accesses.iter_mut().zip(node_accesses) {
            c.add(n * times);
        }
    }

    /// Read the current window without closing it.
    pub fn peek_window(&self) -> PmuSample {
        PmuSample {
            instructions: self.instructions.window(),
            llc_refs: self.llc_refs.window(),
            llc_misses: self.llc_misses.window(),
            local_accesses: self.local_accesses.window(),
            remote_accesses: self.remote_accesses.window(),
            node_accesses: self.node_accesses.iter().map(|c| c.window()).collect(),
        }
    }

    /// Read and close the window (end of sampling period).
    pub fn sample_window(&mut self) -> PmuSample {
        let s = self.peek_window();
        self.instructions.reset_window();
        self.llc_refs.reset_window();
        self.llc_misses.reset_window();
        self.local_accesses.reset_window();
        self.remote_accesses.reset_window();
        for c in &mut self.node_accesses {
            c.reset_window();
        }
        s
    }

    /// Whole-run totals (never reset) for end-of-experiment metrics.
    pub fn totals(&self) -> PmuSample {
        PmuSample {
            instructions: self.instructions.total(),
            llc_refs: self.llc_refs.total(),
            llc_misses: self.llc_misses.total(),
            local_accesses: self.local_accesses.total(),
            remote_accesses: self.remote_accesses.total(),
            node_accesses: self.node_accesses.iter().map(|c| c.total()).collect(),
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.node_accesses.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorded() -> VcpuPmu {
        let mut p = VcpuPmu::new(2);
        p.record(1_000_000, 20_000, 10_000, 2_000, 8_000, &[2_000, 8_000]);
        p
    }

    #[test]
    fn record_accumulates() {
        let p = recorded();
        let s = p.peek_window();
        assert_eq!(s.instructions, 1_000_000);
        assert_eq!(s.llc_refs, 20_000);
        assert_eq!(s.node_accesses, vec![2_000, 8_000]);
    }

    #[test]
    fn sample_window_resets_window_not_totals() {
        let mut p = recorded();
        let s1 = p.sample_window();
        assert_eq!(s1.instructions, 1_000_000);
        assert_eq!(p.peek_window().instructions, 0);
        p.record(500, 10, 5, 1, 4, &[1, 4]);
        assert_eq!(p.peek_window().instructions, 500);
        assert_eq!(p.totals().instructions, 1_000_500);
    }

    #[test]
    fn llc_access_pressure_matches_eq2() {
        let s = recorded().peek_window();
        // 20k refs / 1M instr * 1000 = 20 RPTI.
        assert!((s.llc_access_pressure(1_000.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn pressure_zero_when_idle() {
        let p = VcpuPmu::new(2);
        assert_eq!(p.peek_window().llc_access_pressure(1_000.0), 0.0);
    }

    #[test]
    fn affinity_is_argmax_node() {
        let s = recorded().peek_window();
        assert_eq!(s.memory_node_affinity(), Some(1));
    }

    #[test]
    fn affinity_none_without_accesses() {
        let mut p = VcpuPmu::new(3);
        p.record(100, 0, 0, 0, 0, &[0, 0, 0]);
        assert_eq!(p.peek_window().memory_node_affinity(), None);
    }

    #[test]
    fn affinity_tie_breaks_low_id() {
        let mut p = VcpuPmu::new(2);
        p.record(100, 10, 10, 5, 5, &[5, 5]);
        assert_eq!(p.peek_window().memory_node_affinity(), Some(0));
    }

    #[test]
    fn zeroed_sample_is_idle() {
        let s = PmuSample::zeroed(3);
        assert_eq!(s.instructions, 0);
        assert_eq!(s.node_accesses, vec![0, 0, 0]);
        assert_eq!(s.memory_node_affinity(), None);
        assert_eq!(s.llc_access_pressure(1_000.0), 0.0);
    }

    #[test]
    fn scale_llc_keeps_misses_bounded() {
        let mut s = recorded().peek_window();
        s.scale_llc(0.5);
        assert_eq!(s.llc_refs, 10_000);
        assert_eq!(s.llc_misses, 5_000);
        assert_eq!(s.instructions, 1_000_000);

        let mut s = PmuSample {
            llc_refs: 10,
            llc_misses: 10,
            ..PmuSample::zeroed(2)
        };
        // Rounding up misses must never exceed refs.
        s.llc_misses = 9;
        s.scale_llc(1.04);
        assert!(s.llc_misses <= s.llc_refs);
    }

    #[test]
    fn rotate_node_accesses_moves_affinity() {
        let mut s = recorded().peek_window();
        assert_eq!(s.memory_node_affinity(), Some(1));
        s.rotate_node_accesses(1);
        assert_eq!(s.node_accesses, vec![8_000, 2_000]);
        assert_eq!(s.memory_node_affinity(), Some(0));
        // Single-node histograms are unchanged.
        let mut one = PmuSample {
            node_accesses: vec![7],
            ..PmuSample::zeroed(1)
        };
        one.rotate_node_accesses(5);
        assert_eq!(one.node_accesses, vec![7]);
    }

    #[test]
    fn remote_ratio_and_miss_rate() {
        let s = recorded().peek_window();
        assert!((s.remote_ratio() - 0.8).abs() < 1e-12);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
        let idle = VcpuPmu::new(2).peek_window();
        assert_eq!(idle.remote_ratio(), 0.0);
        assert_eq!(idle.miss_rate(), 0.0);
    }
}
