//! Per-VCPU hardware counter state.

use sim_core::Counter;

/// The counter set vProbe reads for one VCPU.
///
/// `node_accesses[i]` is the number of memory accesses served by node `i`
/// — the simulation stand-in for the paper's `N(vc, i)` "pages accessed in
/// the i-th node" (an access count over a period is proportional to touched
/// pages for the steady workloads evaluated).
#[derive(Debug, Clone, Default)]
pub struct VcpuPmu {
    instructions: Counter,
    llc_refs: Counter,
    llc_misses: Counter,
    local_accesses: Counter,
    remote_accesses: Counter,
    node_accesses: Vec<Counter>,
}

/// A windowed reading taken at the end of a sampling period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PmuSample {
    pub instructions: u64,
    pub llc_refs: u64,
    pub llc_misses: u64,
    pub local_accesses: u64,
    pub remote_accesses: u64,
    pub node_accesses: Vec<u64>,
}

impl PmuSample {
    /// LLC references per thousand instructions — the paper's Eq. (2) with
    /// α = 1000. Returns 0 for an idle window.
    pub fn llc_access_pressure(&self, alpha: f64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_refs as f64 / self.instructions as f64 * alpha
        }
    }

    /// The node holding the most accessed pages — the paper's Eq. (1)
    /// memory node affinity. Ties break toward the lower node id; returns
    /// `None` if the VCPU touched no memory this period.
    pub fn memory_node_affinity(&self) -> Option<usize> {
        let max = *self.node_accesses.iter().max()?;
        if max == 0 {
            return None;
        }
        self.node_accesses.iter().position(|&c| c == max)
    }

    /// Fraction of accesses that were remote; 0 for an idle window.
    pub fn remote_ratio(&self) -> f64 {
        let total = self.local_accesses + self.remote_accesses;
        if total == 0 {
            0.0
        } else {
            self.remote_accesses as f64 / total as f64
        }
    }

    /// LLC miss rate over the window; 0 if there were no references.
    pub fn miss_rate(&self) -> f64 {
        if self.llc_refs == 0 {
            0.0
        } else {
            self.llc_misses as f64 / self.llc_refs as f64
        }
    }
}

impl VcpuPmu {
    pub fn new(num_nodes: usize) -> Self {
        VcpuPmu {
            node_accesses: vec![Counter::new(); num_nodes],
            ..Default::default()
        }
    }

    /// Record one quantum's execution results.
    pub fn record(
        &mut self,
        instructions: u64,
        llc_refs: u64,
        llc_misses: u64,
        local: u64,
        remote: u64,
        node_accesses: &[u64],
    ) {
        debug_assert_eq!(node_accesses.len(), self.node_accesses.len());
        self.instructions.add(instructions);
        self.llc_refs.add(llc_refs);
        self.llc_misses.add(llc_misses);
        self.local_accesses.add(local);
        self.remote_accesses.add(remote);
        for (c, &n) in self.node_accesses.iter_mut().zip(node_accesses) {
            c.add(n);
        }
    }

    /// Read the current window without closing it.
    pub fn peek_window(&self) -> PmuSample {
        PmuSample {
            instructions: self.instructions.window(),
            llc_refs: self.llc_refs.window(),
            llc_misses: self.llc_misses.window(),
            local_accesses: self.local_accesses.window(),
            remote_accesses: self.remote_accesses.window(),
            node_accesses: self.node_accesses.iter().map(|c| c.window()).collect(),
        }
    }

    /// Read and close the window (end of sampling period).
    pub fn sample_window(&mut self) -> PmuSample {
        let s = self.peek_window();
        self.instructions.reset_window();
        self.llc_refs.reset_window();
        self.llc_misses.reset_window();
        self.local_accesses.reset_window();
        self.remote_accesses.reset_window();
        for c in &mut self.node_accesses {
            c.reset_window();
        }
        s
    }

    /// Whole-run totals (never reset) for end-of-experiment metrics.
    pub fn totals(&self) -> PmuSample {
        PmuSample {
            instructions: self.instructions.total(),
            llc_refs: self.llc_refs.total(),
            llc_misses: self.llc_misses.total(),
            local_accesses: self.local_accesses.total(),
            remote_accesses: self.remote_accesses.total(),
            node_accesses: self.node_accesses.iter().map(|c| c.total()).collect(),
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.node_accesses.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorded() -> VcpuPmu {
        let mut p = VcpuPmu::new(2);
        p.record(1_000_000, 20_000, 10_000, 2_000, 8_000, &[2_000, 8_000]);
        p
    }

    #[test]
    fn record_accumulates() {
        let p = recorded();
        let s = p.peek_window();
        assert_eq!(s.instructions, 1_000_000);
        assert_eq!(s.llc_refs, 20_000);
        assert_eq!(s.node_accesses, vec![2_000, 8_000]);
    }

    #[test]
    fn sample_window_resets_window_not_totals() {
        let mut p = recorded();
        let s1 = p.sample_window();
        assert_eq!(s1.instructions, 1_000_000);
        assert_eq!(p.peek_window().instructions, 0);
        p.record(500, 10, 5, 1, 4, &[1, 4]);
        assert_eq!(p.peek_window().instructions, 500);
        assert_eq!(p.totals().instructions, 1_000_500);
    }

    #[test]
    fn llc_access_pressure_matches_eq2() {
        let s = recorded().peek_window();
        // 20k refs / 1M instr * 1000 = 20 RPTI.
        assert!((s.llc_access_pressure(1_000.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn pressure_zero_when_idle() {
        let p = VcpuPmu::new(2);
        assert_eq!(p.peek_window().llc_access_pressure(1_000.0), 0.0);
    }

    #[test]
    fn affinity_is_argmax_node() {
        let s = recorded().peek_window();
        assert_eq!(s.memory_node_affinity(), Some(1));
    }

    #[test]
    fn affinity_none_without_accesses() {
        let mut p = VcpuPmu::new(3);
        p.record(100, 0, 0, 0, 0, &[0, 0, 0]);
        assert_eq!(p.peek_window().memory_node_affinity(), None);
    }

    #[test]
    fn affinity_tie_breaks_low_id() {
        let mut p = VcpuPmu::new(2);
        p.record(100, 10, 10, 5, 5, &[5, 5]);
        assert_eq!(p.peek_window().memory_node_affinity(), Some(0));
    }

    #[test]
    fn remote_ratio_and_miss_rate() {
        let s = recorded().peek_window();
        assert!((s.remote_ratio() - 0.8).abs() < 1e-12);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
        let idle = VcpuPmu::new(2).peek_window();
        assert_eq!(idle.remote_ratio(), 0.0);
        assert_eq!(idle.miss_rate(), 0.0);
    }
}
