//! Sampling-period bookkeeping for a set of VCPUs.

use crate::counters::{PmuSample, VcpuPmu};
use sim_core::{SimDuration, SimTime};

/// Manages one [`VcpuPmu`] per VCPU and the sampling-period boundary.
///
/// The hypervisor calls [`PeriodSampler::record`] every quantum for each
/// VCPU that ran and [`PeriodSampler::maybe_sample`] every quantum with the
/// current time; when a period boundary passes, the latter returns one
/// sample per VCPU for the analyzer.
#[derive(Debug, Clone)]
pub struct PeriodSampler {
    period: SimDuration,
    next_boundary: SimTime,
    pmus: Vec<VcpuPmu>,
    periods_completed: u64,
}

impl PeriodSampler {
    /// Panics on a zero period.
    pub fn new(num_vcpus: usize, num_nodes: usize, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "sampling period must be nonzero");
        PeriodSampler {
            period,
            next_boundary: SimTime::ZERO + period,
            pmus: (0..num_vcpus).map(|_| VcpuPmu::new(num_nodes)).collect(),
            periods_completed: 0,
        }
    }

    pub fn period(&self) -> SimDuration {
        self.period
    }

    pub fn num_vcpus(&self) -> usize {
        self.pmus.len()
    }

    pub fn periods_completed(&self) -> u64 {
        self.periods_completed
    }

    /// The next time at which [`PeriodSampler::maybe_sample`] will fire.
    /// Macro-stepping uses this as one of its event-horizon sources.
    pub fn next_boundary(&self) -> SimTime {
        self.next_boundary
    }

    /// Record a quantum's results for VCPU `vcpu`.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        vcpu: usize,
        instructions: u64,
        llc_refs: u64,
        llc_misses: u64,
        local: u64,
        remote: u64,
        node_accesses: &[u64],
    ) {
        self.pmus[vcpu].record(instructions, llc_refs, llc_misses, local, remote, node_accesses);
    }

    /// Record the same quantum result `times` times in one call — the
    /// counters are additive in exact integers, so this matches `times`
    /// individual [`PeriodSampler::record`] calls bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub fn record_scaled(
        &mut self,
        vcpu: usize,
        instructions: u64,
        llc_refs: u64,
        llc_misses: u64,
        local: u64,
        remote: u64,
        node_accesses: &[u64],
        times: u64,
    ) {
        self.pmus[vcpu].record_scaled(
            instructions,
            llc_refs,
            llc_misses,
            local,
            remote,
            node_accesses,
            times,
        );
    }

    /// If `now` has reached the period boundary, close every VCPU's window
    /// and return the samples; otherwise `None`. Skipped boundaries (if the
    /// caller stepped past several) collapse into one sample, matching a
    /// real sampler that missed its timer.
    pub fn maybe_sample(&mut self, now: SimTime) -> Option<Vec<PmuSample>> {
        if now < self.next_boundary {
            return None;
        }
        while self.next_boundary <= now {
            self.next_boundary += self.period;
        }
        self.periods_completed += 1;
        Some(self.pmus.iter_mut().map(|p| p.sample_window()).collect())
    }

    /// Peek a single VCPU's in-progress window.
    pub fn peek(&self, vcpu: usize) -> PmuSample {
        self.pmus[vcpu].peek_window()
    }

    /// Whole-run totals for a VCPU.
    pub fn totals(&self, vcpu: usize) -> PmuSample {
        self.pmus[vcpu].totals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn samples_fire_on_boundary() {
        let mut s = PeriodSampler::new(2, 2, SimDuration::from_secs(1));
        s.record(0, 100, 10, 5, 2, 3, &[2, 3]);
        assert!(s.maybe_sample(t(999)).is_none());
        let samples = s.maybe_sample(t(1_000)).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].instructions, 100);
        assert_eq!(samples[1].instructions, 0);
        assert_eq!(s.periods_completed(), 1);
    }

    #[test]
    fn window_resets_between_periods() {
        let mut s = PeriodSampler::new(1, 2, SimDuration::from_secs(1));
        s.record(0, 100, 0, 0, 0, 0, &[0, 0]);
        s.maybe_sample(t(1_000)).unwrap();
        s.record(0, 7, 0, 0, 0, 0, &[0, 0]);
        let second = s.maybe_sample(t(2_000)).unwrap();
        assert_eq!(second[0].instructions, 7);
        assert_eq!(s.totals(0).instructions, 107);
    }

    #[test]
    fn missed_boundaries_collapse() {
        let mut s = PeriodSampler::new(1, 2, SimDuration::from_secs(1));
        s.record(0, 50, 0, 0, 0, 0, &[0, 0]);
        let samples = s.maybe_sample(t(3_500)).unwrap();
        assert_eq!(samples[0].instructions, 50);
        // Next boundary is 4 s, not 2 s.
        assert!(s.maybe_sample(t(3_900)).is_none());
        assert!(s.maybe_sample(t(4_000)).is_some());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_period_rejected() {
        PeriodSampler::new(1, 1, SimDuration::ZERO);
    }
}
