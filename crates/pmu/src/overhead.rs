//! Monitoring and rebalancing cost model.
//!
//! The paper's Table III measures "overhead time" — (a) the time to collect
//! PMU data, and (b) the time the periodical-partitioning pass spends
//! reassigning memory-intensive VCPUs — as a percentage of total execution
//! time, finding it below 0.1 %. We model both sources with per-operation
//! microsecond costs calibrated to what an MSR read / runqueue migration
//! costs on the paper's hardware generation, and track them per run so the
//! Table III experiment *measures* rather than assumes the result.

use sim_core::SimDuration;

/// Per-operation costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Cost of reading one VCPU's counter set (a handful of RDMSRs plus
    /// bookkeeping), charged at every counter update point.
    pub sample_cost_us: f64,
    /// Cost of one partitioning-pass VCPU reassignment (runqueue surgery
    /// plus an IPI).
    pub migrate_cost_us: f64,
    /// Fixed per-period analyzer cost (classification + group building).
    pub analyze_cost_us: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            sample_cost_us: 1.5,
            migrate_cost_us: 6.0,
            analyze_cost_us: 10.0,
        }
    }
}

/// Accumulates overhead against total busy time for one run.
#[derive(Debug, Clone, Default)]
pub struct OverheadTracker {
    model: OverheadModel,
    overhead_us: f64,
    busy_us: f64,
}

impl OverheadTracker {
    pub fn new(model: OverheadModel) -> Self {
        OverheadTracker {
            model,
            overhead_us: 0.0,
            busy_us: 0.0,
        }
    }

    pub fn model(&self) -> &OverheadModel {
        &self.model
    }

    /// Charge one counter-set read.
    pub fn charge_sample(&mut self) -> f64 {
        self.overhead_us += self.model.sample_cost_us;
        self.model.sample_cost_us
    }

    /// Charge one partitioning migration.
    pub fn charge_migration(&mut self) -> f64 {
        self.overhead_us += self.model.migrate_cost_us;
        self.model.migrate_cost_us
    }

    /// Charge one analyzer pass.
    pub fn charge_analysis(&mut self) -> f64 {
        self.overhead_us += self.model.analyze_cost_us;
        self.model.analyze_cost_us
    }

    /// Account PCPU busy time (the denominator of Table III).
    pub fn add_busy_time(&mut self, d: SimDuration) {
        self.busy_us += d.as_micros() as f64;
    }

    pub fn overhead_us(&self) -> f64 {
        self.overhead_us
    }

    pub fn busy_us(&self) -> f64 {
        self.busy_us
    }

    /// "Overhead time" percentage of total execution time (Table III).
    pub fn overhead_percent(&self) -> f64 {
        if self.busy_us <= 0.0 {
            0.0
        } else {
            self.overhead_us / self.busy_us * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut t = OverheadTracker::new(OverheadModel::default());
        t.charge_sample();
        t.charge_sample();
        t.charge_migration();
        t.charge_analysis();
        assert!((t.overhead_us() - (1.5 * 2.0 + 6.0 + 10.0)).abs() < 1e-12);
    }

    #[test]
    fn percent_against_busy_time() {
        let mut t = OverheadTracker::new(OverheadModel {
            sample_cost_us: 10.0,
            migrate_cost_us: 0.0,
            analyze_cost_us: 0.0,
        });
        t.charge_sample();
        t.add_busy_time(SimDuration::from_millis(100));
        // 10 us over 100 ms = 0.01 %.
        assert!((t.overhead_percent() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn zero_busy_time_gives_zero_percent() {
        let mut t = OverheadTracker::new(OverheadModel::default());
        t.charge_sample();
        assert_eq!(t.overhead_percent(), 0.0);
    }

    #[test]
    fn default_costs_are_sub_10us() {
        let m = OverheadModel::default();
        assert!(m.sample_cost_us < 10.0);
        assert!(m.migrate_cost_us < 20.0);
    }
}
