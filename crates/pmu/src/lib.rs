//! Virtualized performance monitoring units.
//!
//! The paper patches Xen with Perfctr-Xen to read hardware counters per
//! VCPU: LLC references, retired instructions, and the number of local and
//! remote memory accesses (from which per-node page-access counts are
//! derived). This crate is the simulation equivalent: the hypervisor feeds
//! each VCPU's per-quantum execution results into a [`VcpuPmu`], and the
//! PMU data analyzer reads *windowed* values at the end of each sampling
//! period, exactly like the prototype ("a running VCPU's runtime
//! information is updated before VCPU context switch or every 10 ms").
//!
//! Collection cost is modeled explicitly by [`overhead::OverheadModel`] so
//! that Table III ("overhead time" below 0.1 %) can be reproduced rather
//! than asserted.

pub mod counters;
pub mod overhead;
pub mod sampler;

pub use counters::{PmuSample, VcpuPmu};
pub use overhead::{OverheadModel, OverheadTracker};
pub use sampler::PeriodSampler;
