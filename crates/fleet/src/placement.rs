//! Available-space admission scoring (after Gudkov et al., "Efficient
//! calculation of available space for multi-NUMA virtual machines").
//!
//! For every candidate host the controller computes how many *more*
//! instances of the flavor being placed the host could hold — its
//! available-space count — and places the VM on the feasible host whose
//! count is smallest (best fit). Tightest-fit consolidation keeps empty
//! hosts empty, which is what makes the count a meaningful fleet-capacity
//! signal; ties break on the lowest host index so placement is a pure
//! function of fleet state.
//!
//! The simulator's page allocator (`AllocPolicy::MostFree`) spills an
//! allocation across nodes whenever the freest node runs out, so a VM fits
//! iff the *total* free memory covers it; the per-node vector therefore
//! collapses into aggregate free memory here, and the CPU dimension uses
//! the admission overcommit factor. The scan is a single pass over hosts —
//! O(N) per placement, the "near-linear assignment" regime Durbhakula's
//! work argues for at fleet scale.

use crate::config::{AdmissionConfig, VmFlavor};
use crate::host::Host;

/// A host's free resources as seen by the admission controller.
#[derive(Debug, Clone, PartialEq)]
pub struct HostCapacity {
    /// VCPU slots still grantable: `pcpus × overcommit − committed vcpus`
    /// (committed = resident + in-flight incoming VMs).
    pub free_vcpus: f64,
    /// Total unreserved memory across all NUMA nodes.
    pub free_mem_bytes: u64,
}

/// How many additional instances of `flavor` fit into `cap`. This is the
/// available-space count the controller scores hosts by.
pub fn instances_fit(cap: &HostCapacity, flavor: &VmFlavor) -> u64 {
    if flavor.vcpus == 0 {
        return 0;
    }
    let by_cpu = (cap.free_vcpus / flavor.vcpus as f64).floor();
    if by_cpu < 1.0 {
        return 0;
    }
    let by_mem = cap.free_mem_bytes / flavor.mem_bytes.max(1);
    (by_cpu as u64).min(by_mem)
}

/// Pick the host for one VM of `flavor`: the feasible Up host with the
/// smallest available-space count (best fit), ties broken by index.
/// Returns `None` when no host can take the VM.
pub fn choose_host(hosts: &[Host], flavor: &VmFlavor, adm: &AdmissionConfig) -> Option<usize> {
    let mut best: Option<(u64, usize)> = None;
    for host in hosts {
        if !host.is_up() {
            continue;
        }
        let fit = instances_fit(&host.capacity(adm), flavor);
        if fit == 0 {
            continue;
        }
        match best {
            Some((b, _)) if b <= fit => {}
            _ => best = Some((fit, host.index)),
        }
    }
    best.map(|(_, i)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FleetConfig, FleetScheduler, HostPreset};

    fn flavor(vcpus: usize, gb: u64) -> VmFlavor {
        VmFlavor {
            name: "t",
            vcpus,
            mem_bytes: gb * 1024 * 1024 * 1024,
            workloads: vec![workloads::hungry::hungry_loop()],
            weight: 256,
        }
    }

    #[test]
    fn fit_is_min_of_cpu_and_mem() {
        let cap = HostCapacity {
            free_vcpus: 24.0,
            free_mem_bytes: 10 * 1024 * 1024 * 1024,
        };
        // 4-vcpu, 4 GB: cpu allows 6, mem allows 2.
        assert_eq!(instances_fit(&cap, &flavor(4, 4)), 2);
        // 2-vcpu, 1 GB: cpu allows 12, mem allows 10.
        assert_eq!(instances_fit(&cap, &flavor(2, 1)), 10);
        // Too big on either axis → 0.
        assert_eq!(instances_fit(&cap, &flavor(32, 1)), 0);
        assert_eq!(instances_fit(&cap, &flavor(1, 11)), 0);
    }

    #[test]
    fn best_fit_prefers_tightest_host() {
        let cfg = FleetConfig::new(3, FleetScheduler::Credit);
        let mut hosts: Vec<Host> = (0..3)
            .map(|i| Host::new(i, HostPreset::XeonE5620, cfg.rack_of(i)))
            .collect();
        // Load host 1 so it has the least remaining room but still fits one.
        let f = flavor(4, 6);
        for id in 0..2 {
            hosts[1].admit_resident(crate::host::FleetVm {
                id,
                flavor_idx: 0,
                flavor: f.clone(),
                arrived_epoch: 0,
            });
        }
        let adm = AdmissionConfig::default();
        assert_eq!(choose_host(&hosts, &f, &adm), Some(1));
        // A host that is down is never chosen.
        hosts[1].state = crate::host::HostState::Down { until_epoch: 9 };
        let chosen = choose_host(&hosts, &f, &adm).unwrap();
        assert_ne!(chosen, 1);
        assert_eq!(chosen, 0, "ties break on lowest index");
    }

    #[test]
    fn no_feasible_host_returns_none() {
        let cfg = FleetConfig::new(1, FleetScheduler::Credit);
        let hosts = vec![Host::new(0, HostPreset::UmaQuad, cfg.rack_of(0))];
        // uma_quad has 4 cores; even 3× overcommit cannot take 16 vcpus.
        assert_eq!(choose_host(&hosts, &flavor(16, 1), &AdmissionConfig::default()), None);
    }
}
