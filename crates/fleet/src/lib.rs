//! Fleet layer: many NUMA hosts, failure domains, self-healing placement.
//!
//! vProbe (CLUSTER 2016) schedules VCPUs *within* one NUMA host; this crate
//! layers the production-scale picture above [`xen_sim::Machine`]: N hosts
//! built from `numa-topo` presets (heterogeneous mixes allowed), a
//! placement/admission controller using available-space scoring (Gudkov et
//! al., "Efficient calculation of available space for multi-NUMA virtual
//! machines"), and a fleet-level fault model — seed-deterministic host
//! crashes and recoveries, failed/delayed inter-host live migrations with
//! modeled copy cost, and correlated failure domains (a rack is a group of
//! hosts that can fail together).
//!
//! The robustness core is self-healing: when a host crashes the controller
//! evacuates the lost VMs through retry-with-backoff re-placement, sheds
//! load gracefully when capacity is exhausted (admission queue with a
//! timeout rather than a panic), and records SLO-relevant outcomes
//! (evacuation latency, placement failures, degraded VM-minutes) through
//! the existing [`telemetry`] registry.
//!
//! # Determinism
//!
//! Fleet time advances in *epochs* of one sampling period. Each epoch has
//! two phases:
//!
//! 1. a single-threaded **controller barrier** — recoveries, landings,
//!    crash draws, churn draws, and placement run in a fixed order (racks
//!    and hosts by index, VMs by id, queues in FIFO order) against
//!    dedicated forked RNG streams;
//! 2. a **parallel step** — each Up host's `Machine` advances one epoch via
//!    [`sim_core::parallel::parallel_map`], which returns results in input
//!    order regardless of thread scheduling.
//!
//! Every host simulation is a pure function of its own state, and all
//! cross-host decisions happen inside the barrier, so the same seed gives
//! byte-identical output for any `--jobs` value. A further invariant,
//! pinned by tests and CI: a 1-host fleet with zero churn and zero faults
//! produces a host `RunMetrics` byte-identical to building the same
//! `Machine` directly and running it once for the whole duration (chunked
//! stepping is exact, and zero-rate controller streams make no RNG draws).

pub mod config;
pub mod controller;
pub mod host;
pub mod metrics;
pub mod placement;

pub use config::{
    AdmissionConfig, ChurnConfig, FailureConfig, FleetConfig, FleetScheduler, HostPreset, VmFlavor,
};
pub use controller::{Fleet, FleetReport};
pub use host::{FleetVm, Host, HostState};
pub use metrics::FleetMetrics;
pub use placement::{choose_host, instances_fit, HostCapacity};
