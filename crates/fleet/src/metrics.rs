//! Fleet-level SLO accounting.
//!
//! Counters follow the workspace's no-silent-loss discipline: every VM
//! displaced by a crash must end the run as evacuated, shed, or still
//! visibly queued/in-flight — [`FleetMetrics::vms_lost`] computes the
//! remainder and anything nonzero is a controller bug, pinned to zero by
//! tests and the CI smoke.

use sim_core::stats::RunningStats;

/// Aggregated fleet counters for one run. Event counters count *events*:
/// a VM displaced by two different crashes contributes two displacements
/// (and, once re-placed both times, two evacuations).
#[derive(Debug, Clone, Default)]
pub struct FleetMetrics {
    /// Hosts crashed (individual + rack-correlated).
    pub crashes: u64,
    /// Whole-rack correlated failures.
    pub rack_crashes: u64,
    pub recoveries: u64,
    /// VMs displaced by host crashes (resident + in-flight at crash time).
    pub displaced: u64,
    /// Displaced VMs successfully re-placed and landed.
    pub evacuated: u64,
    /// Displaced VMs given up on (retry budget or queue timeout).
    pub shed_evacuation: u64,
    /// Arriving VMs given up on (no capacity within the queue timeout).
    pub shed_admission: u64,
    pub arrivals: u64,
    pub departures: u64,
    /// Arriving VMs that landed on a host.
    pub admitted: u64,
    pub placement_attempts: u64,
    /// Attempts that found no feasible host.
    pub placement_failures: u64,
    /// Accepted live migrations that failed mid-copy and re-queued.
    pub migration_failures: u64,
    /// Migrations whose copy ran degraded (doubled copy time).
    pub migrations_delayed: u64,
    /// Σ over epochs of displaced-but-not-yet-restored VMs (the SLO
    /// "degraded" integral; multiply by the epoch length for VM-minutes).
    pub degraded_vm_epochs: u64,
    /// Σ over epochs of hosts sitting Down.
    pub host_down_epochs: u64,
    /// Evacuation latency samples, in seconds (displacement → landing).
    pub evac_latency_s: RunningStats,
}

impl FleetMetrics {
    /// Displaced VMs not accounted for as evacuated, shed, queued, or
    /// in-flight. Must be zero at all times.
    pub fn vms_lost(&self, pending_evac: u64, in_flight_evac: u64) -> i64 {
        self.displaced as i64
            - self.evacuated as i64
            - self.shed_evacuation as i64
            - pending_evac as i64
            - in_flight_evac as i64
    }

    /// Total VMs shed (evacuation + admission).
    pub fn shed_total(&self) -> u64 {
        self.shed_evacuation + self.shed_admission
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lost_accounting_balances() {
        let m = FleetMetrics {
            displaced: 10,
            evacuated: 6,
            shed_evacuation: 2,
            ..FleetMetrics::default()
        };
        assert_eq!(m.vms_lost(1, 1), 0);
        assert_eq!(m.vms_lost(0, 0), 2, "unaccounted VMs are visible");
        assert_eq!(m.shed_total(), 2);
    }
}
