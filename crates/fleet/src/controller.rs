//! The fleet controller: epoch loop, failure domains, self-healing
//! placement, and the deterministic execution barrier.
//!
//! # Epoch anatomy (the determinism barrier)
//!
//! All cross-host state changes happen single-threaded, in a fixed order,
//! against dedicated forked RNG streams — then hosts step one sampling
//! period in parallel. The order inside the barrier is:
//!
//! 1. **recoveries** — hosts whose down-timer expired come back (index
//!    order);
//! 2. **landings** — finished migration copies become resident VMs (host
//!    index order, arrival order within a host);
//! 3. **crash draws** — rack-correlated draws (rack order) then
//!    independent per-host draws (index order); crashed hosts hand every
//!    resident and in-flight VM to the evacuation queue;
//! 4. **departure churn** — per-VM exit draws (host index order, resident
//!    order);
//! 5. **arrival churn** — one Poisson draw for the count, one flavor draw
//!    each, appended to the admission queue;
//! 6. **placement** — evacuation queue first, then admission, FIFO:
//!    available-space scoring picks a host, migration-fault draws decide
//!    failure/delay, accepted VMs reserve capacity and start their copy;
//!    failures back off exponentially and shed after the retry budget or
//!    queue timeout (recorded — never silently dropped);
//! 7. **rebuilds** — Up hosts whose membership changed rebuild their
//!    `Machine`;
//! 8. **parallel step** — every Up host's machine runs one epoch via the
//!    ordered [`sim_core::parallel::parallel_map`];
//! 9. **telemetry snapshot** — fleet gauges/counters/histograms are
//!    sampled at the epoch-end timestamp.
//!
//! Zero-rate draws are skipped entirely (no RNG consumption), matching the
//! fault injector's discipline, so a zero-churn zero-failure fleet makes
//! *no* controller draws at all.

use crate::config::FleetConfig;
use crate::host::{FleetVm, Host, HostState, IncomingVm};
use crate::metrics::FleetMetrics;
use crate::placement::choose_host;
use sim_core::{parallel, Json, SimError, SimRng, SimTime};
use telemetry::{CounterId, GaugeId, HistogramId, Registry};

/// A VM waiting for placement (fresh arrival or crash evacuee).
#[derive(Debug, Clone)]
pub struct QueuedVm {
    pub vm: FleetVm,
    pub enqueued_epoch: u64,
    /// `Some(epoch)` when the VM was displaced by a crash; drives the
    /// evacuation-latency histogram when it lands.
    pub displaced_epoch: Option<u64>,
    pub retries: u32,
    pub next_attempt_epoch: u64,
    /// Provenance span id for this VM's placement journey; 0 when
    /// provenance is disabled.
    pub span: u64,
}

/// Decision-provenance state for a fleet run: controller spans (admission
/// and evacuation journeys with retry children), the SLO burn-rate series,
/// and per-source-host burn attribution. Pure observation — enabling it
/// draws no RNG and perturbs no placement decision, so every other output
/// stays byte-identical.
struct FleetProvenance {
    spans: telemetry::SpanLog,
    /// Evacuation span id → (source host, rack), for burn attribution at
    /// landing time. Keyed lookup only — never iterated for output.
    evac_src: std::collections::HashMap<u64, (usize, usize)>,
    /// Evac-latency budget consumed per epoch: sum over evacuations landed
    /// that epoch of `latency_s / budget_s`.
    burn_by_epoch: Vec<f64>,
    /// Evacuation-latency seconds attributed to each crashed source host.
    burned_s_by_host: Vec<f64>,
    budget_s: f64,
}

/// Telemetry ids registered once at fleet construction (registration
/// order fixes export order).
#[derive(Debug)]
struct FleetTelemetry {
    crashes: CounterId,
    recoveries: CounterId,
    displaced: CounterId,
    evacuated: CounterId,
    shed: CounterId,
    arrivals: CounterId,
    departures: CounterId,
    placement_failures: CounterId,
    migration_failures: CounterId,
    hosts_up: GaugeId,
    resident_vms: GaugeId,
    queue_depth: GaugeId,
    evac_latency_s: HistogramId,
}

impl FleetTelemetry {
    fn register(reg: &mut Registry) -> Self {
        FleetTelemetry {
            crashes: reg.counter("fleet_crashes"),
            recoveries: reg.counter("fleet_recoveries"),
            displaced: reg.counter("fleet_displaced"),
            evacuated: reg.counter("fleet_evacuated"),
            shed: reg.counter("fleet_shed"),
            arrivals: reg.counter("fleet_arrivals"),
            departures: reg.counter("fleet_departures"),
            placement_failures: reg.counter("fleet_placement_failures"),
            migration_failures: reg.counter("fleet_migration_failures"),
            hosts_up: reg.gauge("fleet_hosts_up"),
            resident_vms: reg.gauge("fleet_resident_vms"),
            queue_depth: reg.gauge("fleet_queue_depth"),
            evac_latency_s: reg.histogram("fleet_evac_latency_s", 0.0, 120.0, 24),
        }
    }
}

/// A running fleet. Construct with [`Fleet::new`], drive with
/// [`Fleet::run`], inspect hosts afterwards (e.g. to export one host's
/// trace).
pub struct Fleet {
    cfg: FleetConfig,
    hosts: Vec<Host>,
    evac_queue: Vec<QueuedVm>,
    admit_queue: Vec<QueuedVm>,
    next_vm_id: u64,
    // Controller RNG streams, forked from the root seed in fixed label
    // order at construction. All draws happen inside the barrier.
    rack_rng: SimRng,
    crash_rng: SimRng,
    recovery_rng: SimRng,
    arrival_rng: SimRng,
    depart_rng: SimRng,
    flavor_rng: SimRng,
    migration_rng: SimRng,
    pub metrics: FleetMetrics,
    registry: Registry,
    tele: FleetTelemetry,
    /// Mirror a host's machine trace/telemetry across rebuilds:
    /// `(host index, trace capacity)`.
    trace_host: Option<(usize, usize)>,
    /// Up hosts stepped per epoch — the shardable width of the parallel
    /// step, a pure function of controller state (never of `--jobs`).
    hosts_stepped: telemetry::BatchHistogram,
    /// Decision provenance; `None` (free) unless enabled.
    prov: Option<FleetProvenance>,
    epochs_run: u64,
}

impl Fleet {
    pub fn new(cfg: FleetConfig) -> Result<Fleet, SimError> {
        cfg.validate()?;
        let mut root = SimRng::seed_from(cfg.seed);
        let rack_rng = root.fork(1);
        let crash_rng = root.fork(2);
        let recovery_rng = root.fork(3);
        let arrival_rng = root.fork(4);
        let depart_rng = root.fork(5);
        let flavor_rng = root.fork(6);
        let migration_rng = root.fork(7);
        let mut registry = Registry::new();
        registry.set_enabled(true);
        let tele = FleetTelemetry::register(&mut registry);
        let mut fleet = Fleet {
            hosts: (0..cfg.num_hosts)
                .map(|i| Host::new(i, cfg.preset_for(i), cfg.rack_of(i)))
                .collect(),
            cfg,
            evac_queue: Vec::new(),
            admit_queue: Vec::new(),
            next_vm_id: 0,
            rack_rng,
            crash_rng,
            recovery_rng,
            arrival_rng,
            depart_rng,
            flavor_rng,
            migration_rng,
            metrics: FleetMetrics::default(),
            registry,
            tele,
            trace_host: None,
            hosts_stepped: telemetry::BatchHistogram::new(),
            prov: None,
            epochs_run: 0,
        };
        fleet.place_initial_vms()?;
        Ok(fleet)
    }

    /// Pre-place `initial_vms_per_host` VMs on every host, flavors cycling
    /// through the catalog in fleet-wide VM-id order (no RNG involved, so
    /// initial state is a pure function of the config).
    fn place_initial_vms(&mut self) -> Result<(), SimError> {
        let per_host = self.cfg.initial_vms_per_host;
        let num_flavors = self.cfg.flavors.len();
        for h in 0..self.hosts.len() {
            for _ in 0..per_host {
                let id = self.next_vm_id;
                self.next_vm_id += 1;
                let flavor_idx = (id as usize) % num_flavors;
                let vm = FleetVm {
                    id,
                    flavor_idx,
                    flavor: self.cfg.flavors[flavor_idx].clone(),
                    arrived_epoch: 0,
                };
                let fits =
                    crate::placement::instances_fit(&self.hosts[h].capacity(&self.cfg.admission), &vm.flavor);
                if fits == 0 {
                    return Err(SimError::ResourceExhausted(format!(
                        "initial VM {id} ({}) does not fit on host {h}",
                        vm.flavor.name
                    )));
                }
                self.hosts[h].admit_resident(vm);
            }
        }
        for h in 0..self.hosts.len() {
            self.rebuild_host(h)?;
        }
        Ok(())
    }

    /// Export one host's machine trace (Chrome Trace Event JSON) and
    /// enable its telemetry registry; survives machine rebuilds.
    pub fn set_trace_host(&mut self, index: usize, capacity: usize) {
        self.trace_host = Some((index, capacity));
        if let Some(m) = self.hosts.get_mut(index).and_then(|h| h.machine.as_mut()) {
            m.enable_trace(capacity);
            m.enable_telemetry();
        }
    }

    /// Enable decision provenance: controller spans for every VM's
    /// admission/evacuation journey (with retry children), the SLO
    /// burn-rate series against [`FleetConfig::slo_evac_budget_s`], and
    /// per-host machine telemetry for the fleet rollup. Call before
    /// [`Fleet::run`]. Observation only: no RNG draws, no decision
    /// changes; `FleetReport` stays byte-identical.
    pub fn enable_provenance(&mut self) {
        self.prov = Some(FleetProvenance {
            spans: telemetry::SpanLog::enabled(),
            evac_src: std::collections::HashMap::new(),
            burn_by_epoch: vec![0.0; self.cfg.epochs as usize],
            burned_s_by_host: vec![0.0; self.hosts.len()],
            budget_s: self.cfg.slo_evac_budget_s,
        });
        for host in &mut self.hosts {
            if let Some(m) = host.machine.as_mut() {
                m.enable_telemetry();
            }
        }
    }

    /// Controller span log as JSONL; `None` unless
    /// [`Fleet::enable_provenance`] was called.
    pub fn spans_jsonl(&self) -> Option<String> {
        self.prov.as_ref().map(|p| p.spans.to_jsonl())
    }

    /// Chrome Trace Event export of the controller spans: one track per
    /// host plus a "queue" track for not-yet-placed work. Open spans are
    /// closed at the end of the run.
    pub fn spans_chrome(&self) -> Option<String> {
        let p = self.prov.as_ref()?;
        let mut tracks: Vec<(u64, String)> = (0..self.hosts.len())
            .map(|i| (i as u64, format!("host{i}")))
            .collect();
        tracks.push((self.hosts.len() as u64, "queue".into()));
        let end_us = self.cfg.epoch_len.as_micros() * self.epochs_run;
        Some(p.spans.to_chrome(&tracks, end_us))
    }

    /// SLO rollup JSON: the evacuation-latency burn-rate series, per-host
    /// burn attribution, and the fleet-wide aggregation of every live
    /// host machine's registry ([`telemetry::try_rollup`]). Host
    /// registries die with their machine on crash/rebuild, so the rollup
    /// covers the *surviving* machine generations — exactly the
    /// population still serving at the end of the run. `Ok(None)` when
    /// provenance is off; `Err` if hosts somehow registered histogram
    /// layouts that cannot be merged (a programming error surfaced
    /// instead of silently mis-added).
    pub fn slo_json(&self) -> Result<Option<String>, SimError> {
        let Some(p) = self.prov.as_ref() else {
            return Ok(None);
        };
        let total_burned: f64 = p.burned_s_by_host.iter().sum();
        let burn_by_epoch: Vec<Json> = p
            .burn_by_epoch
            .iter()
            .enumerate()
            .map(|(e, b)| {
                Json::Obj(vec![
                    ("epoch".into(), Json::from(e)),
                    ("burn".into(), Json::Num(*b)),
                ])
            })
            .collect();
        let burned_by_host: Vec<Json> = p
            .burned_s_by_host
            .iter()
            .enumerate()
            .map(|(h, s)| {
                Json::Obj(vec![
                    ("host".into(), Json::from(h)),
                    ("rack".into(), Json::from(self.hosts[h].rack)),
                    ("burned_s".into(), Json::Num(*s)),
                ])
            })
            .collect();
        let host_docs: Vec<Json> = self
            .hosts
            .iter()
            .filter_map(|h| h.machine.as_ref())
            .filter_map(|m| m.telemetry().export())
            .collect();
        let host_rollup = telemetry::try_rollup(&host_docs).map_err(|e| {
            SimError::InvalidConfig(format!("fleet telemetry rollup: {e}"))
        })?;
        Ok(Some(
            Json::Obj(vec![
                ("budget_s".into(), Json::Num(p.budget_s)),
                ("epochs".into(), Json::from(self.epochs_run)),
                (
                    "epoch_len_s".into(),
                    Json::Num(self.cfg.epoch_len.as_secs_f64()),
                ),
                ("total_burned_s".into(), Json::Num(total_burned)),
                (
                    "total_burn".into(),
                    Json::Num(total_burned / p.budget_s),
                ),
                ("burn_by_epoch".into(), Json::Arr(burn_by_epoch)),
                ("burned_by_host".into(), Json::Arr(burned_by_host)),
                ("hosts_reporting".into(), Json::from(host_docs.len())),
                ("host_rollup".into(), host_rollup),
            ])
            .to_string_pretty(),
        ))
    }

    /// Perf counters merged across every host (each host folds its own
    /// retired machine generations), in host index order, so the result
    /// is byte-deterministic at any `--jobs`. Engine counters are always
    /// maintained; the macro-batch statistics are nonzero only when
    /// [`crate::config::FleetConfig::perf`] enabled collection.
    pub fn perf_snapshot(&self) -> xen_sim::PerfSnapshot {
        let mut snap = xen_sim::PerfSnapshot::default();
        for h in &self.hosts {
            snap.merge(&h.perf_snapshot());
        }
        snap
    }

    /// Deterministic fleet perf document: the merged host snapshot plus
    /// epoch shard-balance statistics (Up hosts stepped per epoch — the
    /// shardable width, independent of the worker count).
    pub fn perf_json(&self) -> Json {
        let Json::Obj(mut fields) = self.perf_snapshot().to_json() else {
            unreachable!("snapshot exports an object")
        };
        fields.push(("epochs".into(), Json::from(self.epochs_run)));
        fields.push(("hosts_stepped".into(), self.hosts_stepped.to_json()));
        Json::Obj(fields)
    }

    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The metrics JSON of one host's live machine (for byte-diffing a
    /// 1-host fleet against the single-machine path).
    pub fn host_metrics_json(&self, index: usize) -> Option<String> {
        self.hosts
            .get(index)?
            .machine
            .as_ref()
            .map(|m| m.metrics().to_json())
    }

    fn rebuild_host(&mut self, index: usize) -> Result<(), SimError> {
        self.hosts[index].rebuild(&self.cfg)?;
        if let Some((ti, cap)) = self.trace_host {
            if ti == index {
                if let Some(m) = self.hosts[index].machine.as_mut() {
                    m.enable_trace(cap);
                    m.enable_telemetry();
                }
            }
        }
        // Provenance keeps every host's registry live so the end-of-run
        // rollup sees the whole surviving fleet.
        if self.prov.is_some() {
            if let Some(m) = self.hosts[index].machine.as_mut() {
                m.enable_telemetry();
            }
        }
        Ok(())
    }

    /// Run the configured number of epochs and produce the report.
    pub fn run(&mut self) -> Result<FleetReport, SimError> {
        for epoch in 0..self.cfg.epochs {
            self.epoch(epoch)?;
        }
        let report = self.report();
        debug_assert_eq!(report.vms_lost, 0, "controller lost track of a VM");
        Ok(report)
    }

    fn epoch(&mut self, e: u64) -> Result<(), SimError> {
        self.recoveries(e);
        self.landings(e);
        self.crashes(e);
        self.departures(e);
        self.arrivals(e);
        self.placement(e);
        for h in 0..self.hosts.len() {
            if self.hosts[h].is_up() && self.hosts[h].dirty {
                self.rebuild_host(h)?;
            }
        }
        self.step_hosts();
        self.snapshot(e);
        self.epochs_run = e + 1;
        Ok(())
    }

    fn recoveries(&mut self, e: u64) {
        for host in &mut self.hosts {
            if let HostState::Down { until_epoch } = host.state {
                if e >= until_epoch {
                    host.recover();
                    self.metrics.recoveries += 1;
                    self.registry.inc(self.tele.recoveries, 1);
                }
            }
        }
    }

    fn landings(&mut self, e: u64) {
        let epoch_s = self.cfg.epoch_len.as_secs_f64();
        let t_us = self.cfg.epoch_len.as_micros() * e;
        for host in &mut self.hosts {
            if !host.is_up() {
                continue;
            }
            let mut still_in_flight = Vec::new();
            for inc in std::mem::take(&mut host.incoming) {
                if inc.lands_epoch <= e {
                    match inc.displaced_epoch {
                        Some(d) => {
                            let latency = (e - d) as f64 * epoch_s;
                            self.metrics.evacuated += 1;
                            self.metrics.evac_latency_s.push(latency);
                            self.registry.inc(self.tele.evacuated, 1);
                            self.registry.observe(self.tele.evac_latency_s, latency);
                            if let Some(p) = &mut self.prov {
                                if inc.span != 0 {
                                    p.spans.annotate(inc.span, "dst_host", Json::from(host.index));
                                    p.spans.annotate(inc.span, "latency_s", Json::Num(latency));
                                    p.spans.annotate(inc.span, "outcome", Json::from("landed"));
                                    p.spans.end(inc.span, t_us);
                                    if let Some(&(src, _)) = p.evac_src.get(&inc.span) {
                                        p.burned_s_by_host[src] += latency;
                                    }
                                }
                                if let Some(b) = p.burn_by_epoch.get_mut(e as usize) {
                                    *b += latency / p.budget_s;
                                }
                            }
                        }
                        None => {
                            self.metrics.admitted += 1;
                            if let Some(p) = &mut self.prov {
                                if inc.span != 0 {
                                    p.spans.annotate(inc.span, "dst_host", Json::from(host.index));
                                    p.spans.annotate(inc.span, "outcome", Json::from("landed"));
                                    p.spans.end(inc.span, t_us);
                                }
                            }
                        }
                    }
                    host.admit_resident(inc.vm);
                } else {
                    still_in_flight.push(inc);
                }
            }
            host.incoming = still_in_flight;
        }
    }

    fn crashes(&mut self, e: u64) {
        let fail = &self.cfg.failures;
        let mut crashing: Vec<usize> = Vec::new();
        // Correlated failure domains first: one draw per rack, in rack
        // order, taking down every Up host in the rack together.
        if fail.rack_crash_rate > 0.0 {
            for rack in 0..self.cfg.num_racks() {
                if self.rack_rng.chance(fail.rack_crash_rate) {
                    self.metrics.rack_crashes += 1;
                    crashing.extend(
                        self.hosts
                            .iter()
                            .filter(|h| h.rack == rack && h.is_up())
                            .map(|h| h.index),
                    );
                }
            }
        }
        // Independent per-host failures, skipping hosts already going down.
        if fail.host_crash_rate > 0.0 {
            for h in 0..self.hosts.len() {
                if self.hosts[h].is_up()
                    && !crashing.contains(&h)
                    && self.crash_rng.chance(fail.host_crash_rate)
                {
                    crashing.push(h);
                }
            }
        }
        crashing.sort_unstable();
        for h in crashing {
            let down_for = self
                .recovery_rng
                .exponential(fail.recovery_epochs_mean)
                .round()
                .max(1.0) as u64;
            let (vms, in_flight) = self.hosts[h].crash(e + down_for);
            self.metrics.crashes += 1;
            self.registry.inc(self.tele.crashes, 1);
            let displaced_now = (vms.len() + in_flight.len()) as u64;
            self.metrics.displaced += displaced_now;
            self.registry.inc(self.tele.displaced, displaced_now);
            let rack = self.hosts[h].rack;
            let t_us = self.cfg.epoch_len.as_micros() * e;
            for vm in vms {
                let span = match &mut self.prov {
                    Some(p) => {
                        let sid = p.spans.begin(
                            &format!("evacuation vm{}", vm.id),
                            h as u64,
                            t_us,
                            None,
                        );
                        p.spans.annotate(sid, "src_host", Json::from(h));
                        p.spans.annotate(sid, "rack", Json::from(rack));
                        p.evac_src.insert(sid, (h, rack));
                        sid
                    }
                    None => 0,
                };
                self.evac_queue.push(QueuedVm {
                    vm,
                    enqueued_epoch: e,
                    displaced_epoch: Some(e),
                    retries: 0,
                    next_attempt_epoch: e,
                    span,
                });
            }
            // In-flight copies died with their target; they re-queue as
            // evacuations too (their copy work is lost), keeping any
            // earlier displacement timestamp so latency spans the whole
            // outage.
            for inc in in_flight {
                let span = match &mut self.prov {
                    Some(p) => {
                        // Keep the VM's existing journey span (admission
                        // spans turn into evacuations here) and mark the
                        // lost copy as a child.
                        let sid = if inc.span != 0 {
                            inc.span
                        } else {
                            p.spans.begin(
                                &format!("evacuation vm{}", inc.vm.id),
                                h as u64,
                                t_us,
                                None,
                            )
                        };
                        let child = p.spans.begin("copy-lost", h as u64, t_us, Some(sid));
                        p.spans.annotate(child, "reason", Json::from("target-crashed"));
                        p.spans.end(child, t_us);
                        p.evac_src.entry(sid).or_insert((h, rack));
                        sid
                    }
                    None => 0,
                };
                self.evac_queue.push(QueuedVm {
                    vm: inc.vm,
                    enqueued_epoch: e,
                    displaced_epoch: Some(inc.displaced_epoch.unwrap_or(e)),
                    retries: 0,
                    next_attempt_epoch: e,
                    span,
                });
            }
        }
    }

    fn departures(&mut self, e: u64) {
        let rate = self.cfg.churn.departure_rate;
        if rate <= 0.0 {
            return;
        }
        let _ = e;
        for host in &mut self.hosts {
            if !host.is_up() {
                continue;
            }
            let leaving: Vec<u64> = host
                .vms
                .iter()
                .filter(|_| self.depart_rng.chance(rate))
                .map(|v| v.id)
                .collect();
            for id in leaving {
                host.remove_vm(id);
                self.metrics.departures += 1;
                self.registry.inc(self.tele.departures, 1);
            }
        }
    }

    fn arrivals(&mut self, e: u64) {
        let lambda = self.cfg.churn.arrivals_per_epoch;
        if lambda <= 0.0 {
            return;
        }
        let n = self.arrival_rng.poisson(lambda);
        self.metrics.arrivals += n;
        self.registry.inc(self.tele.arrivals, n);
        for _ in 0..n {
            let flavor_idx = self
                .flavor_rng
                .index(self.cfg.flavors.len())
                .expect("validated non-empty catalog");
            let id = self.next_vm_id;
            self.next_vm_id += 1;
            let span = match &mut self.prov {
                Some(p) => {
                    let sid = p.spans.begin(
                        &format!("admission vm{id}"),
                        self.hosts.len() as u64,
                        self.cfg.epoch_len.as_micros() * e,
                        None,
                    );
                    p.spans.annotate(
                        sid,
                        "flavor",
                        Json::from(self.cfg.flavors[flavor_idx].name),
                    );
                    sid
                }
                None => 0,
            };
            self.admit_queue.push(QueuedVm {
                vm: FleetVm {
                    id,
                    flavor_idx,
                    flavor: self.cfg.flavors[flavor_idx].clone(),
                    arrived_epoch: e,
                },
                enqueued_epoch: e,
                displaced_epoch: None,
                retries: 0,
                next_attempt_epoch: e,
                span,
            });
        }
    }

    fn placement(&mut self, e: u64) {
        let evac = std::mem::take(&mut self.evac_queue);
        self.evac_queue = self.place_queue(e, evac, true);
        let admit = std::mem::take(&mut self.admit_queue);
        self.admit_queue = self.place_queue(e, admit, false);
    }

    /// One placement pass over a queue (FIFO). Returns the entries that
    /// stay queued; sheds on timeout or retry exhaustion.
    fn place_queue(&mut self, e: u64, queue: Vec<QueuedVm>, is_evac: bool) -> Vec<QueuedVm> {
        let adm = self.cfg.admission;
        let fail = self.cfg.failures;
        let mut kept = Vec::new();
        for mut q in queue {
            if e - q.enqueued_epoch >= adm.queue_timeout_epochs {
                self.end_span_shed(q.span, e, "shed-timeout");
                self.shed(is_evac);
                continue;
            }
            if q.next_attempt_epoch > e {
                kept.push(q);
                continue;
            }
            self.metrics.placement_attempts += 1;
            let chosen = choose_host(&self.hosts, &q.vm.flavor, &adm);
            let Some(h) = chosen else {
                self.metrics.placement_failures += 1;
                self.registry.inc(self.tele.placement_failures, 1);
                if !self.backoff(&mut q, e, &adm) {
                    self.end_span_shed(q.span, e, "shed-retries");
                    self.shed(is_evac);
                    continue;
                }
                self.retry_child(&q, e, "no-host");
                kept.push(q);
                continue;
            };
            // The copy can fail outright or run degraded; both draws live
            // on the dedicated migration stream, skipped at rate 0.
            if fail.migration_fail_rate > 0.0 && self.migration_rng.chance(fail.migration_fail_rate)
            {
                self.metrics.migration_failures += 1;
                self.registry.inc(self.tele.migration_failures, 1);
                if !self.backoff(&mut q, e, &adm) {
                    self.end_span_shed(q.span, e, "shed-retries");
                    self.shed(is_evac);
                    continue;
                }
                self.retry_child(&q, e, "migration-fault");
                kept.push(q);
                continue;
            }
            let mut copy_epochs = if fail.copy_bandwidth_bytes_per_epoch == 0 {
                1
            } else {
                q.vm.flavor
                    .mem_bytes
                    .div_ceil(fail.copy_bandwidth_bytes_per_epoch)
                    .max(1)
            };
            if fail.migration_delay_rate > 0.0 && self.migration_rng.chance(fail.migration_delay_rate)
            {
                copy_epochs *= 2;
                self.metrics.migrations_delayed += 1;
            }
            if let Some(p) = &mut self.prov {
                if q.span != 0 {
                    // The journey moves onto the destination host's track
                    // once the copy is accepted.
                    p.spans.set_track(q.span, h as u64);
                }
            }
            self.hosts[h].incoming.push(IncomingVm {
                vm: q.vm,
                lands_epoch: e + copy_epochs,
                displaced_epoch: q.displaced_epoch,
                span: q.span,
            });
        }
        kept
    }

    /// Close a journey span for a VM that was shed (timeout or retry
    /// exhaustion). No-op when provenance is off or the span is 0.
    fn end_span_shed(&mut self, span: u64, e: u64, reason: &'static str) {
        if let Some(p) = &mut self.prov {
            if span != 0 {
                let t_us = self.cfg.epoch_len.as_micros() * e;
                p.spans.annotate(span, "outcome", Json::from(reason));
                p.spans.end(span, t_us);
            }
        }
    }

    /// Record one failed placement attempt as a child span covering the
    /// backoff window (attempt epoch → next attempt).
    fn retry_child(&mut self, q: &QueuedVm, e: u64, reason: &'static str) {
        if let Some(p) = &mut self.prov {
            if q.span != 0 {
                let us = self.cfg.epoch_len.as_micros();
                let child = p.spans.begin(
                    "retry",
                    self.hosts.len() as u64,
                    us * e,
                    Some(q.span),
                );
                p.spans.annotate(child, "reason", Json::from(reason));
                p.spans.annotate(child, "attempt", Json::from(q.retries as u64));
                p.spans.end(child, us * q.next_attempt_epoch);
            }
        }
    }

    /// Exponential backoff; returns `false` when the retry budget is
    /// exhausted (the caller sheds the VM).
    fn backoff(&self, q: &mut QueuedVm, e: u64, adm: &crate::config::AdmissionConfig) -> bool {
        q.retries += 1;
        if q.retries > adm.max_retries {
            return false;
        }
        let shift = (q.retries - 1).min(16);
        q.next_attempt_epoch = e + adm.backoff_epochs.saturating_mul(1 << shift).max(1);
        true
    }

    fn shed(&mut self, is_evac: bool) {
        if is_evac {
            self.metrics.shed_evacuation += 1;
        } else {
            self.metrics.shed_admission += 1;
        }
        self.registry.inc(self.tele.shed, 1);
    }

    /// Advance every Up host's machine one epoch, sharded over the
    /// process-wide worker pool. Results return in input order, and each
    /// machine is a pure function of its own state, so output is
    /// byte-identical for any job count.
    fn step_hosts(&mut self) {
        let epoch_len = self.cfg.epoch_len;
        let mut stepping: Vec<(usize, xen_sim::Machine)> = Vec::new();
        for host in &mut self.hosts {
            match host.state {
                HostState::Up => {
                    host.up_epochs += 1;
                    if let Some(m) = host.machine.take() {
                        stepping.push((host.index, m));
                    }
                }
                HostState::Down { .. } => {
                    host.down_epochs += 1;
                    self.metrics.host_down_epochs += 1;
                }
            }
        }
        if !stepping.is_empty() {
            self.hosts_stepped.observe(stepping.len() as u64);
        }
        let stepped = parallel::parallel_map(stepping, move |(idx, mut machine)| {
            machine.run(epoch_len);
            (idx, machine)
        });
        for (idx, machine) in stepped {
            self.hosts[idx].machine = Some(machine);
        }
        // SLO integral: every displaced VM still waiting (queued or
        // mid-copy) is degraded for this epoch.
        let in_flight_evac = self.in_flight_evac();
        self.metrics.degraded_vm_epochs += self.evac_queue.len() as u64 + in_flight_evac;
    }

    fn snapshot(&mut self, e: u64) {
        let up = self.hosts.iter().filter(|h| h.is_up()).count();
        let resident: usize = self.hosts.iter().map(|h| h.vms.len()).sum();
        let queued = self.evac_queue.len() + self.admit_queue.len();
        self.registry.set_gauge(self.tele.hosts_up, up as f64);
        self.registry.set_gauge(self.tele.resident_vms, resident as f64);
        self.registry.set_gauge(self.tele.queue_depth, queued as f64);
        self.registry
            .snapshot(SimTime::from_micros(self.cfg.epoch_len.as_micros() * (e + 1)));
    }

    fn in_flight_evac(&self) -> u64 {
        self.hosts
            .iter()
            .flat_map(|h| &h.incoming)
            .filter(|i| i.displaced_epoch.is_some())
            .count() as u64
    }

    /// Assemble the end-of-run report.
    pub fn report(&self) -> FleetReport {
        let in_flight_evac = self.in_flight_evac();
        let in_flight_admit = self
            .hosts
            .iter()
            .flat_map(|h| &h.incoming)
            .filter(|i| i.displaced_epoch.is_none())
            .count() as u64;
        let pending_evac = self.evac_queue.len() as u64;
        let pending_admit = self.admit_queue.len() as u64;
        let total_instructions: u64 = self.hosts.iter().map(Host::total_instructions).sum();
        let total_busy_us: f64 = self.hosts.iter().map(Host::total_busy_us).sum();
        let up_epochs_total: u64 = self.hosts.iter().map(|h| h.up_epochs).sum();
        let epoch_s = self.cfg.epoch_len.as_secs_f64();
        FleetReport {
            scheduler: self.cfg.scheduler.name(),
            num_hosts: self.cfg.num_hosts,
            num_racks: self.cfg.num_racks(),
            seed: self.cfg.seed,
            epochs: self.epochs_run,
            epoch_len_s: epoch_s,
            metrics: self.metrics.clone(),
            hosts_up_end: self.hosts.iter().filter(|h| h.is_up()).count(),
            resident_vms_end: self.hosts.iter().map(|h| h.vms.len()).sum(),
            pending_evac,
            pending_admit,
            in_flight_evac,
            in_flight_admit,
            vms_lost: self.metrics.vms_lost(pending_evac, in_flight_evac),
            total_instructions,
            total_busy_us,
            up_epochs_total,
            instr_per_host_up_s: if up_epochs_total == 0 {
                0.0
            } else {
                total_instructions as f64 / (up_epochs_total as f64 * epoch_s)
            },
            degraded_vm_minutes: self.metrics.degraded_vm_epochs as f64 * epoch_s / 60.0,
            telemetry: self.registry.export(),
        }
    }
}

/// End-of-run summary: SLO counters, throughput, accounting, and the
/// fleet telemetry export.
#[derive(Debug, Clone)]
pub struct FleetReport {
    pub scheduler: &'static str,
    pub num_hosts: usize,
    pub num_racks: usize,
    pub seed: u64,
    pub epochs: u64,
    pub epoch_len_s: f64,
    pub metrics: FleetMetrics,
    pub hosts_up_end: usize,
    pub resident_vms_end: usize,
    pub pending_evac: u64,
    pub pending_admit: u64,
    pub in_flight_evac: u64,
    pub in_flight_admit: u64,
    /// Displaced VMs unaccounted for — nonzero is a controller bug.
    pub vms_lost: i64,
    pub total_instructions: u64,
    pub total_busy_us: f64,
    pub up_epochs_total: u64,
    /// Fleet throughput normalized by host uptime: instructions per
    /// host-up-second (comparable across fleet sizes and outage levels).
    pub instr_per_host_up_s: f64,
    pub degraded_vm_minutes: f64,
    pub telemetry: Option<Json>,
}

impl FleetReport {
    /// Serialize with stable key order (byte-identical across runs of the
    /// same seed, for golden diffs).
    pub fn to_json(&self) -> String {
        let m = &self.metrics;
        let mut fields = vec![
            ("scheduler".into(), Json::from(self.scheduler)),
            ("num_hosts".into(), Json::from(self.num_hosts)),
            ("num_racks".into(), Json::from(self.num_racks)),
            ("seed".into(), Json::from(self.seed)),
            ("epochs".into(), Json::from(self.epochs)),
            ("epoch_len_s".into(), Json::Num(self.epoch_len_s)),
            ("crashes".into(), Json::from(m.crashes)),
            ("rack_crashes".into(), Json::from(m.rack_crashes)),
            ("recoveries".into(), Json::from(m.recoveries)),
            ("displaced".into(), Json::from(m.displaced)),
            ("evacuated".into(), Json::from(m.evacuated)),
            ("shed_evacuation".into(), Json::from(m.shed_evacuation)),
            ("shed_admission".into(), Json::from(m.shed_admission)),
            ("arrivals".into(), Json::from(m.arrivals)),
            ("departures".into(), Json::from(m.departures)),
            ("admitted".into(), Json::from(m.admitted)),
            ("placement_attempts".into(), Json::from(m.placement_attempts)),
            ("placement_failures".into(), Json::from(m.placement_failures)),
            ("migration_failures".into(), Json::from(m.migration_failures)),
            ("migrations_delayed".into(), Json::from(m.migrations_delayed)),
            ("degraded_vm_epochs".into(), Json::from(m.degraded_vm_epochs)),
            ("degraded_vm_minutes".into(), Json::Num(self.degraded_vm_minutes)),
            ("host_down_epochs".into(), Json::from(m.host_down_epochs)),
            ("evac_latency_mean_s".into(), Json::Num(m.evac_latency_s.mean())),
            (
                "evac_latency_max_s".into(),
                Json::Num(m.evac_latency_s.max().unwrap_or(0.0)),
            ),
            ("hosts_up_end".into(), Json::from(self.hosts_up_end)),
            ("resident_vms_end".into(), Json::from(self.resident_vms_end)),
            ("pending_evac".into(), Json::from(self.pending_evac)),
            ("pending_admit".into(), Json::from(self.pending_admit)),
            ("in_flight_evac".into(), Json::from(self.in_flight_evac)),
            ("in_flight_admit".into(), Json::from(self.in_flight_admit)),
            ("vms_lost".into(), Json::from(self.vms_lost as f64)),
            ("total_instructions".into(), Json::from(self.total_instructions)),
            ("total_busy_us".into(), Json::Num(self.total_busy_us)),
            ("up_epochs_total".into(), Json::from(self.up_epochs_total)),
            ("instr_per_host_up_s".into(), Json::Num(self.instr_per_host_up_s)),
        ];
        if let Some(t) = &self.telemetry {
            fields.push(("telemetry".into(), t.clone()));
        }
        Json::Obj(fields).to_string_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FleetScheduler, HostPreset};
    use sim_core::SimDuration;

    fn small_cfg(hosts: usize) -> FleetConfig {
        let mut cfg = FleetConfig::new(hosts, FleetScheduler::Credit);
        cfg.epochs = 4;
        cfg.epoch_len = SimDuration::from_secs(1);
        cfg.initial_vms_per_host = 1;
        cfg
    }

    #[test]
    fn quiet_fleet_runs_and_accounts() {
        let mut fleet = Fleet::new(small_cfg(3)).unwrap();
        let report = fleet.run().unwrap();
        assert_eq!(report.vms_lost, 0);
        assert_eq!(report.metrics.crashes, 0);
        assert_eq!(report.hosts_up_end, 3);
        assert_eq!(report.resident_vms_end, 3);
        assert!(report.total_instructions > 0);
        assert!(report.instr_per_host_up_s > 0.0);
    }

    #[test]
    fn quiet_fleet_makes_no_controller_draws() {
        // Two quiet runs interleaved with an extra dummy fleet must agree:
        // determinism does not hinge on RNG stream positions because no
        // stream is touched.
        let a = Fleet::new(small_cfg(2)).unwrap().run().unwrap().to_json();
        let b = Fleet::new(small_cfg(2)).unwrap().run().unwrap().to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn crashes_displace_and_evacuate() {
        let mut cfg = small_cfg(4);
        cfg.epochs = 10;
        cfg.failures.host_crash_rate = 0.3;
        cfg.failures.recovery_epochs_mean = 2.0;
        let mut fleet = Fleet::new(cfg).unwrap();
        let report = fleet.run().unwrap();
        assert!(report.metrics.crashes > 0, "30% over 40 host-epochs must crash");
        assert!(report.metrics.displaced > 0);
        assert_eq!(report.vms_lost, 0, "every displaced VM accounted for");
        assert!(
            report.metrics.evacuated > 0,
            "with spare capacity evacuations must land"
        );
    }

    #[test]
    fn rack_failure_takes_whole_rack_down() {
        let mut cfg = small_cfg(4);
        cfg.epochs = 1;
        cfg.failures.rack_size = 4;
        cfg.failures.rack_crash_rate = 1.0;
        cfg.failures.recovery_epochs_mean = 50.0;
        let mut fleet = Fleet::new(cfg).unwrap();
        let report = fleet.run().unwrap();
        assert_eq!(report.metrics.rack_crashes, 1);
        assert_eq!(report.metrics.crashes, 4, "all four hosts share the rack");
        assert_eq!(report.hosts_up_end, 0);
        // Nowhere to evacuate: everything pending or shed, nothing lost.
        assert_eq!(report.vms_lost, 0);
        assert_eq!(report.metrics.evacuated, 0);
    }

    #[test]
    fn capacity_exhaustion_sheds_instead_of_panicking() {
        let mut cfg = small_cfg(1);
        cfg.presets = vec![HostPreset::UmaQuad];
        cfg.initial_vms_per_host = 1;
        // Catalog trimmed to the small flavor so the single tiny host fills.
        cfg.flavors = vec![crate::config::VmFlavor::catalog().remove(2)];
        cfg.epochs = 30;
        cfg.churn.arrivals_per_epoch = 3.0;
        cfg.admission.queue_timeout_epochs = 4;
        cfg.admission.max_retries = 2;
        let mut fleet = Fleet::new(cfg).unwrap();
        let report = fleet.run().unwrap();
        assert!(report.metrics.arrivals > 0);
        assert!(
            report.metrics.shed_admission > 0,
            "a full fleet must shed, not panic: {report:?}"
        );
        assert_eq!(report.vms_lost, 0);
    }

    #[test]
    fn churn_fleet_is_deterministic_across_jobs() {
        let mut cfg = small_cfg(4);
        cfg.epochs = 8;
        cfg.churn.arrivals_per_epoch = 1.0;
        cfg.churn.departure_rate = 0.05;
        cfg.failures.host_crash_rate = 0.1;
        cfg.failures.migration_fail_rate = 0.2;
        let baseline = {
            parallel::set_jobs(1);
            let mut fleet = Fleet::new(cfg.clone()).unwrap();
            let r = fleet.run().unwrap().to_json();
            parallel::set_jobs(0);
            r
        };
        for jobs in [2, 5] {
            parallel::set_jobs(jobs);
            let mut fleet = Fleet::new(cfg.clone()).unwrap();
            let got = fleet.run().unwrap().to_json();
            parallel::set_jobs(0);
            assert_eq!(got, baseline, "jobs={jobs} must be byte-identical");
        }
    }

    #[test]
    fn report_json_is_stable_and_parses() {
        let mut fleet = Fleet::new(small_cfg(2)).unwrap();
        let report = fleet.run().unwrap();
        let json = report.to_json();
        let doc = Json::parse(&json).unwrap();
        assert_eq!(doc.get("num_hosts").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("vms_lost").unwrap().as_f64(), Some(0.0));
        assert!(doc.get("telemetry").is_some(), "registry export present");
        assert_eq!(json, report.to_json());
    }

    #[test]
    fn single_host_quiet_fleet_matches_single_machine() {
        // The acceptance bar for the fleet layer: hosting a machine inside
        // the fleet (epoch-chunked stepping, generation-0 seed) must not
        // perturb the simulation at all.
        let mut cfg = small_cfg(1);
        cfg.scheduler = FleetScheduler::VProbe;
        cfg.epochs = 5;
        cfg.initial_vms_per_host = 2;
        let mut fleet = Fleet::new(cfg.clone()).unwrap();
        fleet.run().unwrap();
        let fleet_json = fleet.host_metrics_json(0).unwrap();

        let topo = cfg.preset_for(0).topology();
        let num_nodes = topo.num_nodes();
        let mut builder = xen_sim::MachineBuilder::new(topo)
            .policy(cfg.scheduler.policy(num_nodes, cfg.seed))
            .sample_period(cfg.epoch_len)
            .seed(cfg.seed)
            .macro_step(cfg.macro_step)
            .engine(cfg.engine);
        for id in 0..cfg.initial_vms_per_host as u64 {
            let flavor = &cfg.flavors[id as usize % cfg.flavors.len()];
            builder = builder.add_vm(flavor.vm_config(id));
        }
        let mut machine = builder.build().unwrap();
        machine.run(sim_core::SimDuration::from_micros(
            cfg.epoch_len.as_micros() * cfg.epochs,
        ));
        assert_eq!(fleet_json, machine.metrics().to_json());
    }

    fn churny_cfg() -> FleetConfig {
        let mut cfg = small_cfg(4);
        cfg.epochs = 10;
        cfg.churn.arrivals_per_epoch = 1.0;
        cfg.failures.host_crash_rate = 0.2;
        cfg.failures.recovery_epochs_mean = 2.0;
        cfg.failures.migration_fail_rate = 0.2;
        cfg
    }

    #[test]
    fn provenance_does_not_change_the_report() {
        let cfg = churny_cfg();
        let plain = Fleet::new(cfg.clone()).unwrap().run().unwrap().to_json();
        let mut probed = Fleet::new(cfg).unwrap();
        probed.enable_provenance();
        let report = probed.run().unwrap().to_json();
        assert_eq!(plain, report, "provenance must be pure observation");
    }

    #[test]
    fn provenance_spans_cover_the_vm_journeys() {
        let mut fleet = Fleet::new(churny_cfg()).unwrap();
        fleet.enable_provenance();
        let report = fleet.run().unwrap();
        assert!(report.metrics.crashes > 0, "scenario must exercise crashes");
        let jsonl = fleet.spans_jsonl().unwrap();
        assert!(!jsonl.is_empty());
        let mut evac = 0;
        let mut admission = 0;
        for line in jsonl.lines() {
            let doc = Json::parse(line).unwrap();
            let name = doc.get("name").unwrap().as_str().unwrap().to_string();
            if name.starts_with("evacuation") {
                evac += 1;
            }
            if name.starts_with("admission") {
                admission += 1;
            }
        }
        assert!(evac > 0, "crashes must open evacuation spans");
        assert!(admission > 0, "arrivals must open admission spans");
        // Chrome export and SLO rollup parse and agree on the budget.
        Json::parse(&fleet.spans_chrome().unwrap()).unwrap();
        let slo = Json::parse(&fleet.slo_json().unwrap().unwrap()).unwrap();
        assert_eq!(slo.get("budget_s").unwrap().as_f64(), Some(60.0));
        let burn = slo.get("burn_by_epoch").unwrap().as_array().unwrap();
        assert_eq!(burn.len(), 10, "one burn entry per epoch");
        if report.metrics.evacuated > 0 {
            let total: f64 = slo.get("total_burned_s").unwrap().as_f64().unwrap();
            let expect: f64 =
                report.metrics.evac_latency_s.mean() * report.metrics.evacuated as f64;
            assert!(
                (total - expect).abs() < 1e-6,
                "burned seconds {total} must match landed evac latency {expect}"
            );
        }
        assert!(
            slo.get("host_rollup").unwrap().get("counters").is_some(),
            "host registries rolled up"
        );
    }

    #[test]
    fn provenance_is_deterministic_across_jobs() {
        let cfg = churny_cfg();
        let run = |jobs: usize| {
            parallel::set_jobs(jobs);
            let mut fleet = Fleet::new(cfg.clone()).unwrap();
            fleet.enable_provenance();
            fleet.run().unwrap();
            let out = (
                fleet.spans_jsonl().unwrap(),
                fleet.spans_chrome().unwrap(),
                fleet.slo_json().unwrap().unwrap(),
            );
            parallel::set_jobs(0);
            out
        };
        assert_eq!(run(1), run(4), "spans and rollups are jobs-invariant");
    }

    #[test]
    fn perf_collection_is_observational_and_jobs_invariant() {
        let plain = Fleet::new(churny_cfg()).unwrap().run().unwrap().to_json();
        let mut cfg = churny_cfg();
        cfg.perf = true;
        let run = |jobs: usize| {
            parallel::set_jobs(jobs);
            let mut fleet = Fleet::new(cfg.clone()).unwrap();
            let report = fleet.run().unwrap().to_json();
            let perf = fleet.perf_json().to_string();
            parallel::set_jobs(0);
            (report, perf)
        };
        let (r1, p1) = run(1);
        let (r4, p4) = run(4);
        assert_eq!(r1, plain, "perf collection must not change the report");
        assert_eq!(r1, r4, "report is jobs-invariant with perf on");
        assert_eq!(p1, p4, "fleet perf doc must be jobs-invariant");
        let doc = Json::parse(&p1).unwrap();
        let steps = doc
            .get("engine")
            .and_then(|e| e.get("steps"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(steps > 0, "engine counters accumulated across generations");
        assert_eq!(doc.get("epochs").and_then(Json::as_u64), Some(10));
        let stepped = doc
            .get("hosts_stepped")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(stepped > 0, "shard-balance stats recorded per epoch");
    }

    #[test]
    fn engine_select_reaches_every_host() {
        let run = |engine| {
            let mut cfg = small_cfg(2);
            cfg.engine = engine;
            let mut fleet = Fleet::new(cfg).unwrap();
            fleet.run().unwrap();
            fleet.perf_snapshot().engine
        };
        // Only the approx engine consults the solve memo; exact mode
        // short-circuits it. The counters prove the selection reached the
        // hosts' machines.
        let exact = run(mem_model::EngineSelect::Exact);
        assert_eq!(exact.memo_hits + exact.memo_misses, 0);
        let approx = run(mem_model::EngineSelect::Approx);
        assert!(
            approx.memo_hits + approx.memo_misses > 0,
            "approx engine must consult the memo: {approx:?}"
        );
    }

    #[test]
    fn heterogeneous_fleet_mixes_presets() {
        let mut cfg = small_cfg(3);
        cfg.presets = vec![HostPreset::XeonE5620, HostPreset::FourSocket32];
        let fleet = Fleet::new(cfg).unwrap();
        assert_eq!(fleet.hosts()[0].preset, HostPreset::XeonE5620);
        assert_eq!(fleet.hosts()[1].preset, HostPreset::FourSocket32);
        assert_eq!(fleet.hosts()[2].preset, HostPreset::XeonE5620);
    }
}
