//! One fleet host: a NUMA box that is either Up (possibly running a
//! [`Machine`]) or Down (crashed, waiting out its recovery timer).
//!
//! `xen_sim::Machine` fixes its VM set at build time (VCPU vectors, the
//! PMU sampler, and the memory engine are all sized in `build()`), so the
//! fleet models VM arrival/departure by *rebuilding* the host's machine
//! whenever its membership changes. A host whose membership never changes
//! is never rebuilt, and chunked epoch stepping is byte-identical to one
//! long `run()` — which is exactly why a quiet 1-host fleet reproduces the
//! single-machine path bit for bit. Work done by retired machine
//! generations is folded into per-host accumulators so throughput
//! accounting survives rebuilds and crashes.

use crate::config::{AdmissionConfig, FleetConfig, HostPreset, VmFlavor};
use crate::placement::HostCapacity;
use sim_core::{FaultConfig, SimError};
use xen_sim::{Machine, MachineBuilder};

/// Golden-ratio mix constant used to decorrelate per-generation seeds.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// One VM as the fleet controller sees it.
#[derive(Debug, Clone)]
pub struct FleetVm {
    /// Fleet-wide unique id, assigned at arrival and stable across
    /// migrations.
    pub id: u64,
    /// Index into the flavor catalog (for reporting).
    pub flavor_idx: usize,
    pub flavor: VmFlavor,
    pub arrived_epoch: u64,
}

/// Host availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostState {
    Up,
    /// Crashed; comes back at the start of `until_epoch`.
    Down { until_epoch: u64 },
}

/// A VM accepted onto a host whose live-migration copy is still in flight.
#[derive(Debug, Clone)]
pub struct IncomingVm {
    pub vm: FleetVm,
    /// Epoch at which the VM becomes resident (copy finished).
    pub lands_epoch: u64,
    /// Set when this VM was displaced by a crash (drives the evacuation
    /// latency histogram when it lands).
    pub displaced_epoch: Option<u64>,
    /// Provenance span id tracking this VM's placement journey; 0 when
    /// provenance is disabled.
    pub span: u64,
}

/// One host of the fleet.
pub struct Host {
    pub index: usize,
    pub preset: HostPreset,
    /// Failure domain (rack) id.
    pub rack: usize,
    pub state: HostState,
    /// Resident VMs, in admission order.
    pub vms: Vec<FleetVm>,
    /// Accepted VMs whose migration copy has not finished yet. They
    /// reserve capacity but do not run.
    pub incoming: Vec<IncomingVm>,
    /// The running simulation; `None` while down or empty.
    pub machine: Option<Machine>,
    /// Machine rebuilds so far (0 = the initial build, so a never-rebuilt
    /// host seeds its machine exactly like the single-machine path).
    pub generation: u64,
    /// Membership changed since the machine was last (re)built.
    pub dirty: bool,
    /// Cached hardware totals (avoids re-deriving the topology per epoch).
    num_pcpus: usize,
    total_mem_bytes: u64,
    /// Instructions retired by machine generations that were torn down.
    pub retired_instructions: u64,
    /// Busy microseconds from torn-down generations.
    pub retired_busy_us: f64,
    /// Perf counters folded in from torn-down generations.
    retired_perf: xen_sim::PerfSnapshot,
    /// Epochs this host spent Up / Down.
    pub up_epochs: u64,
    pub down_epochs: u64,
    /// Crashes suffered.
    pub crashes: u64,
}

impl Host {
    pub fn new(index: usize, preset: HostPreset, rack: usize) -> Self {
        let topo = preset.topology();
        Host {
            index,
            preset,
            rack,
            state: HostState::Up,
            vms: Vec::new(),
            incoming: Vec::new(),
            machine: None,
            generation: 0,
            dirty: false,
            num_pcpus: topo.num_pcpus(),
            total_mem_bytes: topo.total_mem_bytes(),
            retired_instructions: 0,
            retired_busy_us: 0.0,
            retired_perf: xen_sim::PerfSnapshot::default(),
            up_epochs: 0,
            down_epochs: 0,
            crashes: 0,
        }
    }

    pub fn is_up(&self) -> bool {
        self.state == HostState::Up
    }

    pub fn num_pcpus(&self) -> usize {
        self.num_pcpus
    }

    /// Free resources for admission: hardware totals minus everything
    /// resident *and* in flight (an accepted copy reserves its room).
    pub fn capacity(&self, adm: &AdmissionConfig) -> HostCapacity {
        let committed_vcpus: usize = self
            .vms
            .iter()
            .map(|v| v.flavor.vcpus)
            .chain(self.incoming.iter().map(|i| i.vm.flavor.vcpus))
            .sum();
        let committed_mem: u64 = self
            .vms
            .iter()
            .map(|v| v.flavor.mem_bytes)
            .chain(self.incoming.iter().map(|i| i.vm.flavor.mem_bytes))
            .sum();
        HostCapacity {
            free_vcpus: self.num_pcpus as f64 * adm.cpu_overcommit - committed_vcpus as f64,
            free_mem_bytes: self.total_mem_bytes.saturating_sub(committed_mem),
        }
    }

    /// Place a VM directly into the resident set (initial placement and
    /// copy completion). Marks the machine for rebuild.
    pub fn admit_resident(&mut self, vm: FleetVm) {
        self.vms.push(vm);
        self.dirty = true;
    }

    /// Remove a resident VM by id (departure churn). Returns it if found.
    pub fn remove_vm(&mut self, id: u64) -> Option<FleetVm> {
        let pos = self.vms.iter().position(|v| v.id == id)?;
        self.dirty = true;
        Some(self.vms.remove(pos))
    }

    /// Crash the host: fold the dying machine's work into the
    /// accumulators and hand every resident and in-flight VM back to the
    /// controller for evacuation.
    pub fn crash(&mut self, until_epoch: u64) -> (Vec<FleetVm>, Vec<IncomingVm>) {
        self.fold_machine();
        self.state = HostState::Down { until_epoch };
        self.crashes += 1;
        self.dirty = false;
        (
            std::mem::take(&mut self.vms),
            std::mem::take(&mut self.incoming),
        )
    }

    /// Bring a recovered host back, empty.
    pub fn recover(&mut self) {
        debug_assert!(self.vms.is_empty() && self.machine.is_none());
        self.state = HostState::Up;
    }

    /// Fold the current machine's metrics into the retired accumulators
    /// and drop it.
    fn fold_machine(&mut self) {
        if let Some(m) = self.machine.take() {
            let metrics = m.metrics();
            self.retired_instructions += metrics
                .per_vm
                .iter()
                .map(|vm| vm.instructions)
                .sum::<u64>();
            self.retired_busy_us += metrics.busy_us;
            self.retired_perf.merge(&m.perf_snapshot());
        }
    }

    /// The machine seed for the current generation. Generation 0 (never
    /// rebuilt) uses `fleet seed + host index` unmixed, so host 0 of a
    /// quiet fleet seeds exactly like a directly-built machine with the
    /// fleet seed.
    pub fn machine_seed(&self, cfg: &FleetConfig) -> u64 {
        cfg.seed
            .wrapping_add(self.index as u64)
            ^ self.generation.wrapping_mul(PHI)
    }

    /// Rebuild the machine to match the current resident set. Called by
    /// the controller inside the barrier, only for dirty Up hosts.
    pub fn rebuild(&mut self, cfg: &FleetConfig) -> Result<(), SimError> {
        debug_assert!(self.is_up());
        if self.machine.is_some() {
            self.fold_machine();
            self.generation += 1;
        }
        self.dirty = false;
        if self.vms.is_empty() {
            return Ok(());
        }
        let topo = self.preset.topology();
        let num_nodes = topo.num_nodes();
        let seed = self.machine_seed(cfg);
        let faults = if cfg.host_fault_rate > 0.0 {
            FaultConfig::uniform(
                cfg.host_fault_rate,
                cfg.fault_seed.wrapping_add(self.index as u64),
            )
        } else {
            FaultConfig::none()
        };
        let mut builder = MachineBuilder::new(topo)
            .policy(cfg.scheduler.policy(num_nodes, seed))
            .sample_period(cfg.epoch_len)
            .seed(seed)
            .faults(faults)
            .macro_step(cfg.macro_step)
            .engine(cfg.engine);
        for vm in &self.vms {
            builder = builder.add_vm(vm.flavor.vm_config(vm.id));
        }
        let mut machine = builder.build()?;
        if cfg.perf {
            machine.enable_perf();
        }
        self.machine = Some(machine);
        Ok(())
    }

    /// Instructions retired across every generation, including the live
    /// machine.
    pub fn total_instructions(&self) -> u64 {
        self.retired_instructions
            + self
                .machine
                .as_ref()
                .map(|m| m.metrics().per_vm.iter().map(|vm| vm.instructions).sum())
                .unwrap_or(0)
    }

    /// Busy PCPU microseconds across every generation.
    pub fn total_busy_us(&self) -> f64 {
        self.retired_busy_us
            + self
                .machine
                .as_ref()
                .map(|m| m.metrics().busy_us)
                .unwrap_or(0.0)
    }

    /// Perf counters across every generation of this host, including the
    /// live machine. Reported as one host (`hosts == 1`) regardless of
    /// how many machine generations contributed.
    pub fn perf_snapshot(&self) -> xen_sim::PerfSnapshot {
        let mut snap = self.retired_perf.clone();
        if let Some(m) = &self.machine {
            snap.merge(&m.perf_snapshot());
        }
        snap.hosts = 1;
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FleetScheduler, VmFlavor};

    fn test_vm(id: u64) -> FleetVm {
        let flavors = VmFlavor::catalog();
        let flavor_idx = id as usize % flavors.len();
        FleetVm {
            id,
            flavor_idx,
            flavor: flavors[flavor_idx].clone(),
            arrived_epoch: 0,
        }
    }

    #[test]
    fn rebuild_builds_machine_for_resident_vms() {
        let cfg = FleetConfig::new(1, FleetScheduler::Credit);
        let mut h = Host::new(0, HostPreset::XeonE5620, 0);
        h.admit_resident(test_vm(0));
        h.admit_resident(test_vm(1));
        h.rebuild(&cfg).unwrap();
        assert!(h.machine.is_some());
        assert_eq!(h.generation, 0, "first build is generation 0");
        assert!(!h.dirty);
    }

    #[test]
    fn empty_host_has_no_machine() {
        let cfg = FleetConfig::new(1, FleetScheduler::Credit);
        let mut h = Host::new(0, HostPreset::XeonE5620, 0);
        h.rebuild(&cfg).unwrap();
        assert!(h.machine.is_none());
    }

    #[test]
    fn crash_hands_back_all_vms_and_folds_work() {
        let cfg = FleetConfig::new(1, FleetScheduler::Credit);
        let mut h = Host::new(0, HostPreset::XeonE5620, 0);
        h.admit_resident(test_vm(0));
        h.rebuild(&cfg).unwrap();
        h.machine
            .as_mut()
            .unwrap()
            .run(sim_core::SimDuration::from_secs(1));
        let before = h.total_instructions();
        assert!(before > 0);
        let (vms, incoming) = h.crash(5);
        assert_eq!(vms.len(), 1);
        assert!(incoming.is_empty());
        assert!(h.machine.is_none());
        assert_eq!(h.total_instructions(), before, "work done is not lost");
        assert_eq!(h.state, HostState::Down { until_epoch: 5 });
        h.recover();
        assert!(h.is_up());
    }

    #[test]
    fn generation_seed_changes_only_after_rebuild() {
        let cfg = FleetConfig::new(2, FleetScheduler::Credit);
        let mut h = Host::new(1, HostPreset::XeonE5620, 0);
        let g0 = h.machine_seed(&cfg);
        assert_eq!(g0, cfg.seed.wrapping_add(1));
        h.admit_resident(test_vm(0));
        h.rebuild(&cfg).unwrap();
        assert_eq!(h.machine_seed(&cfg), g0, "first build keeps the base seed");
        h.admit_resident(test_vm(1));
        h.rebuild(&cfg).unwrap();
        assert_ne!(h.machine_seed(&cfg), g0, "rebuilds decorrelate");
    }

    #[test]
    fn capacity_counts_incoming_reservations() {
        let adm = AdmissionConfig::default();
        let mut h = Host::new(0, HostPreset::XeonE5620, 0);
        let base = h.capacity(&adm);
        h.incoming.push(IncomingVm {
            vm: test_vm(0),
            lands_epoch: 3,
            displaced_epoch: None,
            span: 0,
        });
        let reserved = h.capacity(&adm);
        assert!(reserved.free_vcpus < base.free_vcpus);
        assert!(reserved.free_mem_bytes < base.free_mem_bytes);
    }
}
